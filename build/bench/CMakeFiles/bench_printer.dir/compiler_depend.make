# Empty compiler generated dependencies file for bench_printer.
# This may be replaced when dependencies are built.
