file(REMOVE_RECURSE
  "CMakeFiles/bench_printer.dir/bench_printer.cpp.o"
  "CMakeFiles/bench_printer.dir/bench_printer.cpp.o.d"
  "bench_printer"
  "bench_printer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
