# Empty dependencies file for bench_mediaplayer.
# This may be replaced when dependencies are built.
