file(REMOVE_RECURSE
  "CMakeFiles/bench_mediaplayer.dir/bench_mediaplayer.cpp.o"
  "CMakeFiles/bench_mediaplayer.dir/bench_mediaplayer.cpp.o.d"
  "bench_mediaplayer"
  "bench_mediaplayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mediaplayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
