file(REMOVE_RECURSE
  "CMakeFiles/bench_diagnosis.dir/bench_diagnosis.cpp.o"
  "CMakeFiles/bench_diagnosis.dir/bench_diagnosis.cpp.o.d"
  "bench_diagnosis"
  "bench_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
