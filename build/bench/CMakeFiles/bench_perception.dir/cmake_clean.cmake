file(REMOVE_RECURSE
  "CMakeFiles/bench_perception.dir/bench_perception.cpp.o"
  "CMakeFiles/bench_perception.dir/bench_perception.cpp.o.d"
  "bench_perception"
  "bench_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
