file(REMOVE_RECURSE
  "CMakeFiles/bench_priowarn.dir/bench_priowarn.cpp.o"
  "CMakeFiles/bench_priowarn.dir/bench_priowarn.cpp.o.d"
  "bench_priowarn"
  "bench_priowarn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priowarn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
