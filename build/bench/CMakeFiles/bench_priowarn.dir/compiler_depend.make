# Empty compiler generated dependencies file for bench_priowarn.
# This may be replaced when dependencies are built.
