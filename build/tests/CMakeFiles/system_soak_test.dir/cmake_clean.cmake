file(REMOVE_RECURSE
  "CMakeFiles/system_soak_test.dir/system_soak_test.cpp.o"
  "CMakeFiles/system_soak_test.dir/system_soak_test.cpp.o.d"
  "system_soak_test"
  "system_soak_test.pdb"
  "system_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
