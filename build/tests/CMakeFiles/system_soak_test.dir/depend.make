# Empty dependencies file for system_soak_test.
# This may be replaced when dependencies are built.
