file(REMOVE_RECURSE
  "CMakeFiles/spec_model_test.dir/spec_model_test.cpp.o"
  "CMakeFiles/spec_model_test.dir/spec_model_test.cpp.o.d"
  "spec_model_test"
  "spec_model_test.pdb"
  "spec_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
