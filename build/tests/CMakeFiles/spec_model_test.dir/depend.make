# Empty dependencies file for spec_model_test.
# This may be replaced when dependencies are built.
