
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/machine_set_test.cpp" "tests/CMakeFiles/machine_set_test.dir/machine_set_test.cpp.o" "gcc" "tests/CMakeFiles/machine_set_test.dir/machine_set_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/trader_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/observation/CMakeFiles/trader_observation.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/trader_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/tv/CMakeFiles/trader_tv.dir/DependInfo.cmake"
  "/root/repo/build/src/detection/CMakeFiles/trader_detection.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnosis/CMakeFiles/trader_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/trader_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trader_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/trader_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/devtime/CMakeFiles/trader_devtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mediaplayer/CMakeFiles/trader_mediaplayer.dir/DependInfo.cmake"
  "/root/repo/build/src/printer/CMakeFiles/trader_printer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
