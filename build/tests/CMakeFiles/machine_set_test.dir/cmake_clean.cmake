file(REMOVE_RECURSE
  "CMakeFiles/machine_set_test.dir/machine_set_test.cpp.o"
  "CMakeFiles/machine_set_test.dir/machine_set_test.cpp.o.d"
  "machine_set_test"
  "machine_set_test.pdb"
  "machine_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
