file(REMOVE_RECURSE
  "CMakeFiles/observation_test.dir/observation_test.cpp.o"
  "CMakeFiles/observation_test.dir/observation_test.cpp.o.d"
  "observation_test"
  "observation_test.pdb"
  "observation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
