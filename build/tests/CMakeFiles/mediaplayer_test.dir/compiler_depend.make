# Empty compiler generated dependencies file for mediaplayer_test.
# This may be replaced when dependencies are built.
