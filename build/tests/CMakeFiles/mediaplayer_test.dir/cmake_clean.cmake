file(REMOVE_RECURSE
  "CMakeFiles/mediaplayer_test.dir/mediaplayer_test.cpp.o"
  "CMakeFiles/mediaplayer_test.dir/mediaplayer_test.cpp.o.d"
  "mediaplayer_test"
  "mediaplayer_test.pdb"
  "mediaplayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediaplayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
