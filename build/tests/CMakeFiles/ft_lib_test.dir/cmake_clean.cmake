file(REMOVE_RECURSE
  "CMakeFiles/ft_lib_test.dir/ft_lib_test.cpp.o"
  "CMakeFiles/ft_lib_test.dir/ft_lib_test.cpp.o.d"
  "ft_lib_test"
  "ft_lib_test.pdb"
  "ft_lib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_lib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
