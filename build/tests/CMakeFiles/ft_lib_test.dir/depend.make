# Empty dependencies file for ft_lib_test.
# This may be replaced when dependencies are built.
