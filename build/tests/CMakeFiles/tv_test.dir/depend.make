# Empty dependencies file for tv_test.
# This may be replaced when dependencies are built.
