file(REMOVE_RECURSE
  "CMakeFiles/tv_test.dir/tv_test.cpp.o"
  "CMakeFiles/tv_test.dir/tv_test.cpp.o.d"
  "tv_test"
  "tv_test.pdb"
  "tv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
