# Empty compiler generated dependencies file for devtime_test.
# This may be replaced when dependencies are built.
