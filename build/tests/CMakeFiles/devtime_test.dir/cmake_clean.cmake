file(REMOVE_RECURSE
  "CMakeFiles/devtime_test.dir/devtime_test.cpp.o"
  "CMakeFiles/devtime_test.dir/devtime_test.cpp.o.d"
  "devtime_test"
  "devtime_test.pdb"
  "devtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
