# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/statemachine_test[1]_include.cmake")
include("/root/repo/build/tests/tv_test[1]_include.cmake")
include("/root/repo/build/tests/spec_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/detection_test[1]_include.cmake")
include("/root/repo/build/tests/diagnosis_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/perception_test[1]_include.cmake")
include("/root/repo/build/tests/devtime_test[1]_include.cmake")
include("/root/repo/build/tests/mediaplayer_test[1]_include.cmake")
include("/root/repo/build/tests/observation_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/machine_set_test[1]_include.cmake")
include("/root/repo/build/tests/ft_lib_test[1]_include.cmake")
include("/root/repo/build/tests/source_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/system_soak_test[1]_include.cmake")
include("/root/repo/build/tests/impact_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
