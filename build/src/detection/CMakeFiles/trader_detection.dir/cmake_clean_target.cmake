file(REMOVE_RECURSE
  "libtrader_detection.a"
)
