# Empty dependencies file for trader_detection.
# This may be replaced when dependencies are built.
