file(REMOVE_RECURSE
  "CMakeFiles/trader_detection.dir/detectors.cpp.o"
  "CMakeFiles/trader_detection.dir/detectors.cpp.o.d"
  "CMakeFiles/trader_detection.dir/response_time.cpp.o"
  "CMakeFiles/trader_detection.dir/response_time.cpp.o.d"
  "libtrader_detection.a"
  "libtrader_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
