
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detection/detectors.cpp" "src/detection/CMakeFiles/trader_detection.dir/detectors.cpp.o" "gcc" "src/detection/CMakeFiles/trader_detection.dir/detectors.cpp.o.d"
  "/root/repo/src/detection/response_time.cpp" "src/detection/CMakeFiles/trader_detection.dir/response_time.cpp.o" "gcc" "src/detection/CMakeFiles/trader_detection.dir/response_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/observation/CMakeFiles/trader_observation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
