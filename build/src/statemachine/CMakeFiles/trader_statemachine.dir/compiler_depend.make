# Empty compiler generated dependencies file for trader_statemachine.
# This may be replaced when dependencies are built.
