file(REMOVE_RECURSE
  "CMakeFiles/trader_statemachine.dir/checker.cpp.o"
  "CMakeFiles/trader_statemachine.dir/checker.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/compiled.cpp.o"
  "CMakeFiles/trader_statemachine.dir/compiled.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/context.cpp.o"
  "CMakeFiles/trader_statemachine.dir/context.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/definition.cpp.o"
  "CMakeFiles/trader_statemachine.dir/definition.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/dot_export.cpp.o"
  "CMakeFiles/trader_statemachine.dir/dot_export.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/explorer.cpp.o"
  "CMakeFiles/trader_statemachine.dir/explorer.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/machine.cpp.o"
  "CMakeFiles/trader_statemachine.dir/machine.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/machine_set.cpp.o"
  "CMakeFiles/trader_statemachine.dir/machine_set.cpp.o.d"
  "CMakeFiles/trader_statemachine.dir/test_script.cpp.o"
  "CMakeFiles/trader_statemachine.dir/test_script.cpp.o.d"
  "libtrader_statemachine.a"
  "libtrader_statemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
