
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statemachine/checker.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/checker.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/checker.cpp.o.d"
  "/root/repo/src/statemachine/compiled.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/compiled.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/compiled.cpp.o.d"
  "/root/repo/src/statemachine/context.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/context.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/context.cpp.o.d"
  "/root/repo/src/statemachine/definition.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/definition.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/definition.cpp.o.d"
  "/root/repo/src/statemachine/dot_export.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/dot_export.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/dot_export.cpp.o.d"
  "/root/repo/src/statemachine/explorer.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/explorer.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/explorer.cpp.o.d"
  "/root/repo/src/statemachine/machine.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/machine.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/machine.cpp.o.d"
  "/root/repo/src/statemachine/machine_set.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/machine_set.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/machine_set.cpp.o.d"
  "/root/repo/src/statemachine/test_script.cpp" "src/statemachine/CMakeFiles/trader_statemachine.dir/test_script.cpp.o" "gcc" "src/statemachine/CMakeFiles/trader_statemachine.dir/test_script.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
