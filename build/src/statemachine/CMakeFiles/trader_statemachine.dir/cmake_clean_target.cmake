file(REMOVE_RECURSE
  "libtrader_statemachine.a"
)
