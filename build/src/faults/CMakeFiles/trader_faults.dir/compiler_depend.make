# Empty compiler generated dependencies file for trader_faults.
# This may be replaced when dependencies are built.
