file(REMOVE_RECURSE
  "CMakeFiles/trader_faults.dir/fault.cpp.o"
  "CMakeFiles/trader_faults.dir/fault.cpp.o.d"
  "CMakeFiles/trader_faults.dir/injector.cpp.o"
  "CMakeFiles/trader_faults.dir/injector.cpp.o.d"
  "libtrader_faults.a"
  "libtrader_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
