file(REMOVE_RECURSE
  "libtrader_faults.a"
)
