file(REMOVE_RECURSE
  "CMakeFiles/trader_devtime.dir/eaters.cpp.o"
  "CMakeFiles/trader_devtime.dir/eaters.cpp.o.d"
  "CMakeFiles/trader_devtime.dir/fmea.cpp.o"
  "CMakeFiles/trader_devtime.dir/fmea.cpp.o.d"
  "CMakeFiles/trader_devtime.dir/priowarn.cpp.o"
  "CMakeFiles/trader_devtime.dir/priowarn.cpp.o.d"
  "CMakeFiles/trader_devtime.dir/stress.cpp.o"
  "CMakeFiles/trader_devtime.dir/stress.cpp.o.d"
  "libtrader_devtime.a"
  "libtrader_devtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_devtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
