# Empty dependencies file for trader_devtime.
# This may be replaced when dependencies are built.
