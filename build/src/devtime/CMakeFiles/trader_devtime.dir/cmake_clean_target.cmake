file(REMOVE_RECURSE
  "libtrader_devtime.a"
)
