file(REMOVE_RECURSE
  "CMakeFiles/trader_tv.dir/components.cpp.o"
  "CMakeFiles/trader_tv.dir/components.cpp.o.d"
  "CMakeFiles/trader_tv.dir/control.cpp.o"
  "CMakeFiles/trader_tv.dir/control.cpp.o.d"
  "CMakeFiles/trader_tv.dir/keys.cpp.o"
  "CMakeFiles/trader_tv.dir/keys.cpp.o.d"
  "CMakeFiles/trader_tv.dir/signal.cpp.o"
  "CMakeFiles/trader_tv.dir/signal.cpp.o.d"
  "CMakeFiles/trader_tv.dir/soc.cpp.o"
  "CMakeFiles/trader_tv.dir/soc.cpp.o.d"
  "CMakeFiles/trader_tv.dir/spec_model.cpp.o"
  "CMakeFiles/trader_tv.dir/spec_model.cpp.o.d"
  "CMakeFiles/trader_tv.dir/tv_system.cpp.o"
  "CMakeFiles/trader_tv.dir/tv_system.cpp.o.d"
  "libtrader_tv.a"
  "libtrader_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
