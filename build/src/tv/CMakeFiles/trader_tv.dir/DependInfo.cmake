
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tv/components.cpp" "src/tv/CMakeFiles/trader_tv.dir/components.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/components.cpp.o.d"
  "/root/repo/src/tv/control.cpp" "src/tv/CMakeFiles/trader_tv.dir/control.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/control.cpp.o.d"
  "/root/repo/src/tv/keys.cpp" "src/tv/CMakeFiles/trader_tv.dir/keys.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/keys.cpp.o.d"
  "/root/repo/src/tv/signal.cpp" "src/tv/CMakeFiles/trader_tv.dir/signal.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/signal.cpp.o.d"
  "/root/repo/src/tv/soc.cpp" "src/tv/CMakeFiles/trader_tv.dir/soc.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/soc.cpp.o.d"
  "/root/repo/src/tv/spec_model.cpp" "src/tv/CMakeFiles/trader_tv.dir/spec_model.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/spec_model.cpp.o.d"
  "/root/repo/src/tv/tv_system.cpp" "src/tv/CMakeFiles/trader_tv.dir/tv_system.cpp.o" "gcc" "src/tv/CMakeFiles/trader_tv.dir/tv_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/trader_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/observation/CMakeFiles/trader_observation.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/trader_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
