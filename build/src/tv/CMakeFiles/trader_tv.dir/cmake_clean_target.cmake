file(REMOVE_RECURSE
  "libtrader_tv.a"
)
