# Empty compiler generated dependencies file for trader_tv.
# This may be replaced when dependencies are built.
