# Empty compiler generated dependencies file for trader_recovery.
# This may be replaced when dependencies are built.
