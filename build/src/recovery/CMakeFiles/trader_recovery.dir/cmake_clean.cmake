file(REMOVE_RECURSE
  "CMakeFiles/trader_recovery.dir/adaptive_arbiter.cpp.o"
  "CMakeFiles/trader_recovery.dir/adaptive_arbiter.cpp.o.d"
  "CMakeFiles/trader_recovery.dir/escalation.cpp.o"
  "CMakeFiles/trader_recovery.dir/escalation.cpp.o.d"
  "CMakeFiles/trader_recovery.dir/ft_lib.cpp.o"
  "CMakeFiles/trader_recovery.dir/ft_lib.cpp.o.d"
  "CMakeFiles/trader_recovery.dir/load_balancer.cpp.o"
  "CMakeFiles/trader_recovery.dir/load_balancer.cpp.o.d"
  "CMakeFiles/trader_recovery.dir/managers.cpp.o"
  "CMakeFiles/trader_recovery.dir/managers.cpp.o.d"
  "CMakeFiles/trader_recovery.dir/recoverable_unit.cpp.o"
  "CMakeFiles/trader_recovery.dir/recoverable_unit.cpp.o.d"
  "libtrader_recovery.a"
  "libtrader_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
