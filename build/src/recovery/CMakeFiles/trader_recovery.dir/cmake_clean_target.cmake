file(REMOVE_RECURSE
  "libtrader_recovery.a"
)
