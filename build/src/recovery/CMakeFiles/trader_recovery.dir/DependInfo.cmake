
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/adaptive_arbiter.cpp" "src/recovery/CMakeFiles/trader_recovery.dir/adaptive_arbiter.cpp.o" "gcc" "src/recovery/CMakeFiles/trader_recovery.dir/adaptive_arbiter.cpp.o.d"
  "/root/repo/src/recovery/escalation.cpp" "src/recovery/CMakeFiles/trader_recovery.dir/escalation.cpp.o" "gcc" "src/recovery/CMakeFiles/trader_recovery.dir/escalation.cpp.o.d"
  "/root/repo/src/recovery/ft_lib.cpp" "src/recovery/CMakeFiles/trader_recovery.dir/ft_lib.cpp.o" "gcc" "src/recovery/CMakeFiles/trader_recovery.dir/ft_lib.cpp.o.d"
  "/root/repo/src/recovery/load_balancer.cpp" "src/recovery/CMakeFiles/trader_recovery.dir/load_balancer.cpp.o" "gcc" "src/recovery/CMakeFiles/trader_recovery.dir/load_balancer.cpp.o.d"
  "/root/repo/src/recovery/managers.cpp" "src/recovery/CMakeFiles/trader_recovery.dir/managers.cpp.o" "gcc" "src/recovery/CMakeFiles/trader_recovery.dir/managers.cpp.o.d"
  "/root/repo/src/recovery/recoverable_unit.cpp" "src/recovery/CMakeFiles/trader_recovery.dir/recoverable_unit.cpp.o" "gcc" "src/recovery/CMakeFiles/trader_recovery.dir/recoverable_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tv/CMakeFiles/trader_tv.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/trader_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/observation/CMakeFiles/trader_observation.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/trader_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
