file(REMOVE_RECURSE
  "CMakeFiles/trader_mediaplayer.dir/player.cpp.o"
  "CMakeFiles/trader_mediaplayer.dir/player.cpp.o.d"
  "libtrader_mediaplayer.a"
  "libtrader_mediaplayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_mediaplayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
