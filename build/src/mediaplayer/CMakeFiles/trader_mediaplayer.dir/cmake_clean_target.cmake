file(REMOVE_RECURSE
  "libtrader_mediaplayer.a"
)
