# Empty dependencies file for trader_mediaplayer.
# This may be replaced when dependencies are built.
