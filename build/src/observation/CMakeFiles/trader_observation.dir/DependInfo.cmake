
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/observation/aspect.cpp" "src/observation/CMakeFiles/trader_observation.dir/aspect.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/aspect.cpp.o.d"
  "/root/repo/src/observation/call_stack.cpp" "src/observation/CMakeFiles/trader_observation.dir/call_stack.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/call_stack.cpp.o.d"
  "/root/repo/src/observation/coverage.cpp" "src/observation/CMakeFiles/trader_observation.dir/coverage.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/coverage.cpp.o.d"
  "/root/repo/src/observation/probes.cpp" "src/observation/CMakeFiles/trader_observation.dir/probes.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/probes.cpp.o.d"
  "/root/repo/src/observation/resource_monitor.cpp" "src/observation/CMakeFiles/trader_observation.dir/resource_monitor.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/resource_monitor.cpp.o.d"
  "/root/repo/src/observation/scenario.cpp" "src/observation/CMakeFiles/trader_observation.dir/scenario.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/scenario.cpp.o.d"
  "/root/repo/src/observation/soc_trace.cpp" "src/observation/CMakeFiles/trader_observation.dir/soc_trace.cpp.o" "gcc" "src/observation/CMakeFiles/trader_observation.dir/soc_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
