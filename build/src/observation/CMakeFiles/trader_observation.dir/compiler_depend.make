# Empty compiler generated dependencies file for trader_observation.
# This may be replaced when dependencies are built.
