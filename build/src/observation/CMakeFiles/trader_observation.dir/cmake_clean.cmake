file(REMOVE_RECURSE
  "CMakeFiles/trader_observation.dir/aspect.cpp.o"
  "CMakeFiles/trader_observation.dir/aspect.cpp.o.d"
  "CMakeFiles/trader_observation.dir/call_stack.cpp.o"
  "CMakeFiles/trader_observation.dir/call_stack.cpp.o.d"
  "CMakeFiles/trader_observation.dir/coverage.cpp.o"
  "CMakeFiles/trader_observation.dir/coverage.cpp.o.d"
  "CMakeFiles/trader_observation.dir/probes.cpp.o"
  "CMakeFiles/trader_observation.dir/probes.cpp.o.d"
  "CMakeFiles/trader_observation.dir/resource_monitor.cpp.o"
  "CMakeFiles/trader_observation.dir/resource_monitor.cpp.o.d"
  "CMakeFiles/trader_observation.dir/scenario.cpp.o"
  "CMakeFiles/trader_observation.dir/scenario.cpp.o.d"
  "CMakeFiles/trader_observation.dir/soc_trace.cpp.o"
  "CMakeFiles/trader_observation.dir/soc_trace.cpp.o.d"
  "libtrader_observation.a"
  "libtrader_observation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_observation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
