file(REMOVE_RECURSE
  "libtrader_observation.a"
)
