# Empty dependencies file for trader_runtime.
# This may be replaced when dependencies are built.
