file(REMOVE_RECURSE
  "CMakeFiles/trader_runtime.dir/channel.cpp.o"
  "CMakeFiles/trader_runtime.dir/channel.cpp.o.d"
  "CMakeFiles/trader_runtime.dir/event.cpp.o"
  "CMakeFiles/trader_runtime.dir/event.cpp.o.d"
  "CMakeFiles/trader_runtime.dir/event_bus.cpp.o"
  "CMakeFiles/trader_runtime.dir/event_bus.cpp.o.d"
  "CMakeFiles/trader_runtime.dir/rng.cpp.o"
  "CMakeFiles/trader_runtime.dir/rng.cpp.o.d"
  "CMakeFiles/trader_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/trader_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/trader_runtime.dir/trace_log.cpp.o"
  "CMakeFiles/trader_runtime.dir/trace_log.cpp.o.d"
  "libtrader_runtime.a"
  "libtrader_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
