file(REMOVE_RECURSE
  "libtrader_runtime.a"
)
