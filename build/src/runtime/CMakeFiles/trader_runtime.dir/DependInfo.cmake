
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/channel.cpp" "src/runtime/CMakeFiles/trader_runtime.dir/channel.cpp.o" "gcc" "src/runtime/CMakeFiles/trader_runtime.dir/channel.cpp.o.d"
  "/root/repo/src/runtime/event.cpp" "src/runtime/CMakeFiles/trader_runtime.dir/event.cpp.o" "gcc" "src/runtime/CMakeFiles/trader_runtime.dir/event.cpp.o.d"
  "/root/repo/src/runtime/event_bus.cpp" "src/runtime/CMakeFiles/trader_runtime.dir/event_bus.cpp.o" "gcc" "src/runtime/CMakeFiles/trader_runtime.dir/event_bus.cpp.o.d"
  "/root/repo/src/runtime/rng.cpp" "src/runtime/CMakeFiles/trader_runtime.dir/rng.cpp.o" "gcc" "src/runtime/CMakeFiles/trader_runtime.dir/rng.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/trader_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/trader_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/trace_log.cpp" "src/runtime/CMakeFiles/trader_runtime.dir/trace_log.cpp.o" "gcc" "src/runtime/CMakeFiles/trader_runtime.dir/trace_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
