file(REMOVE_RECURSE
  "CMakeFiles/trader_printer.dir/printer.cpp.o"
  "CMakeFiles/trader_printer.dir/printer.cpp.o.d"
  "libtrader_printer.a"
  "libtrader_printer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
