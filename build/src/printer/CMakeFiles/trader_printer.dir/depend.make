# Empty dependencies file for trader_printer.
# This may be replaced when dependencies are built.
