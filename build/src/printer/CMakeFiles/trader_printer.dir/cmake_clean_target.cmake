file(REMOVE_RECURSE
  "libtrader_printer.a"
)
