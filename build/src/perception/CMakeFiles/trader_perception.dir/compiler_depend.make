# Empty compiler generated dependencies file for trader_perception.
# This may be replaced when dependencies are built.
