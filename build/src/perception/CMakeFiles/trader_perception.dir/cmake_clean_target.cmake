file(REMOVE_RECURSE
  "libtrader_perception.a"
)
