file(REMOVE_RECURSE
  "CMakeFiles/trader_perception.dir/impact.cpp.o"
  "CMakeFiles/trader_perception.dir/impact.cpp.o.d"
  "CMakeFiles/trader_perception.dir/perception.cpp.o"
  "CMakeFiles/trader_perception.dir/perception.cpp.o.d"
  "libtrader_perception.a"
  "libtrader_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
