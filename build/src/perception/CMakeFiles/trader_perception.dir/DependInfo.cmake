
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/impact.cpp" "src/perception/CMakeFiles/trader_perception.dir/impact.cpp.o" "gcc" "src/perception/CMakeFiles/trader_perception.dir/impact.cpp.o.d"
  "/root/repo/src/perception/perception.cpp" "src/perception/CMakeFiles/trader_perception.dir/perception.cpp.o" "gcc" "src/perception/CMakeFiles/trader_perception.dir/perception.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trader_core.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/trader_statemachine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
