file(REMOVE_RECURSE
  "CMakeFiles/trader_core.dir/comparator.cpp.o"
  "CMakeFiles/trader_core.dir/comparator.cpp.o.d"
  "CMakeFiles/trader_core.dir/configuration.cpp.o"
  "CMakeFiles/trader_core.dir/configuration.cpp.o.d"
  "CMakeFiles/trader_core.dir/fleet.cpp.o"
  "CMakeFiles/trader_core.dir/fleet.cpp.o.d"
  "CMakeFiles/trader_core.dir/model_executor.cpp.o"
  "CMakeFiles/trader_core.dir/model_executor.cpp.o.d"
  "CMakeFiles/trader_core.dir/model_impl.cpp.o"
  "CMakeFiles/trader_core.dir/model_impl.cpp.o.d"
  "CMakeFiles/trader_core.dir/monitor.cpp.o"
  "CMakeFiles/trader_core.dir/monitor.cpp.o.d"
  "CMakeFiles/trader_core.dir/observers.cpp.o"
  "CMakeFiles/trader_core.dir/observers.cpp.o.d"
  "libtrader_core.a"
  "libtrader_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
