file(REMOVE_RECURSE
  "libtrader_core.a"
)
