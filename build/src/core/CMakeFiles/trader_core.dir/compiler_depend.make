# Empty compiler generated dependencies file for trader_core.
# This may be replaced when dependencies are built.
