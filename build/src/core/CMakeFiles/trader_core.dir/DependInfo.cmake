
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparator.cpp" "src/core/CMakeFiles/trader_core.dir/comparator.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/comparator.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "src/core/CMakeFiles/trader_core.dir/configuration.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/configuration.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/core/CMakeFiles/trader_core.dir/fleet.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/fleet.cpp.o.d"
  "/root/repo/src/core/model_executor.cpp" "src/core/CMakeFiles/trader_core.dir/model_executor.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/model_executor.cpp.o.d"
  "/root/repo/src/core/model_impl.cpp" "src/core/CMakeFiles/trader_core.dir/model_impl.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/model_impl.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/trader_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/observers.cpp" "src/core/CMakeFiles/trader_core.dir/observers.cpp.o" "gcc" "src/core/CMakeFiles/trader_core.dir/observers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/trader_statemachine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
