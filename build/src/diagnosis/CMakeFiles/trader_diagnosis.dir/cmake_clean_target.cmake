file(REMOVE_RECURSE
  "libtrader_diagnosis.a"
)
