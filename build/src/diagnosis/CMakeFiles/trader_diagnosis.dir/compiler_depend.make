# Empty compiler generated dependencies file for trader_diagnosis.
# This may be replaced when dependencies are built.
