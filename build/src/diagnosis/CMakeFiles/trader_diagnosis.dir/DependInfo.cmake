
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnosis/component_ranker.cpp" "src/diagnosis/CMakeFiles/trader_diagnosis.dir/component_ranker.cpp.o" "gcc" "src/diagnosis/CMakeFiles/trader_diagnosis.dir/component_ranker.cpp.o.d"
  "/root/repo/src/diagnosis/spectrum.cpp" "src/diagnosis/CMakeFiles/trader_diagnosis.dir/spectrum.cpp.o" "gcc" "src/diagnosis/CMakeFiles/trader_diagnosis.dir/spectrum.cpp.o.d"
  "/root/repo/src/diagnosis/synthetic_program.cpp" "src/diagnosis/CMakeFiles/trader_diagnosis.dir/synthetic_program.cpp.o" "gcc" "src/diagnosis/CMakeFiles/trader_diagnosis.dir/synthetic_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/trader_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/observation/CMakeFiles/trader_observation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
