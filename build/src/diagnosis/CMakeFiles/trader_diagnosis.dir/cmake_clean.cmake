file(REMOVE_RECURSE
  "CMakeFiles/trader_diagnosis.dir/component_ranker.cpp.o"
  "CMakeFiles/trader_diagnosis.dir/component_ranker.cpp.o.d"
  "CMakeFiles/trader_diagnosis.dir/spectrum.cpp.o"
  "CMakeFiles/trader_diagnosis.dir/spectrum.cpp.o.d"
  "CMakeFiles/trader_diagnosis.dir/synthetic_program.cpp.o"
  "CMakeFiles/trader_diagnosis.dir/synthetic_program.cpp.o.d"
  "libtrader_diagnosis.a"
  "libtrader_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trader_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
