file(REMOVE_RECURSE
  "CMakeFiles/printer_awareness.dir/printer_awareness.cpp.o"
  "CMakeFiles/printer_awareness.dir/printer_awareness.cpp.o.d"
  "printer_awareness"
  "printer_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printer_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
