# Empty compiler generated dependencies file for printer_awareness.
# This may be replaced when dependencies are built.
