file(REMOVE_RECURSE
  "CMakeFiles/escalating_recovery.dir/escalating_recovery.cpp.o"
  "CMakeFiles/escalating_recovery.dir/escalating_recovery.cpp.o.d"
  "escalating_recovery"
  "escalating_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escalating_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
