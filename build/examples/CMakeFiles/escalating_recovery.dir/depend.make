# Empty dependencies file for escalating_recovery.
# This may be replaced when dependencies are built.
