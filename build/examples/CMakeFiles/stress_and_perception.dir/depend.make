# Empty dependencies file for stress_and_perception.
# This may be replaced when dependencies are built.
