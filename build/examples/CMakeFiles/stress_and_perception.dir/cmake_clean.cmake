file(REMOVE_RECURSE
  "CMakeFiles/stress_and_perception.dir/stress_and_perception.cpp.o"
  "CMakeFiles/stress_and_perception.dir/stress_and_perception.cpp.o.d"
  "stress_and_perception"
  "stress_and_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_and_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
