file(REMOVE_RECURSE
  "CMakeFiles/teletext_diagnosis.dir/teletext_diagnosis.cpp.o"
  "CMakeFiles/teletext_diagnosis.dir/teletext_diagnosis.cpp.o.d"
  "teletext_diagnosis"
  "teletext_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teletext_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
