# Empty compiler generated dependencies file for teletext_diagnosis.
# This may be replaced when dependencies are built.
