file(REMOVE_RECURSE
  "CMakeFiles/mediaplayer_awareness.dir/mediaplayer_awareness.cpp.o"
  "CMakeFiles/mediaplayer_awareness.dir/mediaplayer_awareness.cpp.o.d"
  "mediaplayer_awareness"
  "mediaplayer_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediaplayer_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
