# Empty compiler generated dependencies file for mediaplayer_awareness.
# This may be replaced when dependencies are built.
