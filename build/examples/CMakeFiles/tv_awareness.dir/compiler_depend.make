# Empty compiler generated dependencies file for tv_awareness.
# This may be replaced when dependencies are built.
