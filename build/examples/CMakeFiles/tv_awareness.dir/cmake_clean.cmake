file(REMOVE_RECURSE
  "CMakeFiles/tv_awareness.dir/tv_awareness.cpp.o"
  "CMakeFiles/tv_awareness.dir/tv_awareness.cpp.o.d"
  "tv_awareness"
  "tv_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
