#include "tv/tv_system.hpp"

#include <algorithm>

namespace trader::tv {

using faults::FaultKind;

TvSystem::TvSystem(runtime::Scheduler& sched, runtime::EventBus& bus,
                   faults::FaultInjector& injector, TvConfig config)
    : sched_(sched),
      bus_(bus),
      injector_(injector),
      config_(config),
      rng_(config.seed),
      lineup_(ChannelLineup::standard_lineup(config.channel_count, config.seed ^ 0x77)),
      control_(lineup_, config.control),
      cpu0_("cpu0", config.cpu0_capacity),
      cpu1_("cpu1", config.cpu1_capacity),
      bus_res_(config.bus_bandwidth),
      arbiter_(config.arbiter_bandwidth),
      video_buffer_("video", 4.0) {
  arbiter_.add_port("video", 3);
  arbiter_.add_port("gfx", 2);
  arbiter_.add_port("sys", 1);
  probes_.set_range("audio.volume", 0, 100);
  probes_.set_range("cpu0.load", 0, 1.5);
  probes_.set_range("video_buffer.level", 0, 4.0);
  video_buffer_.push(2.0);  // prefill
}

void TvSystem::start() {
  sched_.schedule_every(config_.frame_period, [this] { frame_tick(); });
}

void TvSystem::publish_input(Key key) {
  runtime::Event ev;
  ev.topic = "tv.input";
  ev.name = "key";
  ev.fields["key"] = std::string(to_string(key));
  ev.timestamp = sched_.now();
  bus_.publish(ev);
}

void TvSystem::press(Key key) {
  publish_input(key);
  route(control_.handle_key(key, sched_.now()));
  publish_outputs();
}

void TvSystem::enter_channel(int channel) {
  const std::string digits = std::to_string(channel);
  for (char c : digits) press(digit_key(c - '0'));
}

double TvSystem::bad_signal_penalty() const {
  const auto spec = injector_.active_spec(FaultKind::kBadSignal, "tuner", sched_.now());
  if (!spec) return 0.0;
  return spec->intensity;
}

void TvSystem::route(const std::vector<Command>& cmds) {
  for (const auto& c : cmds) apply(c);
}

void TvSystem::apply(const Command& c) {
  const runtime::SimTime now = sched_.now();
  const std::string channel_name = "cmd." + c.component;

  if (crashed_.count(c.component) > 0) return;  // dead components ignore input
  if (const auto stuck = injector_.active_spec(FaultKind::kStuckComponent, c.component, now)) {
    // The swallowed command is a genuine manifestation; without a
    // record the ground-truth log under-reports stuck faults.
    injector_.record(*stuck, now, c.component + "." + c.action + " swallowed");
    return;
  }
  if (injector_.fires(FaultKind::kMessageLoss, channel_name, now,
                      c.component + "." + c.action + " lost")) {
    return;
  }

  // Message corruption: perturb the first integer argument. Commands
  // without an integer payload cannot be corrupted in transit, so the
  // manifestation check (fires + ground-truth record) must only run
  // when there is something to corrupt.
  std::map<std::string, runtime::Value> args = c.args;
  auto corruptible = args.end();
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (std::get_if<std::int64_t>(&it->second) != nullptr) {
      corruptible = it;
      break;
    }
  }
  if (corruptible != args.end() &&
      injector_.fires(FaultKind::kMessageCorruption, channel_name, now,
                      c.component + "." + c.action + " corrupted")) {
    auto* i = std::get_if<std::int64_t>(&corruptible->second);
    *i = *i ^ 0x15;  // bit flips in transit
  }

  auto arg_int = [&](const std::string& key, std::int64_t dflt) {
    auto it = args.find(key);
    if (it == args.end()) return dflt;
    if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i;
    return dflt;
  };
  auto arg_bool = [&](const std::string& key, bool dflt) {
    auto it = args.find(key);
    if (it == args.end()) return dflt;
    if (const auto* b = std::get_if<bool>(&it->second)) return *b;
    return dflt;
  };

  if (c.component == "tuner") {
    if (c.action == "set_channel") tuner_.set_channel(static_cast<int>(arg_int("channel", 1)), lineup_);
  } else if (c.component == "audio") {
    if (c.action == "set_volume") {
      audio_.set_volume(static_cast<int>(arg_int("volume", 0)));
      probes_.update("audio.volume", std::int64_t{audio_.volume()}, now);
    } else if (c.action == "set_mute") {
      audio_.set_mute(arg_bool("mute", false));
    }
  } else if (c.component == "teletext") {
    if (c.action == "show") {
      teletext_.show();
    } else if (c.action == "hide") {
      teletext_.hide();
    } else if (c.action == "channel_change") {
      teletext_.on_channel_change(static_cast<int>(arg_int("channel", 1)));
    } else if (c.action == "select_page") {
      teletext_.select_page(static_cast<int>(arg_int("page", 100)));
    }
  } else if (c.component == "osd") {
    if (c.action == "volume") {
      osd_.show_volume(now);
    } else if (c.action == "banner") {
      osd_.show_banner(now);
    } else if (c.action == "show_menu") {
      osd_.show_menu();
    } else if (c.action == "hide_menu") {
      osd_.hide_menu();
    } else if (c.action == "clear") {
      osd_.clear();
    }
  } else if (c.component == "swivel") {
    if (c.action == "rotate") swivel_.rotate(static_cast<int>(arg_int("delta", 0)));
  } else if (c.component == "avswitch") {
    if (c.action == "select") {
      const auto raw = arg_int("source", 0);
      if (raw >= 0 && raw <= 2) av_.select(static_cast<AvSource>(raw));
    }
  }
}

void TvSystem::frame_tick() {
  const runtime::SimTime now = sched_.now();
  ++ticks_;

  // --- Crash faults manifest -------------------------------------------
  for (const char* comp : {"teletext", "audio", "swivel", "osd", "avswitch"}) {
    if (injector_.is_active(FaultKind::kCrash, comp, now) && crashed_.count(comp) == 0) {
      crashed_.insert(comp);
      injector_.record(
          faults::FaultSpec{FaultKind::kCrash, comp, now, 0, 1.0, {}}, now, "component died");
    }
  }

  // --- Memory corruption: overwrite the control unit's volume belief ---
  if (injector_.is_active(FaultKind::kMemoryCorruption, "control.volume", now)) {
    if (!corruption_applied_) {
      corruption_applied_ = true;
      const int bogus = 128 + static_cast<int>(rng_.uniform_int(0, 127));
      control_.corrupt_volume(bogus);  // out-of-range write
      probes_.update("audio.volume", std::int64_t{bogus}, now);  // range probe sees it
      injector_.record(
          faults::FaultSpec{FaultKind::kMemoryCorruption, "control.volume", now, 0, 1.0, {}},
          now, "volume belief overwritten with " + std::to_string(bogus));
    }
  } else {
    corruption_applied_ = false;
  }

  // --- Mode-desync fault: silently flip the teletext engine's channel --
  if (injector_.is_active(FaultKind::kModeDesync, "teletext", now)) {
    if (!desync_applied_) {
      desync_applied_ = true;
      teletext_.on_channel_change(tuner_.channel() + 1);
      injector_.record(faults::FaultSpec{FaultKind::kModeDesync, "teletext", now, 0, 1.0, {}},
                       now, "teletext channel belief flipped");
    }
  } else {
    desync_applied_ = false;
  }

  // --- Housekeeping ------------------------------------------------------
  osd_.tick(now);
  const bool swivel_stuck =
      injector_.is_active(FaultKind::kStuckComponent, "swivel", now) || crashed_.count("swivel");
  swivel_.tick(config_.frame_period, swivel_stuck);
  route(control_.tick(now));

  const bool powered = control_.powered();
  const bool deadlocked = injector_.is_active(FaultKind::kDeadlock, "av", now);

  // --- Streaming pipeline -------------------------------------------------
  double frame_quality = 0.0;
  if (powered && !deadlocked) {
    const bool on_antenna = av_.source() == AvSource::kAntenna;
    StreamUnit unit;
    double cost = config_.decoder_base_cost;
    if (on_antenna) {
      unit = lineup_.sample(tuner_.channel(), now, bad_signal_penalty());
      const ChannelInfo* info = lineup_.valid(tuner_.channel())
                                    ? &lineup_.info(tuner_.channel())
                                    : nullptr;
      // Decode cost: base × standard factor + error-correction load that
      // grows as signal quality drops (§4.5: "intensive error correction
      // on a bad input signal" causes overload).
      if (info != nullptr) cost *= decode_cost_factor(info->standard);
      cost += config_.error_correction_gain * (1.0 - unit.quality);
    } else {
      // External feed: clean digital input, cheaper to present, no
      // broadcast error correction.
      unit.channel = tuner_.channel();
      unit.quality = source_quality(av_.source());
      unit.time = now;
      cost *= 0.8;
    }
    if (unit.coding_deviation) {
      ++stats_.coding_deviations;
      if (config_.robust_decoder) {
        cost *= 1.5;  // the tolerant path is slower but keeps decoding
      } else {
        glitch_ticks_ = config_.strict_resync_ticks;  // lost sync
      }
    }
    if (control_.screen() == Screen::kDual) cost += config_.dual_extra_cost;
    if (const auto f = injector_.active_spec(FaultKind::kTaskOverrun, "decoder", now)) {
      cost *= 1.0 + 2.0 * f->intensity;
    }

    Processor& dec_cpu = decoder_cpu_ == 0 ? cpu0_ : cpu1_;
    Processor& other_cpu = decoder_cpu_ == 0 ? cpu1_ : cpu0_;
    dec_cpu.add_task("decoder", cost, 2);
    other_cpu.remove_task("decoder");
    cpu0_.add_task("audio", crashed_.count("audio") ? 0.0 : config_.audio_task_cost, 3);
    cpu1_.add_task("teletext",
                   (teletext_.mode() != TeletextEngine::Mode::kOff && !crashed_.count("teletext"))
                       ? config_.teletext_task_cost
                       : 0.0,
                   1);

    cpu0_.service();
    cpu1_.service();
    const double dec_fraction = dec_cpu.last_fraction("decoder");

    // Memory traffic proportional to decode work actually performed.
    arbiter_.request("video", cost * dec_fraction * config_.video_mem_per_work);
    arbiter_.request("gfx", osd_.active() != OsdManager::Osd::kNone ? 20.0 : 4.0);
    arbiter_.request("sys", 10.0);
    arbiter_.service();
    const double mem_fraction = arbiter_.last_fraction("video");

    bus_res_.request("decoder", cost * 0.5);
    bus_res_.request("gfx", 8.0);
    bus_res_.service();

    // Produced fraction of a frame this tick; a strict decoder that lost
    // sync produces nothing while it hunts for the next sync point.
    double produced = dec_fraction * mem_fraction;
    if (glitch_ticks_ > 0) {
      --glitch_ticks_;
      produced = 0.0;
    }
    video_buffer_.push(produced);
    const double displayed = video_buffer_.pop(1.0);

    ++stats_.frames_total;
    if (displayed < 0.999) {
      ++stats_.frames_dropped;
      frame_quality = 0.0;
    } else {
      frame_quality = unit.quality * std::min(1.0, produced + 0.2);
    }
    stats_.quality_sum += frame_quality;

    // Teletext acquisition runs when the engine is on and the *tuned*
    // channel carries teletext (the engine may believe otherwise).
    if (!crashed_.count("teletext") && on_antenna) {
      const bool carries = lineup_.valid(tuner_.channel()) && lineup_.info(tuner_.channel()).has_teletext;
      teletext_.tick_acquisition(carries, tuner_.channel());
    }
  } else if (powered && deadlocked) {
    ++stats_.frames_total;
    ++stats_.frames_dropped;
    video_buffer_.pop(1.0);  // display starves
  }

  last_quality_ = frame_quality;
  recent_.push_back(frame_quality);
  if (recent_.size() > 256) recent_.erase(recent_.begin());

  // --- Probes --------------------------------------------------------------
  probes_.update("cpu0.load", cpu0_.load(), now);
  probes_.update("cpu1.load", cpu1_.load(), now);
  probes_.update("video_buffer.level", video_buffer_.level(), now);
  probes_.update("arbiter.video.fraction", arbiter_.last_fraction("video"), now);
  probes_.update("frame.quality", frame_quality, now);

  publish_outputs();
}

std::string TvSystem::screen_output() const {
  if (!control_.powered()) return "off";
  if (osd_.active() == OsdManager::Osd::kMenu) return "menu";
  if (teletext_.mode() == TeletextEngine::Mode::kVisible) return "teletext";
  if (control_.screen() == Screen::kDual) return "dual";
  return "video";
}

int TvSystem::sound_output() const {
  if (!control_.powered()) return 0;
  return audio_.sound_level();
}

int TvSystem::displayed_channel() const { return tuner_.channel(); }

double TvSystem::recent_quality(std::size_t n) const {
  if (recent_.empty()) return 0.0;
  const std::size_t take = std::min(n, recent_.size());
  double sum = 0.0;
  for (std::size_t i = recent_.size() - take; i < recent_.size(); ++i) sum += recent_[i];
  return sum / static_cast<double>(take);
}

bool TvSystem::teletext_content_ok() const {
  if (teletext_.mode() == TeletextEngine::Mode::kOff) return true;
  return teletext_.synced_channel() == tuner_.channel();
}

std::map<std::string, runtime::Value> TvSystem::mode_snapshot() const {
  std::map<std::string, runtime::Value> m;
  m["control.powered"] = control_.powered();
  m["control.screen"] = std::string(control_.screen_name());
  m["control.channel"] = std::int64_t{control_.channel()};
  m["control.volume"] = std::int64_t{control_.volume()};
  m["control.muted"] = control_.muted();
  m["tuner.channel"] = std::int64_t{tuner_.channel()};
  m["tuner.locked"] = tuner_.locked();
  m["audio.volume"] = std::int64_t{audio_.volume()};
  m["audio.muted"] = audio_.muted();
  m["teletext.mode"] = std::string(to_string(teletext_.mode()));
  m["teletext.synced_channel"] = std::int64_t{teletext_.synced_channel()};
  m["osd.active"] = std::string(to_string(osd_.active()));
  m["control.source"] = std::string(to_string(control_.source()));
  m["avswitch.source"] = std::string(to_string(av_.source()));
  return m;
}

void TvSystem::republish_outputs() {
  last_published_.clear();
  publish_outputs();
}

void TvSystem::publish_outputs() {
  const runtime::SimTime now = sched_.now();
  std::map<std::string, runtime::Value> outs;
  outs["sound_level"] = std::int64_t{sound_output()};
  outs["screen_state"] = screen_output();
  outs["channel"] = std::int64_t{displayed_channel()};
  outs["osd"] = std::string(to_string(osd_.active()));
  outs["ttx_page"] = std::int64_t{teletext_.current_page()};
  outs["swivel_pos"] = std::int64_t{swivel_.position()};
  outs["powered"] = control_.powered();
  outs["source"] = std::string(to_string(av_.source()));

  for (const auto& [name, value] : outs) {
    auto it = last_published_.find(name);
    if (it != last_published_.end() && runtime::deviation(it->second, value) == 0.0) continue;
    last_published_[name] = value;
    runtime::Event ev;
    ev.topic = "tv.output";
    ev.name = name;
    ev.fields["value"] = value;
    ev.timestamp = now;
    bus_.publish(ev);
  }

  // Continuous frame-quality stream (every tick, not change-driven).
  runtime::Event fq;
  fq.topic = "tv.frame";
  fq.name = "frame";
  fq.fields["quality"] = last_quality_;
  fq.timestamp = now;
  bus_.publish(fq);
}

void TvSystem::restart_component(const std::string& name) {
  crashed_.erase(name);
  const runtime::SimTime now = sched_.now();
  if (name == "teletext") {
    teletext_ = TeletextEngine{};
    // Replay control beliefs (the recovery manager's state restoration).
    teletext_.on_channel_change(control_.channel());
    if (control_.screen() == Screen::kTeletext) teletext_.show();
  } else if (name == "audio") {
    audio_ = AudioPipeline{};
    audio_.set_volume(control_.volume());
    audio_.set_mute(control_.muted());
  } else if (name == "osd") {
    osd_ = OsdManager{};
    if (control_.screen() == Screen::kMenu) osd_.show_menu();
  } else if (name == "swivel") {
    swivel_ = Swivel{};
  } else if (name == "avswitch") {
    av_ = AvSwitch{};
    av_.select(control_.source());
  }
  probes_.update("restart." + name, std::int64_t{1}, now);
}

void TvSystem::set_decoder_cpu(int cpu) {
  decoder_cpu_ = cpu == 0 ? 0 : 1;
}

std::vector<std::pair<std::string, std::string>> TvSystem::wait_edges() const {
  std::vector<std::pair<std::string, std::string>> edges;
  if (injector_.is_active(FaultKind::kDeadlock, "av", sched_.now())) {
    edges.emplace_back("decoder", "audio");
    edges.emplace_back("audio", "decoder");
  }
  return edges;
}

}  // namespace trader::tv
