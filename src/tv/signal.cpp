#include "tv/signal.hpp"

#include <algorithm>
#include <stdexcept>

namespace trader::tv {

const char* to_string(CodingStandard s) {
  switch (s) {
    case CodingStandard::kAnalog:
      return "analog";
    case CodingStandard::kMpeg2:
      return "mpeg2";
    case CodingStandard::kH264:
      return "h264";
  }
  return "?";
}

double decode_cost_factor(CodingStandard s) {
  switch (s) {
    case CodingStandard::kAnalog:
      return 1.0;
    case CodingStandard::kMpeg2:
      return 1.6;
    case CodingStandard::kH264:
      return 2.4;
  }
  return 1.0;
}

ChannelLineup ChannelLineup::standard_lineup(int n, std::uint64_t seed) {
  ChannelLineup lineup{runtime::Rng(seed)};
  for (int i = 1; i <= n; ++i) {
    ChannelInfo info;
    info.number = i;
    info.name = "CH" + std::to_string(i);
    info.standard = (i % 3 == 0)   ? CodingStandard::kAnalog
                    : (i % 3 == 1) ? CodingStandard::kMpeg2
                                   : CodingStandard::kH264;
    info.base_quality = 0.9 + 0.08 * ((i * 7) % 2);
    info.deviation_rate = (i % 5 == 0) ? 0.02 : 0.0;
    info.has_teletext = (i % 4 != 3);
    lineup.add(std::move(info));
  }
  return lineup;
}

bool ChannelLineup::valid(int number) const {
  return std::any_of(channels_.begin(), channels_.end(),
                     [&](const ChannelInfo& c) { return c.number == number; });
}

const ChannelInfo& ChannelLineup::info(int number) const {
  for (const auto& c : channels_) {
    if (c.number == number) return c;
  }
  throw std::out_of_range("no such channel: " + std::to_string(number));
}

ChannelInfo& ChannelLineup::info_mut(int number) {
  for (auto& c : channels_) {
    if (c.number == number) return c;
  }
  throw std::out_of_range("no such channel: " + std::to_string(number));
}

int ChannelLineup::next(int number, int direction) const {
  if (channels_.empty()) return number;
  // Channels are not necessarily dense; walk the sorted set of numbers.
  std::vector<int> nums;
  nums.reserve(channels_.size());
  for (const auto& c : channels_) nums.push_back(c.number);
  std::sort(nums.begin(), nums.end());
  auto it = std::find(nums.begin(), nums.end(), number);
  if (it == nums.end()) return nums.front();
  if (direction >= 0) {
    ++it;
    return it == nums.end() ? nums.front() : *it;
  }
  if (it == nums.begin()) return nums.back();
  return *(--it);
}

StreamUnit ChannelLineup::sample(int channel, runtime::SimTime now, double quality_penalty) {
  StreamUnit unit;
  unit.channel = channel;
  unit.time = now;
  if (!valid(channel)) {
    unit.quality = 0.0;
    return unit;
  }
  const ChannelInfo& c = info(channel);
  // Small deterministic ripple around base quality, then the external
  // fault penalty.
  const double ripple = 0.02 * rng_.uniform(-1.0, 1.0);
  unit.quality = std::clamp(c.base_quality + ripple - quality_penalty, 0.0, 1.0);
  unit.coding_deviation = rng_.bernoulli(c.deviation_rate);
  return unit;
}

}  // namespace trader::tv
