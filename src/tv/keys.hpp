// Remote-control keys — the TV's user input alphabet (§2, §4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace trader::tv {

/// Keys on the simulated remote control.
enum class Key : std::uint8_t {
  kPower,
  kDigit0,
  kDigit1,
  kDigit2,
  kDigit3,
  kDigit4,
  kDigit5,
  kDigit6,
  kDigit7,
  kDigit8,
  kDigit9,
  kChannelUp,
  kChannelDown,
  kVolumeUp,
  kVolumeDown,
  kMute,
  kTeletext,
  kDualScreen,
  kMenu,
  kOk,
  kBack,
  kSleep,
  kSwivelLeft,
  kSwivelRight,
  kChildLock,
  kSource,  ///< Cycle the AV input (antenna -> hdmi -> usb).
};

/// Canonical name, e.g. "volume_up".
const char* to_string(Key k);

/// Parse a canonical name back into a key.
std::optional<Key> key_from_string(const std::string& name);

/// Digit value for kDigit0..kDigit9, std::nullopt otherwise.
std::optional<int> digit_of(Key k);

/// Key for a digit value 0..9.
Key digit_key(int value);

}  // namespace trader::tv
