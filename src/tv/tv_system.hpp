// TvSystem: the complete simulated television (the SUO).
//
// Wires the control unit, the components, and the SoC resources under
// the discrete-event scheduler; routes control commands over lossy
// internal channels (fault hook); runs the streaming pipeline at frame
// rate; publishes user-perceivable inputs and outputs on the event bus
// ("tv.input" / "tv.output" topics) — the signals the awareness
// framework observes (Fig. 1).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "faults/injector.hpp"
#include "observation/probes.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/components.hpp"
#include "tv/control.hpp"
#include "tv/soc.hpp"

namespace trader::tv {

/// Static configuration of the simulated set.
struct TvConfig {
  int channel_count = 40;
  runtime::SimDuration frame_period = runtime::msec(20);  ///< 50 Hz.
  double cpu0_capacity = 100.0;  ///< Work units per tick (media CPU).
  double cpu1_capacity = 60.0;   ///< Work units per tick (aux CPU).
  double bus_bandwidth = 200.0;
  double arbiter_bandwidth = 150.0;
  double decoder_base_cost = 28.0;   ///< Per tick, × standard cost factor.
  double error_correction_gain = 90.0;  ///< Extra cost × (1 - quality).
  double dual_extra_cost = 22.0;     ///< Second decode in dual screen.
  double audio_task_cost = 6.0;
  double teletext_task_cost = 4.0;
  double video_mem_per_work = 1.2;   ///< Arbiter demand per decode work unit.
  /// §2: customers expect tolerance of coding-standard deviations. A
  /// robust decoder handles a deviating stream unit at extra cost; a
  /// strict decoder loses sync and drops frames while it recovers.
  bool robust_decoder = true;
  int strict_resync_ticks = 5;  ///< Glitch length of the strict decoder.
  std::uint64_t seed = 42;
  TvControl::Config control;
};

/// End-of-run pipeline metrics.
struct PipelineStats {
  std::uint64_t frames_total = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t coding_deviations = 0;  ///< Stream units off-standard.
  double quality_sum = 0.0;

  double average_quality() const {
    return frames_total > 0 ? quality_sum / static_cast<double>(frames_total) : 0.0;
  }
  double drop_rate() const {
    return frames_total > 0
               ? static_cast<double>(frames_dropped) / static_cast<double>(frames_total)
               : 0.0;
  }
};

class TvSystem {
 public:
  TvSystem(runtime::Scheduler& sched, runtime::EventBus& bus, faults::FaultInjector& injector,
           TvConfig config = {});

  /// Begin periodic frame processing.
  void start();

  /// Press a key on the remote (publishes "tv.input", routes commands).
  void press(Key key);

  /// Convenience: press keys for each digit of `channel`.
  void enter_channel(int channel);

  // --- Component access (tests, detectors, recovery) -------------------
  const TvControl& control() const { return control_; }
  TvControl& control_mut() { return control_; }
  const Tuner& tuner() const { return tuner_; }
  const AudioPipeline& audio() const { return audio_; }
  const TeletextEngine& teletext() const { return teletext_; }
  const OsdManager& osd() const { return osd_; }
  const Swivel& swivel() const { return swivel_; }
  const AvSwitch& av_switch() const { return av_; }
  const ChannelLineup& lineup() const { return lineup_; }
  Processor& cpu(int i) { return i == 0 ? cpu0_ : cpu1_; }
  MemoryArbiter& arbiter() { return arbiter_; }
  Bus& bus_resource() { return bus_res_; }
  observation::ProbeRegistry& probes() { return probes_; }
  const PipelineStats& stats() const { return stats_; }

  // --- Actual (user-perceived) outputs ---------------------------------
  /// What is really on the screen (from component reality, not beliefs).
  std::string screen_output() const;
  /// Audible sound level right now.
  int sound_output() const;
  /// Channel whose video is displayed.
  int displayed_channel() const;
  /// Quality of the last rendered frame [0,1]; 0 when dropped/off.
  double last_frame_quality() const { return last_quality_; }
  /// Mean quality over the last `n` frames.
  double recent_quality(std::size_t n = 25) const;
  /// True when the teletext engine serves pages of the tuned channel.
  bool teletext_content_ok() const;

  // --- Internal mode snapshot (for the mode-consistency checker) -------
  std::map<std::string, runtime::Value> mode_snapshot() const;

  // --- Recovery hooks (§4.5) -------------------------------------------
  /// Components that have crashed (kCrash fault) and await restart.
  const std::set<std::string>& crashed() const { return crashed_; }
  /// Restart a component: reset it and replay the control unit's beliefs.
  void restart_component(const std::string& name);
  /// Which CPU runs the video decoder task (0 or 1).
  int decoder_cpu() const { return decoder_cpu_; }
  /// Migrate the decoder task between processors (load balancing, E6).
  void set_decoder_cpu(int cpu);

  /// Wait-for edges between components (non-empty only while a deadlock
  /// fault manifests); polled by the deadlock detector.
  std::vector<std::pair<std::string, std::string>> wait_edges() const;

  /// Number of frame ticks executed.
  std::uint64_t ticks() const { return ticks_; }

  /// Re-announce every output observable on the bus regardless of the
  /// publish-on-change filter. A reconnecting remote observer (src/ipc)
  /// calls this through the SUO server so its observation table resyncs
  /// to reality instead of waiting for the next change.
  void republish_outputs();

 private:
  void frame_tick();
  void route(const std::vector<Command>& cmds);
  void apply(const Command& c);
  void publish_outputs();
  void publish_input(Key key);
  double bad_signal_penalty() const;

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  faults::FaultInjector& injector_;
  TvConfig config_;
  runtime::Rng rng_;

  ChannelLineup lineup_;
  TvControl control_;
  Tuner tuner_;
  AudioPipeline audio_;
  TeletextEngine teletext_;
  OsdManager osd_;
  Swivel swivel_;
  AvSwitch av_;

  Processor cpu0_;
  Processor cpu1_;
  Bus bus_res_;
  MemoryArbiter arbiter_;
  StreamBuffer video_buffer_;

  observation::ProbeRegistry probes_;
  PipelineStats stats_;

  std::set<std::string> crashed_;
  int decoder_cpu_ = 0;
  double last_quality_ = 0.0;
  std::vector<double> recent_;
  std::uint64_t ticks_ = 0;
  int glitch_ticks_ = 0;  ///< Strict decoder resync countdown.
  bool desync_applied_ = false;
  bool corruption_applied_ = false;
  std::map<std::string, runtime::Value> last_published_;
};

}  // namespace trader::tv
