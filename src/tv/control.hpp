// TV control unit: turns remote-key input into component commands.
//
// This is the "real software" side of the model-to-model experiments:
// hand-written C++ with the feature interactions §4.2 warns about (dual
// screen vs teletext vs OSD, digits meaning channel or teletext page,
// child lock, sleep timer). TvControl keeps its own *belief* about
// volume/channel/screen; the belief diverges from component reality when
// a command message is lost — producing exactly the silent errors the
// awareness monitor is built to catch.
//
// Every handler is instrumented with a block hook (ControlBlock ids) so
// the diagnosis module can collect program spectra from real control
// code (§4.4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"
#include "tv/components.hpp"
#include "tv/keys.hpp"
#include "tv/signal.hpp"

namespace trader::tv {

/// A command from the control unit to a component.
struct Command {
  std::string component;  ///< "audio", "tuner", "teletext", "osd", "swivel".
  std::string action;     ///< e.g. "set_volume".
  std::map<std::string, runtime::Value> args;
};

/// Instrumentation block ids inside TvControl (for program spectra).
enum ControlBlock : int {
  kBlkPowerOn = 0,
  kBlkPowerOff,
  kBlkIgnoredOff,
  kBlkDigitEntry,
  kBlkDigitCommit,
  kBlkDigitTimeout,
  kBlkChannelUp,
  kBlkChannelDown,
  kBlkChannelBlocked,
  kBlkVolumeUp,
  kBlkVolumeDown,
  kBlkUnmuteOnVolume,
  kBlkMuteToggle,
  kBlkTtxEnter,
  kBlkTtxExit,
  kBlkTtxPage,
  kBlkTtxDigit,
  kBlkDualEnter,
  kBlkDualExit,
  kBlkDualFromTtx,
  kBlkMenuEnter,
  kBlkMenuExit,
  kBlkMenuKeySwallow,
  kBlkBack,
  kBlkSleepCycle,
  kBlkSleepExpire,
  kBlkSwivelLeft,
  kBlkSwivelRight,
  kBlkChildLockToggle,
  kBlkSourceCycle,
  kBlkSourceFromTtx,
  kBlkSourceFromDual,
  kBlkExternalSourceSwallow,
  kBlkTick,
  kControlBlockCount,
};

/// User-visible screen contents as the control unit believes them.
enum class Screen : std::uint8_t { kOff, kVideo, kDual, kTeletext, kMenu };

const char* to_string(Screen s);

class TvControl {
 public:
  struct Config {
    int volume_step = 5;
    int initial_volume = 30;
    int initial_channel = 1;
    runtime::SimDuration digit_timeout = runtime::msec(1500);
    int adult_channel_threshold = 30;  ///< Channels above need no lock? below.
  };

  explicit TvControl(const ChannelLineup& lineup);
  TvControl(const ChannelLineup& lineup, Config config);

  /// Handle a key press; returns commands to route to components.
  std::vector<Command> handle_key(Key key, runtime::SimTime now);

  /// Periodic work (digit-entry timeout, sleep-timer expiry).
  std::vector<Command> tick(runtime::SimTime now);

  // --- Belief state ----------------------------------------------------
  bool powered() const { return powered_; }
  int channel() const { return channel_; }
  int dual_channel() const { return dual_channel_; }
  int volume() const { return volume_; }
  bool muted() const { return muted_; }
  Screen screen() const { return screen_; }
  std::string screen_name() const { return to_string(screen_); }
  bool child_lock() const { return child_lock_; }
  int teletext_page() const { return ttx_page_; }
  AvSource source() const { return source_; }
  /// Sleep minutes remaining (0 = off).
  int sleep_minutes(runtime::SimTime now) const;
  /// Expected audible sound level according to beliefs.
  int expected_sound_level() const { return (!powered_ || muted_) ? 0 : volume_; }

  /// Install the instrumentation hook (may be null).
  void set_block_hook(std::function<void(int)> hook) { block_hook_ = std::move(hook); }

  /// Memory-corruption fault entry point: overwrite the volume belief.
  void corrupt_volume(int bogus) { volume_ = bogus; }

 private:
  void hit(int block) const {
    if (block_hook_) block_hook_(block);
  }
  std::vector<Command> commit_channel(int target, runtime::SimTime now);
  std::vector<Command> power_on(runtime::SimTime now);
  std::vector<Command> power_off();

  const ChannelLineup& lineup_;
  Config config_;
  std::function<void(int)> block_hook_;

  bool powered_ = false;
  int channel_;
  int dual_channel_;
  int volume_;
  bool muted_ = false;
  Screen screen_ = Screen::kOff;
  bool child_lock_ = false;
  int ttx_page_ = 100;
  AvSource source_ = AvSource::kAntenna;

  std::string digit_buffer_;
  runtime::SimTime digit_deadline_ = -1;
  runtime::SimTime sleep_deadline_ = -1;
};

}  // namespace trader::tv
