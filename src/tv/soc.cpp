#include "tv/soc.hpp"

#include <algorithm>
#include <stdexcept>

namespace trader::tv {

// ---------------------------------------------------------------- Processor

void Processor::add_task(const std::string& name, double cost, int priority) {
  tasks_[name] = TaskInfo{cost, priority, 1.0};
}

void Processor::remove_task(const std::string& name) { tasks_.erase(name); }

void Processor::set_task_cost(const std::string& name, double cost) {
  auto it = tasks_.find(name);
  if (it != tasks_.end()) it->second.cost = cost;
}

double Processor::task_cost(const std::string& name) const {
  auto it = tasks_.find(name);
  return it == tasks_.end() ? 0.0 : it->second.cost;
}

std::vector<std::string> Processor::task_names() const {
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const auto& [k, v] : tasks_) out.push_back(k);
  return out;
}

double Processor::load() const {
  double demand = 0.0;
  for (const auto& [k, t] : tasks_) demand += t.cost;
  return capacity_ > 0 ? demand / capacity_ : 0.0;
}

std::vector<ServiceGrant> Processor::service() {
  // Group by priority, high to low; share fairly within a level.
  std::map<int, std::vector<std::string>, std::greater<>> levels;
  for (const auto& [name, t] : tasks_) levels[t.priority].push_back(name);

  std::vector<ServiceGrant> grants;
  double remaining = capacity_;
  for (const auto& [prio, names] : levels) {
    double level_demand = 0.0;
    for (const auto& n : names) level_demand += tasks_[n].cost;
    const double share = (level_demand <= remaining || level_demand == 0.0)
                             ? 1.0
                             : remaining / level_demand;
    for (const auto& n : names) {
      auto& t = tasks_[n];
      const double granted = t.cost * share;
      t.last_fraction = t.cost > 0 ? share : 1.0;
      grants.push_back(ServiceGrant{n, t.cost, granted});
    }
    remaining = std::max(0.0, remaining - level_demand);
  }
  return grants;
}

double Processor::last_fraction(const std::string& name) const {
  auto it = tasks_.find(name);
  return it == tasks_.end() ? 1.0 : it->second.last_fraction;
}

// ---------------------------------------------------------------------- Bus

void Bus::request(const std::string& client, double amount) { demands_[client] += amount; }

std::vector<ServiceGrant> Bus::service() {
  double total = 0.0;
  for (const auto& [c, d] : demands_) total += d;
  const double share = (total <= bandwidth_ || total == 0.0) ? 1.0 : bandwidth_ / total;
  std::vector<ServiceGrant> grants;
  fractions_.clear();
  for (const auto& [c, d] : demands_) {
    grants.push_back(ServiceGrant{c, d, d * share});
    fractions_[c] = d > 0 ? share : 1.0;
  }
  demands_.clear();
  return grants;
}

double Bus::last_fraction(const std::string& client) const {
  auto it = fractions_.find(client);
  return it == fractions_.end() ? 1.0 : it->second;
}

double Bus::demand() const {
  double total = 0.0;
  for (const auto& [c, d] : demands_) total += d;
  return total;
}

// ------------------------------------------------------------ MemoryArbiter

void MemoryArbiter::add_port(const std::string& port, int priority) {
  ports_[port] = Port{priority, 0.0, 1.0, 0};
}

void MemoryArbiter::set_priority(const std::string& port, int priority) {
  auto it = ports_.find(port);
  if (it == ports_.end()) throw std::out_of_range("no such arbiter port: " + port);
  it->second.priority = priority;
}

int MemoryArbiter::priority(const std::string& port) const {
  auto it = ports_.find(port);
  if (it == ports_.end()) throw std::out_of_range("no such arbiter port: " + port);
  return it->second.priority;
}

std::vector<std::string> MemoryArbiter::ports() const {
  std::vector<std::string> out;
  out.reserve(ports_.size());
  for (const auto& [k, v] : ports_) out.push_back(k);
  return out;
}

void MemoryArbiter::request(const std::string& port, double amount) {
  auto it = ports_.find(port);
  if (it == ports_.end()) throw std::out_of_range("no such arbiter port: " + port);
  it->second.demand += amount;
}

std::vector<ServiceGrant> MemoryArbiter::service() {
  std::map<int, std::vector<std::string>, std::greater<>> levels;
  for (const auto& [name, p] : ports_) levels[p.priority].push_back(name);

  std::vector<ServiceGrant> grants;
  double remaining = bandwidth_;
  for (const auto& [prio, names] : levels) {
    double level_demand = 0.0;
    for (const auto& n : names) level_demand += ports_[n].demand;
    const double share = (level_demand <= remaining || level_demand == 0.0)
                             ? 1.0
                             : remaining / level_demand;
    for (const auto& n : names) {
      auto& p = ports_[n];
      const double granted = p.demand * share;
      p.last_fraction = p.demand > 0 ? share : 1.0;
      if (p.demand > 0 && p.last_fraction < kStarvationThreshold) {
        ++p.starved;
      } else {
        p.starved = 0;
      }
      grants.push_back(ServiceGrant{n, p.demand, granted});
      p.demand = 0.0;
    }
    remaining = std::max(0.0, remaining - level_demand);
  }
  return grants;
}

double MemoryArbiter::last_fraction(const std::string& port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? 1.0 : it->second.last_fraction;
}

int MemoryArbiter::starvation_ticks(const std::string& port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? 0 : it->second.starved;
}

// --------------------------------------------------------------- StreamBuffer

double StreamBuffer::push(double amount) {
  const double accepted = std::min(amount, capacity_ - level_);
  level_ += accepted;
  if (accepted + 1e-12 < amount) ++overflows_;
  return accepted;
}

double StreamBuffer::pop(double amount) {
  const double taken = std::min(amount, level_);
  level_ -= taken;
  if (taken + 1e-12 < amount) ++underflows_;
  return taken;
}

void StreamBuffer::reset() {
  level_ = 0.0;
  overflows_ = 0;
  underflows_ = 0;
}

}  // namespace trader::tv
