// The high-level TV specification model (§4.2).
//
// "We have developed a high-level model of a TV from the viewpoint of
// the user. It captures the relation between user input, via the remote
// control, and output, via images on the screen and sound."
//
// This is the *partial model* run by the Model Executor at run time: it
// covers power, sound level (volume/mute), screen state (video / dual /
// teletext / menu) and the displayed channel — and deliberately not the
// streaming data path, OSD cosmetics or teletext page contents (those
// are covered by dedicated detectors instead; see DESIGN.md §5.3).
//
// The model is written independently from TvControl on purpose: the
// model-to-model experiments (§5) compare the two, and genuine modeling
// discrepancies are part of the reproduction.
#pragma once

#include "statemachine/definition.hpp"

namespace trader::tv {

/// Parameters the spec model shares with the real TV.
struct TvSpecConfig {
  int channel_count = 40;
  int volume_step = 5;
  int initial_volume = 30;
  int initial_channel = 1;
  int adult_channel_threshold = 30;
  runtime::SimDuration digit_timeout = runtime::msec(1500);
};

/// Model outputs use the same names as TvSystem's observables:
/// "powered", "sound_level", "screen_state", "channel".
statemachine::StateMachineDef build_tv_spec_model(const TvSpecConfig& cfg = {});

}  // namespace trader::tv
