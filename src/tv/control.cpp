#include "tv/control.hpp"

#include <algorithm>

namespace trader::tv {

namespace {

Command cmd(std::string component, std::string action,
            std::map<std::string, runtime::Value> args = {}) {
  return Command{std::move(component), std::move(action), std::move(args)};
}

}  // namespace

const char* to_string(Screen s) {
  switch (s) {
    case Screen::kOff:
      return "off";
    case Screen::kVideo:
      return "video";
    case Screen::kDual:
      return "dual";
    case Screen::kTeletext:
      return "teletext";
    case Screen::kMenu:
      return "menu";
  }
  return "?";
}

TvControl::TvControl(const ChannelLineup& lineup) : TvControl(lineup, Config{}) {}

TvControl::TvControl(const ChannelLineup& lineup, Config config)
    : lineup_(lineup),
      config_(config),
      channel_(config.initial_channel),
      dual_channel_(lineup.next(config.initial_channel, +1)),
      volume_(config.initial_volume) {}

int TvControl::sleep_minutes(runtime::SimTime now) const {
  if (sleep_deadline_ < 0) return 0;
  const auto remaining = sleep_deadline_ - now;
  if (remaining <= 0) return 0;
  return static_cast<int>((remaining + 59'999'999) / 60'000'000);  // ceil minutes
}

std::vector<Command> TvControl::power_on(runtime::SimTime now) {
  hit(kBlkPowerOn);
  powered_ = true;
  screen_ = Screen::kVideo;
  // Restore the persisted user settings into the components.
  std::vector<Command> out;
  out.push_back(cmd("tuner", "set_channel", {{"channel", std::int64_t{channel_}}}));
  out.push_back(cmd("audio", "set_volume", {{"volume", std::int64_t{volume_}}}));
  out.push_back(cmd("audio", "set_mute", {{"mute", muted_}}));
  out.push_back(cmd("teletext", "hide"));
  out.push_back(cmd("teletext", "channel_change", {{"channel", std::int64_t{channel_}}}));
  out.push_back(cmd("avswitch", "select", {{"source", std::int64_t{static_cast<int>(source_)}}}));
  out.push_back(cmd("osd", "banner", {{"at", now}}));
  return out;
}

std::vector<Command> TvControl::power_off() {
  hit(kBlkPowerOff);
  powered_ = false;
  screen_ = Screen::kOff;
  digit_buffer_.clear();
  digit_deadline_ = -1;
  sleep_deadline_ = -1;
  std::vector<Command> out;
  out.push_back(cmd("osd", "clear"));
  out.push_back(cmd("teletext", "hide"));
  return out;
}

std::vector<Command> TvControl::commit_channel(int target, runtime::SimTime now) {
  digit_buffer_.clear();
  digit_deadline_ = -1;
  std::vector<Command> out;
  if (child_lock_ && target >= config_.adult_channel_threshold) {
    hit(kBlkChannelBlocked);
    out.push_back(cmd("osd", "banner", {{"at", now}}));  // "locked" banner
    return out;
  }
  hit(kBlkDigitCommit);
  channel_ = target;
  out.push_back(cmd("tuner", "set_channel", {{"channel", std::int64_t{channel_}}}));
  out.push_back(cmd("teletext", "channel_change", {{"channel", std::int64_t{channel_}}}));
  out.push_back(cmd("osd", "banner", {{"at", now}}));
  return out;
}

std::vector<Command> TvControl::handle_key(Key key, runtime::SimTime now) {
  std::vector<Command> out;

  if (!powered_) {
    if (key == Key::kPower) return power_on(now);
    hit(kBlkIgnoredOff);
    return out;
  }
  if (key == Key::kPower) return power_off();

  // --- Menu captures navigation keys ----------------------------------
  if (screen_ == Screen::kMenu) {
    switch (key) {
      case Key::kMenu:
      case Key::kBack:
        hit(kBlkMenuExit);
        screen_ = Screen::kVideo;
        out.push_back(cmd("osd", "hide_menu"));
        return out;
      case Key::kVolumeUp:
      case Key::kVolumeDown:
      case Key::kMute:
        break;  // volume group still works inside the menu
      default:
        hit(kBlkMenuKeySwallow);
        return out;  // menu swallows everything else
    }
  }

  switch (key) {
    case Key::kMenu: {
      hit(kBlkMenuEnter);
      screen_ = Screen::kMenu;
      out.push_back(cmd("osd", "show_menu"));
      // Entering the menu dismisses teletext/dual viewing.
      out.push_back(cmd("teletext", "hide"));
      return out;
    }
    case Key::kBack: {
      hit(kBlkBack);
      if (screen_ == Screen::kTeletext) out.push_back(cmd("teletext", "hide"));
      screen_ = Screen::kVideo;
      return out;
    }
    case Key::kVolumeUp:
    case Key::kVolumeDown: {
      const bool up = key == Key::kVolumeUp;
      hit(up ? kBlkVolumeUp : kBlkVolumeDown);
      if (muted_) {
        hit(kBlkUnmuteOnVolume);
        muted_ = false;
        out.push_back(cmd("audio", "set_mute", {{"mute", false}}));
      }
      volume_ = std::clamp(volume_ + (up ? config_.volume_step : -config_.volume_step), 0, 100);
      out.push_back(cmd("audio", "set_volume", {{"volume", std::int64_t{volume_}}}));
      out.push_back(cmd("osd", "volume", {{"at", now}}));
      return out;
    }
    case Key::kMute: {
      hit(kBlkMuteToggle);
      muted_ = !muted_;
      out.push_back(cmd("audio", "set_mute", {{"mute", muted_}}));
      out.push_back(cmd("osd", "volume", {{"at", now}}));
      return out;
    }
    case Key::kSource: {
      // External inputs cannot show teletext or dual screen: switching
      // the source dismisses both (another §4.2-style interaction).
      if (screen_ == Screen::kTeletext) {
        hit(kBlkSourceFromTtx);
        out.push_back(cmd("teletext", "hide"));
        screen_ = Screen::kVideo;
      } else if (screen_ == Screen::kDual) {
        hit(kBlkSourceFromDual);
        screen_ = Screen::kVideo;
      } else {
        hit(kBlkSourceCycle);
      }
      source_ = next_source(source_);
      out.push_back(cmd("avswitch", "select",
                        {{"source", std::int64_t{static_cast<int>(source_)}}}));
      out.push_back(cmd("osd", "banner", {{"at", now}}));
      return out;
    }
    case Key::kTeletext: {
      if (source_ != AvSource::kAntenna) {
        hit(kBlkExternalSourceSwallow);  // no teletext on external feeds
        return out;
      }
      if (screen_ == Screen::kTeletext) {
        hit(kBlkTtxExit);
        screen_ = Screen::kVideo;
        out.push_back(cmd("teletext", "hide"));
      } else {
        hit(kBlkTtxEnter);
        screen_ = Screen::kTeletext;  // suppresses dual screen if active
        ttx_page_ = 100;
        out.push_back(cmd("teletext", "show"));
      }
      return out;
    }
    case Key::kDualScreen: {
      if (source_ != AvSource::kAntenna) {
        hit(kBlkExternalSourceSwallow);  // dual screen needs the tuner pair
        return out;
      }
      if (screen_ == Screen::kDual) {
        hit(kBlkDualExit);
        screen_ = Screen::kVideo;
      } else {
        if (screen_ == Screen::kTeletext) {
          hit(kBlkDualFromTtx);
          out.push_back(cmd("teletext", "hide"));
        } else {
          hit(kBlkDualEnter);
        }
        screen_ = Screen::kDual;
        dual_channel_ = lineup_.next(channel_, +1);
      }
      return out;
    }
    case Key::kChannelUp:
    case Key::kChannelDown: {
      const int dir = key == Key::kChannelUp ? +1 : -1;
      if (screen_ == Screen::kTeletext) {
        hit(kBlkTtxPage);
        ttx_page_ = std::clamp(ttx_page_ + dir, 100, 899);
        out.push_back(cmd("teletext", "select_page", {{"page", std::int64_t{ttx_page_}}}));
        return out;
      }
      if (source_ != AvSource::kAntenna) {
        hit(kBlkExternalSourceSwallow);  // zapping is a tuner operation
        return out;
      }
      hit(dir > 0 ? kBlkChannelUp : kBlkChannelDown);
      return commit_channel(lineup_.next(channel_, dir), now);
    }
    case Key::kSleep: {
      hit(kBlkSleepCycle);
      // Cycle off -> 15 -> 30 -> 60 -> off (minutes).
      const int current = sleep_minutes(now);
      const int next = current == 0 ? 15 : current <= 15 ? 30 : current <= 30 ? 60 : 0;
      sleep_deadline_ = next == 0 ? -1 : now + runtime::sec(static_cast<std::int64_t>(next) * 60);
      out.push_back(cmd("osd", "banner", {{"at", now}}));
      return out;
    }
    case Key::kSwivelLeft:
    case Key::kSwivelRight: {
      const bool left = key == Key::kSwivelLeft;
      hit(left ? kBlkSwivelLeft : kBlkSwivelRight);
      out.push_back(cmd("swivel", "rotate", {{"delta", std::int64_t{left ? -15 : 15}}}));
      return out;
    }
    case Key::kChildLock: {
      hit(kBlkChildLockToggle);
      child_lock_ = !child_lock_;
      out.push_back(cmd("osd", "banner", {{"at", now}}));
      return out;
    }
    default:
      break;
  }

  // --- Digits ----------------------------------------------------------
  if (auto d = digit_of(key)) {
    if (source_ != AvSource::kAntenna) {
      hit(kBlkExternalSourceSwallow);
      return out;
    }
    if (screen_ == Screen::kTeletext) {
      hit(kBlkTtxDigit);
      digit_buffer_.push_back(static_cast<char>('0' + *d));
      digit_deadline_ = now + config_.digit_timeout;
      if (digit_buffer_.size() >= 3) {
        const int page = std::stoi(digit_buffer_);
        digit_buffer_.clear();
        digit_deadline_ = -1;
        ttx_page_ = std::clamp(page, 100, 899);
        out.push_back(cmd("teletext", "select_page", {{"page", std::int64_t{ttx_page_}}}));
      }
      return out;
    }
    hit(kBlkDigitEntry);
    digit_buffer_.push_back(static_cast<char>('0' + *d));
    digit_deadline_ = now + config_.digit_timeout;
    if (digit_buffer_.size() >= 2) {
      return commit_channel(std::stoi(digit_buffer_), now);
    }
    return out;
  }

  return out;
}

std::vector<Command> TvControl::tick(runtime::SimTime now) {
  hit(kBlkTick);
  std::vector<Command> out;
  if (!powered_) return out;

  if (digit_deadline_ >= 0 && now >= digit_deadline_ && !digit_buffer_.empty()) {
    hit(kBlkDigitTimeout);
    const int n = std::stoi(digit_buffer_);
    if (screen_ == Screen::kTeletext) {
      // Incomplete page entry: discard (real TVs keep the old page).
      digit_buffer_.clear();
      digit_deadline_ = -1;
    } else {
      auto cmds = commit_channel(n, now);
      out.insert(out.end(), cmds.begin(), cmds.end());
    }
  }

  if (sleep_deadline_ >= 0 && now >= sleep_deadline_) {
    hit(kBlkSleepExpire);
    auto cmds = power_off();
    out.insert(out.end(), cmds.begin(), cmds.end());
  }
  return out;
}

}  // namespace trader::tv
