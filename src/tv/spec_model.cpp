#include "tv/spec_model.hpp"

#include <algorithm>

namespace trader::tv {

namespace sm = trader::statemachine;

namespace {

// Model outputs carry a single "value" field, matching the observable
// naming of TvSystem::publish_outputs().
void emit_value(sm::ActionEnv& env, const std::string& name, runtime::Value v) {
  env.emit(name, {{"value", std::move(v)}});
}

}  // namespace

sm::StateMachineDef build_tv_spec_model(const TvSpecConfig& cfg) {
  sm::StateMachineDef def("tv_spec");

  const auto off = def.add_state("Off");
  const auto on = def.add_state("On");
  const auto video = def.add_state("Video", on);
  const auto dual = def.add_state("Dual", on);
  const auto ttx = def.add_state("Teletext", on);
  const auto menu = def.add_state("Menu", on);
  def.set_initial(on, video);
  def.set_top_initial(off);

  // --- Variable accessors with model defaults ---------------------------
  auto volume_of = [cfg](const sm::Context& c) {
    return static_cast<int>(c.get_int("volume", cfg.initial_volume));
  };
  auto channel_of = [cfg](const sm::Context& c) {
    return static_cast<int>(c.get_int("channel", cfg.initial_channel));
  };
  auto sound_of = [volume_of](const sm::Context& c) {
    return c.get_bool("muted", false) ? 0 : volume_of(c);
  };
  auto clear_digits = [](sm::ActionEnv& env) { env.vars.set_str("digits", ""); };
  auto source_of = [](const sm::Context& c) { return c.get_str("source", "antenna"); };
  auto on_antenna = [source_of](const sm::Context& c, const sm::SmEvent&) {
    return source_of(c) == "antenna";
  };
  auto off_antenna = [source_of](const sm::Context& c, const sm::SmEvent&) {
    return source_of(c) != "antenna";
  };
  auto cycle_source = [source_of](sm::ActionEnv& env) {
    const std::string cur = source_of(env.vars);
    const std::string next = cur == "antenna" ? "hdmi" : cur == "hdmi" ? "usb" : "antenna";
    env.vars.set_str("source", next);
    env.emit("source", {{"value", next}});
  };

  // --- Entry emissions ---------------------------------------------------
  def.on_entry(off, [clear_digits](sm::ActionEnv& env) {
    clear_digits(env);
    emit_value(env, "powered", false);
    emit_value(env, "screen_state", std::string("off"));
    emit_value(env, "sound_level", std::int64_t{0});
  });
  def.on_entry(on, [sound_of, channel_of, volume_of](sm::ActionEnv& env) {
    // Materialize the model variables so scripts and probes can read
    // them even before the first user change.
    env.vars.set_int("volume", volume_of(env.vars));
    env.vars.set_int("channel", channel_of(env.vars));
    if (!env.vars.has("muted")) env.vars.set_bool("muted", false);
    if (!env.vars.has("locked")) env.vars.set_bool("locked", false);
    if (!env.vars.has("source")) env.vars.set_str("source", "antenna");
    emit_value(env, "powered", true);
    emit_value(env, "sound_level", std::int64_t{sound_of(env.vars)});
    emit_value(env, "channel", std::int64_t{channel_of(env.vars)});
  });
  def.on_entry(video, [](sm::ActionEnv& env) {
    emit_value(env, "screen_state", std::string("video"));
  });
  def.on_entry(dual, [](sm::ActionEnv& env) {
    emit_value(env, "screen_state", std::string("dual"));
  });
  def.on_entry(ttx, [clear_digits](sm::ActionEnv& env) {
    clear_digits(env);
    emit_value(env, "screen_state", std::string("teletext"));
  });
  def.on_entry(menu, [clear_digits](sm::ActionEnv& env) {
    clear_digits(env);
    emit_value(env, "screen_state", std::string("menu"));
  });

  // --- Power ---------------------------------------------------------------
  def.add_transition(off, on, "power");
  def.add_transition(on, off, "power");

  // --- Volume group (works everywhere while on, including the menu) --------
  auto volume_action = [cfg, volume_of, sound_of](int dir) -> sm::Action {
    return [cfg, volume_of, sound_of, dir](sm::ActionEnv& env) {
      if (env.vars.get_bool("muted", false)) env.vars.set_bool("muted", false);
      const int v = std::clamp(volume_of(env.vars) + dir * cfg.volume_step, 0, 100);
      env.vars.set_int("volume", v);
      emit_value(env, "sound_level", std::int64_t{sound_of(env.vars)});
    };
  };
  def.add_internal(on, "volume_up", nullptr, volume_action(+1));
  def.add_internal(on, "volume_down", nullptr, volume_action(-1));
  def.add_internal(on, "mute", nullptr, [sound_of](sm::ActionEnv& env) {
    env.vars.set_bool("muted", !env.vars.get_bool("muted", false));
    emit_value(env, "sound_level", std::int64_t{sound_of(env.vars)});
  });
  def.add_internal(on, "child_lock", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_bool("locked", !env.vars.get_bool("locked", false));
  });

  // --- Screen-state transitions (the §4.2 feature interactions) -------------
  // Teletext and dual screen require the broadcast tuner (antenna).
  def.add_transition(video, ttx, "teletext", on_antenna);
  def.add_internal(video, "teletext", off_antenna);  // swallowed on external
  def.add_transition(ttx, video, "teletext");
  def.add_transition(video, dual, "dual_screen", on_antenna);
  def.add_internal(video, "dual_screen", off_antenna);
  def.add_transition(dual, video, "dual_screen");
  def.add_transition(ttx, dual, "dual_screen");
  def.add_transition(dual, ttx, "teletext");
  def.add_transition(ttx, video, "back");
  def.add_transition(dual, video, "back");

  // Source cycling: dismisses teletext/dual (external feeds have neither).
  def.add_internal(video, "source", nullptr, cycle_source);
  def.add_transition(ttx, video, "source", nullptr, cycle_source);
  def.add_transition(dual, video, "source", nullptr, cycle_source);
  def.add_internal(menu, "source");  // the menu swallows it

  def.add_transition(video, menu, "menu");
  def.add_transition(dual, menu, "menu");
  def.add_transition(ttx, menu, "menu");
  def.add_transition(menu, video, "menu");
  def.add_transition(menu, video, "back");
  // The menu swallows navigation keys.
  for (const char* swallowed :
       {"teletext", "dual_screen", "channel_up", "channel_down", "digit_0", "digit_1", "digit_2",
        "digit_3", "digit_4", "digit_5", "digit_6", "digit_7", "digit_8", "digit_9"}) {
    def.add_internal(menu, swallowed);
  }

  // --- Channel zapping --------------------------------------------------------
  auto commit_channel = [cfg](sm::ActionEnv& env, int target) {
    const bool locked = env.vars.get_bool("locked", false);
    if (locked && target >= cfg.adult_channel_threshold) return;  // blocked
    env.vars.set_int("channel", target);
    emit_value(env, "channel", std::int64_t{target});
  };
  auto zap_action = [cfg, channel_of, commit_channel](int dir) -> sm::Action {
    return [cfg, channel_of, commit_channel, dir](sm::ActionEnv& env) {
      const int cur = channel_of(env.vars);
      const int n = cfg.channel_count;
      // Off-lineup channels zap back to channel 1 (mirrors the tuner's
      // behaviour for unknown channel numbers).
      const int next = (cur < 1 || cur > n) ? 1
                       : dir > 0           ? (cur % n) + 1
                                           : ((cur - 2 + n) % n) + 1;
      commit_channel(env, next);
    };
  };
  for (sm::StateId scr : {video, dual}) {
    // Zapping and digit entry are tuner operations: inert on external
    // sources (the guarded variant wins on antenna, the no-op otherwise).
    def.add_internal(scr, "channel_up", on_antenna, zap_action(+1));
    def.add_internal(scr, "channel_up", off_antenna);
    def.add_internal(scr, "channel_down", on_antenna, zap_action(-1));
    def.add_internal(scr, "channel_down", off_antenna);

    // Digit entry: self-transitions so the dwell clock (and with it the
    // digit-timeout transition below) restarts on every digit press.
    for (int d = 0; d <= 9; ++d) {
      const std::string ev = "digit_" + std::to_string(d);
      def.add_internal(scr, ev, off_antenna);
      def.add_transition(scr, scr, ev, on_antenna, [d, commit_channel](sm::ActionEnv& env) {
        std::string buf = env.vars.get_str("digits", "");
        buf.push_back(static_cast<char>('0' + d));
        if (buf.size() >= 2) {
          commit_channel(env, std::stoi(buf));
          buf.clear();
        }
        env.vars.set_str("digits", buf);
      });
    }
    // Single-digit commit after the entry timeout.
    def.add_timed(
        scr, scr, cfg.digit_timeout,
        [](const sm::Context& c, const sm::SmEvent&) { return !c.get_str("digits", "").empty(); },
        [commit_channel](sm::ActionEnv& env) {
          const std::string buf = env.vars.get_str("digits", "");
          commit_channel(env, std::stoi(buf));
          env.vars.set_str("digits", "");
        });
  }

  // Teletext swallows digits and zapping keys (page navigation is not in
  // the partial model's scope).
  for (const char* swallowed : {"channel_up", "channel_down", "digit_0", "digit_1", "digit_2",
                                "digit_3", "digit_4", "digit_5", "digit_6", "digit_7", "digit_8",
                                "digit_9"}) {
    def.add_internal(ttx, swallowed);
  }

  // Sleep / swivel are outside the partial model: explicit no-ops.
  def.add_internal(on, "sleep");
  def.add_internal(on, "swivel_left");
  def.add_internal(on, "swivel_right");

  return def;
}

}  // namespace trader::tv
