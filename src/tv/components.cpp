#include "tv/components.hpp"

#include <algorithm>

namespace trader::tv {

// -------------------------------------------------------------------- Tuner

void Tuner::set_channel(int channel, const ChannelLineup& lineup) {
  channel_ = channel;
  locked_ = lineup.valid(channel);
}

// ------------------------------------------------------------ AudioPipeline

void AudioPipeline::set_volume(int v) { volume_ = std::clamp(v, 0, 100); }

// ----------------------------------------------------------- TeletextEngine

const char* to_string(TeletextEngine::Mode m) {
  switch (m) {
    case TeletextEngine::Mode::kOff:
      return "off";
    case TeletextEngine::Mode::kVisible:
      return "visible";
    case TeletextEngine::Mode::kBackground:
      return "background";
  }
  return "?";
}

void TeletextEngine::show() { mode_ = Mode::kVisible; }

void TeletextEngine::hide() { mode_ = Mode::kOff; }

void TeletextEngine::to_background() { mode_ = Mode::kBackground; }

void TeletextEngine::on_channel_change(int channel) {
  if (channel == synced_channel_) return;
  synced_channel_ = channel;
  acquired_pages_ = 0;  // cache invalidated; must reacquire
  current_page_ = 100;
  carousel_next_ = 100;
  cache_.clear();
}

void TeletextEngine::select_page(int page) { current_page_ = std::clamp(page, 100, 899); }

void TeletextEngine::page_up() { select_page(current_page_ + 1); }

void TeletextEngine::page_down() { select_page(current_page_ - 1); }

void TeletextEngine::tick_acquisition(bool carries_teletext, int tuner_channel) {
  if (mode_ == Mode::kOff) return;
  if (!carries_teletext) return;
  acquired_pages_ = std::min(acquired_pages_ + 4, 800);
  // The carousel delivers a few pages per tick; their content comes from
  // the channel the tuner is actually on (which the engine cannot know —
  // it labels nothing, the cache records ground truth for observers).
  const int source = tuner_channel >= 0 ? tuner_channel : synced_channel_;
  for (int i = 0; i < 4; ++i) {
    cache_[carousel_next_] = source;
    ++carousel_next_;
    if (carousel_next_ > 899) carousel_next_ = 100;
  }
}

int TeletextEngine::page_source(int page) const {
  auto it = cache_.find(page);
  return it != cache_.end() ? it->second : -1;
}

std::string TeletextEngine::page_content(int page) const {
  const int source = page_source(page);
  if (source < 0) return {};
  return "ch" + std::to_string(source) + "/p" + std::to_string(page);
}

bool TeletextEngine::displayed_page_current(int tuner_channel) const {
  return page_source(current_page_) == tuner_channel;
}

double TeletextEngine::cache_staleness(int tuner_channel) const {
  if (cache_.empty()) return 0.0;
  std::size_t stale = 0;
  for (const auto& [page, source] : cache_) {
    if (source != tuner_channel) ++stale;
  }
  return static_cast<double>(stale) / static_cast<double>(cache_.size());
}

// ----------------------------------------------------------------- OsdManager

const char* to_string(OsdManager::Osd o) {
  switch (o) {
    case OsdManager::Osd::kNone:
      return "none";
    case OsdManager::Osd::kVolume:
      return "volume";
    case OsdManager::Osd::kBanner:
      return "banner";
    case OsdManager::Osd::kMenu:
      return "menu";
  }
  return "?";
}

void OsdManager::show_volume(runtime::SimTime now) {
  if (active_ == Osd::kMenu) return;  // menu dominates
  active_ = Osd::kVolume;
  expires_at_ = now + kVolumeOsdDuration;
}

void OsdManager::show_banner(runtime::SimTime now) {
  if (active_ == Osd::kMenu) return;
  // A volume bar is not replaced by a banner (volume is the more recent
  // user action when both race); banner only claims a free plane.
  if (active_ == Osd::kVolume && expires_at_ > now) return;
  active_ = Osd::kBanner;
  expires_at_ = now + kBannerOsdDuration;
}

void OsdManager::show_menu() {
  active_ = Osd::kMenu;
  expires_at_ = -1;
}

void OsdManager::hide_menu() {
  if (active_ == Osd::kMenu) {
    active_ = Osd::kNone;
    expires_at_ = -1;
  }
}

void OsdManager::clear() {
  active_ = Osd::kNone;
  expires_at_ = -1;
}

void OsdManager::tick(runtime::SimTime now) {
  if (active_ == Osd::kMenu || active_ == Osd::kNone) return;
  if (expires_at_ >= 0 && now >= expires_at_) {
    active_ = Osd::kNone;
    expires_at_ = -1;
  }
}

// ------------------------------------------------------------------- AvSwitch

const char* to_string(AvSource s) {
  switch (s) {
    case AvSource::kAntenna:
      return "antenna";
    case AvSource::kHdmi:
      return "hdmi";
    case AvSource::kUsb:
      return "usb";
  }
  return "?";
}

AvSource next_source(AvSource s) {
  switch (s) {
    case AvSource::kAntenna:
      return AvSource::kHdmi;
    case AvSource::kHdmi:
      return AvSource::kUsb;
    case AvSource::kUsb:
      return AvSource::kAntenna;
  }
  return AvSource::kAntenna;
}

double source_quality(AvSource s) {
  switch (s) {
    case AvSource::kAntenna:
      return 0.0;  // not used: antenna quality comes from the signal model
    case AvSource::kHdmi:
      return 0.98;
    case AvSource::kUsb:
      return 0.93;
  }
  return 0.0;
}

// --------------------------------------------------------------------- Swivel

void Swivel::rotate(int delta_deg) {
  target_deg_ = std::clamp(target_deg_ + delta_deg, -kMaxAngle, kMaxAngle);
}

void Swivel::tick(runtime::SimDuration dt, bool stuck) {
  if (stuck || position_deg_ == target_deg_) {
    motion_budget_ = 0;
    return;
  }
  // Accumulate microdegrees of motion, move whole degrees.
  motion_budget_ += dt * kDegreesPerSecond;  // us * deg/s = microdeg
  const auto whole = static_cast<int>(motion_budget_ / 1'000'000);
  if (whole <= 0) return;
  motion_budget_ -= static_cast<std::int64_t>(whole) * 1'000'000;
  if (position_deg_ < target_deg_) {
    position_deg_ = std::min(position_deg_ + whole, target_deg_);
  } else {
    position_deg_ = std::max(position_deg_ - whole, target_deg_);
  }
}

}  // namespace trader::tv
