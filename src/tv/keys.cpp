#include "tv/keys.hpp"

#include <array>

namespace trader::tv {

namespace {
constexpr std::array<const char*, 26> kNames = {
    "power",       "digit_0",     "digit_1",   "digit_2",      "digit_3",
    "digit_4",     "digit_5",     "digit_6",   "digit_7",      "digit_8",
    "digit_9",     "channel_up",  "channel_down", "volume_up", "volume_down",
    "mute",        "teletext",    "dual_screen", "menu",       "ok",
    "back",        "sleep",       "swivel_left", "swivel_right", "child_lock",
    "source",
};
}  // namespace

const char* to_string(Key k) { return kNames[static_cast<std::size_t>(k)]; }

std::optional<Key> key_from_string(const std::string& name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (name == kNames[i]) return static_cast<Key>(i);
  }
  return std::nullopt;
}

std::optional<int> digit_of(Key k) {
  const auto v = static_cast<int>(k);
  const auto d0 = static_cast<int>(Key::kDigit0);
  if (v >= d0 && v <= d0 + 9) return v - d0;
  return std::nullopt;
}

Key digit_key(int value) {
  return static_cast<Key>(static_cast<int>(Key::kDigit0) + (value % 10));
}

}  // namespace trader::tv
