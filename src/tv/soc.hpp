// Simulated system-on-chip resources (§2: "a TV is designed as a
// system-on-chip with multiple processors, various types of memory, and
// dedicated hardware accelerators").
//
// The model is a per-tick service abstraction: tasks declare a cost in
// work units per tick; processors, the bus and the memory arbiter grant
// service each tick according to capacity and priority. Overload shows
// up as service fractions < 1, which the pipeline converts into frame
// drops and quality loss — the observable failures that recovery (task
// migration, adaptive arbitration) and stress testing (resource eaters)
// act on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::tv {

/// Service granted to one task in one tick.
struct ServiceGrant {
  std::string task;
  double requested = 0.0;
  double granted = 0.0;

  double fraction() const { return requested > 0.0 ? granted / requested : 1.0; }
};

/// A fixed-capacity processor running named tasks with priorities.
/// Higher priority is served first; equal priorities share fairly.
class Processor {
 public:
  Processor(std::string id, double capacity) : id_(std::move(id)), capacity_(capacity) {}

  const std::string& id() const { return id_; }
  double capacity() const { return capacity_; }

  /// Add (or replace) a task with per-tick cost and priority.
  void add_task(const std::string& name, double cost, int priority = 0);
  void remove_task(const std::string& name);
  bool has_task(const std::string& name) const { return tasks_.count(name) > 0; }
  void set_task_cost(const std::string& name, double cost);
  double task_cost(const std::string& name) const;
  std::vector<std::string> task_names() const;

  /// Demand / capacity; > 1 means overload.
  double load() const;

  /// Run one tick: allocate capacity by priority, fair within a level.
  std::vector<ServiceGrant> service();

  /// Service fraction the named task got in the last service() call
  /// (1.0 when it made no request or was absent).
  double last_fraction(const std::string& name) const;

 private:
  struct TaskInfo {
    double cost = 0.0;
    int priority = 0;
    double last_fraction = 1.0;
  };

  std::string id_;
  double capacity_;
  std::map<std::string, TaskInfo> tasks_;
};

/// Shared interconnect with fair proportional allocation.
class Bus {
 public:
  explicit Bus(double bandwidth) : bandwidth_(bandwidth) {}

  double bandwidth() const { return bandwidth_; }

  /// Register a per-tick bandwidth demand for a client.
  void request(const std::string& client, double amount);

  /// Serve all outstanding requests proportionally; clears demands.
  std::vector<ServiceGrant> service();

  double last_fraction(const std::string& client) const;
  double demand() const;

 private:
  double bandwidth_;
  std::map<std::string, double> demands_;
  std::map<std::string, double> fractions_;
};

/// Priority-based memory arbiter with runtime-adjustable port priorities
/// (§4.5: "make memory arbitration more flexible such that it can be
/// adapted at run-time").
class MemoryArbiter {
 public:
  explicit MemoryArbiter(double bandwidth) : bandwidth_(bandwidth) {}

  void add_port(const std::string& port, int priority);
  void set_priority(const std::string& port, int priority);
  int priority(const std::string& port) const;
  std::vector<std::string> ports() const;

  /// Register a per-tick demand on a port.
  void request(const std::string& port, double amount);

  /// Serve by strict priority (fair within a level); clears demands.
  std::vector<ServiceGrant> service();

  double last_fraction(const std::string& port) const;

  /// Consecutive ticks the port got < `threshold` of its demand.
  int starvation_ticks(const std::string& port) const;

  double bandwidth() const { return bandwidth_; }

 private:
  struct Port {
    int priority = 0;
    double demand = 0.0;
    double last_fraction = 1.0;
    int starved = 0;
  };

  static constexpr double kStarvationThreshold = 0.9;

  double bandwidth_;
  std::map<std::string, Port> ports_;
};

/// Bounded stream buffer between pipeline stages.
class StreamBuffer {
 public:
  StreamBuffer(std::string id, double capacity) : id_(std::move(id)), capacity_(capacity) {}

  const std::string& id() const { return id_; }
  double capacity() const { return capacity_; }
  double level() const { return level_; }
  double fill_ratio() const { return capacity_ > 0 ? level_ / capacity_ : 0.0; }

  /// Push `amount`; returns the accepted part. Excess counts as overflow.
  double push(double amount);

  /// Pop up to `amount`; returns the taken part. Shortfall counts as underflow.
  double pop(double amount);

  std::uint64_t overflows() const { return overflows_; }
  std::uint64_t underflows() const { return underflows_; }

  void reset();

 private:
  std::string id_;
  double capacity_;
  double level_ = 0.0;
  std::uint64_t overflows_ = 0;
  std::uint64_t underflows_ = 0;
};

}  // namespace trader::tv
