// Broadcast signal model: channels, coding standards, signal quality.
//
// §2: a TV "can receive analog and digital input from many possible
// sources and using many different coding standards" and "must be able
// to tolerate certain faults in the input" — deviations from coding
// standards, bad image quality. ChannelLineup models the broadcast side;
// per-channel quality and deviation rates are the external-fault knobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/rng.hpp"
#include "runtime/sim_time.hpp"

namespace trader::tv {

/// Coding standard of a channel's stream.
enum class CodingStandard : std::uint8_t { kAnalog, kMpeg2, kH264 };

const char* to_string(CodingStandard s);

/// Relative decode cost of a standard (analog = 1.0 baseline).
double decode_cost_factor(CodingStandard s);

/// Static description of one broadcast channel.
struct ChannelInfo {
  int number = 1;
  std::string name;
  CodingStandard standard = CodingStandard::kMpeg2;
  double base_quality = 0.95;      ///< Nominal signal quality [0,1].
  double deviation_rate = 0.0;     ///< P(stream unit deviates from standard).
  bool has_teletext = true;
};

/// One decoded stream unit (a frame period's worth of signal).
struct StreamUnit {
  int channel = 1;
  double quality = 1.0;       ///< Instantaneous signal quality [0,1].
  bool coding_deviation = false;
  runtime::SimTime time = 0;
};

/// The set of receivable channels plus a deterministic signal generator.
class ChannelLineup {
 public:
  explicit ChannelLineup(runtime::Rng rng = runtime::Rng(7)) : rng_(rng) {}

  /// Build a default lineup of `n` channels with mixed standards.
  static ChannelLineup standard_lineup(int n, std::uint64_t seed = 7);

  void add(ChannelInfo info) { channels_.push_back(std::move(info)); }

  int count() const { return static_cast<int>(channels_.size()); }
  bool valid(int number) const;
  const ChannelInfo& info(int number) const;
  ChannelInfo& info_mut(int number);

  /// Next channel number with wrap-around (for channel up/down).
  int next(int number, int direction) const;

  /// Sample the signal for `channel` at `now`. `quality_penalty`
  /// (0..1) models an externally injected bad-signal fault.
  StreamUnit sample(int channel, runtime::SimTime now, double quality_penalty = 0.0);

 private:
  runtime::Rng rng_;
  std::vector<ChannelInfo> channels_;
};

}  // namespace trader::tv
