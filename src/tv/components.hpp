// TV software components.
//
// Each component keeps an *internal mode* — the state whose consistency
// across components the mode-consistency checker (§4.3, [17]) verifies.
// Components never talk to each other directly: TvControl issues
// commands that TvSystem routes over lossy internal channels, so a lost
// message leaves two components in inconsistent modes exactly like the
// teletext synchronization failure the paper describes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "runtime/sim_time.hpp"
#include "tv/signal.hpp"

namespace trader::tv {

/// Front-end receiver: owns the currently tuned channel.
class Tuner {
 public:
  int channel() const { return channel_; }
  bool locked() const { return locked_; }

  /// Tune to a channel; locks when the lineup carries it.
  void set_channel(int channel, const ChannelLineup& lineup);

 private:
  int channel_ = 1;
  bool locked_ = false;
};

/// Audio output chain: volume and mute state actually applied to the
/// speakers (possibly diverging from TvControl's belief).
class AudioPipeline {
 public:
  int volume() const { return volume_; }
  bool muted() const { return muted_; }

  void set_volume(int v);
  void adjust(int delta) { set_volume(volume_ + delta); }
  void set_mute(bool m) { muted_ = m; }
  void toggle_mute() { muted_ = !muted_; }

  /// The audible level (0 when muted).
  int sound_level() const { return muted_ ? 0 : volume_; }

 private:
  int volume_ = 30;
  bool muted_ = false;
};

/// Teletext engine: acquires pages for the channel it *believes* is
/// tuned. If the channel-change notification is lost, it keeps serving
/// pages of the old channel — the paper's teletext desync failure.
///
/// The page cache models the broadcast carousel: pages stream in from
/// whatever channel the tuner is actually on, each cache entry labeled
/// with its source channel. A desynced engine therefore shows *stale*
/// pages (cached under the old channel) until the carousel slowly
/// overwrites them — exactly the user-visible symptom of the §4.3 case.
class TeletextEngine {
 public:
  enum class Mode : std::uint8_t { kOff, kVisible, kBackground };

  Mode mode() const { return mode_; }
  int synced_channel() const { return synced_channel_; }
  int current_page() const { return current_page_; }
  int acquired_pages() const { return acquired_pages_; }
  bool page_ready() const { return acquired_pages_ > 0; }

  void show();
  void hide();
  void to_background();

  /// Channel-change notification (this is the message that can get lost).
  void on_channel_change(int channel);

  /// Page navigation while visible.
  void select_page(int page);
  void page_up();
  void page_down();

  /// Acquisition progress: call once per acquisition period while the
  /// tuned channel carries teletext. `carries_teletext` refers to the
  /// channel the *tuner* is actually on; `tuner_channel` is that
  /// channel's number (the content source). Default -1 means "trust the
  /// engine's own belief" (no independent tuner information available).
  void tick_acquisition(bool carries_teletext, int tuner_channel = -1);

  /// Source channel of a cached page, or -1 when not cached.
  int page_source(int page) const;

  /// Rendered content of a cached page ("" when not cached).
  std::string page_content(int page) const;

  /// Is the currently selected page cached AND from the tuned channel?
  bool displayed_page_current(int tuner_channel) const;

  /// Fraction of cached pages whose content came from a different
  /// channel than `tuner_channel` (0 = all fresh; 1 = all stale).
  double cache_staleness(int tuner_channel) const;

 private:
  Mode mode_ = Mode::kOff;
  int synced_channel_ = 1;
  int current_page_ = 100;
  int acquired_pages_ = 0;
  int carousel_next_ = 100;          ///< Next page the carousel delivers.
  std::map<int, int> cache_;         ///< page -> source channel.
};

const char* to_string(TeletextEngine::Mode m);

/// On-screen display arbitration: one OSD plane; menu dominates,
/// volume bar and channel banner are transient (timed disappearance —
/// the behaviour that makes time-based comparison necessary).
class OsdManager {
 public:
  enum class Osd : std::uint8_t { kNone, kVolume, kBanner, kMenu };

  Osd active() const { return active_; }

  void show_volume(runtime::SimTime now);
  void show_banner(runtime::SimTime now);
  void show_menu();
  void hide_menu();
  void clear();

  /// Expire transient OSDs.
  void tick(runtime::SimTime now);

  static constexpr runtime::SimDuration kVolumeOsdDuration = 2'000'000;  // 2 s
  static constexpr runtime::SimDuration kBannerOsdDuration = 3'000'000;  // 3 s

 private:
  Osd active_ = Osd::kNone;
  runtime::SimTime expires_at_ = -1;  // -1: no expiry
};

const char* to_string(OsdManager::Osd o);

/// AV input selector (§2: TVs "can receive analog and digital input
/// from many possible sources" and connect to recording devices / USB).
/// Antenna is the broadcast path; HDMI and USB are external feeds with
/// their own quality characteristics and no teletext/zapping.
enum class AvSource : std::uint8_t { kAntenna, kHdmi, kUsb };

const char* to_string(AvSource s);

/// Next source in the cycle antenna -> hdmi -> usb -> antenna.
AvSource next_source(AvSource s);

/// Nominal frame quality delivered by an external source.
double source_quality(AvSource s);

class AvSwitch {
 public:
  AvSource source() const { return source_; }
  void select(AvSource s) { source_ = s; }

 private:
  AvSource source_ = AvSource::kAntenna;
};

/// Motorized swivel: turns the set toward a target angle at finite
/// speed. §4.6: its failures irritate users far more than bad pictures.
class Swivel {
 public:
  int position() const { return position_deg_; }
  int target() const { return target_deg_; }
  bool moving() const { return position_deg_ != target_deg_; }

  /// Request a turn by `delta_deg` (clamped to ±kMaxAngle).
  void rotate(int delta_deg);

  /// Advance the motor by one tick of `dt`; `stuck` models the motor
  /// fault from the §4.6 experiments.
  void tick(runtime::SimDuration dt, bool stuck);

  static constexpr int kMaxAngle = 45;
  static constexpr int kDegreesPerSecond = 10;

 private:
  int position_deg_ = 0;
  int target_deg_ = 0;
  // Sub-degree motion accumulator in microdegrees.
  std::int64_t motion_budget_ = 0;
};

}  // namespace trader::tv
