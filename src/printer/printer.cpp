#include "printer/printer.hpp"

#include <algorithm>

namespace trader::printer {

using faults::FaultKind;

const char* to_string(PrinterState s) {
  switch (s) {
    case PrinterState::kIdle:
      return "idle";
    case PrinterState::kWarming:
      return "warming";
    case PrinterState::kPrinting:
      return "printing";
    case PrinterState::kPaused:
      return "paused";
    case PrinterState::kError:
      return "error";
  }
  return "?";
}

PrinterSystem::PrinterSystem(runtime::Scheduler& sched, runtime::EventBus& bus,
                             faults::FaultInjector& injector, PrinterConfig config)
    : sched_(sched),
      bus_(bus),
      injector_(injector),
      config_(config),
      temperature_(config.idle_temperature),
      paper_(config.initial_paper) {
  probes_.set_range("pr.temperature", config_.idle_temperature - 15.0,
                    config_.target_temperature + 15.0);
  probes_.set_range("pr.paper", 0, config_.tray_capacity);
}

void PrinterSystem::start() {
  sched_.schedule_every(config_.tick, [this] { tick(); });
  publish_output("state", std::string(to_string(state_)));
}

void PrinterSystem::command(const std::string& cmd,
                            std::map<std::string, runtime::Value> fields) {
  runtime::Event ev;
  ev.topic = "pr.input";
  ev.name = "command";
  ev.fields = std::move(fields);
  ev.fields["cmd"] = cmd;
  ev.timestamp = sched_.now();
  bus_.publish(ev);
}

void PrinterSystem::publish_milestone(const std::string& name,
                                      std::map<std::string, runtime::Value> fields) {
  // Milestones are internal state observations surfaced to the monitor
  // (§3: observe "internal system states"); they share the input topic
  // so the spec model receives them as events.
  runtime::Event ev;
  ev.topic = "pr.input";
  ev.name = "command";
  ev.fields = std::move(fields);
  ev.fields["cmd"] = name;
  ev.timestamp = sched_.now();
  bus_.publish(ev);
}

void PrinterSystem::publish_output(const std::string& name, runtime::Value v) {
  auto it = last_published_.find(name);
  if (it != last_published_.end() && runtime::deviation(it->second, v) == 0.0) return;
  last_published_[name] = v;
  runtime::Event ev;
  ev.topic = "pr.output";
  ev.name = name;
  ev.fields["value"] = std::move(v);
  ev.timestamp = sched_.now();
  bus_.publish(ev);
}

void PrinterSystem::set_state(PrinterState s) {
  if (state_ == s) return;
  state_ = s;
  publish_output("state", std::string(to_string(state_)));
}

void PrinterSystem::enter_error(const std::string& reason) {
  error_reason_ = reason;
  set_state(PrinterState::kError);
}

int PrinterSystem::submit_job(int pages) {
  const int id = next_job_id_++;
  command("submit", {{"pages", std::int64_t{pages}}, {"job", std::int64_t{id}}});
  queue_.push_back(PrintJob{id, pages, 0});
  if (state_ == PrinterState::kIdle) set_state(PrinterState::kWarming);
  return id;
}

void PrinterSystem::pause() {
  command("pause");
  if (state_ == PrinterState::kPrinting) {
    set_state(PrinterState::kPaused);
    page_deadline_ = -1;
  }
}

void PrinterSystem::resume() {
  command("resume");
  if (state_ == PrinterState::kPaused) {
    set_state(PrinterState::kPrinting);
    page_deadline_ = sched_.now() + config_.page_time;
  }
}

void PrinterSystem::cancel() {
  command("cancel");
  if (state_ == PrinterState::kError) return;  // clear_error handles that
  queue_.clear();
  page_deadline_ = -1;
  set_state(PrinterState::kIdle);
}

void PrinterSystem::load_paper(int sheets) {
  command("load_paper", {{"sheets", std::int64_t{sheets}}});
  paper_ = std::min(paper_ + sheets, config_.tray_capacity);
}

void PrinterSystem::clear_error() {
  command("clear_error");
  if (state_ != PrinterState::kError) return;
  error_reason_.clear();
  queue_.clear();  // the operator re-submits after servicing
  set_state(PrinterState::kIdle);
}

void PrinterSystem::tick() {
  const runtime::SimTime now = sched_.now();

  // --- Fuser thermal model -------------------------------------------------
  const bool heater_stuck = injector_.is_active(FaultKind::kStuckComponent, "fuser", now);
  double target = (state_ == PrinterState::kWarming || state_ == PrinterState::kPrinting ||
                   state_ == PrinterState::kPaused)
                      ? config_.target_temperature
                      : config_.idle_temperature;
  if (injector_.is_active(FaultKind::kMemoryCorruption, "fuser", now)) {
    target = config_.target_temperature + 60.0;  // corrupted setpoint: overheats
  }
  if (!heater_stuck) {
    if (temperature_ < target) {
      temperature_ = std::min(temperature_ + config_.temp_rate_per_tick, target);
    } else {
      temperature_ = std::max(temperature_ - config_.temp_rate_per_tick, target);
    }
  }
  probes_.update("pr.temperature", temperature_, now);
  probes_.update("pr.paper", std::int64_t{paper_}, now);

  // --- Engine state machine --------------------------------------------------
  switch (state_) {
    case PrinterState::kWarming: {
      if (temperature_ >= config_.target_temperature - 1.0) {
        publish_milestone("engine_ready", {});
        set_state(PrinterState::kPrinting);
        page_deadline_ = now + config_.page_time;
      }
      break;
    }
    case PrinterState::kPrinting: {
      if (queue_.empty()) {
        set_state(PrinterState::kIdle);
        break;
      }
      // A jam is a mechanical crash of the feeder: detected by the
      // engine's sensors, raised as an error.
      if (injector_.is_active(FaultKind::kCrash, "feeder", now)) {
        publish_milestone("jam", {});
        enter_error("paper_jam");
        break;
      }
      // A *stuck* feeder is the silent failure: pages simply stop.
      if (injector_.is_active(FaultKind::kStuckComponent, "feeder", now)) break;
      if (paper_ <= 0) {
        publish_milestone("paper_out", {});
        enter_error("out_of_paper");
        break;
      }
      if (page_deadline_ >= 0 && now >= page_deadline_) {
        PrintJob& job = queue_.front();
        --paper_;
        ++job.printed;
        ++pages_total_;
        publish_milestone("page_printed",
                          {{"job", std::int64_t{job.id}}, {"page", std::int64_t{job.printed}}});
        publish_output("pages_total", std::int64_t{static_cast<std::int64_t>(pages_total_)});
        if (job.printed >= job.pages) {
          publish_milestone("job_done", {{"job", std::int64_t{job.id}}});
          queue_.pop_front();
          if (queue_.empty()) {
            set_state(PrinterState::kIdle);
            page_deadline_ = -1;
            break;
          }
        }
        page_deadline_ = now + config_.page_time;
      }
      break;
    }
    case PrinterState::kIdle:
    case PrinterState::kPaused:
    case PrinterState::kError:
      break;
  }
}

// ------------------------------------------------------------------ spec model

statemachine::StateMachineDef build_printer_spec_model(runtime::SimDuration warmup_time) {
  namespace sm = trader::statemachine;
  (void)warmup_time;  // the model is event-driven; stalls are caught by
                      // the timeliness rules instead of modeled time.
  sm::StateMachineDef def("printer_spec");
  const auto idle = def.add_state("Idle");
  const auto warming = def.add_state("Warming");
  const auto printing = def.add_state("Printing");
  const auto paused = def.add_state("Paused");
  const auto error = def.add_state("Error");
  def.set_top_initial(idle);

  auto emit_state = [](const char* value) -> sm::Action {
    return [value](sm::ActionEnv& env) { env.emit("state", {{"value", std::string(value)}}); };
  };
  def.on_entry(idle, [emit_state](sm::ActionEnv& env) {
    env.vars.set_int("queued", 0);
    auto inner = emit_state("idle");
    inner(env);
  });
  def.on_entry(warming, emit_state("warming"));
  def.on_entry(printing, emit_state("printing"));
  def.on_entry(paused, emit_state("paused"));
  def.on_entry(error, emit_state("error"));

  auto enqueue = [](sm::ActionEnv& env) {
    env.vars.set_int("queued", env.vars.get_int("queued") + 1);
  };
  def.add_transition(idle, warming, "submit", nullptr, enqueue);
  def.add_internal(warming, "submit", nullptr, enqueue);
  def.add_internal(printing, "submit", nullptr, enqueue);
  def.add_internal(paused, "submit", nullptr, enqueue);
  def.add_internal(error, "submit", nullptr, enqueue);  // queued behind the error

  def.add_transition(warming, printing, "engine_ready");

  def.add_internal(printing, "page_printed");  // progress, no state change
  // Job completion: last queued job -> Idle, otherwise keep printing.
  def.add_transition(
      printing, idle, "job_done",
      [](const sm::Context& c, const sm::SmEvent&) { return c.get_int("queued") <= 1; });
  def.add_internal(
      printing, "job_done",
      [](const sm::Context& c, const sm::SmEvent&) { return c.get_int("queued") > 1; },
      [](sm::ActionEnv& env) { env.vars.set_int("queued", env.vars.get_int("queued") - 1); });

  def.add_transition(printing, paused, "pause");
  def.add_transition(paused, printing, "resume");
  def.add_transition(printing, error, "jam");
  def.add_transition(printing, error, "paper_out");
  def.add_transition(error, idle, "clear_error");
  for (sm::StateId s : {warming, printing, paused}) {
    def.add_transition(s, idle, "cancel");
  }
  def.add_internal(idle, "cancel");
  def.add_internal(idle, "load_paper");
  def.add_internal(warming, "load_paper");
  def.add_internal(printing, "load_paper");
  def.add_internal(paused, "load_paper");
  def.add_internal(error, "load_paper");

  return def;
}

std::vector<detection::ResponseTimeRule> printer_response_rules(
    runtime::SimDuration page_deadline, runtime::SimDuration first_page_deadline) {
  std::vector<detection::ResponseTimeRule> rules;

  auto is_cmd = [](const runtime::Event& ev, const char* cmd) {
    return ev.topic == "pr.input" && ev.str_field("cmd") == cmd;
  };
  auto terminal = [](const runtime::Event& ev) {
    if (ev.topic != "pr.output" || ev.name != "state") return false;
    const std::string s = ev.str_field("value");
    return s == "idle" || s == "error" || s == "paused";
  };

  // Page cadence: each printed page must be followed by another page (or
  // a legitimate terminal state) within the deadline.
  rules.push_back(detection::ResponseTimeRule{
      "page-cadence",
      [is_cmd](const runtime::Event& ev) { return is_cmd(ev, "page_printed"); },
      [is_cmd, terminal](const runtime::Event& ev) {
        return is_cmd(ev, "page_printed") || terminal(ev);
      },
      page_deadline});

  // First page: a submitted job must produce output within warmup+slack.
  rules.push_back(detection::ResponseTimeRule{
      "first-page",
      [is_cmd](const runtime::Event& ev) { return is_cmd(ev, "submit"); },
      [is_cmd, terminal](const runtime::Event& ev) {
        return is_cmd(ev, "page_printed") || terminal(ev);
      },
      first_page_deadline});

  return rules;
}

}  // namespace trader::printer
