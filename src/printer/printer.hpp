// Printer/copier SUO — the Octopus follow-up (§5).
//
// "In parallel, the model-based run-time awareness concept is also
// exploited in the domain of printer/copiers at the company Océ in the
// context of the ESI-project Octopus."
//
// A professional printer: job queue, paper feeder, fuser (heater) with a
// temperature control loop, and a print engine producing pages at a
// fixed rate. Awareness hooks mirror the TV's: transport-state spec
// model over "pr.input" commands *and* page milestones (§3 observes
// "relevant inputs, outputs and internal system states"), temperature
// and tray-level range probes, and a page-cadence timeliness rule.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "detection/response_time.hpp"
#include "faults/injector.hpp"
#include "observation/probes.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/definition.hpp"

namespace trader::printer {

enum class PrinterState : std::uint8_t { kIdle, kWarming, kPrinting, kPaused, kError };

const char* to_string(PrinterState s);

struct PrinterConfig {
  runtime::SimDuration tick = runtime::msec(100);
  runtime::SimDuration warmup_time = runtime::sec(4);
  runtime::SimDuration page_time = runtime::msec(500);  ///< 120 pages/min.
  int tray_capacity = 250;
  int initial_paper = 100;
  double idle_temperature = 60.0;
  double target_temperature = 180.0;
  double temp_rate_per_tick = 4.0;  ///< Heating slope (°C per tick).
  std::uint64_t seed = 3;
};

struct PrintJob {
  int id = 0;
  int pages = 0;
  int printed = 0;
};

class PrinterSystem {
 public:
  PrinterSystem(runtime::Scheduler& sched, runtime::EventBus& bus,
                faults::FaultInjector& injector, PrinterConfig config = {});

  void start();

  // --- Operator commands ("pr.input" events) ----------------------------
  int submit_job(int pages);  ///< Returns the job id.
  void pause();
  void resume();
  void cancel();
  void load_paper(int sheets);
  void clear_error();

  // --- Observables --------------------------------------------------------
  PrinterState state() const { return state_; }
  double temperature() const { return temperature_; }
  int paper_level() const { return paper_; }
  int queue_length() const { return static_cast<int>(queue_.size()); }
  const PrintJob* current_job() const { return queue_.empty() ? nullptr : &queue_.front(); }
  std::uint64_t pages_printed_total() const { return pages_total_; }
  const std::string& error_reason() const { return error_reason_; }

  observation::ProbeRegistry& probes() { return probes_; }

 private:
  void command(const std::string& cmd, std::map<std::string, runtime::Value> fields = {});
  void publish_output(const std::string& name, runtime::Value v);
  void publish_milestone(const std::string& name, std::map<std::string, runtime::Value> fields);
  void set_state(PrinterState s);
  void enter_error(const std::string& reason);
  void tick();

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  faults::FaultInjector& injector_;
  PrinterConfig config_;

  PrinterState state_ = PrinterState::kIdle;
  double temperature_;
  int paper_;
  std::deque<PrintJob> queue_;
  int next_job_id_ = 1;
  runtime::SimTime page_deadline_ = -1;  ///< Next page completion time.
  std::uint64_t pages_total_ = 0;
  std::string error_reason_;

  observation::ProbeRegistry probes_;
  std::map<std::string, runtime::Value> last_published_;
};

/// Spec model over "pr.input" (commands + page milestones): states
/// Idle/Warming/Printing/Paused/Error emitting observable "state"; the
/// model counts remaining pages from the submit parameters and page
/// milestones, so job completion is predicted without modeling time.
statemachine::StateMachineDef build_printer_spec_model(
    runtime::SimDuration warmup_time = runtime::sec(4));

/// Timeliness rules: while printing, pages must keep coming (cadence),
/// and a submitted job must start producing pages within warmup + slack.
std::vector<detection::ResponseTimeRule> printer_response_rules(
    runtime::SimDuration page_deadline = runtime::msec(1500),
    runtime::SimDuration first_page_deadline = runtime::sec(8));

}  // namespace trader::printer
