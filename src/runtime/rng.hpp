// Deterministic random number generation.
//
// Every stochastic element in the reproduction (channel jitter, user
// panels, fault arrival times, synthetic program topology) draws from an
// explicitly seeded Rng so that tests and benches are bit-reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace trader::runtime {

/// SplitMix64-based deterministic PRNG.
///
/// Chosen over std::mt19937 because its output is specified here (not by
/// the standard library vendor), tiny, and trivially seedable; the
/// statistical quality is more than sufficient for simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Approximately normal variate via the sum of 12 uniforms
  /// (Irwin-Hall); exact tails are irrelevant for our jitter models and
  /// this keeps the generator allocation-free and branch-predictable.
  double normal(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return mean + stddev * (acc - 6.0);
  }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Fork an independent stream (e.g. one per component) so adding a
  /// consumer does not perturb the draws seen by existing consumers.
  Rng fork() { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

  /// The raw generator state — the whole PRNG is this one word, so a
  /// checkpointed consumer can persist and resume its stream exactly.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t s) { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace trader::runtime
