// Latency channel — the simulated "process boundary".
//
// In the paper's framework (Fig. 2) the SUO and the awareness monitor are
// separate Linux processes connected by Unix domain sockets; observation
// therefore arrives *late and jittered*, which is exactly why the
// Comparator needs deviation thresholds and consecutive-deviation limits
// (§4.3). LatencyChannel reproduces that boundary deterministically:
// configurable base latency, jitter, and drop probability.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/event.hpp"
#include "runtime/rng.hpp"
#include "runtime/scheduler.hpp"

namespace trader::runtime {

/// Configuration of a simulated IPC link.
struct ChannelConfig {
  SimDuration base_latency = usec(200);  ///< Median one-way latency.
  SimDuration jitter = usec(0);          ///< Max extra uniform jitter.
  double drop_probability = 0.0;         ///< Message loss rate (faults).
  bool preserve_order = true;            ///< FIFO even under jitter.
};

/// One-way, event-carrying channel with latency/jitter/loss.
class LatencyChannel {
 public:
  using Sink = std::function<void(const Event&)>;

  LatencyChannel(Scheduler& sched, Rng rng, ChannelConfig config, Sink sink)
      : sched_(sched), rng_(rng), config_(config), sink_(std::move(sink)) {}

  /// Enqueue an event for delayed delivery.
  void send(const Event& ev);

  /// Change the link parameters mid-run (fault injection hook).
  void set_config(const ChannelConfig& c) { config_ = c; }
  const ChannelConfig& config() const { return config_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  Scheduler& sched_;
  Rng rng_;
  ChannelConfig config_;
  Sink sink_;
  SimTime last_delivery_ = 0;  // for FIFO preservation
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace trader::runtime
