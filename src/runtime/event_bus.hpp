// Topic-based publish/subscribe bus.
//
// Mirrors the publish-subscribe coupling used by the middleware approach
// the paper cites ([14] Parekh et al.) and by the Trader framework's
// observer wiring: SUO components publish input/output events; observers
// subscribe by topic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/event.hpp"

namespace trader::runtime {

/// Subscription handle for unsubscribing.
class Subscription {
 public:
  Subscription() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventBus;
  explicit Subscription(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Synchronous topic bus. Delivery order is subscription order, which
/// keeps simulations deterministic.
class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Subscribe to an exact topic. The empty topic subscribes to all.
  Subscription subscribe(const std::string& topic, Handler handler);

  /// Remove a subscription. Safe against stale handles.
  void unsubscribe(Subscription sub);

  /// Deliver an event to topic subscribers, then wildcard subscribers.
  void publish(const Event& ev);

  /// Number of events published over the bus lifetime.
  std::uint64_t published() const { return published_; }

  /// Number of live subscriptions.
  std::size_t subscriber_count() const;

 private:
  struct Entry {
    std::uint64_t id;
    Handler handler;
  };

  std::map<std::string, std::vector<Entry>> topics_;
  std::uint64_t next_id_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace trader::runtime
