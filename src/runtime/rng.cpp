#include "runtime/rng.hpp"

#include <cmath>

namespace trader::runtime {

double Rng::exponential(double mean) {
  // Guard against log(0); uniform() < 1 always holds, but clamp anyway.
  double u = uniform();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

}  // namespace trader::runtime
