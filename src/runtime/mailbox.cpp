#include "runtime/mailbox.hpp"

#include <algorithm>
#include <tuple>

namespace trader::runtime {

void Mailbox::push(MailboxEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  items_.push_back(std::move(entry));
  pushed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<MailboxEntry> Mailbox::drain() {
  std::vector<MailboxEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(items_);
  }
  std::sort(out.begin(), out.end(), [](const MailboxEntry& a, const MailboxEntry& b) {
    return std::tie(a.sent_at, a.source, a.seq) < std::tie(b.sent_at, b.source, b.seq);
  });
  return out;
}

}  // namespace trader::runtime
