#include "runtime/trace_log.hpp"

namespace trader::runtime {

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug:
      return "DEBUG";
    case TraceLevel::kInfo:
      return "INFO";
    case TraceLevel::kWarning:
      return "WARNING";
    case TraceLevel::kError:
      return "ERROR";
  }
  return "?";
}

void TraceLog::log(SimTime time, TraceLevel level, std::string component,
                   std::string message) {
  ++total_;
  records_.push_back(TraceRecord{time, level, std::move(component), std::move(message)});
  if (tap_) tap_(records_.back());
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<TraceRecord> TraceLog::query(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

std::size_t TraceLog::count_at_least(TraceLevel level) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.level >= level) ++n;
  }
  return n;
}

std::size_t TraceLog::count_component(const std::string& component) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.component == component) ++n;
  }
  return n;
}

void TraceLog::clear() { records_.clear(); }

}  // namespace trader::runtime
