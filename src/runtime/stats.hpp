// Lightweight statistics accumulators used by benches and experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace trader::runtime {

/// Streaming accumulator (Welford) for count/mean/min/max/stddev.
class StatAccumulator {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Store-all accumulator for percentiles (detection latency reports).
class PercentileAccumulator {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }

  /// p in [0, 100]; returns 0 when empty.
  double percentile(double p) {
    if (values_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    const double rank = (p / 100.0) * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double median() { return percentile(50.0); }

 private:
  std::vector<double> values_;
  bool sorted_ = true;
};

}  // namespace trader::runtime
