#include "runtime/channel.hpp"

#include <algorithm>

namespace trader::runtime {

void LatencyChannel::send(const Event& ev) {
  ++sent_;
  if (config_.drop_probability > 0.0 && rng_.bernoulli(config_.drop_probability)) {
    ++dropped_;
    return;
  }
  SimDuration delay = config_.base_latency;
  if (config_.jitter > 0) {
    delay += static_cast<SimDuration>(rng_.uniform(0.0, static_cast<double>(config_.jitter)));
  }
  SimTime at = sched_.now() + delay;
  if (config_.preserve_order) {
    at = std::max(at, last_delivery_);
    last_delivery_ = at;
  }
  Event copy = ev;
  sched_.schedule_at(at, [this, copy = std::move(copy)]() mutable {
    ++delivered_;
    copy.timestamp = sched_.now();
    sink_(copy);
  });
}

}  // namespace trader::runtime
