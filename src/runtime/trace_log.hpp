// Trace log — the simulated on-chip trace / logging infrastructure.
//
// §4.1 of the paper exploits hardware debug & trace mechanisms to observe
// the running system. TraceLog is the software equivalent: a bounded,
// queryable record of what happened, used by tests, detectors and the
// diagnosis bench to reconstruct runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::runtime {

/// Severity of a trace record.
enum class TraceLevel : std::uint8_t { kDebug, kInfo, kWarning, kError };

/// Human-readable label for a trace level.
const char* to_string(TraceLevel level);

/// A single trace record.
struct TraceRecord {
  SimTime time = 0;
  TraceLevel level = TraceLevel::kInfo;
  std::string component;
  std::string message;
};

/// Bounded in-memory trace buffer with query helpers.
class TraceLog {
 public:
  /// Live observer of every record as it is logged (before eviction),
  /// used by the testkit golden-trace recorder to capture the stream
  /// even when the bounded buffer later drops it.
  using Tap = std::function<void(const TraceRecord&)>;

  explicit TraceLog(std::size_t capacity = 65536) : capacity_(capacity) {}

  void log(SimTime time, TraceLevel level, std::string component, std::string message);

  /// Install (or clear, with nullptr) the live tap.
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// All retained records, oldest first.
  const std::deque<TraceRecord>& records() const { return records_; }

  /// Records matching a predicate.
  std::vector<TraceRecord> query(const std::function<bool(const TraceRecord&)>& pred) const;

  /// Count of records at `level` or above (within retained window).
  std::size_t count_at_least(TraceLevel level) const;

  /// Count of retained records from a given component.
  std::size_t count_component(const std::string& component) const;

  /// Total records ever logged (including evicted ones).
  std::uint64_t total_logged() const { return total_; }

  void clear();

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  Tap tap_;
  std::uint64_t total_ = 0;
};

}  // namespace trader::runtime
