#include "runtime/event_bus.hpp"

#include <algorithm>

namespace trader::runtime {

Subscription EventBus::subscribe(const std::string& topic, Handler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic].push_back(Entry{id, std::move(handler)});
  return Subscription{id};
}

void EventBus::unsubscribe(Subscription sub) {
  if (!sub.valid()) return;
  for (auto& [topic, entries] : topics_) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) { return e.id == sub.id_; }),
                  entries.end());
  }
}

void EventBus::publish(const Event& ev) {
  ++published_;
  // Copy handler lists so handlers may (un)subscribe during delivery.
  auto deliver = [&](const std::string& topic) {
    auto it = topics_.find(topic);
    if (it == topics_.end()) return;
    const std::vector<Entry> snapshot = it->second;
    for (const auto& e : snapshot) e.handler(ev);
  };
  deliver(ev.topic);
  if (!ev.topic.empty()) deliver("");
}

std::size_t EventBus::subscriber_count() const {
  std::size_t n = 0;
  for (const auto& [topic, entries] : topics_) n += entries.size();
  return n;
}

}  // namespace trader::runtime
