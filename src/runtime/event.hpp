// Events and observable values.
//
// The awareness framework (Fig. 1/2 of the paper) is glued together by
// events: key presses from the remote control, mode changes inside the
// SUO, outputs such as sound level and screen state. An Event is a named
// record with a topic (routing key), a timestamp, and a small set of
// typed fields.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "runtime/sim_time.hpp"

namespace trader::runtime {

/// A typed observable value. Integers cover modes and counters, doubles
/// cover analog quantities (volume level, quality), strings cover
/// symbolic states, bools cover flags.
using Value = std::variant<std::int64_t, double, std::string, bool>;

/// Render a Value for logs and error reports.
std::string to_string(const Value& v);

/// Compare two values and return a numeric deviation:
///  - arithmetic vs arithmetic: |a - b| (bool promoted to 0/1)
///  - string vs string: 0 if equal else 1
///  - mismatched categories: 1 (maximal categorical deviation)
double deviation(const Value& a, const Value& b);

/// True when both values hold arithmetic (int/double/bool) content.
bool both_numeric(const Value& a, const Value& b);

/// An event flowing through the system: SUO inputs, SUO outputs,
/// model outputs, detector notifications.
struct Event {
  std::string topic;   ///< Routing key, e.g. "tv.input", "tv.output".
  std::string name;    ///< Event name, e.g. "key_press", "volume".
  std::map<std::string, Value> fields;
  SimTime timestamp = 0;

  /// Fetch a field, or std::nullopt when absent.
  std::optional<Value> field(const std::string& key) const;

  /// Fetch an integer field with a default.
  std::int64_t int_field(const std::string& key, std::int64_t dflt = 0) const;

  /// Fetch a double field with a default (ints are widened).
  double num_field(const std::string& key, double dflt = 0.0) const;

  /// Fetch a string field with a default.
  std::string str_field(const std::string& key, const std::string& dflt = {}) const;

  /// One-line rendering for logs.
  std::string describe() const;
};

}  // namespace trader::runtime
