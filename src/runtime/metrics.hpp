// Metrics layer: counters, gauges and fixed-bucket latency histograms.
//
// The ArVI working-group report on monitoring and the timed-trace
// matching literature both identify monitoring *overhead* as the
// adoption bottleneck for run-time verification; this registry makes the
// awareness loop's own cost a first-class observable. Every instrument
// is a plain atomic so the hot tick path stays lock-free: the registry
// mutex is taken only at registration time (component construction) and
// at snapshot time. In the sharded fleet each shard owns one registry;
// snapshots from all shards merge into one fleet-wide view that can be
// exported as JSON for the BENCH_* trajectories.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trader::runtime {

/// Monotonic event counter (lock-free increment).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket bounds are immutable after creation so
/// recording is a linear scan over a handful of atomics (no allocation,
/// no locks). Intended for latency samples in nanoseconds.
class Histogram {
 public:
  /// `bounds` are inclusive upper bucket edges, strictly increasing; an
  /// implicit overflow bucket catches everything above the last edge.
  /// Empty bounds select the default latency grid (250ns .. 1s, x4).
  explicit Histogram(std::vector<double> bounds = {});

  void record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Default exponential latency grid in nanoseconds.
  static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram, mergeable across shards.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Bucket-resolution quantile estimate, q in [0, 1].
  double quantile(double q) const;
};

/// Point-in-time copy of a whole registry (or a merge of several).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Merge another snapshot in: counters add, gauges add (per-shard
  /// gauges are occupancy-style, so the fleet view is the sum),
  /// histograms with identical bounds add bucket-wise.
  void merge(const MetricsSnapshot& other);

  std::uint64_t counter(const std::string& name) const;

  /// Canonical "name=value" lines for every counter whose name starts
  /// with one of `prefixes` (all counters when empty), in map order.
  /// Gauges and histograms are excluded on purpose: latency histograms
  /// carry wall-clock samples, which would break run-to-run comparison.
  std::vector<std::string> counter_lines(const std::vector<std::string>& prefixes = {}) const;

  /// Stable FNV-1a fingerprint (16 hex digits) over counter_lines().
  /// Two runs with identical deterministic counters hash identically
  /// regardless of host, shard count or wall-clock timing.
  std::string fingerprint(const std::vector<std::string>& prefixes = {}) const;

  /// Pretty-printed JSON document (stable key order).
  std::string to_json() const;
};

/// Name -> instrument registry. Instruments live as long as the
/// registry; components resolve them once and keep the reference.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;  // registration/snapshot only — never on update
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace trader::runtime
