// Discrete-event scheduler — the heart of the simulated substrate.
//
// The paper's framework runs on Linux with real processes and sockets;
// this reproduction runs the same architecture under virtual time so that
// latency, jitter and overload are controllable experiment parameters
// rather than noise (see DESIGN.md §2, substitution table).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::runtime {

/// Handle for cancelling a scheduled callback.
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class Scheduler;
  explicit TaskHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant fire in FIFO order of
/// scheduling, which keeps runs reproducible across platforms.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `at` (clamped to now).
  TaskHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` to run `delay` after now.
  TaskHandle schedule_after(SimDuration delay, Callback cb);

  /// Schedule `cb` every `period`, first firing after `period`.
  /// Cancel via the returned handle.
  TaskHandle schedule_every(SimDuration period, Callback cb);

  /// Cancel a pending (or periodic) task. Safe to call twice.
  void cancel(TaskHandle h);

  /// Run a single event; returns false when the queue is empty.
  bool step();

  /// Run all events up to and including time `t`, then set now to `t`.
  void run_until(SimTime t);

  /// Run for `d` beyond the current time.
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Drain the queue completely (only safe when no periodic tasks live).
  void run_all();

  /// Number of pending entries (cancelled entries may still be counted
  /// until they drain).
  std::size_t pending() const { return queue_.size(); }

  /// Total callbacks executed, for overhead accounting.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak
    std::uint64_t id;
    Callback cb;
    SimDuration period;  // 0 = one-shot

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool is_cancelled(std::uint64_t id) const;
  void fire(Entry e);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<std::uint64_t> cancelled_;
};

}  // namespace trader::runtime
