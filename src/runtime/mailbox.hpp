// MPSC cross-shard mailbox.
//
// In the sharded fleet each shard owns a private Scheduler + EventBus so
// the hot tick path never takes a lock; the only synchronized structure
// is this mailbox, touched exclusively for events that cross a shard
// boundary. Producers (other shards' worker threads, or the fleet driver
// thread) push under a mutex; the owning shard drains at an epoch
// barrier. Draining sorts by (virtual send time, source id, per-source
// sequence), which makes delivery order a pure function of the virtual
// timeline — never of thread interleaving — and is what keeps fleet runs
// bit-reproducible regardless of shard count.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::runtime {

/// One in-flight cross-shard event.
struct MailboxEntry {
  Event event;
  SimTime sent_at = 0;      ///< Virtual time at the publishing shard.
  std::uint32_t source = 0; ///< Shard index, or Mailbox::kExternalSource.
  std::uint64_t seq = 0;    ///< Per-source monotonic sequence.
};

class Mailbox {
 public:
  /// Producer id for events injected from outside any shard.
  static constexpr std::uint32_t kExternalSource = 0xffffffffu;

  /// Multi-producer push (any thread).
  void push(MailboxEntry entry);

  /// Single-consumer drain: returns all pending entries in deterministic
  /// (sent_at, source, seq) order and empties the box.
  std::vector<MailboxEntry> drain();

  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::vector<MailboxEntry> items_;
  std::atomic<std::uint64_t> pushed_{0};
};

}  // namespace trader::runtime
