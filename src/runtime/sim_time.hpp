// Simulated time for the Trader discrete-event kernel.
//
// All Trader experiments run under virtual time: a signed 64-bit count of
// microseconds since simulation start. Virtual time makes every run fully
// deterministic and lets benches compress hours of "TV usage" into
// milliseconds of wall-clock time.
#pragma once

#include <cstdint>

namespace trader::runtime {

/// Virtual time in microseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in microseconds (same representation as SimTime).
using SimDuration = std::int64_t;

/// Construct a duration from microseconds.
constexpr SimDuration usec(std::int64_t v) { return v; }

/// Construct a duration from milliseconds.
constexpr SimDuration msec(std::int64_t v) { return v * 1000; }

/// Construct a duration from seconds.
constexpr SimDuration sec(std::int64_t v) { return v * 1'000'000; }

/// Convert a duration to fractional milliseconds (for reporting).
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1000.0; }

/// Convert a duration to fractional seconds (for reporting).
constexpr double to_sec(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace trader::runtime
