#include "runtime/scheduler.hpp"

#include <algorithm>

namespace trader::runtime {

TaskHandle Scheduler::schedule_at(SimTime at, Callback cb) {
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{std::max(at, now_), next_seq_++, id, std::move(cb), 0});
  return TaskHandle{id};
}

TaskHandle Scheduler::schedule_after(SimDuration delay, Callback cb) {
  return schedule_at(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
}

TaskHandle Scheduler::schedule_every(SimDuration period, Callback cb) {
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{now_ + period, next_seq_++, id, std::move(cb), period});
  return TaskHandle{id};
}

void Scheduler::cancel(TaskHandle h) {
  if (h.valid()) cancelled_.push_back(h.id_);
}

bool Scheduler::is_cancelled(std::uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

void Scheduler::fire(Entry e) {
  now_ = e.at;
  ++executed_;
  if (e.period > 0) {
    // Re-arm before running so the callback can cancel its own handle.
    Entry next = e;
    next.at = now_ + e.period;
    next.seq = next_seq_++;
    queue_.push(next);
  }
  e.cb();
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (is_cancelled(e.id)) {
      // Drop cancelled one-shots and periodics alike; periodics were
      // re-armed only when fired, so no further cleanup is needed.
      continue;
    }
    fire(std::move(e));
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    Entry e = queue_.top();
    queue_.pop();
    if (is_cancelled(e.id)) continue;
    fire(std::move(e));
  }
  now_ = std::max(now_, t);
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace trader::runtime
