#include "runtime/event.hpp"

#include <cmath>
#include <sstream>

namespace trader::runtime {

namespace {

double as_number(const Value& v, bool& ok) {
  ok = true;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1.0 : 0.0;
  ok = false;
  return 0.0;
}

}  // namespace

std::string to_string(const Value& v) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, bool>) {
          os << (x ? "true" : "false");
        } else {
          os << x;
        }
      },
      v);
  return os.str();
}

bool both_numeric(const Value& a, const Value& b) {
  bool oka = false;
  bool okb = false;
  (void)as_number(a, oka);
  (void)as_number(b, okb);
  return oka && okb;
}

double deviation(const Value& a, const Value& b) {
  bool oka = false;
  bool okb = false;
  const double na = as_number(a, oka);
  const double nb = as_number(b, okb);
  if (oka && okb) return std::abs(na - nb);
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) return (*sa == *sb) ? 0.0 : 1.0;
  return 1.0;  // categorical mismatch
}

std::optional<Value> Event::field(const std::string& key) const {
  auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  return it->second;
}

std::int64_t Event::int_field(const std::string& key, std::int64_t dflt) const {
  auto it = fields.find(key);
  if (it == fields.end()) return dflt;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i;
  if (const auto* d = std::get_if<double>(&it->second)) return static_cast<std::int64_t>(*d);
  if (const auto* b = std::get_if<bool>(&it->second)) return *b ? 1 : 0;
  return dflt;
}

double Event::num_field(const std::string& key, double dflt) const {
  auto it = fields.find(key);
  if (it == fields.end()) return dflt;
  bool ok = false;
  const double n = as_number(it->second, ok);
  return ok ? n : dflt;
}

std::string Event::str_field(const std::string& key, const std::string& dflt) const {
  auto it = fields.find(key);
  if (it == fields.end()) return dflt;
  if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
  return dflt;
}

std::string Event::describe() const {
  std::ostringstream os;
  os << "[" << timestamp << "us] " << topic << "/" << name;
  for (const auto& [k, v] : fields) os << " " << k << "=" << to_string(v);
  return os.str();
}

}  // namespace trader::runtime
