#include "runtime/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace trader::runtime {

// ------------------------------------------------------------------ Histogram

std::vector<double> Histogram::default_latency_bounds() {
  // 250ns, 1us, 4us, ... 1.024s: wide enough for tick latencies on any
  // host while keeping the bucket scan short.
  std::vector<double> bounds;
  for (double edge = 250.0; edge <= 1.1e9; edge *= 4.0) bounds.push_back(edge);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_latency_bounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {}

void Histogram::record(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 cmpxchg loop on some
  // libstdc++ versions; spell it out for portability.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      // Report the bucket's upper edge (overflow bucket: last edge).
      return bounds[std::min(i, bounds.size() - 1)];
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// ------------------------------------------------------------ MetricsSnapshot

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bounds != h.bounds) continue;  // incompatible grids: keep first
    for (std::size_t i = 0; i < mine.buckets.size() && i < h.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

std::vector<std::string> MetricsSnapshot::counter_lines(
    const std::vector<std::string>& prefixes) const {
  std::vector<std::string> lines;
  for (const auto& [name, v] : counters) {
    const bool wanted =
        prefixes.empty() ||
        std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& p) {
          return name.compare(0, p.size(), p) == 0;
        });
    if (wanted) lines.push_back(name + "=" + std::to_string(v));
  }
  return lines;
}

std::string MetricsSnapshot::fingerprint(const std::vector<std::string>& prefixes) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& line : counter_lines(prefixes)) {
    for (unsigned char c : line) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= static_cast<unsigned char>('\n');
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + std::to_string(v);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + json_num(v);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + json_num(h.sum);
    out += ", \"mean\": " + json_num(h.mean());
    out += ", \"p50\": " + json_num(h.quantile(0.50));
    out += ", \"p99\": " + json_num(h.quantile(0.99));
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_num(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

// ------------------------------------------------------------ MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.buckets.resize(hs.bounds.size() + 1);
    for (std::size_t i = 0; i < hs.buckets.size(); ++i) hs.buckets[i] = h->bucket(i);
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

}  // namespace trader::runtime
