#include "perception/impact.hpp"

#include <algorithm>
#include <cmath>

namespace trader::perception {

const char* to_string(RepairUrgency u) {
  switch (u) {
    case RepairUrgency::kImmediate:
      return "immediate";
    case RepairUrgency::kDeferred:
      return "deferred";
    case RepairUrgency::kCosmetic:
      return "cosmetic";
  }
  return "?";
}

void ImpactAssessor::map_observable(const std::string& observable, const std::string& function) {
  observable_to_function_[observable] = function;
}

const ProductFunction* ImpactAssessor::function_named(const std::string& name) const {
  for (const auto& fn : functions_) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

ImpactAssessment ImpactAssessor::assess(const core::ErrorReport& error, UserGroup group,
                                        double full_scale) const {
  ImpactAssessment out;
  auto it = observable_to_function_.find(error.observable);
  const std::string fn_name = it != observable_to_function_.end() ? it->second : fallback_;
  const ProductFunction* fn = function_named(fn_name);
  if (fn == nullptr) {
    // Unknown function: be conservative — treat as deferred mid impact.
    out.function = fn_name;
    out.irritation = 0.4;
    out.urgency = RepairUrgency::kDeferred;
    return out;
  }
  out.function = fn->name;
  out.attribution = fn->typical_attribution;

  FailureStimulus stimulus;
  stimulus.function = fn->name;
  // Categorical mismatches (strings) read as severe; numeric deviations
  // scale against the magnitude the user expected (losing all sound is
  // severity 1.0 no matter the absolute level), bounded by full scale.
  const bool categorical = !runtime::both_numeric(error.expected, error.observed);
  if (categorical) {
    stimulus.severity = 0.8;
  } else {
    const double expected_mag = std::abs(runtime::deviation(error.expected, runtime::Value{0.0}));
    const double observed_mag = std::abs(runtime::deviation(error.observed, runtime::Value{0.0}));
    const double reference =
        std::clamp(std::max(expected_mag, observed_mag), 1.0, std::max(full_scale, 1.0));
    stimulus.severity = std::clamp(error.deviation / reference, 0.0, 1.0);
  }
  stimulus.duration =
      std::max<runtime::SimDuration>(error.detected_at - error.first_deviation_at,
                                     runtime::sec(5));

  // Gate the perception score by severity: the irritation model's
  // importance/usage terms describe the *function*, but a barely
  // perceptible deviation of an important function is still benign.
  out.irritation = model_.irritation(*fn, stimulus, group, fn->typical_attribution) *
                   (0.25 + 0.75 * stimulus.severity);
  if (out.irritation >= thresholds_.immediate_above) {
    out.urgency = RepairUrgency::kImmediate;
  } else if (out.irritation < thresholds_.cosmetic_below) {
    out.urgency = RepairUrgency::kCosmetic;
  } else {
    out.urgency = RepairUrgency::kDeferred;
  }
  return out;
}

ImpactAssessor tv_impact_assessor() {
  ImpactAssessor assessor(tv_functions());
  assessor.map_observable("sound_level", "audio");
  assessor.map_observable("screen_state", "teletext");
  assessor.map_observable("channel", "image_quality");
  assessor.map_observable("source", "image_quality");
  assessor.map_observable("swivel_pos", "swivel");
  assessor.map_observable("powered", "audio");
  assessor.set_fallback("teletext");
  return assessor;
}

}  // namespace trader::perception
