// User perception of reliability (§4.6, DTI work).
//
// "The aim is to capture user-perceived failure severity, to get an
// indication of the level of user-irritation caused by a product
// failure. … the impact of characteristics such as product usage, user
// group, and function importance is investigated. … it turned out that
// also failure attribution has a significant impact": users *state* that
// image quality and the swivel are both important, but under observation
// they tolerate bad image quality (attributed to external sources) while
// a misbehaving swivel (attributed to the product) irritates them.
//
// IrritationModel encodes that mechanism; UserPanel simulates the
// controlled experiments: a panel of users produces stated-importance
// rankings and observed-irritation scores for a set of failure stimuli.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/rng.hpp"
#include "runtime/sim_time.hpp"

namespace trader::perception {

/// User groups from the controlled experiments.
enum class UserGroup : std::uint8_t { kCasual, kEnthusiast, kSenior };

const char* to_string(UserGroup g);

/// Who the user blames for a failure.
enum class Attribution : std::uint8_t { kProduct, kExternal };

const char* to_string(Attribution a);

/// A product function as perceived by users.
struct ProductFunction {
  std::string name;
  double importance = 0.5;      ///< Intrinsic importance [0,1].
  double usage_per_hour = 1.0;  ///< How often the function is exercised.
  /// What users typically blame when this function misbehaves.
  Attribution typical_attribution = Attribution::kProduct;
};

/// A failure presented to a user during an experiment session.
struct FailureStimulus {
  std::string function;
  double severity = 0.5;  ///< Physical degradation [0,1].
  runtime::SimDuration duration = runtime::sec(10);
};

/// Parameters of the irritation mechanism.
struct IrritationParams {
  double importance_weight = 0.45;
  double usage_weight = 0.25;
  double severity_weight = 0.30;
  /// Multiplier on irritation when the user attributes the failure to an
  /// external cause — the §4.6 effect.
  double external_discount = 0.30;
  /// Duration at which irritation saturates.
  runtime::SimDuration duration_saturation = runtime::sec(60);
  /// Group sensitivity multipliers.
  double casual_gain = 0.9;
  double enthusiast_gain = 1.2;
  double senior_gain = 1.0;
};

/// Deterministic irritation scoring.
class IrritationModel {
 public:
  explicit IrritationModel(IrritationParams params = {}) : params_(params) {}

  const IrritationParams& params() const { return params_; }

  /// Irritation in [0,1] for one user-group/function/stimulus triple.
  double irritation(const ProductFunction& fn, const FailureStimulus& stimulus,
                    UserGroup group, Attribution attribution) const;

 private:
  IrritationParams params_;
};

/// Aggregated outcome of a panel experiment for one function.
struct FunctionOutcome {
  std::string function;
  double stated_importance = 0.0;   ///< Mean stated importance (survey).
  double observed_irritation = 0.0; ///< Mean irritation under observation.
  std::size_t stated_rank = 0;      ///< 1 = most important.
  std::size_t observed_rank = 0;    ///< 1 = most irritating.
};

struct PanelResult {
  std::vector<FunctionOutcome> outcomes;

  const FunctionOutcome& of(const std::string& function) const;
};

/// A simulated user panel.
class UserPanel {
 public:
  UserPanel(std::size_t users, std::uint64_t seed, IrritationModel model = IrritationModel{});

  /// Run the two protocols of the controlled experiment:
  /// a stated-importance survey and an observed-irritation session with
  /// one stimulus per function.
  PanelResult run(const std::vector<ProductFunction>& functions,
                  const std::vector<FailureStimulus>& stimuli);

  std::size_t user_count() const { return users_; }

 private:
  UserGroup group_of(std::size_t user) const;

  std::size_t users_;
  runtime::Rng rng_;
  IrritationModel model_;
};

/// The standard TV function set of the §4.6 experiments.
std::vector<ProductFunction> tv_functions();

/// One matching failure stimulus per TV function.
std::vector<FailureStimulus> tv_failure_stimuli();

}  // namespace trader::perception
