// User-impact assessment of run-time errors.
//
// Fig. 1's recovery stage acts "based on the diagnosis results and
// information about the expected impact on the user" — this is where the
// §4.6 perception model feeds back into the §4.5 recovery decision.
// ImpactAssessor maps a detected error onto a product function, scores
// the expected irritation with the IrritationModel, and recommends a
// recovery urgency: a high-impact failure (sound gone) warrants an
// immediate, possibly disruptive repair, while a low-impact one (stale
// teletext in the background) can wait for an idle moment.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/interfaces.hpp"
#include "perception/perception.hpp"

namespace trader::perception {

/// Recommended urgency for repairing a detected error.
enum class RepairUrgency : std::uint8_t {
  kImmediate,  ///< Repair now even if the repair itself is visible.
  kDeferred,   ///< Repair at the next quiet moment (e.g. channel change).
  kCosmetic,   ///< Log only; repair opportunistically.
};

const char* to_string(RepairUrgency u);

struct ImpactAssessment {
  std::string function;          ///< Product function affected.
  double irritation = 0.0;       ///< Expected user irritation [0,1].
  Attribution attribution = Attribution::kProduct;
  RepairUrgency urgency = RepairUrgency::kDeferred;
};

class ImpactAssessor {
 public:
  struct Thresholds {
    double immediate_above = 0.55;
    double cosmetic_below = 0.20;
  };

  ImpactAssessor(std::vector<ProductFunction> functions, IrritationModel model = IrritationModel{},
                 Thresholds thresholds = Thresholds{0.55, 0.20})
      : functions_(std::move(functions)), model_(std::move(model)), thresholds_(thresholds) {}

  /// Map an observable name to a product function (e.g. "sound_level" ->
  /// "audio"). Unmapped observables fall back to `fallback_function`.
  void map_observable(const std::string& observable, const std::string& function);
  void set_fallback(const std::string& function) { fallback_ = function; }

  /// Assess a comparator error for a given user group. The deviation
  /// magnitude (relative to a full-scale reference) sets the stimulus
  /// severity; episode length so far sets its duration.
  ImpactAssessment assess(const core::ErrorReport& error, UserGroup group = UserGroup::kCasual,
                          double full_scale = 100.0) const;

 private:
  const ProductFunction* function_named(const std::string& name) const;

  std::vector<ProductFunction> functions_;
  IrritationModel model_;
  Thresholds thresholds_;
  std::map<std::string, std::string> observable_to_function_;
  std::string fallback_;
};

/// The standard TV mapping: sound_level->audio, screen_state->teletext,
/// channel->image_quality (wrong picture), swivel_pos->swivel,
/// source->image_quality.
ImpactAssessor tv_impact_assessor();

}  // namespace trader::perception
