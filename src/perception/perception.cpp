#include "perception/perception.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trader::perception {

const char* to_string(UserGroup g) {
  switch (g) {
    case UserGroup::kCasual:
      return "casual";
    case UserGroup::kEnthusiast:
      return "enthusiast";
    case UserGroup::kSenior:
      return "senior";
  }
  return "?";
}

const char* to_string(Attribution a) {
  switch (a) {
    case Attribution::kProduct:
      return "product";
    case Attribution::kExternal:
      return "external";
  }
  return "?";
}

double IrritationModel::irritation(const ProductFunction& fn, const FailureStimulus& stimulus,
                                   UserGroup group, Attribution attribution) const {
  // Usage saturates logarithmically: a function used 10× per hour is not
  // 10× as irritating when broken.
  const double usage_factor = std::log1p(fn.usage_per_hour) / std::log1p(10.0);
  const double duration_factor =
      std::min(1.0, static_cast<double>(stimulus.duration) /
                        static_cast<double>(params_.duration_saturation));

  double score = params_.importance_weight * fn.importance +
                 params_.usage_weight * std::min(1.0, usage_factor) +
                 params_.severity_weight * stimulus.severity * (0.5 + 0.5 * duration_factor);

  if (attribution == Attribution::kExternal) score *= params_.external_discount;

  switch (group) {
    case UserGroup::kCasual:
      score *= params_.casual_gain;
      break;
    case UserGroup::kEnthusiast:
      score *= params_.enthusiast_gain;
      break;
    case UserGroup::kSenior:
      score *= params_.senior_gain;
      break;
  }
  return std::clamp(score, 0.0, 1.0);
}

const FunctionOutcome& PanelResult::of(const std::string& function) const {
  for (const auto& o : outcomes) {
    if (o.function == function) return o;
  }
  throw std::out_of_range("no outcome for function: " + function);
}

UserPanel::UserPanel(std::size_t users, std::uint64_t seed, IrritationModel model)
    : users_(users), rng_(seed), model_(std::move(model)) {}

UserGroup UserPanel::group_of(std::size_t user) const {
  // Fixed 50/30/20 mix, deterministic per user index.
  const std::size_t r = (user * 7919) % 10;
  if (r < 5) return UserGroup::kCasual;
  if (r < 8) return UserGroup::kEnthusiast;
  return UserGroup::kSenior;
}

PanelResult UserPanel::run(const std::vector<ProductFunction>& functions,
                           const std::vector<FailureStimulus>& stimuli) {
  PanelResult result;
  result.outcomes.reserve(functions.size());

  for (const auto& fn : functions) {
    const FailureStimulus* stim = nullptr;
    for (const auto& s : stimuli) {
      if (s.function == fn.name) {
        stim = &s;
        break;
      }
    }

    FunctionOutcome outcome;
    outcome.function = fn.name;

    double stated_sum = 0.0;
    double observed_sum = 0.0;
    for (std::size_t u = 0; u < users_; ++u) {
      const UserGroup group = group_of(u);
      // Survey protocol: users state importance; attribution plays no
      // role when *asked* — the §4.6 inversion arises exactly because
      // surveys miss it.
      stated_sum += std::clamp(fn.importance + rng_.normal(0.0, 0.08), 0.0, 1.0);
      if (stim != nullptr) {
        // Observation protocol: most users attribute along the typical
        // line; a minority blames the product anyway.
        Attribution att = fn.typical_attribution;
        if (att == Attribution::kExternal && rng_.bernoulli(0.10)) {
          att = Attribution::kProduct;
        }
        const double noise = rng_.normal(0.0, 0.05);
        observed_sum +=
            std::clamp(model_.irritation(fn, *stim, group, att) + noise, 0.0, 1.0);
      }
    }
    outcome.stated_importance = stated_sum / static_cast<double>(users_);
    outcome.observed_irritation =
        stim != nullptr ? observed_sum / static_cast<double>(users_) : 0.0;
    result.outcomes.push_back(outcome);
  }

  // Rank assignment (1 = highest).
  auto assign_ranks = [&](auto key, auto set_rank) {
    std::vector<std::size_t> idx(result.outcomes.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return key(result.outcomes[a]) > key(result.outcomes[b]);
    });
    for (std::size_t r = 0; r < idx.size(); ++r) set_rank(result.outcomes[idx[r]], r + 1);
  };
  assign_ranks([](const FunctionOutcome& o) { return o.stated_importance; },
               [](FunctionOutcome& o, std::size_t r) { o.stated_rank = r; });
  assign_ranks([](const FunctionOutcome& o) { return o.observed_irritation; },
               [](FunctionOutcome& o, std::size_t r) { o.observed_rank = r; });
  return result;
}

std::vector<ProductFunction> tv_functions() {
  return {
      {"image_quality", 0.92, 60.0, Attribution::kExternal},
      {"swivel", 0.88, 2.0, Attribution::kProduct},
      {"teletext", 0.55, 4.0, Attribution::kProduct},
      {"audio", 0.85, 60.0, Attribution::kProduct},
      {"epg", 0.45, 3.0, Attribution::kProduct},
      {"sleep_timer", 0.25, 0.3, Attribution::kProduct},
  };
}

std::vector<FailureStimulus> tv_failure_stimuli() {
  return {
      {"image_quality", 0.7, runtime::sec(30)},
      {"swivel", 0.8, runtime::sec(10)},
      {"teletext", 0.6, runtime::sec(20)},
      {"audio", 0.7, runtime::sec(15)},
      {"epg", 0.5, runtime::sec(20)},
      {"sleep_timer", 0.6, runtime::sec(5)},
  };
}

}  // namespace trader::perception
