#include "ipc/wire.hpp"

#include <cstring>

namespace trader::ipc {

namespace {

// ------------------------------------------------------------- primitives

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_value(std::vector<std::uint8_t>& out, const runtime::Value& v) {
  put_u8(out, static_cast<std::uint8_t>(v.index()));
  switch (v.index()) {
    case 0:
      put_i64(out, std::get<std::int64_t>(v));
      break;
    case 1: {
      std::uint64_t bits = 0;
      const double d = std::get<double>(v);
      std::memcpy(&bits, &d, sizeof(bits));
      put_u64(out, bits);
      break;
    }
    case 2:
      put_str(out, std::get<std::string>(v));
      break;
    case 3:
      put_u8(out, std::get<bool>(v) ? 1 : 0);
      break;
  }
}

/// Bounds-checked payload reader: every accessor trips `fail` instead
/// of reading past the end, so a malformed length field can never walk
/// the decoder off the buffer.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;
  bool fail = false;

  bool need(std::size_t k) {
    if (fail || n - pos < k) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p[pos]) |
                      static_cast<std::uint16_t>(p[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
  runtime::Value value() {
    const std::uint8_t tag = u8();
    switch (tag) {
      case 0:
        return i64();
      case 1: {
        const std::uint64_t bits = u64();
        double d = 0.0;
        std::memcpy(&d, &bits, sizeof(d));
        return d;
      }
      case 2:
        return str();
      case 3: {
        const std::uint8_t b = u8();
        if (b > 1) fail = true;  // strict: a bool byte is 0 or 1
        return b == 1;
      }
      default:
        fail = true;
        return std::int64_t{0};
    }
  }
  bool done() const { return !fail && pos == n; }
};

}  // namespace

// Non-static: the journal reuses the wire checksum (see wire.hpp).
std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n) {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x01000193u;
  }
  return h;
}

namespace {

void put_event(std::vector<std::uint8_t>& out, const runtime::Event& ev) {
  put_str(out, ev.topic);
  put_str(out, ev.name);
  put_u32(out, static_cast<std::uint32_t>(ev.fields.size()));
  for (const auto& [key, value] : ev.fields) {
    put_str(out, key);
    put_value(out, value);
  }
}

bool read_event(Reader& r, runtime::Event& ev) {
  ev.topic = r.str();
  ev.name = r.str();
  const std::uint32_t count = r.u32();
  if (r.fail || count > kMaxFramePayload) return false;
  for (std::uint32_t i = 0; i < count && !r.fail; ++i) {
    std::string key = r.str();
    runtime::Value value = r.value();
    if (!r.fail) ev.fields.emplace(std::move(key), std::move(value));
  }
  return !r.fail;
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kRecoverAck);
}

/// Recovery actions are strict: give-up (4) is a hub-local verdict and
/// never crosses the wire, so the on-wire action space is exactly the
/// four actuatable rungs of the §5 ladder.
constexpr std::uint8_t kMaxWireRecoveryAction = 3;

void put_spectra(std::vector<std::uint8_t>& out, const Frame& f) {
  put_u32(out, f.block_count);
  put_u32(out, static_cast<std::uint32_t>(f.spectra.size()));
  for (const SpectrumStep& step : f.spectra) {
    put_u8(out, step.error ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(step.blocks.size()));
    for (const std::uint32_t b : step.blocks) put_u32(out, b);
  }
}

/// Spectrum payloads are strict: the error byte is 0/1, ids are
/// strictly ascending and inside the announced block universe — a
/// corrupted spectrum must never feed a phantom block into a ranking.
bool read_spectra(Reader& r, Frame& out) {
  out.block_count = r.u32();
  const std::uint32_t steps = r.u32();
  if (r.fail || steps > kMaxFramePayload) return false;
  out.spectra.reserve(steps);
  for (std::uint32_t s = 0; s < steps && !r.fail; ++s) {
    SpectrumStep step;
    const std::uint8_t err = r.u8();
    if (err > 1) return false;
    step.error = err == 1;
    const std::uint32_t executed = r.u32();
    if (r.fail || executed > kMaxFramePayload) return false;
    step.blocks.reserve(executed);
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < executed; ++i) {
      const std::uint32_t b = r.u32();
      if (r.fail) return false;
      if (b >= out.block_count) return false;
      if (i > 0 && b <= prev) return false;  // strictly ascending
      prev = b;
      step.blocks.push_back(b);
    }
    out.spectra.push_back(std::move(step));
  }
  return !r.fail;
}

/// Decode one payload; returns false on any structural violation
/// (including trailing bytes — a valid frame consumes exactly its
/// announced length).
bool decode_payload(FrameType type, const std::uint8_t* p, std::size_t n, Frame& out) {
  Reader r{p, n};
  switch (type) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
      out.min_version = r.u8();
      out.max_version = r.u8();
      out.detail = r.str();
      break;
    case FrameType::kInputEvent:
    case FrameType::kOutputEvent:
      if (!read_event(r, out.event)) return false;
      // The timestamp rides in the frame header (senders set f.time from
      // ev.timestamp), not the payload — restore it so consumers see the
      // publisher's virtual clock (watermarks, auto-advance).
      out.event.timestamp = out.time;
      break;
    case FrameType::kControl: {
      out.command = r.str();
      const std::uint32_t argc = r.u32();
      if (r.fail || argc > kMaxFramePayload) return false;
      for (std::uint32_t i = 0; i < argc && !r.fail; ++i) {
        std::string key = r.str();
        runtime::Value value = r.value();
        if (!r.fail) out.args.emplace(std::move(key), std::move(value));
      }
      break;
    }
    case FrameType::kControlAck: {
      out.command = r.str();
      const std::uint8_t ok = r.u8();
      if (ok > 1) return false;
      out.ok = ok == 1;
      out.detail = r.str();
      break;
    }
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck:
      out.nonce = r.u64();
      break;
    case FrameType::kShutdown:
      out.detail = r.str();
      break;
    case FrameType::kSpectrum:
      if (!read_spectra(r, out)) return false;
      break;
    case FrameType::kRecover:
      out.action = r.u8();
      if (out.action > kMaxWireRecoveryAction) return false;
      out.token = r.u64();
      out.block = r.u32();
      out.unit = r.str();
      break;
    case FrameType::kRecoverAck: {
      out.action = r.u8();
      if (out.action > kMaxWireRecoveryAction) return false;
      out.token = r.u64();
      const std::uint8_t ok = r.u8();
      if (ok > 1) return false;
      out.ok = ok == 1;
      out.unit = r.str();
      out.detail = r.str();
      break;
    }
  }
  return r.done();
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello-ack";
    case FrameType::kInputEvent:
      return "input-event";
    case FrameType::kOutputEvent:
      return "output-event";
    case FrameType::kControl:
      return "control";
    case FrameType::kControlAck:
      return "control-ack";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kHeartbeatAck:
      return "heartbeat-ack";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kSpectrum:
      return "spectrum";
    case FrameType::kRecover:
      return "recover";
    case FrameType::kRecoverAck:
      return "recover-ack";
  }
  return "?";
}

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMore:
      return "need-more";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kBadVersion:
      return "bad-version";
    case DecodeStatus::kBadType:
      return "bad-type";
    case DecodeStatus::kFrameTooLarge:
      return "frame-too-large";
    case DecodeStatus::kBadChecksum:
      return "bad-checksum";
    case DecodeStatus::kMalformed:
      return "malformed";
  }
  return "?";
}

bool is_decode_error(DecodeStatus s) {
  return s != DecodeStatus::kOk && s != DecodeStatus::kNeedMore;
}

std::uint8_t negotiate_version(std::uint8_t local_min, std::uint8_t local_max,
                               std::uint8_t remote_min, std::uint8_t remote_max) {
  const std::uint8_t lo = local_min > remote_min ? local_min : remote_min;
  const std::uint8_t hi = local_max < remote_max ? local_max : remote_max;
  return lo <= hi ? hi : 0;
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> payload;
  switch (f.type) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
      put_u8(payload, f.min_version);
      put_u8(payload, f.max_version);
      put_str(payload, f.detail);
      break;
    case FrameType::kInputEvent:
    case FrameType::kOutputEvent:
      put_event(payload, f.event);
      break;
    case FrameType::kControl:
      put_str(payload, f.command);
      put_u32(payload, static_cast<std::uint32_t>(f.args.size()));
      for (const auto& [key, value] : f.args) {
        put_str(payload, key);
        put_value(payload, value);
      }
      break;
    case FrameType::kControlAck:
      put_str(payload, f.command);
      put_u8(payload, f.ok ? 1 : 0);
      put_str(payload, f.detail);
      break;
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck:
      put_u64(payload, f.nonce);
      break;
    case FrameType::kShutdown:
      put_str(payload, f.detail);
      break;
    case FrameType::kSpectrum:
      put_spectra(payload, f);
      break;
    case FrameType::kRecover:
      put_u8(payload, f.action);
      put_u64(payload, f.token);
      put_u32(payload, f.block);
      put_str(payload, f.unit);
      break;
    case FrameType::kRecoverAck:
      put_u8(payload, f.action);
      put_u64(payload, f.token);
      put_u8(payload, f.ok ? 1 : 0);
      put_str(payload, f.unit);
      put_str(payload, f.detail);
      break;
  }
  if (payload.size() > kMaxFramePayload) return {};

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kMagic);
  put_u8(out, f.version);
  put_u8(out, static_cast<std::uint8_t>(f.type));
  put_u16(out, 0);  // reserved
  put_u32(out, f.seq);
  put_i64(out, f.time);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, fnv1a32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // fail closed: no bytes accepted after an error
  // Compact consumed prefix before growing (bounded memory per link).
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (poisoned_) return DecodeStatus::kMalformed;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;

  Reader header{h, kHeaderSize};
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t type = header.u8();
  const std::uint16_t reserved = header.u16();
  const std::uint32_t seq = header.u32();
  const std::int64_t time = header.i64();
  const std::uint32_t payload_len = header.u32();
  const std::uint32_t checksum = header.u32();

  auto poison = [&](DecodeStatus s) {
    poisoned_ = true;
    return s;
  };
  if (magic != kMagic) return poison(DecodeStatus::kBadMagic);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    // Hello frames must survive a version skew, or negotiation could
    // never happen; the payload carries the peer's supported range.
    const bool hello = type == static_cast<std::uint8_t>(FrameType::kHello) ||
                       type == static_cast<std::uint8_t>(FrameType::kHelloAck);
    if (!hello) return poison(DecodeStatus::kBadVersion);
  }
  if (!known_type(type)) return poison(DecodeStatus::kBadType);
  if (reserved != 0) return poison(DecodeStatus::kMalformed);
  if (payload_len > kMaxFramePayload) return poison(DecodeStatus::kFrameTooLarge);
  if (avail < kHeaderSize + payload_len) return DecodeStatus::kNeedMore;

  const std::uint8_t* payload = h + kHeaderSize;
  if (fnv1a32(payload, payload_len) != checksum) return poison(DecodeStatus::kBadChecksum);

  Frame f;
  f.type = static_cast<FrameType>(type);
  f.version = version;
  f.seq = seq;
  f.time = time;
  if (!decode_payload(f.type, payload, payload_len, f)) return poison(DecodeStatus::kMalformed);

  pos_ += kHeaderSize + payload_len;
  out = std::move(f);
  return DecodeStatus::kOk;
}

void FrameDecoder::reset() {
  buf_.clear();
  pos_ = 0;
  poisoned_ = false;
}

}  // namespace trader::ipc
