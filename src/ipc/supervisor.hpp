// Process supervision for the out-of-process SUO.
//
// A remote SUO can die (crash, SIGKILL, deploy), hang, or drop off the
// scheduler; the monitor must notice, degrade gracefully, and come
// back without flooding the error stream. ProcessSupervisor is the
// pure state machine behind that policy:
//
//       on_connected                    miss < threshold
//   kDown ------------> kUp <---------------------------- kDegraded
//     ^                  | on_heartbeat_miss                   |
//     |                  v                                     | misses reach
//     |              kDegraded ---------------------------------
//     |                  | threshold reached (link declared dead)
//     | backoff spent    v
//   kConnecting <----- kDown          max_attempts spent -> kFailed
//
// It owns no sockets and no threads: callers (RemoteSuoClient, the
// testkit IPC backend) feed it events and ask it how long to back off.
// Backoff is capped exponential with deterministic seeded jitter, so
// reconnect behaviour is reproducible in tests while still decorrelated
// across real fleet members.
#pragma once

#include <cstdint>

#include "runtime/metrics.hpp"
#include "runtime/rng.hpp"

namespace trader::ipc {

struct SupervisorConfig {
  /// Consecutive heartbeat misses before the link is declared dead.
  int heartbeat_miss_threshold = 3;
  /// First reconnect delay; doubles per failed attempt.
  std::int64_t backoff_initial_ms = 20;
  /// Cap on the reconnect delay.
  std::int64_t backoff_max_ms = 2000;
  /// Multiplicative jitter: delay *= uniform(1 - j, 1 + j).
  double backoff_jitter = 0.2;
  /// Reconnect attempts before giving up for good (0 = unlimited).
  int max_attempts = 0;
  /// Seed of the jitter stream (deterministic per supervisor).
  std::uint64_t jitter_seed = 0x5edc0de;
};

enum class LinkState : std::uint8_t { kDown, kConnecting, kUp, kDegraded, kFailed };

const char* to_string(LinkState s);

/// Copyable snapshot of a supervisor's dynamic state (see
/// ProcessSupervisor::snapshot / restore).
struct SupervisorSnapshot {
  std::uint8_t link_state = 0;
  std::int32_t attempts = 0;
  std::int32_t misses = 0;
  bool was_up = false;
  std::uint64_t outages = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t jitter_rng = 0;  ///< Position in the jitter stream.
};

class ProcessSupervisor {
 public:
  explicit ProcessSupervisor(SupervisorConfig config = {});

  LinkState state() const { return state_; }
  bool up() const { return state_ == LinkState::kUp || state_ == LinkState::kDegraded; }
  bool exhausted() const { return state_ == LinkState::kFailed; }

  /// A connection (or reconnection) completed its handshake.
  void on_connected();

  /// The transport failed (EOF, write error, protocol error, timeout on
  /// a lockstep ack). Counts one outage per up->down transition, which
  /// is what keeps a dead SUO from flooding the error tap.
  void on_disconnected();

  /// A heartbeat ack arrived: clears the miss streak.
  void on_heartbeat_ack();

  /// A heartbeat went unanswered. Returns true when the miss streak
  /// reaches the threshold — the caller must treat the link as dead
  /// (the supervisor transitions itself via on_disconnected()).
  bool on_heartbeat_miss();

  /// Delay to wait before the next reconnect attempt, advancing the
  /// attempt counter. Returns -1 once max_attempts is exhausted (state
  /// becomes kFailed). First attempt after an outage returns 0 — a
  /// freshly restarted SUO should be picked up immediately.
  std::int64_t next_backoff_ms();

  int attempts() const { return attempts_; }
  int consecutive_misses() const { return misses_; }
  std::uint64_t outages() const { return outages_; }
  std::uint64_t reconnects() const { return reconnects_; }

  /// Mirror outage/reconnect/miss counts into "ipc.*" counters.
  void set_metrics(runtime::MetricsRegistry* m);

  /// Full dynamic state as a plain snapshot, so the durable hub can
  /// checkpoint supervisors without this module knowing about the
  /// journal's encoding. Config and metrics wiring are not part of the
  /// snapshot — they belong to the process, not the history.
  SupervisorSnapshot snapshot() const;
  void restore(const SupervisorSnapshot& s);

 private:
  SupervisorConfig config_;
  runtime::Rng jitter_;
  LinkState state_ = LinkState::kDown;
  int attempts_ = 0;       ///< Failed attempts in the current outage.
  int misses_ = 0;
  bool was_up_ = false;
  std::uint64_t outages_ = 0;
  std::uint64_t reconnects_ = 0;
  runtime::Counter* outages_metric_ = nullptr;
  runtime::Counter* reconnects_metric_ = nullptr;
  runtime::Counter* misses_metric_ = nullptr;
};

}  // namespace trader::ipc
