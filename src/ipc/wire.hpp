// Wire protocol for the out-of-process SUO link.
//
// The paper's awareness framework runs the System Under Observation as
// a separate Linux process connected over Unix domain sockets (Fig. 2);
// this module defines the byte-level contract that crosses that
// boundary. Frames are length-prefixed and versioned:
//
//   offset size field
//   0      4    magic 0x54524452 ("TRDR", little-endian)
//   4      1    protocol version
//   5      1    frame type
//   6      2    reserved (must be zero)
//   8      4    sequence number
//   12     8    virtual timestamp (microseconds, signed)
//   20     4    payload length (<= kMaxFramePayload)
//   24     4    payload checksum (FNV-1a 32 over the payload bytes)
//   28     ...  payload
//
// Strings are u32 length + bytes; runtime::Value is a 1-byte tag (the
// variant index) + payload. Protocol v2 adds the kSpectrum frame
// (batched SFL spectra toward the hub, see SpectrumStep below);
// protocol v3 adds the kRecover / kRecoverAck pair (hub-commanded
// recovery actuation on a remote SUO). Peers negotiate the version
// through the kHello [min,max] range exchange and only send feature
// frames on links that negotiated the matching minimum
// (kSpectrumMinVersion / kRecoverMinVersion).
// Decoding fails closed: any malformed
// header or payload poisons the decoder until reset() — a frame is
// either delivered whole and checksum-clean or not at all, so a
// corrupted stream can never leak partial state into the monitor.
// Sequence number and timestamp are deliberately outside the checksum
// footprint only in the sense that the checksum covers the payload;
// header integrity is enforced field-by-field (magic, version range,
// known type, zero reserved bits, bounded length).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::ipc {

inline constexpr std::uint32_t kMagic = 0x54524452;  // "TRDR"
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::uint8_t kProtocolVersion = 3;
/// First protocol version that carries kSpectrum frames. A peer whose
/// negotiated version is lower must not send them (and a v1 decoder
/// would fail closed on the unknown type if it did).
inline constexpr std::uint8_t kSpectrumMinVersion = 2;
/// First protocol version that carries kRecover / kRecoverAck frames.
/// The hub must never send a recovery command to a peer that
/// negotiated lower — a v2 decoder fails closed on the unknown type.
inline constexpr std::uint8_t kRecoverMinVersion = 3;
inline constexpr std::size_t kHeaderSize = 28;
/// Upper bound on payload size; a header announcing more is rejected
/// before any allocation happens (flood protection).
inline constexpr std::size_t kMaxFramePayload = 64 * 1024;

/// Frame taxonomy of the SUO link.
enum class FrameType : std::uint8_t {
  kHello = 1,      ///< Client -> server: version range + peer name.
  kHelloAck,       ///< Server -> client: negotiated version.
  kInputEvent,     ///< SUO input event (user action observed).
  kOutputEvent,    ///< SUO observable update.
  kControl,        ///< Control / recovery command toward the SUO.
  kControlAck,     ///< Command completion (the lockstep sync point).
  kHeartbeat,      ///< Liveness probe (client -> server).
  kHeartbeatAck,   ///< Liveness echo (server -> client).
  kShutdown,       ///< Orderly teardown or handshake rejection.
  kSpectrum,       ///< SUO -> hub: batched SFL spectra (since v2).
  kRecover,        ///< Hub -> SUO: targeted recovery command (since v3).
  kRecoverAck,     ///< SUO -> hub: recovery outcome (since v3).
};

const char* to_string(FrameType t);

/// One program spectrum inside a kSpectrum frame: the sorted-unique ids
/// of the blocks executed during one scenario step, plus whether the
/// step showed an error (§4.4 Zoeteweij et al. — the error-vector bit).
///
/// Payload grammar (strict, fail-closed like every other frame):
///   u32 block_count            id universe; every id must be < this
///   u32 step_count
///   per step: u8  error        0 or 1, anything else is malformed
///             u32 executed     number of block ids
///             u32[executed]    strictly ascending block ids
struct SpectrumStep {
  bool error = false;
  std::vector<std::uint32_t> blocks;  ///< Strictly ascending, < block_count.

  friend bool operator==(const SpectrumStep& a, const SpectrumStep& b) {
    return a.error == b.error && a.blocks == b.blocks;
  }
};

/// kRecover payload grammar (strict, fail-closed):
///   u8  action         recovery::RecoveryAction ordinal; give-up (4)
///                      never crosses the wire — the hub quarantines
///                      locally — so any value >= 4 is malformed
///   u64 token          idempotency token; the ack must echo it
///   u32 block          top suspect block id (SUO resolves component)
///   str unit           hub's belief of the suspect component name
///
/// kRecoverAck payload grammar:
///   u8  action         echoed command action, same < 4 bound
///   u64 token          echoed idempotency token
///   u8  ok             0 or 1, anything else is malformed
///   str unit           echoed unit
///   str detail         free-form outcome note
///
/// One decoded (or to-be-encoded) protocol frame. Only the fields of
/// the frame's type are meaningful; the rest stay default.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::uint8_t version = kProtocolVersion;
  std::uint32_t seq = 0;
  runtime::SimTime time = 0;

  runtime::Event event;                           ///< kInputEvent / kOutputEvent.
  std::string command;                            ///< kControl / kControlAck.
  std::map<std::string, runtime::Value> args;     ///< kControl arguments.
  bool ok = true;                                 ///< kControlAck status.
  std::string detail;                             ///< Ack detail / hello peer / shutdown reason.
  std::uint8_t min_version = kMinProtocolVersion; ///< kHello / kHelloAck.
  std::uint8_t max_version = kProtocolVersion;    ///< kHello / kHelloAck.
  std::uint64_t nonce = 0;                        ///< kHeartbeat / kHeartbeatAck.
  std::uint32_t block_count = 0;                  ///< kSpectrum id universe.
  std::vector<SpectrumStep> spectra;              ///< kSpectrum batch.
  std::uint8_t action = 0;                        ///< kRecover / kRecoverAck ladder rung.
  std::uint64_t token = 0;                        ///< kRecover / kRecoverAck idempotency.
  std::uint32_t block = 0;                        ///< kRecover suspect block id.
  std::string unit;                               ///< kRecover / kRecoverAck component.
};

/// FNV-1a 32-bit over a byte range — the checksum every frame payload
/// carries. Exposed because the hub's WAL and checkpoint files reuse
/// the same integrity primitive: one discipline on the wire and on
/// disk, one set of tests pinning it.
std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t n);

/// Encode a frame. Returns an empty vector when the payload would
/// exceed kMaxFramePayload (the caller counts an encode error — an
/// oversized observable must not tear the stream mid-frame).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Why decoding stopped.
enum class DecodeStatus : std::uint8_t {
  kOk,            ///< A frame was produced.
  kNeedMore,      ///< Partial frame buffered; feed more bytes.
  kBadMagic,
  kBadVersion,    ///< Header version outside [kMinProtocolVersion, kProtocolVersion].
  kBadType,
  kFrameTooLarge,
  kBadChecksum,
  kMalformed,     ///< Reserved bits set or payload structure invalid.
};

const char* to_string(DecodeStatus s);

/// True for the statuses that poison the stream (everything except
/// kOk / kNeedMore).
bool is_decode_error(DecodeStatus s);

/// Highest protocol version both ranges support, or 0 when the ranges
/// are disjoint (handshake must be rejected).
std::uint8_t negotiate_version(std::uint8_t local_min, std::uint8_t local_max,
                               std::uint8_t remote_min, std::uint8_t remote_max);

/// Streaming frame decoder. Feed arbitrary byte chunks; next() yields
/// complete frames. Fails closed: after the first error status the
/// decoder refuses further work until reset(), because a framing error
/// means byte alignment is lost and everything after it is garbage.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t n);

  /// Decode the next buffered frame into `out`. kOk fills `out`;
  /// kNeedMore leaves it untouched; an error poisons the decoder.
  DecodeStatus next(Frame& out);

  bool poisoned() const { return poisoned_; }
  std::size_t buffered() const { return buf_.size() - pos_; }
  void reset();

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace trader::ipc
