#include "ipc/supervisor.hpp"

#include <algorithm>

namespace trader::ipc {

const char* to_string(LinkState s) {
  switch (s) {
    case LinkState::kDown:
      return "down";
    case LinkState::kConnecting:
      return "connecting";
    case LinkState::kUp:
      return "up";
    case LinkState::kDegraded:
      return "degraded";
    case LinkState::kFailed:
      return "failed";
  }
  return "?";
}

ProcessSupervisor::ProcessSupervisor(SupervisorConfig config)
    : config_(config), jitter_(config.jitter_seed) {
  if (config_.heartbeat_miss_threshold < 1) config_.heartbeat_miss_threshold = 1;
  if (config_.backoff_initial_ms < 1) config_.backoff_initial_ms = 1;
  if (config_.backoff_max_ms < config_.backoff_initial_ms) {
    config_.backoff_max_ms = config_.backoff_initial_ms;
  }
  config_.backoff_jitter = std::clamp(config_.backoff_jitter, 0.0, 0.9);
}

void ProcessSupervisor::on_connected() {
  if (state_ == LinkState::kUp) return;
  if (was_up_) {
    ++reconnects_;
    if (reconnects_metric_ != nullptr) reconnects_metric_->inc();
  }
  was_up_ = true;
  state_ = LinkState::kUp;
  attempts_ = 0;
  misses_ = 0;
}

void ProcessSupervisor::on_disconnected() {
  if (state_ == LinkState::kFailed) return;
  if (up()) {
    ++outages_;
    if (outages_metric_ != nullptr) outages_metric_->inc();
  }
  state_ = LinkState::kDown;
  misses_ = 0;
  attempts_ = 0;
}

void ProcessSupervisor::on_heartbeat_ack() {
  misses_ = 0;
  if (state_ == LinkState::kDegraded) state_ = LinkState::kUp;
}

bool ProcessSupervisor::on_heartbeat_miss() {
  if (!up()) return false;
  ++misses_;
  if (misses_metric_ != nullptr) misses_metric_->inc();
  if (misses_ >= config_.heartbeat_miss_threshold) {
    on_disconnected();
    return true;
  }
  state_ = LinkState::kDegraded;
  return false;
}

std::int64_t ProcessSupervisor::next_backoff_ms() {
  if (state_ == LinkState::kFailed) return -1;
  if (config_.max_attempts > 0 && attempts_ >= config_.max_attempts) {
    state_ = LinkState::kFailed;
    return -1;
  }
  const int attempt = attempts_++;
  state_ = LinkState::kConnecting;
  if (attempt == 0) return 0;  // probe a freshly restarted SUO immediately

  std::int64_t delay = config_.backoff_initial_ms;
  for (int i = 1; i < attempt && delay < config_.backoff_max_ms; ++i) delay *= 2;
  delay = std::min(delay, config_.backoff_max_ms);
  const double factor = jitter_.uniform(1.0 - config_.backoff_jitter,
                                        1.0 + config_.backoff_jitter);
  delay = std::max<std::int64_t>(1, static_cast<std::int64_t>(delay * factor));
  return std::min(delay, config_.backoff_max_ms * 2);
}

SupervisorSnapshot ProcessSupervisor::snapshot() const {
  SupervisorSnapshot s;
  s.link_state = static_cast<std::uint8_t>(state_);
  s.attempts = attempts_;
  s.misses = misses_;
  s.was_up = was_up_;
  s.outages = outages_;
  s.reconnects = reconnects_;
  s.jitter_rng = jitter_.state();
  return s;
}

void ProcessSupervisor::restore(const SupervisorSnapshot& s) {
  state_ = s.link_state <= static_cast<std::uint8_t>(LinkState::kFailed)
               ? static_cast<LinkState>(s.link_state)
               : LinkState::kDown;
  attempts_ = s.attempts;
  misses_ = s.misses;
  was_up_ = s.was_up;
  outages_ = s.outages;
  reconnects_ = s.reconnects;
  jitter_.set_state(s.jitter_rng);
}

void ProcessSupervisor::set_metrics(runtime::MetricsRegistry* m) {
  if (m == nullptr) {
    outages_metric_ = reconnects_metric_ = misses_metric_ = nullptr;
    return;
  }
  outages_metric_ = &m->counter("ipc.outages");
  reconnects_metric_ = &m->counter("ipc.reconnects");
  misses_metric_ = &m->counter("ipc.heartbeat_misses");
}

}  // namespace trader::ipc
