// Link-gated model wrapper: graceful degradation without core changes.
//
// While the remote SUO is unreachable, observations go stale; comparing
// a live model against a frozen observation table would flood the error
// stream with false alarms — exactly the §4.3 over-eager-comparator
// failure mode. The paper's escape hatch already exists in the core
// contract: IModelImpl::comparison_enabled (IEnableCompare) lets the
// model suppress comparison while the system is legitimately "between
// modes". LinkGatedModel reuses it for the process boundary: it wraps
// any model and forces comparison_enabled() to false while the shared
// link gate is down, so the Comparator quiesces (counting suppressions)
// instead of reporting nonsense — and the outage itself is reported
// exactly once through the Controller's error tap by the supervision
// layer.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

#include "core/interfaces.hpp"

namespace trader::ipc {

class LinkGatedModel : public core::IModelImpl {
 public:
  LinkGatedModel(std::unique_ptr<core::IModelImpl> inner,
                 std::shared_ptr<const std::atomic<bool>> link_up)
      : inner_(std::move(inner)), link_up_(std::move(link_up)) {}

  void start(runtime::SimTime now) override { inner_->start(now); }
  bool dispatch(const statemachine::SmEvent& ev, runtime::SimTime now) override {
    return inner_->dispatch(ev, now);
  }
  void advance_time(runtime::SimTime now) override { inner_->advance_time(now); }
  std::vector<statemachine::ModelOutput> drain_outputs() override {
    return inner_->drain_outputs();
  }
  bool comparison_enabled(const std::string& observable) const override {
    if (link_up_ != nullptr && !link_up_->load(std::memory_order_relaxed)) return false;
    return inner_->comparison_enabled(observable);
  }
  std::string state_name() const override { return inner_->state_name(); }

  core::IModelImpl& inner() { return *inner_; }

 private:
  std::unique_ptr<core::IModelImpl> inner_;
  std::shared_ptr<const std::atomic<bool>> link_up_;
};

}  // namespace trader::ipc
