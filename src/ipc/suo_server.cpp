#include "ipc/suo_server.hpp"

#include <unistd.h>

#include "tv/keys.hpp"

namespace trader::ipc {

namespace {

runtime::Value arg_or(const Frame& f, const std::string& key, runtime::Value dflt) {
  const auto it = f.args.find(key);
  return it != f.args.end() ? it->second : dflt;
}

std::int64_t int_arg(const Frame& f, const std::string& key, std::int64_t dflt = 0) {
  const auto v = arg_or(f, key, dflt);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  return dflt;
}

std::string str_arg(const Frame& f, const std::string& key) {
  const auto it = f.args.find(key);
  if (it == f.args.end()) return {};
  if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
  return {};
}

double num_arg(const Frame& f, const std::string& key, double dflt = 0.0) {
  const auto it = f.args.find(key);
  if (it == f.args.end()) return dflt;
  if (const auto* d = std::get_if<double>(&it->second)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return static_cast<double>(*i);
  return dflt;
}

}  // namespace

SuoServer::SuoServer(SuoServerConfig config) : config_(std::move(config)) {}

SuoServer::~SuoServer() = default;

void SuoServer::initialize() {
  if (initialized_) return;
  injector_ = std::make_unique<faults::FaultInjector>(runtime::Rng(config_.injector_seed));
  tv_ = std::make_unique<tv::TvSystem>(sched_, bus_, *injector_, config_.tv);
  bus_.subscribe("tv.input",
                 [this](const runtime::Event& ev) { forward_event(ev, FrameType::kInputEvent); });
  bus_.subscribe("tv.output",
                 [this](const runtime::Event& ev) { forward_event(ev, FrameType::kOutputEvent); });
  initialized_ = true;
  if (trace_ != nullptr) {
    trace_->log(sched_.now(), runtime::TraceLevel::kInfo, "ipc.server", "initialized");
  }
}

void SuoServer::start(runtime::SimTime now) {
  (void)now;
  if (!initialized_) initialize();
  if (running_) return;
  if (!tv_started_) {
    tv_->start();  // schedule frame ticks exactly once per process
    tv_started_ = true;
  }
  running_ = true;
}

void SuoServer::stop() { running_ = false; }

void SuoServer::forward_event(const runtime::Event& ev, FrameType type) {
  if (peer_ == nullptr || !peer_->valid()) return;
  Frame f;
  f.type = type;
  f.seq = ++seq_;
  f.time = sched_.now();
  f.event = ev;
  f.event.timestamp = sched_.now();
  peer_->send(f);
}

bool SuoServer::handshake(FramedSocket& sock) {
  Frame hello;
  const auto status = sock.recv(hello, config_.handshake_timeout_ms);
  if (status != FramedSocket::RecvStatus::kFrame || hello.type != FrameType::kHello) {
    return false;
  }
  const std::uint8_t version = negotiate_version(config_.min_version, config_.max_version,
                                                 hello.min_version, hello.max_version);
  if (version == 0) {
    Frame reject;
    reject.type = FrameType::kShutdown;
    reject.detail = "version mismatch";
    sock.send(reject);
    if (trace_ != nullptr) {
      trace_->log(sched_.now(), runtime::TraceLevel::kWarning, "ipc.server",
                  "handshake rejected: no common protocol version");
    }
    return false;
  }
  Frame ack;
  ack.type = FrameType::kHelloAck;
  ack.version = version;
  ack.min_version = config_.min_version;
  ack.max_version = config_.max_version;
  ack.detail = config_.peer_name;
  return sock.send(ack);
}

bool SuoServer::handle_control(FramedSocket& sock, const Frame& f) {
  ++stats_.controls;
  Frame ack;
  ack.type = FrameType::kControlAck;
  ack.command = f.command;
  ack.seq = ++seq_;

  if (f.command == "initialize") {
    initialize();
  } else if (f.command == "start") {
    start(sched_.now());
  } else if (f.command == "stop") {
    stop();
  } else if (f.command == "press") {
    ++stats_.presses;
    const auto key = tv::key_from_string(str_arg(f, "key"));
    if (key.has_value() && running_) {
      tv_->press(*key);
    } else {
      ack.ok = false;
      ack.detail = running_ ? "unknown key" : "not running";
      ++stats_.rejected;
    }
  } else if (f.command == "advance") {
    ++stats_.advances;
    const runtime::SimTime to = int_arg(f, "to", sched_.now());
    // A stopped SUO freezes virtual time: frame processing is paused
    // until start() — the ack still closes the lockstep round-trip.
    if (running_ && to > sched_.now()) sched_.run_until(to);
  } else if (f.command == "inject") {
    faults::FaultSpec spec;
    spec.kind = static_cast<faults::FaultKind>(int_arg(f, "kind"));
    spec.target = str_arg(f, "target");
    spec.activate_at = int_arg(f, "at");
    spec.duration = int_arg(f, "duration");
    spec.intensity = num_arg(f, "intensity", 1.0);
    injector_->schedule(spec);
  } else if (f.command == "restart_component") {
    tv_->restart_component(str_arg(f, "name"));
  } else if (f.command == "snapshot") {
    // Resync hook for reconnecting observers: replay the full output
    // state through the forwarding tap before the ack lands.
    tv_->republish_outputs();
  } else if (f.command == "shutdown") {
    ack.detail = "bye";
    sock.send(ack);
    return false;
  } else {
    ack.ok = false;
    ack.detail = "unknown command";
    ++stats_.rejected;
  }

  ack.time = sched_.now();
  sock.send(ack);
  return true;
}

SuoServer::ServeResult SuoServer::serve(FramedSocket& sock) {
  if (!initialized_) initialize();
  if (metrics_ != nullptr) sock.set_metrics(metrics_);
  peer_ = &sock;
  if (trace_ != nullptr) {
    trace_->log(sched_.now(), runtime::TraceLevel::kInfo, "ipc.server", "session open");
  }

  auto finish = [&](ServeResult r, const char* why) {
    if (trace_ != nullptr) {
      trace_->log(sched_.now(), runtime::TraceLevel::kInfo, "ipc.server",
                  std::string("session closed: ") + why);
    }
    peer_ = nullptr;
    return r;
  };

  if (!handshake(sock)) return finish(ServeResult::kHandshakeFailed, "handshake");

  for (;;) {
    Frame f;
    switch (sock.recv(f, config_.read_timeout_ms)) {
      case FramedSocket::RecvStatus::kTimeout:
        continue;  // idle link; liveness is the client's heartbeat job
      case FramedSocket::RecvStatus::kClosed:
        return finish(ServeResult::kDisconnect, "peer gone");
      case FramedSocket::RecvStatus::kProtocolError:
        return finish(ServeResult::kProtocolError, to_string(sock.last_decode_status()));
      case FramedSocket::RecvStatus::kFrame:
        break;
    }
    switch (f.type) {
      case FrameType::kHeartbeat: {
        ++stats_.heartbeats;
        Frame ack;
        ack.type = FrameType::kHeartbeatAck;
        ack.nonce = f.nonce;
        ack.seq = ++seq_;
        ack.time = sched_.now();
        sock.send(ack);
        break;
      }
      case FrameType::kControl:
        if (!handle_control(sock, f)) return finish(ServeResult::kShutdown, "shutdown");
        break;
      case FrameType::kShutdown:
        return finish(ServeResult::kShutdown, "peer shutdown");
      default: {
        // Servers never accept event frames — fail closed rather than
        // let a confused peer feed observations back into the SUO.
        ++stats_.rejected;
        Frame reject;
        reject.type = FrameType::kShutdown;
        reject.detail = std::string("unexpected frame: ") + to_string(f.type);
        sock.send(reject);
        return finish(ServeResult::kProtocolError, "unexpected frame");
      }
    }
  }
}

int run_suo_host(const std::string& path, SuoServerConfig config, std::size_t max_sessions) {
  const int listener = listen_unix(path);
  if (listener < 0) return 1;

  SuoServer server(config);
  server.initialize();

  std::size_t sessions = 0;
  bool shutdown = false;
  while (!shutdown && (max_sessions == 0 || sessions < max_sessions)) {
    const int fd = accept_unix(listener, 1000);
    if (fd < 0) continue;  // poll timeout; keep waiting for a monitor
    ++sessions;
    FramedSocket sock(fd);
    shutdown = server.serve(sock) == SuoServer::ServeResult::kShutdown;
  }
  ::close(listener);
  unlink_unix(path);
  return 0;
}

}  // namespace trader::ipc
