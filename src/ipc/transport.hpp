// Framed socket transport for the SUO link.
//
// Two deployment shapes, one code path:
//   * AF_UNIX filesystem sockets — the paper's real process boundary
//     (suo_host in one process, the monitor in another);
//   * socketpair(AF_UNIX) — both ends in one process, so tier-1 tests
//     and the testkit's IPC campaign backend stay hermetic and fast
//     while still exercising the real kernel stream path and the full
//     encode/decode machinery.
//
// FramedSocket owns the fd, speaks whole frames (wire.hpp), and mirrors
// its traffic into "ipc.*" metrics: frames/bytes in both directions
// plus encode/decode error counters. All ipc.* instruments are
// wall-clock- and kernel-timing-dependent, so they are intentionally
// excluded from golden-trace fingerprints (see testkit/golden_trace.hpp).
#pragma once

#include <sys/uio.h>

#include <string>
#include <utility>

#include "ipc/wire.hpp"
#include "runtime/metrics.hpp"

namespace trader::ipc {

// ---------------------------------------------------------------------------
// Shared fd-level I/O. One EINTR/EAGAIN policy for every socket user:
// the blocking FramedSocket path and the hub's nonblocking event loop
// call the same helpers instead of each reimplementing errno handling.

enum class IoStatus : std::uint8_t {
  kOk,          ///< `n` bytes transferred (n may be < requested: partial).
  kWouldBlock,  ///< Nonblocking fd has no capacity/data right now (n == 0).
  kClosed,      ///< Orderly EOF (reads) or EPIPE/ECONNRESET (writes).
  kError,       ///< Unrecoverable errno; treat the fd as dead.
};

/// Set or clear O_NONBLOCK. Returns false on fcntl failure.
bool set_nonblocking(int fd, bool on);

/// One read(2) with EINTR retry. kOk fills `n` (>= 1).
IoStatus read_some(int fd, void* buf, std::size_t cap, std::size_t& n);

/// One send(2) (MSG_NOSIGNAL) with EINTR retry; kOk may be a partial
/// write — callers own the resume-from-offset loop.
IoStatus write_some(int fd, const void* data, std::size_t len, std::size_t& n);

/// Gathered write of up to `iovcnt` buffers (the hub's coalesced queue
/// flush). Same partial-write contract as write_some.
IoStatus writev_some(int fd, const iovec* iov, int iovcnt, std::size_t& n);

/// A connected stream socket speaking length-prefixed frames.
class FramedSocket {
 public:
  FramedSocket() = default;
  explicit FramedSocket(int fd) : fd_(fd) {}
  ~FramedSocket();

  FramedSocket(FramedSocket&& other) noexcept;
  FramedSocket& operator=(FramedSocket&& other) noexcept;
  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Relinquish ownership of the fd without closing it (handing a
  /// pre-connected socket to a RemoteSuoClient connector).
  int release() {
    const int fd = fd_;
    fd_ = -1;
    decoder_.reset();
    return fd;
  }

  /// Resolve ipc.* instruments in `m` (nullptr detaches).
  void set_metrics(runtime::MetricsRegistry* m);

  /// Write one frame fully. False means the peer is gone (EPIPE /
  /// reset) or the frame failed to encode; the socket is closed on a
  /// write error so the caller sees a dead link, not a torn stream.
  bool send(const Frame& f);

  enum class RecvStatus : std::uint8_t {
    kFrame,          ///< `out` holds a frame.
    kTimeout,        ///< Nothing complete within the timeout.
    kClosed,         ///< Orderly EOF or connection reset.
    kProtocolError,  ///< Decode failure — stream poisoned, socket closed.
  };

  /// Read until one whole frame is available or `timeout_ms` elapses.
  /// timeout_ms == 0 polls: it drains only what is already readable.
  RecvStatus recv(Frame& out, int timeout_ms);

  /// Status of the last decode attempt (diagnostics for protocol errors).
  DecodeStatus last_decode_status() const { return last_status_; }

  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  DecodeStatus last_status_ = DecodeStatus::kNeedMore;
  runtime::Counter* frames_sent_ = nullptr;
  runtime::Counter* frames_received_ = nullptr;
  runtime::Counter* bytes_sent_ = nullptr;
  runtime::Counter* bytes_received_ = nullptr;
  runtime::Counter* encode_errors_ = nullptr;
  runtime::Counter* decode_errors_ = nullptr;
};

/// Connected in-process pair (socketpair(AF_UNIX, SOCK_STREAM)).
std::pair<FramedSocket, FramedSocket> socketpair_transport();

/// Bind + listen on a Unix domain socket path. A stale file at `path`
/// is unlinked first. Paths starting with '@' use the Linux abstract
/// namespace (no filesystem entry, auto-cleanup). Returns the listening
/// fd, or -1 on error.
int listen_unix(const std::string& path, int backlog = 4);

/// Accept one connection, waiting up to `timeout_ms` (-1 = forever).
/// Returns the connected fd, or -1 on timeout/error.
int accept_unix(int listen_fd, int timeout_ms);

/// Connect to a Unix domain socket path. Returns fd or -1.
int connect_unix(const std::string& path);

/// Connect with retries until `timeout_ms` elapses — covers the race
/// between spawning a suo_host and its listener coming up.
int connect_unix_retry(const std::string& path, int timeout_ms);

/// Remove a filesystem socket path (no-op for abstract '@' paths).
void unlink_unix(const std::string& path);

}  // namespace trader::ipc
