// RemoteSuoClient: the monitor-side adapter for an out-of-process SUO.
//
// Implements the same observer-facing contract as an in-process
// TvSystem — events appear on the monitor's own event bus under their
// original topics, and lifecycle follows core::IControl — so a
// MonitorBuilder-built monitor points at a remote SUO with zero core
// changes: subscribe to "tv.input"/"tv.output" as always, wrap the spec
// model in LinkGatedModel, done.
//
// Virtual time runs in lockstep: advance_to(t) tells the server to run
// its scheduler to t, republishes every event frame that comes back
// (stamped with server virtual time), waits for the control ack — the
// guarantee that nothing before t is still in flight — and only then
// runs the local scheduler to t. Wall-clock round-trip latency of each
// lockstep exchange lands in the "ipc.rtt_ns" histogram.
//
// Supervision: any transport failure (send error, EOF, ack timeout,
// heartbeat miss streak) declares the link dead exactly once — the
// shared gate flips (quiescing comparators via LinkGatedModel), a
// single synthetic ErrorReport on observable "ipc.link" goes to the
// attached IErrorNotify (typically the monitor's Controller, so the
// outage lands in the error list, the error tap, and recovery), and
// reconnect attempts follow the supervisor's capped exponential backoff
// with jitter. After a reconnect the client replays its lifecycle
// (initialize/start) against the fresh SUO process and requests a
// "snapshot" resync.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/interfaces.hpp"
#include "faults/fault.hpp"
#include "ipc/supervisor.hpp"
#include "ipc/transport.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace_log.hpp"
#include "tv/keys.hpp"

namespace trader::ipc {

struct RemoteSuoConfig {
  std::uint8_t min_version = kMinProtocolVersion;
  std::uint8_t max_version = kProtocolVersion;
  /// Timeout for a lockstep control ack; expiry counts as link death
  /// (the SUO is hung or gone — indistinguishable from outside).
  int ack_timeout_ms = 2000;
  /// Timeout for one heartbeat round-trip (a miss, not yet a death).
  int heartbeat_timeout_ms = 200;
  /// Sleep between reconnect attempts (false lets tests drive pacing).
  bool backoff_sleep = true;
  SupervisorConfig supervisor;
  std::string peer_name = "monitor";
};

class RemoteSuoClient : public core::IControl {
 public:
  /// Produces a connected fd to the SUO endpoint, or -1. Called for the
  /// initial connection and for every reconnect attempt.
  using Connector = std::function<int()>;

  RemoteSuoClient(runtime::Scheduler& sched, runtime::EventBus& bus, Connector connector,
                  RemoteSuoConfig config = {});

  // IControl — idempotent: repeated calls at any stage are no-ops, and
  // the initialize/start/stop sequence may repeat (core contract).
  void initialize() override;
  void start(runtime::SimTime now) override;
  void stop() override;

  // --- SUO driving (all false when the link is down) -------------------
  bool press(tv::Key key);
  /// Lockstep advance of remote and local virtual time to `t`. On link
  /// failure the local scheduler still advances (degraded mode) so the
  /// monitor's own timeline never stalls on a dead SUO.
  bool advance_to(runtime::SimTime t);
  /// Schedule a fault inside the remote SUO's injector.
  bool inject(const faults::FaultSpec& spec);
  /// Restart a crashed component of the remote set (§4.5 recovery).
  bool restart_component(const std::string& name);
  /// Ask the server to replay its full output state (observer resync).
  bool request_snapshot();
  /// One heartbeat round-trip; false = miss (supervisor notified).
  bool heartbeat();
  /// Orderly remote teardown ("shutdown" command).
  bool shutdown_remote();

  /// One reconnect attempt honouring the supervisor's backoff. Safe to
  /// call in a loop; true once the link is back up.
  bool try_reconnect();

  bool link_up() const { return supervisor_.up() && sock_.valid(); }
  const ProcessSupervisor& supervisor() const { return supervisor_; }
  /// The shared comparison gate for LinkGatedModel wrapping.
  std::shared_ptr<const std::atomic<bool>> gate() const { return gate_; }
  std::uint8_t negotiated_version() const { return negotiated_version_; }
  std::size_t outage_reports() const { return outage_reports_; }

  /// Receiver of the once-per-outage "ipc.link" ErrorReport — wire the
  /// monitor's Controller here so outages reach its error tap.
  void set_error_notify(core::IErrorNotify* notify) { notify_ = notify; }
  void set_metrics(runtime::MetricsRegistry* m);
  void set_trace(runtime::TraceLog* t) { trace_ = t; }

 private:
  bool connect_and_handshake();
  /// Send a control command and pump frames until its ack (the lockstep
  /// sync point). Event frames seen on the way are republished.
  bool roundtrip(const std::string& command,
                 std::map<std::string, runtime::Value> args = {});
  void republish(const Frame& f);
  void on_link_lost(const char* why);

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  Connector connector_;
  RemoteSuoConfig config_;
  ProcessSupervisor supervisor_;
  FramedSocket sock_;
  std::shared_ptr<std::atomic<bool>> gate_;
  core::IErrorNotify* notify_ = nullptr;
  runtime::MetricsRegistry* metrics_ = nullptr;
  runtime::TraceLog* trace_ = nullptr;
  runtime::Histogram* rtt_metric_ = nullptr;
  std::uint32_t seq_ = 0;
  std::uint64_t next_nonce_ = 1;
  std::uint8_t negotiated_version_ = 0;
  std::size_t outage_reports_ = 0;
  bool initialized_ = false;
  bool running_ = false;
};

}  // namespace trader::ipc
