#include "ipc/remote_suo.hpp"

#include <chrono>
#include <thread>

namespace trader::ipc {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RemoteSuoClient::RemoteSuoClient(runtime::Scheduler& sched, runtime::EventBus& bus,
                                 Connector connector, RemoteSuoConfig config)
    : sched_(sched),
      bus_(bus),
      connector_(std::move(connector)),
      config_(std::move(config)),
      supervisor_(config_.supervisor),
      gate_(std::make_shared<std::atomic<bool>>(false)) {}

void RemoteSuoClient::set_metrics(runtime::MetricsRegistry* m) {
  metrics_ = m;
  rtt_metric_ = m != nullptr ? &m->histogram("ipc.rtt_ns") : nullptr;
  supervisor_.set_metrics(m);
  if (sock_.valid()) sock_.set_metrics(m);
}

bool RemoteSuoClient::connect_and_handshake() {
  // A failed attempt leaves the supervisor in kConnecting on purpose:
  // next_backoff_ms() already advanced the attempt counter, and only a
  // completed handshake (on_connected) resets it.
  const int fd = connector_ ? connector_() : -1;
  if (fd < 0) return false;
  sock_ = FramedSocket(fd);
  if (metrics_ != nullptr) sock_.set_metrics(metrics_);

  Frame hello;
  hello.type = FrameType::kHello;
  hello.seq = ++seq_;
  hello.min_version = config_.min_version;
  hello.max_version = config_.max_version;
  hello.detail = config_.peer_name;
  if (!sock_.send(hello)) {
    sock_.close();
    return false;
  }

  Frame ack;
  if (sock_.recv(ack, config_.ack_timeout_ms) != FramedSocket::RecvStatus::kFrame ||
      ack.type != FrameType::kHelloAck) {
    sock_.close();
    if (trace_ != nullptr) {
      trace_->log(sched_.now(), runtime::TraceLevel::kWarning, "ipc.client",
                  "handshake rejected by peer");
    }
    return false;
  }

  negotiated_version_ = ack.version;
  supervisor_.on_connected();
  gate_->store(true, std::memory_order_relaxed);
  if (trace_ != nullptr) {
    trace_->log(sched_.now(), runtime::TraceLevel::kInfo, "ipc.client",
                "link up (protocol v" + std::to_string(negotiated_version_) + ", peer '" +
                    ack.detail + "')");
  }
  return true;
}

void RemoteSuoClient::republish(const Frame& f) {
  // Server events carry server virtual time; republishing keeps that
  // stamp so the monitor's observation table matches the in-process
  // wiring byte for byte.
  bus_.publish(f.event);
}

void RemoteSuoClient::on_link_lost(const char* why) {
  const bool was_up = supervisor_.up();
  sock_.close();
  supervisor_.on_disconnected();
  if (!was_up) return;  // already reported this outage

  gate_->store(false, std::memory_order_relaxed);
  if (trace_ != nullptr) {
    trace_->log(sched_.now(), runtime::TraceLevel::kError, "ipc.client",
                std::string("link down: ") + why);
  }
  if (notify_ != nullptr) {
    // Exactly one report per outage — the degradation policy forbids an
    // error flood while the link stays dead.
    core::ErrorReport report;
    report.observable = "ipc.link";
    report.expected = std::string("up");
    report.observed = std::string("down");
    report.deviation = 1.0;
    report.consecutive = 1;
    report.detected_at = sched_.now();
    report.first_deviation_at = sched_.now();
    notify_->on_error(report);
    ++outage_reports_;
  }
}

bool RemoteSuoClient::roundtrip(const std::string& command,
                                std::map<std::string, runtime::Value> args) {
  if (!link_up()) return false;

  Frame req;
  req.type = FrameType::kControl;
  req.seq = ++seq_;
  req.time = sched_.now();
  req.command = command;
  req.args = std::move(args);
  const std::int64_t sent_at = now_ns();
  if (!sock_.send(req)) {
    on_link_lost("send failed");
    return false;
  }

  for (;;) {
    Frame f;
    switch (sock_.recv(f, config_.ack_timeout_ms)) {
      case FramedSocket::RecvStatus::kTimeout:
        on_link_lost("ack timeout");
        return false;
      case FramedSocket::RecvStatus::kClosed:
        on_link_lost("peer gone");
        return false;
      case FramedSocket::RecvStatus::kProtocolError:
        on_link_lost(to_string(sock_.last_decode_status()));
        return false;
      case FramedSocket::RecvStatus::kFrame:
        break;
    }
    switch (f.type) {
      case FrameType::kInputEvent:
      case FrameType::kOutputEvent:
        republish(f);
        break;
      case FrameType::kControlAck:
        if (f.command == command) {
          if (rtt_metric_ != nullptr) {
            rtt_metric_->record(static_cast<double>(now_ns() - sent_at));
          }
          return f.ok;
        }
        break;  // stale ack from an earlier exchange; keep pumping
      case FrameType::kHeartbeatAck:
        break;  // late heartbeat echo overtaken by this exchange
      case FrameType::kShutdown:
        on_link_lost("server shutdown");
        return false;
      default:
        on_link_lost("unexpected frame");
        return false;
    }
  }
}

void RemoteSuoClient::initialize() {
  if (initialized_ && link_up()) return;
  if (!link_up() && !connect_and_handshake()) return;
  if (roundtrip("initialize")) initialized_ = true;
}

void RemoteSuoClient::start(runtime::SimTime now) {
  (void)now;
  if (!initialized_) initialize();
  if (running_ || !link_up()) return;
  if (roundtrip("start")) running_ = true;
}

void RemoteSuoClient::stop() {
  if (!running_) return;
  running_ = false;
  if (link_up()) roundtrip("stop");
}

bool RemoteSuoClient::press(tv::Key key) {
  return roundtrip("press", {{"key", std::string(tv::to_string(key))}});
}

bool RemoteSuoClient::advance_to(runtime::SimTime t) {
  const bool ok = roundtrip("advance", {{"to", t}});
  // Degraded mode keeps local time flowing: detectors and recovery
  // schedules must not freeze just because the SUO is unreachable.
  if (t > sched_.now()) sched_.run_until(t);
  return ok;
}

bool RemoteSuoClient::inject(const faults::FaultSpec& spec) {
  return roundtrip("inject", {{"kind", static_cast<std::int64_t>(spec.kind)},
                              {"target", spec.target},
                              {"at", spec.activate_at},
                              {"duration", spec.duration},
                              {"intensity", spec.intensity}});
}

bool RemoteSuoClient::restart_component(const std::string& name) {
  return roundtrip("restart_component", {{"name", name}});
}

bool RemoteSuoClient::request_snapshot() { return roundtrip("snapshot"); }

bool RemoteSuoClient::heartbeat() {
  if (!link_up()) return false;

  Frame beat;
  beat.type = FrameType::kHeartbeat;
  beat.seq = ++seq_;
  beat.time = sched_.now();
  beat.nonce = next_nonce_++;
  const std::int64_t sent_at = now_ns();
  if (!sock_.send(beat)) {
    on_link_lost("send failed");
    return false;
  }

  for (;;) {
    Frame f;
    switch (sock_.recv(f, config_.heartbeat_timeout_ms)) {
      case FramedSocket::RecvStatus::kTimeout:
        if (supervisor_.on_heartbeat_miss()) on_link_lost("heartbeat misses");
        return false;
      case FramedSocket::RecvStatus::kClosed:
        on_link_lost("peer gone");
        return false;
      case FramedSocket::RecvStatus::kProtocolError:
        on_link_lost(to_string(sock_.last_decode_status()));
        return false;
      case FramedSocket::RecvStatus::kFrame:
        break;
    }
    switch (f.type) {
      case FrameType::kInputEvent:
      case FrameType::kOutputEvent:
        republish(f);
        break;
      case FrameType::kHeartbeatAck:
        if (f.nonce == beat.nonce) {
          supervisor_.on_heartbeat_ack();
          if (rtt_metric_ != nullptr) {
            rtt_metric_->record(static_cast<double>(now_ns() - sent_at));
          }
          return true;
        }
        break;  // stale echo; wait for ours
      case FrameType::kShutdown:
        on_link_lost("server shutdown");
        return false;
      default:
        on_link_lost("unexpected frame");
        return false;
    }
  }
}

bool RemoteSuoClient::shutdown_remote() {
  if (!link_up()) return false;
  const bool ok = roundtrip("shutdown");
  sock_.close();
  supervisor_.on_disconnected();
  gate_->store(false, std::memory_order_relaxed);
  running_ = false;
  return ok;
}

bool RemoteSuoClient::try_reconnect() {
  if (link_up()) return true;

  const std::int64_t delay_ms = supervisor_.next_backoff_ms();
  if (delay_ms < 0) return false;  // attempt budget exhausted
  if (delay_ms > 0 && config_.backoff_sleep) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (!connect_and_handshake()) return false;

  // The peer may be a fresh process with factory state: replay our
  // lifecycle so it reaches parity with what the monitor believes,
  // then pull a snapshot to resync the observation table.
  const bool want_running = running_;
  initialized_ = false;
  running_ = false;
  initialize();
  if (!initialized_) {
    on_link_lost("reinitialize failed");
    return false;
  }
  if (want_running) {
    start(sched_.now());
    if (!running_) {
      on_link_lost("restart failed");
      return false;
    }
  }
  if (!request_snapshot()) return false;
  if (trace_ != nullptr) {
    trace_->log(sched_.now(), runtime::TraceLevel::kInfo, "ipc.client",
                "reconnected after " + std::to_string(supervisor_.attempts()) + " attempt(s)");
  }
  return true;
}

}  // namespace trader::ipc
