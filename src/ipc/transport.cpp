#include "ipc/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace trader::ipc {

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return flags == want || ::fcntl(fd, F_SETFL, want) == 0;
}

IoStatus read_some(int fd, void* buf, std::size_t cap, std::size_t& n) {
  n = 0;
  for (;;) {
    const ssize_t r = ::read(fd, buf, cap);
    if (r > 0) {
      n = static_cast<std::size_t>(r);
      return IoStatus::kOk;
    }
    if (r == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

IoStatus write_some(int fd, const void* data, std::size_t len, std::size_t& n) {
  n = 0;
  for (;;) {
    const ssize_t r = ::send(fd, data, len, MSG_NOSIGNAL);
    if (r >= 0) {
      n = static_cast<std::size_t>(r);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus writev_some(int fd, const iovec* iov, int iovcnt, std::size_t& n) {
  n = 0;
  msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  for (;;) {
    // sendmsg rather than writev: only the msg path takes MSG_NOSIGNAL,
    // and a gathered flush against a dead peer must not raise SIGPIPE.
    const ssize_t r = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (r >= 0) {
      n = static_cast<std::size_t>(r);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

namespace {

/// Fill a sockaddr_un for `path`; '@'-prefixed paths map to the Linux
/// abstract namespace (leading NUL). Returns the address length to pass
/// to bind/connect, or 0 when the path does not fit.
socklen_t fill_addr(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) return 0;
  if (!path.empty() && path[0] == '@') {
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, path.data() + 1, path.size() - 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size());
  }
  std::memcpy(addr.sun_path, path.data(), path.size());
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
}

}  // namespace

FramedSocket::~FramedSocket() { close(); }

FramedSocket::FramedSocket(FramedSocket&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      last_status_(other.last_status_),
      frames_sent_(other.frames_sent_),
      frames_received_(other.frames_received_),
      bytes_sent_(other.bytes_sent_),
      bytes_received_(other.bytes_received_),
      encode_errors_(other.encode_errors_),
      decode_errors_(other.decode_errors_) {
  other.fd_ = -1;
}

FramedSocket& FramedSocket::operator=(FramedSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    last_status_ = other.last_status_;
    frames_sent_ = other.frames_sent_;
    frames_received_ = other.frames_received_;
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    encode_errors_ = other.encode_errors_;
    decode_errors_ = other.decode_errors_;
    other.fd_ = -1;
  }
  return *this;
}

void FramedSocket::set_metrics(runtime::MetricsRegistry* m) {
  if (m == nullptr) {
    frames_sent_ = frames_received_ = bytes_sent_ = bytes_received_ = nullptr;
    encode_errors_ = decode_errors_ = nullptr;
    return;
  }
  frames_sent_ = &m->counter("ipc.frames_sent");
  frames_received_ = &m->counter("ipc.frames_received");
  bytes_sent_ = &m->counter("ipc.bytes_sent");
  bytes_received_ = &m->counter("ipc.bytes_received");
  encode_errors_ = &m->counter("ipc.encode_errors");
  decode_errors_ = &m->counter("ipc.decode_errors");
}

bool FramedSocket::send(const Frame& f) {
  if (fd_ < 0) return false;
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  if (bytes.empty()) {
    if (encode_errors_ != nullptr) encode_errors_->inc();
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    std::size_t n = 0;
    switch (write_some(fd_, bytes.data() + off, bytes.size() - off, n)) {
      case IoStatus::kOk:
        off += n;
        break;
      case IoStatus::kWouldBlock: {
        // Blocking semantics even on a nonblocking fd: wait for space.
        pollfd pfd{fd_, POLLOUT, 0};
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
          close();
          return false;
        }
        break;
      }
      case IoStatus::kClosed:
      case IoStatus::kError:
        close();
        return false;
    }
  }
  if (frames_sent_ != nullptr) frames_sent_->inc();
  if (bytes_sent_ != nullptr) bytes_sent_->inc(bytes.size());
  return true;
}

FramedSocket::RecvStatus FramedSocket::recv(Frame& out, int timeout_ms) {
  if (fd_ < 0) return RecvStatus::kClosed;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    last_status_ = decoder_.next(out);
    if (last_status_ == DecodeStatus::kOk) {
      if (frames_received_ != nullptr) frames_received_->inc();
      return RecvStatus::kFrame;
    }
    if (is_decode_error(last_status_)) {
      if (decode_errors_ != nullptr) decode_errors_->inc();
      close();
      return RecvStatus::kProtocolError;
    }

    int wait_ms = 0;
    if (timeout_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return RecvStatus::kTimeout;
      wait_ms = static_cast<int>(left);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      close();
      return RecvStatus::kClosed;
    }
    if (pr == 0) return RecvStatus::kTimeout;
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) return RecvStatus::kTimeout;

    std::uint8_t buf[16384];
    std::size_t n = 0;
    switch (read_some(fd_, buf, sizeof(buf), n)) {
      case IoStatus::kOk:
        break;
      case IoStatus::kWouldBlock:
        continue;  // spurious readiness; re-poll with the remaining budget
      case IoStatus::kClosed:
        // EOF with a partial frame buffered is a truncated stream — the
        // decoder never surfaces the partial frame (fail closed).
        close();
        return RecvStatus::kClosed;
      case IoStatus::kError:
        close();
        return RecvStatus::kClosed;
    }
    decoder_.feed(buf, n);
    if (bytes_received_ != nullptr) bytes_received_->inc(static_cast<std::uint64_t>(n));
  }
}

void FramedSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<FramedSocket, FramedSocket> socketpair_transport() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return {FramedSocket(), FramedSocket()};
  }
  return {FramedSocket(fds[0]), FramedSocket(fds[1])};
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr;
  const socklen_t len = fill_addr(path, addr);
  if (len == 0) return -1;
  unlink_unix(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0 || ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_unix(int listen_fd, int timeout_ms) {
  if (listen_fd < 0) return -1;
  pollfd pfd{listen_fd, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return -1;
    break;
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

int connect_unix(const std::string& path) {
  sockaddr_un addr;
  const socklen_t len = fill_addr(path, addr);
  if (len == 0) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), len) == 0) return fd;
    if (errno == EINTR) continue;
    ::close(fd);
    return -1;
  }
}

int connect_unix_retry(const std::string& path, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = connect_unix(path);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void unlink_unix(const std::string& path) {
  if (path.empty() || path[0] == '@') return;
  ::unlink(path.c_str());
}

}  // namespace trader::ipc
