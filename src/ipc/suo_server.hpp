// SUO server: hosts the TvSystem behind a socket (Fig. 2's process
// boundary, server side).
//
// The server owns a complete simulation substrate — scheduler, event
// bus, fault injector, TvSystem — and exposes it over the wire
// protocol. The monitor side drives virtual time in lockstep: every
// "advance" control command runs the local scheduler to the requested
// instant, forwards each tv.input / tv.output event published along the
// way as a frame, and then acks — the ack is the client's guarantee
// that every event up to that instant has been delivered (FIFO stream
// ordering does the rest). Heartbeats are answered inline, control /
// recovery commands (press, inject, restart_component, snapshot,
// lifecycle) are executed against the hosted set.
//
// Deployments: the suo_host example binary wraps run_suo_host() around
// an AF_UNIX listener for true two-process operation; tests hand
// serve() one end of a socketpair (optionally on a thread) to stay
// hermetic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/interfaces.hpp"
#include "faults/injector.hpp"
#include "ipc/transport.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace_log.hpp"
#include "tv/tv_system.hpp"

namespace trader::ipc {

struct SuoServerConfig {
  tv::TvConfig tv;
  std::uint64_t injector_seed = 2026;
  std::uint8_t min_version = kMinProtocolVersion;
  std::uint8_t max_version = kProtocolVersion;
  /// Poll granularity of the serve loop (also bounds shutdown latency).
  int read_timeout_ms = 200;
  /// Timeout for the initial kHello after accept.
  int handshake_timeout_ms = 2000;
  std::string peer_name = "suo_host";
};

/// Aggregate server-side counters (tests assert idempotency on these).
struct SuoServerStats {
  std::uint64_t controls = 0;
  std::uint64_t presses = 0;
  std::uint64_t advances = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t rejected = 0;  ///< Unknown / malformed control commands.
};

class SuoServer : public core::IControl {
 public:
  explicit SuoServer(SuoServerConfig config = {});
  ~SuoServer() override;

  // IControl — idempotent per the core contract: initialize() builds
  // the simulation world once, start() begins frame processing once,
  // stop() pauses command execution; the sequence may repeat.
  void initialize() override;
  void start(runtime::SimTime now) override;
  void stop() override;

  enum class ServeResult : std::uint8_t {
    kShutdown,         ///< Peer asked for orderly teardown.
    kDisconnect,       ///< Peer vanished (EOF / reset) — supervisor case.
    kHandshakeFailed,  ///< Version negotiation failed or no hello.
    kProtocolError,    ///< Malformed traffic; link dropped fail-closed.
  };

  /// Serve one connection until it ends. Re-entrant across connections:
  /// the hosted TV keeps its state between sessions of one process
  /// lifetime (a monitor that reconnects resyncs via "snapshot").
  ServeResult serve(FramedSocket& sock);

  void set_metrics(runtime::MetricsRegistry* m) { metrics_ = m; }
  void set_trace(runtime::TraceLog* t) { trace_ = t; }

  tv::TvSystem* tv() { return tv_.get(); }
  faults::FaultInjector* injector() { return injector_.get(); }
  runtime::Scheduler& scheduler() { return sched_; }
  const SuoServerStats& stats() const { return stats_; }
  bool running() const { return running_; }

 private:
  void forward_event(const runtime::Event& ev, FrameType type);
  bool handshake(FramedSocket& sock);
  /// Executes one control command; returns false for "shutdown".
  bool handle_control(FramedSocket& sock, const Frame& f);

  SuoServerConfig config_;
  runtime::Scheduler sched_;
  runtime::EventBus bus_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<tv::TvSystem> tv_;
  runtime::MetricsRegistry* metrics_ = nullptr;
  runtime::TraceLog* trace_ = nullptr;
  FramedSocket* peer_ = nullptr;  ///< Valid only inside serve().
  SuoServerStats stats_;
  std::uint32_t seq_ = 0;
  bool initialized_ = false;
  bool tv_started_ = false;  ///< Frame ticks scheduled (once per process).
  bool running_ = false;
};

/// Accept-serve loop for a standalone host process: listens on `path`
/// and serves connections until a client sends "shutdown" (or
/// `max_sessions` connections came and went; 0 = unlimited). Returns 0
/// on orderly shutdown, 1 on listener failure. SIGKILLing the host is
/// the supervision crash case — the monitor-side RemoteSuoClient
/// detects it and reconnects to a fresh host.
int run_suo_host(const std::string& path, SuoServerConfig config = {},
                 std::size_t max_sessions = 0);

}  // namespace trader::ipc
