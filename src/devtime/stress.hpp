// Stress-test harness: sweep eater levels against a fresh TV instance
// and record how the system (and its fault-tolerance mechanisms) behave
// under overload (§4.7 / experiment E9).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::devtime {

struct StressPoint {
  double eater_units = 0.0;      ///< CPU eater demand (work units/tick).
  double cpu_load = 0.0;         ///< Resulting mean CPU-0 demand/capacity.
  double drop_rate = 0.0;        ///< Fraction of frames dropped.
  double avg_quality = 0.0;      ///< Mean frame quality.
  int migrations = 0;            ///< Load-balancer task migrations.
  double quality_recovered = 0.0;///< Mean quality over the final third.
};

struct StressConfig {
  runtime::SimDuration duration = runtime::sec(20);
  runtime::SimDuration eater_start = runtime::sec(5);
  bool with_load_balancer = false;  ///< The FT mechanism under study.
  std::uint64_t seed = 99;
};

/// Run one stress point: boot the TV, watch a channel, switch the CPU
/// eater on at `eater_start`, measure.
StressPoint run_stress_point(double eater_units, const StressConfig& config = {});

/// Sweep a list of eater levels.
std::vector<StressPoint> stress_sweep(const std::vector<double>& levels,
                                      const StressConfig& config = {});

}  // namespace trader::devtime
