#include "devtime/priowarn.hpp"

#include <algorithm>
#include <numeric>

namespace trader::devtime {

const char* to_string(WarningOrder order) {
  switch (order) {
    case WarningOrder::kReportOrder:
      return "report-order";
    case WarningOrder::kSeverity:
      return "severity";
    case WarningOrder::kLikelihood:
      return "likelihood";
    case WarningOrder::kSeverityTimesLikelihood:
      return "severity*likelihood";
  }
  return "?";
}

SyntheticCfg SyntheticCfg::generate(std::size_t nodes, std::uint64_t seed) {
  SyntheticCfg cfg;
  cfg.nodes_.resize(std::max<std::size_t>(nodes, 2));
  runtime::Rng rng(seed);
  const std::size_t n = cfg.nodes_.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    CfgNode& node = cfg.nodes_[i];
    const bool branch = rng.bernoulli(0.45) && i + 2 < n;
    if (!branch) {
      node.succs = {i + 1};
      node.probs = {1.0};
      continue;
    }
    // If/else diamond: fall-through plus a forward skip edge; skewed
    // branch probabilities give the likelihood spread real programs show.
    const std::size_t max_skip = std::min<std::size_t>(i + 8, n - 1);
    const auto target =
        static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(i + 2),
                                                 static_cast<std::int64_t>(max_skip)));
    const double p_through = rng.uniform(0.05, 0.95);
    node.succs = {i + 1, target};
    node.probs = {p_through, 1.0 - p_through};
  }
  return cfg;
}

std::vector<double> SyntheticCfg::execution_likelihood() const {
  std::vector<double> like(nodes_.size(), 0.0);
  if (like.empty()) return like;
  like[0] = 1.0;
  // Successors always have larger indices, so index order is topological.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CfgNode& node = nodes_[i];
    for (std::size_t k = 0; k < node.succs.size(); ++k) {
      like[node.succs[k]] += like[i] * node.probs[k];
    }
  }
  for (double& v : like) v = std::min(v, 1.0);  // numeric safety
  return like;
}

std::vector<InspectionWarning> generate_warnings(const SyntheticCfg& cfg, std::size_t count,
                                                 double base_tp_rate, std::uint64_t seed) {
  runtime::Rng rng(seed);
  const auto likelihood = cfg.execution_likelihood();
  std::vector<InspectionWarning> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    InspectionWarning w;
    w.id = i;
    w.node = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg.size() - 1)));
    w.severity = static_cast<int>(rng.uniform_int(1, 9));
    // A warning only becomes a field failure when its code actually runs:
    // P(true positive) grows with execution likelihood (premise of [2]).
    const double p = base_tp_rate * (0.1 + 0.9 * likelihood[w.node]);
    w.true_positive = rng.bernoulli(p);
    out.push_back(w);
  }
  return out;
}

std::vector<std::size_t> WarningPrioritizer::prioritize(
    const std::vector<InspectionWarning>& warnings, const std::vector<double>& likelihood,
    WarningOrder order) const {
  std::vector<std::size_t> idx(warnings.size());
  std::iota(idx.begin(), idx.end(), 0);
  auto key = [&](std::size_t i) -> double {
    const auto& w = warnings[i];
    switch (order) {
      case WarningOrder::kReportOrder:
        return 0.0;
      case WarningOrder::kSeverity:
        return static_cast<double>(w.severity);
      case WarningOrder::kLikelihood:
        return likelihood[w.node];
      case WarningOrder::kSeverityTimesLikelihood:
        return static_cast<double>(w.severity) * likelihood[w.node];
    }
    return 0.0;
  };
  if (order != WarningOrder::kReportOrder) {
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return key(a) > key(b); });
  }
  return idx;
}

std::size_t WarningPrioritizer::effort_to_first_tp(const std::vector<std::size_t>& order,
                                                   const std::vector<InspectionWarning>& warnings) {
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (warnings[order[pos]].true_positive) return pos + 1;
  }
  return order.size() + 1;
}

double WarningPrioritizer::tp_auc(const std::vector<std::size_t>& order,
                                  const std::vector<InspectionWarning>& warnings) {
  const std::size_t n = order.size();
  std::size_t tp_total = 0;
  double acc = 0.0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (warnings[order[pos]].true_positive) {
      ++tp_total;
      acc += (static_cast<double>(n) - static_cast<double>(pos) - 0.5) / static_cast<double>(n);
    }
  }
  return tp_total > 0 ? acc / static_cast<double>(tp_total) : 0.0;
}

}  // namespace trader::devtime
