// Resource eaters for stress testing (§4.7, TASS).
//
// "The stress testing approach of TASS artificially takes away shared
// resources, such as CPU or bus bandwidth, to simulate the occurrence of
// errors or the addition of an additional resource user. … A so-called
// CPU eater, which consumes CPU cycles at the application level in
// software, is already included in the current development software and
// can be activated by system testers."
#pragma once

#include <cstdint>
#include <string>

#include "runtime/sim_time.hpp"
#include "tv/soc.hpp"

namespace trader::devtime {

/// Consumes processor capacity as an application-level task.
class CpuEater {
 public:
  explicit CpuEater(tv::Processor& cpu, std::string task_name = "cpu_eater")
      : cpu_(cpu), task_name_(std::move(task_name)) {}

  ~CpuEater() { deactivate(); }

  /// Start (or retune) the eater to `units` of work per tick. The eater
  /// runs at application priority (above the decoder) so it genuinely
  /// steals cycles, as the TASS tool does.
  void activate(double units);
  void deactivate();

  bool active() const { return active_; }
  double level() const { return level_; }

 private:
  tv::Processor& cpu_;
  std::string task_name_;
  bool active_ = false;
  double level_ = 0.0;
};

/// Consumes bus bandwidth; must be ticked every service period because
/// bus demands are cleared on service.
class BusEater {
 public:
  explicit BusEater(tv::Bus& bus, std::string client = "bus_eater")
      : bus_(bus), client_(std::move(client)) {}

  void activate(double units_per_tick) {
    active_ = true;
    level_ = units_per_tick;
  }
  void deactivate() {
    active_ = false;
    level_ = 0.0;
  }

  /// Inject this tick's demand (call before the bus is serviced).
  void tick();

  bool active() const { return active_; }
  double level() const { return level_; }

 private:
  tv::Bus& bus_;
  std::string client_;
  bool active_ = false;
  double level_ = 0.0;
};

/// Consumes memory-arbiter bandwidth through its own port.
class MemoryEater {
 public:
  /// Registers an "eater" port at the given priority.
  MemoryEater(tv::MemoryArbiter& arbiter, int priority, std::string port = "eater");

  void activate(double units_per_tick) {
    active_ = true;
    level_ = units_per_tick;
  }
  void deactivate() {
    active_ = false;
    level_ = 0.0;
  }

  /// Inject this tick's demand (call before the arbiter is serviced).
  void tick();

  bool active() const { return active_; }
  double level() const { return level_; }
  const std::string& port() const { return port_; }

 private:
  tv::MemoryArbiter& arbiter_;
  std::string port_;
  bool active_ = false;
  double level_ = 0.0;
};

}  // namespace trader::devtime
