// Architecture-level reliability analysis: software FMEA (§4.7, after
// Sözer et al. [18] — "Extending failure modes and effects analysis …
// for reliability analysis at the software architecture design level").
//
// Failure modes of architectural elements are scored on severity,
// occurrence and detectability; the risk priority number (RPN = S×O×D)
// ranks where dependability effort should go during development.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace trader::devtime {

/// One failure mode of an architectural element. Scores use the
/// conventional 1..10 scales (10 = worst).
struct FailureMode {
  std::string component;
  std::string mode;
  std::string effect;
  int severity = 1;
  int occurrence = 1;
  int detection = 1;  ///< 10 = practically undetectable.

  int rpn() const { return severity * occurrence * detection; }
};

class FmeaAnalyzer {
 public:
  void add(FailureMode fm);
  std::size_t size() const { return modes_.size(); }
  const std::vector<FailureMode>& modes() const { return modes_; }

  /// Modes by descending RPN (ties: input order).
  std::vector<FailureMode> ranked() const;

  /// Top-n riskiest modes.
  std::vector<FailureMode> top(std::size_t n) const;

  /// Total RPN per component (the architecture-level risk profile).
  std::map<std::string, int> component_risk() const;

  /// Model the effect of adding a detection mechanism (e.g. an awareness
  /// monitor) to a failure mode: detection score drops to
  /// `new_detection`. Returns how many modes were updated.
  std::size_t apply_detection_improvement(const std::string& component, int new_detection);

  /// Series-system failure-rate estimate: sum over components of
  /// rate × usage weight (per hour).
  static double system_failure_rate(const std::map<std::string, double>& component_rates,
                                    const std::map<std::string, double>& usage_weights);

 private:
  std::vector<FailureMode> modes_;
};

/// The TV architecture's failure-mode inventory used in E-series benches.
std::vector<FailureMode> tv_failure_modes();

}  // namespace trader::devtime
