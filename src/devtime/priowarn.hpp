// Inspection-warning prioritization by static execution-likelihood
// profiling (§4.7, after Boogerd & Moonen [2]).
//
// A static analyzer (QA-C in the paper) emits many warnings; inspecting
// all of them is too expensive. The insight of [2]: warnings in code
// that is *likely to execute* should come first. We reproduce the
// pipeline on synthetic control-flow graphs: compute per-node execution
// likelihood by probability propagation, order warnings by different
// strategies, and measure inspection effort until the true positives are
// found.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/rng.hpp"

namespace trader::devtime {

/// A node in a synthetic control-flow graph (DAG, entry = node 0).
struct CfgNode {
  std::vector<std::size_t> succs;
  std::vector<double> probs;  ///< Branch probabilities (sum ≤ 1; rest exits).
};

/// Synthetic structured CFG generator + likelihood propagation.
class SyntheticCfg {
 public:
  /// Generate a DAG of roughly `nodes` nodes built from sequences,
  /// if/else diamonds and loops-unrolled-once, with seeded branch
  /// probabilities.
  static SyntheticCfg generate(std::size_t nodes, std::uint64_t seed);

  std::size_t size() const { return nodes_.size(); }
  const std::vector<CfgNode>& nodes() const { return nodes_; }

  /// Execution likelihood per node: probability mass reaching the node
  /// from the entry (entry = 1.0), propagated in topological order.
  std::vector<double> execution_likelihood() const;

 private:
  std::vector<CfgNode> nodes_;
};

/// One static-analysis warning.
struct InspectionWarning {
  std::size_t id = 0;
  std::size_t node = 0;   ///< CFG node carrying the warning.
  int severity = 5;       ///< Analyzer severity 1..9 (9 = worst).
  bool true_positive = false;  ///< Ground truth (would cause a failure).
};

/// Generate `count` warnings on a CFG. Ground-truth true positives are
/// drawn with probability increasing in the node's execution likelihood
/// (a latent fault in dead code never fails — the premise of [2]).
std::vector<InspectionWarning> generate_warnings(const SyntheticCfg& cfg, std::size_t count,
                                                 double base_tp_rate, std::uint64_t seed);

/// Warning-ordering strategies compared in E10.
enum class WarningOrder : std::uint8_t {
  kReportOrder,          ///< As emitted (the status quo).
  kSeverity,             ///< Analyzer severity only.
  kLikelihood,           ///< Execution likelihood only.
  kSeverityTimesLikelihood,  ///< The combined criterion of [2].
};

const char* to_string(WarningOrder order);

class WarningPrioritizer {
 public:
  /// Indices of `warnings` in inspection order under `order`.
  std::vector<std::size_t> prioritize(const std::vector<InspectionWarning>& warnings,
                                      const std::vector<double>& likelihood,
                                      WarningOrder order) const;

  /// Number of inspections until the first true positive (warnings.size()
  /// + 1 when none exists).
  static std::size_t effort_to_first_tp(const std::vector<std::size_t>& order,
                                        const std::vector<InspectionWarning>& warnings);

  /// Mean recall of true positives as a function of inspection budget,
  /// i.e. normalized area under the TP-vs-inspected curve (1.0 = all TPs
  /// first, 0.0 = all TPs last).
  static double tp_auc(const std::vector<std::size_t>& order,
                       const std::vector<InspectionWarning>& warnings);
};

}  // namespace trader::devtime
