#include "devtime/eaters.hpp"

namespace trader::devtime {

void CpuEater::activate(double units) {
  active_ = true;
  level_ = units;
  cpu_.add_task(task_name_, units, /*priority=*/4);
}

void CpuEater::deactivate() {
  if (!active_) return;
  active_ = false;
  level_ = 0.0;
  cpu_.remove_task(task_name_);
}

void BusEater::tick() {
  if (active_) bus_.request(client_, level_);
}

MemoryEater::MemoryEater(tv::MemoryArbiter& arbiter, int priority, std::string port)
    : arbiter_(arbiter), port_(std::move(port)) {
  arbiter_.add_port(port_, priority);
}

void MemoryEater::tick() {
  if (active_) arbiter_.request(port_, level_);
}

}  // namespace trader::devtime
