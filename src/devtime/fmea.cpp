#include "devtime/fmea.hpp"

#include <algorithm>

namespace trader::devtime {

void FmeaAnalyzer::add(FailureMode fm) { modes_.push_back(std::move(fm)); }

std::vector<FailureMode> FmeaAnalyzer::ranked() const {
  std::vector<FailureMode> out = modes_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FailureMode& a, const FailureMode& b) { return a.rpn() > b.rpn(); });
  return out;
}

std::vector<FailureMode> FmeaAnalyzer::top(std::size_t n) const {
  auto out = ranked();
  if (out.size() > n) out.resize(n);
  return out;
}

std::map<std::string, int> FmeaAnalyzer::component_risk() const {
  std::map<std::string, int> out;
  for (const auto& fm : modes_) out[fm.component] += fm.rpn();
  return out;
}

std::size_t FmeaAnalyzer::apply_detection_improvement(const std::string& component,
                                                      int new_detection) {
  std::size_t updated = 0;
  for (auto& fm : modes_) {
    if (fm.component == component && fm.detection > new_detection) {
      fm.detection = new_detection;
      ++updated;
    }
  }
  return updated;
}

double FmeaAnalyzer::system_failure_rate(const std::map<std::string, double>& component_rates,
                                         const std::map<std::string, double>& usage_weights) {
  double rate = 0.0;
  for (const auto& [component, lambda] : component_rates) {
    auto it = usage_weights.find(component);
    const double weight = it != usage_weights.end() ? it->second : 1.0;
    rate += lambda * weight;
  }
  return rate;
}

std::vector<FailureMode> tv_failure_modes() {
  return {
      {"decoder", "overload on bad signal", "frame drops, stutter", 7, 6, 4},
      {"decoder", "coding-standard deviation crash", "picture freeze", 9, 3, 5},
      {"teletext", "channel desync", "stale/wrong pages shown", 5, 5, 8},
      {"teletext", "engine crash", "teletext unavailable", 4, 3, 3},
      {"audio", "lost volume command", "volume differs from user intent", 6, 4, 7},
      {"audio", "mute stuck", "no sound", 8, 2, 3},
      {"osd", "banner never clears", "screen clutter", 3, 3, 4},
      {"swivel", "motor stuck", "set does not turn", 6, 2, 2},
      {"tuner", "lock lost", "black screen", 9, 2, 2},
      {"control", "memory corruption of settings", "erratic behaviour", 8, 2, 9},
      {"arbiter", "video port starvation", "quality collapse under load", 7, 4, 6},
      {"scheduler", "task overrun", "missed frame deadlines", 7, 5, 5},
  };
}

}  // namespace trader::devtime
