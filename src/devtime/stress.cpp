#include "devtime/stress.hpp"

#include <memory>

#include "devtime/eaters.hpp"
#include "faults/injector.hpp"
#include "recovery/load_balancer.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"
#include "tv/tv_system.hpp"

namespace trader::devtime {

StressPoint run_stress_point(double eater_units, const StressConfig& config) {
  runtime::Scheduler sched;
  runtime::EventBus bus;
  faults::FaultInjector injector{runtime::Rng(config.seed)};
  tv::TvConfig tv_config;
  tv_config.seed = config.seed;
  tv::TvSystem set(sched, bus, injector, tv_config);

  CpuEater eater(set.cpu(0));

  std::unique_ptr<recovery::LoadBalancer> balancer;
  if (config.with_load_balancer) {
    recovery::LoadBalancerConfig lb_config;
    lb_config.overload_threshold = 1.0;
    lb_config.sustain_ticks = 5;
    balancer = std::make_unique<recovery::LoadBalancer>(
        lb_config, /*initial_location=*/0, /*location_count=*/2,
        [&set](int cpu) { return set.cpu(cpu).load(); },
        [&set](int cpu) {
          const int cur = set.decoder_cpu();
          return set.cpu(cur).task_cost("decoder") / set.cpu(cpu).capacity();
        },
        [&set](int cpu) { set.set_decoder_cpu(cpu); });
    sched.schedule_every(tv_config.frame_period, [&] { balancer->tick(sched.now()); });
  }

  runtime::StatAccumulator cpu_load;
  runtime::StatAccumulator tail_quality;
  const runtime::SimTime tail_start = config.duration * 2 / 3;
  sched.schedule_every(tv_config.frame_period, [&] {
    cpu_load.add(set.cpu(0).load());
    if (sched.now() >= tail_start) tail_quality.add(set.last_frame_quality());
  });

  set.start();
  set.press(tv::Key::kPower);
  sched.schedule_at(config.eater_start, [&] { eater.activate(eater_units); });
  sched.run_until(config.duration);

  StressPoint point;
  point.eater_units = eater_units;
  point.cpu_load = cpu_load.mean();
  point.drop_rate = set.stats().drop_rate();
  point.avg_quality = set.stats().average_quality();
  point.migrations = balancer ? static_cast<int>(balancer->migrations().size()) : 0;
  point.quality_recovered = tail_quality.mean();
  return point;
}

std::vector<StressPoint> stress_sweep(const std::vector<double>& levels,
                                      const StressConfig& config) {
  std::vector<StressPoint> out;
  out.reserve(levels.size());
  for (const double level : levels) out.push_back(run_stress_point(level, config));
  return out;
}

}  // namespace trader::devtime
