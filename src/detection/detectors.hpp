// Error detectors beyond model comparison (§4.3).
//
// "Various techniques for error detection are investigated such as
// hardware-based deadlock detection and range checking. An approach
// which checks the consistency of internal modes of components turned
// out to be successful to detect teletext problems due to a loss of
// synchronization between components."
//
// Four detectors, one common report type:
//   RangeChecker           — drains probe range violations
//   Watchdog               — per-component heartbeat deadlines
//   DeadlockDetector       — cycle search in a wait-for graph
//   ModeConsistencyChecker — cross-component mode invariants, debounced
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "observation/probes.hpp"
#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::detection {

/// A detector finding.
struct Detection {
  std::string detector;  ///< "range", "watchdog", "deadlock", "mode".
  std::string subject;   ///< Probe / component / rule name.
  std::string message;
  runtime::SimTime at = 0;
};

/// Append-only log shared by detectors.
class DetectionLog {
 public:
  void add(Detection d) { entries_.push_back(std::move(d)); }
  const std::vector<Detection>& all() const { return entries_; }
  std::size_t count(const std::string& detector) const;
  /// Earliest detection by `detector` for `subject` (-1 when none).
  runtime::SimTime first(const std::string& detector, const std::string& subject) const;
  void clear() { entries_.clear(); }

 private:
  std::vector<Detection> entries_;
};

/// Converts probe range violations into detections (idempotent polling).
class RangeChecker {
 public:
  explicit RangeChecker(observation::ProbeRegistry& probes) : probes_(probes) {}

  /// Drain new violations into `log`; returns how many were new.
  std::size_t poll(DetectionLog& log);

 private:
  observation::ProbeRegistry& probes_;
  std::size_t consumed_ = 0;
};

/// Heartbeat watchdog: components must kick within their deadline.
class Watchdog {
 public:
  void register_component(const std::string& name, runtime::SimDuration deadline);
  void kick(const std::string& name, runtime::SimTime now);

  /// Emit a detection per newly expired component (once per expiry).
  std::size_t check(runtime::SimTime now, DetectionLog& log);

  bool expired(const std::string& name) const;

 private:
  struct Entry {
    runtime::SimDuration deadline = 0;
    runtime::SimTime last_kick = 0;
    bool flagged = false;
  };
  std::map<std::string, Entry> entries_;
};

/// Wait-for-graph deadlock detector (the hardware deadlock-detection
/// mechanism of §4.3, fed by software-visible wait edges here).
class DeadlockDetector {
 public:
  /// Check the edge set; reports each distinct cycle once until it
  /// disappears, then re-arms.
  std::size_t check(const std::vector<std::pair<std::string, std::string>>& edges,
                    runtime::SimTime now, DetectionLog& log);

 private:
  std::string last_cycle_;
};

/// A cross-component mode invariant.
struct ModeRule {
  std::string name;
  std::string description;
  /// Returns true when the snapshot is consistent.
  std::function<bool(const std::map<std::string, runtime::Value>&)> holds;
  /// Consecutive failing checks tolerated before reporting (debounce —
  /// same trade-off as the comparator's max_consecutive, §4.3).
  int max_consecutive = 2;
};

/// Checks mode snapshots against rules, debounced per rule.
class ModeConsistencyChecker {
 public:
  void add_rule(ModeRule rule);

  /// Evaluate all rules on a snapshot; report once per violation episode.
  std::size_t check(const std::map<std::string, runtime::Value>& snapshot, runtime::SimTime now,
                    DetectionLog& log);

  const std::vector<ModeRule>& rules() const { return rules_; }

 private:
  struct RuleState {
    int failing = 0;
    bool reported = false;
  };
  std::vector<ModeRule> rules_;
  std::map<std::string, RuleState> state_;
};

/// The standard TV mode-consistency rules, phrased over the key names of
/// TvSystem::mode_snapshot(). Includes the teletext-synchronization rule
/// that detects the paper's teletext failure.
std::vector<ModeRule> tv_mode_rules();

}  // namespace trader::detection
