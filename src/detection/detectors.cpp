#include "detection/detectors.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace trader::detection {

// -------------------------------------------------------------- DetectionLog

std::size_t DetectionLog::count(const std::string& detector) const {
  return static_cast<std::size_t>(std::count_if(
      entries_.begin(), entries_.end(),
      [&](const Detection& d) { return d.detector == detector; }));
}

runtime::SimTime DetectionLog::first(const std::string& detector,
                                     const std::string& subject) const {
  runtime::SimTime best = -1;
  for (const auto& d : entries_) {
    if (d.detector != detector || d.subject != subject) continue;
    if (best < 0 || d.at < best) best = d.at;
  }
  return best;
}

// --------------------------------------------------------------- RangeChecker

std::size_t RangeChecker::poll(DetectionLog& log) {
  const auto& violations = probes_.violations();
  std::size_t fresh = 0;
  for (std::size_t i = consumed_; i < violations.size(); ++i) {
    const auto& v = violations[i];
    std::ostringstream os;
    os << "value " << v.value << " outside [" << v.lo << ", " << v.hi << "]";
    log.add(Detection{"range", v.probe, os.str(), v.time});
    ++fresh;
  }
  consumed_ = violations.size();
  return fresh;
}

// ------------------------------------------------------------------- Watchdog

void Watchdog::register_component(const std::string& name, runtime::SimDuration deadline) {
  entries_[name] = Entry{deadline, 0, false};
}

void Watchdog::kick(const std::string& name, runtime::SimTime now) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  it->second.last_kick = now;
  it->second.flagged = false;
}

std::size_t Watchdog::check(runtime::SimTime now, DetectionLog& log) {
  std::size_t fresh = 0;
  for (auto& [name, e] : entries_) {
    if (e.flagged) continue;
    if (now - e.last_kick > e.deadline) {
      e.flagged = true;
      std::ostringstream os;
      os << "no heartbeat for " << runtime::to_ms(now - e.last_kick) << " ms (deadline "
         << runtime::to_ms(e.deadline) << " ms)";
      log.add(Detection{"watchdog", name, os.str(), now});
      ++fresh;
    }
  }
  return fresh;
}

bool Watchdog::expired(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.flagged;
}

// ------------------------------------------------------------ DeadlockDetector

std::size_t DeadlockDetector::check(
    const std::vector<std::pair<std::string, std::string>>& edges, runtime::SimTime now,
    DetectionLog& log) {
  // Build adjacency and run DFS cycle detection over the small graph.
  std::map<std::string, std::vector<std::string>> adj;
  std::set<std::string> nodes;
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    nodes.insert(a);
    nodes.insert(b);
  }
  std::map<std::string, int> mark;  // 0 unseen, 1 active, 2 done
  std::vector<std::string> path;
  std::string cycle;

  std::function<bool(const std::string&)> dfs = [&](const std::string& n) -> bool {
    mark[n] = 1;
    path.push_back(n);
    for (const auto& m : adj[n]) {
      if (mark[m] == 1) {
        // Reconstruct the cycle from the path.
        std::ostringstream os;
        auto it = std::find(path.begin(), path.end(), m);
        for (; it != path.end(); ++it) os << *it << " -> ";
        os << m;
        cycle = os.str();
        return true;
      }
      if (mark[m] == 0 && dfs(m)) return true;
    }
    path.pop_back();
    mark[n] = 2;
    return false;
  };

  for (const auto& n : nodes) {
    if (mark[n] == 0 && dfs(n)) break;
  }

  if (cycle.empty()) {
    last_cycle_.clear();  // re-arm once the deadlock is gone
    return 0;
  }
  if (cycle == last_cycle_) return 0;  // already reported
  last_cycle_ = cycle;
  log.add(Detection{"deadlock", cycle, "circular wait detected", now});
  return 1;
}

// ------------------------------------------------------ ModeConsistencyChecker

void ModeConsistencyChecker::add_rule(ModeRule rule) { rules_.push_back(std::move(rule)); }

std::size_t ModeConsistencyChecker::check(const std::map<std::string, runtime::Value>& snapshot,
                                          runtime::SimTime now, DetectionLog& log) {
  std::size_t fresh = 0;
  for (const auto& rule : rules_) {
    auto& st = state_[rule.name];
    if (rule.holds(snapshot)) {
      st.failing = 0;
      st.reported = false;
      continue;
    }
    ++st.failing;
    if (st.failing >= rule.max_consecutive && !st.reported) {
      st.reported = true;
      log.add(Detection{"mode", rule.name, rule.description, now});
      ++fresh;
    }
  }
  return fresh;
}

// ---------------------------------------------------------------- tv rules

namespace {

std::int64_t get_int(const std::map<std::string, runtime::Value>& m, const std::string& k) {
  auto it = m.find(k);
  if (it == m.end()) return 0;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i;
  return 0;
}

std::string get_str(const std::map<std::string, runtime::Value>& m, const std::string& k) {
  auto it = m.find(k);
  if (it == m.end()) return {};
  if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
  return {};
}

bool get_bool(const std::map<std::string, runtime::Value>& m, const std::string& k) {
  auto it = m.find(k);
  if (it == m.end()) return false;
  if (const auto* b = std::get_if<bool>(&it->second)) return *b;
  return false;
}

}  // namespace

std::vector<ModeRule> tv_mode_rules() {
  std::vector<ModeRule> rules;

  // The paper's teletext case: the teletext engine must be synchronized
  // to the tuned channel whenever it is presenting or acquiring pages.
  rules.push_back(ModeRule{
      "ttx-channel-sync",
      "teletext engine serves a different channel than the tuner is on",
      [](const std::map<std::string, runtime::Value>& m) {
        const std::string mode = get_str(m, "teletext.mode");
        if (mode == "off") return true;
        return get_int(m, "teletext.synced_channel") == get_int(m, "tuner.channel");
      },
      2});

  // Control's channel belief must match the tuner.
  rules.push_back(ModeRule{
      "control-tuner-channel",
      "control unit believes a different channel than the tuner is tuned to",
      [](const std::map<std::string, runtime::Value>& m) {
        if (!get_bool(m, "control.powered")) return true;
        return get_int(m, "control.channel") == get_int(m, "tuner.channel");
      },
      2});

  // Volume/mute beliefs vs the audio pipeline.
  rules.push_back(ModeRule{
      "control-audio-volume",
      "control unit's volume belief differs from the audio pipeline",
      [](const std::map<std::string, runtime::Value>& m) {
        if (!get_bool(m, "control.powered")) return true;
        return get_int(m, "control.volume") == get_int(m, "audio.volume");
      },
      2});
  rules.push_back(ModeRule{
      "control-audio-mute",
      "control unit's mute belief differs from the audio pipeline",
      [](const std::map<std::string, runtime::Value>& m) {
        if (!get_bool(m, "control.powered")) return true;
        return get_bool(m, "control.muted") == get_bool(m, "audio.muted");
      },
      2});

  // Screen-state belief vs component reality (teletext visibility).
  rules.push_back(ModeRule{
      "screen-teletext-consistency",
      "control believes teletext screen but engine is not visible (or vice versa)",
      [](const std::map<std::string, runtime::Value>& m) {
        if (!get_bool(m, "control.powered")) return true;
        const bool believes = get_str(m, "control.screen") == "teletext";
        const bool visible = get_str(m, "teletext.mode") == "visible";
        return believes == visible;
      },
      2});

  // The selected AV input must match the control unit's belief.
  rules.push_back(ModeRule{
      "control-avswitch-source",
      "control unit believes a different AV source than the switch selects",
      [](const std::map<std::string, runtime::Value>& m) {
        if (!get_bool(m, "control.powered")) return true;
        return get_str(m, "control.source") == get_str(m, "avswitch.source");
      },
      2});

  // Menu screen requires the OSD plane to show the menu.
  rules.push_back(ModeRule{
      "screen-menu-consistency",
      "control believes menu screen but OSD shows no menu (or vice versa)",
      [](const std::map<std::string, runtime::Value>& m) {
        if (!get_bool(m, "control.powered")) return true;
        const bool believes = get_str(m, "control.screen") == "menu";
        const bool shown = get_str(m, "osd.active") == "menu";
        return believes == shown;
      },
      2});

  return rules;
}

}  // namespace trader::detection
