// Real-time (timeliness) property monitoring.
//
// §4.3: "we also monitor real-time properties, which are not addressed
// by the techniques cited above. Closely related in this respect is the
// MaC-RT system [15] which also detects timeliness violations."
//
// A ResponseTimeRule states: whenever a *trigger* event occurs, a
// *response* event must follow within a deadline. The monitor watches
// the event bus, arms a virtual-time timer per trigger, and reports a
// timeliness violation when the deadline passes unanswered. Because
// deadlines are checked in virtual time, the monitor also catches
// *silent* failures — a stuck component that simply never produces the
// response — which value-comparison alone cannot see until the next
// state change.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "detection/detectors.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"

namespace trader::detection {

/// One trigger→response deadline requirement.
struct ResponseTimeRule {
  std::string name;
  /// Recognizes the stimulus (e.g. a volume key press).
  std::function<bool(const runtime::Event&)> trigger;
  /// Recognizes a satisfying reaction (e.g. a sound_level output).
  std::function<bool(const runtime::Event&)> response;
  runtime::SimDuration deadline = runtime::msec(100);
};

/// Per-rule statistics.
struct ResponseTimeStats {
  std::uint64_t triggers = 0;
  std::uint64_t responses = 0;
  std::uint64_t violations = 0;
};

class ResponseTimeMonitor {
 public:
  ResponseTimeMonitor(runtime::Scheduler& sched, runtime::EventBus& bus, DetectionLog& log)
      : sched_(sched), bus_(bus), log_(log) {}

  ~ResponseTimeMonitor() { stop(); }

  void add_rule(ResponseTimeRule rule);

  /// Subscribe to the bus (wildcard) and begin monitoring.
  void start();
  void stop();

  const ResponseTimeStats& stats(const std::string& rule) const;

  /// Response-time distribution of satisfied rules (milliseconds).
  runtime::PercentileAccumulator& response_times() { return response_times_; }

 private:
  struct RuleState {
    ResponseTimeRule rule;
    ResponseTimeStats stats;
    // Outstanding trigger timestamps, oldest first. A response satisfies
    // the oldest outstanding trigger (FIFO semantics).
    std::vector<runtime::SimTime> pending;
  };

  void on_event(const runtime::Event& ev);
  void check_deadline(std::size_t rule_index, runtime::SimTime trigger_time);

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  DetectionLog& log_;
  std::vector<RuleState> rules_;
  runtime::Subscription sub_;
  bool running_ = false;
  runtime::PercentileAccumulator response_times_;
};

/// Standard TV timeliness rules: every key press must produce *some*
/// output reaction, and volume keys must update the sound level, within
/// the given deadline.
std::vector<ResponseTimeRule> tv_response_rules(runtime::SimDuration deadline =
                                                    runtime::msec(150));

}  // namespace trader::detection
