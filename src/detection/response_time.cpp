#include "detection/response_time.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace trader::detection {

void ResponseTimeMonitor::add_rule(ResponseTimeRule rule) {
  rules_.push_back(RuleState{std::move(rule), {}, {}});
}

void ResponseTimeMonitor::start() {
  if (running_) return;
  running_ = true;
  sub_ = bus_.subscribe("", [this](const runtime::Event& ev) { on_event(ev); });
}

void ResponseTimeMonitor::stop() {
  if (!running_) return;
  running_ = false;
  bus_.unsubscribe(sub_);
}

void ResponseTimeMonitor::on_event(const runtime::Event& ev) {
  const runtime::SimTime now = sched_.now();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    auto& rs = rules_[i];
    // Responses are matched before new triggers so an event that is both
    // (rare, but possible with broad predicates) closes the older window.
    if (!rs.pending.empty() && rs.rule.response(ev)) {
      const runtime::SimTime trigger_time = rs.pending.front();
      rs.pending.erase(rs.pending.begin());
      ++rs.stats.responses;
      response_times_.add(runtime::to_ms(now - trigger_time));
    }
    if (rs.rule.trigger(ev)) {
      rs.pending.push_back(now);
      ++rs.stats.triggers;
      sched_.schedule_after(rs.rule.deadline + 1,
                            [this, i, now] { check_deadline(i, now); });
    }
  }
}

void ResponseTimeMonitor::check_deadline(std::size_t rule_index, runtime::SimTime trigger_time) {
  if (!running_) return;
  auto& rs = rules_[rule_index];
  auto it = std::find(rs.pending.begin(), rs.pending.end(), trigger_time);
  if (it == rs.pending.end()) return;  // answered in time
  rs.pending.erase(it);
  ++rs.stats.violations;
  std::ostringstream os;
  os << "no response within " << runtime::to_ms(rs.rule.deadline) << " ms of trigger at "
     << trigger_time << "us";
  log_.add(Detection{"timeliness", rs.rule.name, os.str(), sched_.now()});
}

const ResponseTimeStats& ResponseTimeMonitor::stats(const std::string& rule) const {
  for (const auto& rs : rules_) {
    if (rs.rule.name == rule) return rs.stats;
  }
  throw std::out_of_range("no such response-time rule: " + rule);
}

std::vector<ResponseTimeRule> tv_response_rules(runtime::SimDuration deadline) {
  std::vector<ResponseTimeRule> rules;

  // Volume keys must be answered by a sound-level output. (The unmute
  // side effect guarantees a level change for every volume key press in
  // a healthy set: step away from the rail is tested separately.)
  rules.push_back(ResponseTimeRule{
      "volume-key-response",
      [](const runtime::Event& ev) {
        if (ev.topic != "tv.input") return false;
        const std::string key = ev.str_field("key");
        return key == "volume_up" || key == "volume_down" || key == "mute";
      },
      [](const runtime::Event& ev) {
        return ev.topic == "tv.output" && ev.name == "sound_level";
      },
      deadline});

  // A power key press must change the powered output.
  rules.push_back(ResponseTimeRule{
      "power-key-response",
      [](const runtime::Event& ev) {
        return ev.topic == "tv.input" && ev.str_field("key") == "power";
      },
      [](const runtime::Event& ev) {
        return ev.topic == "tv.output" && ev.name == "powered";
      },
      deadline});

  // Teletext key: the screen state must react.
  rules.push_back(ResponseTimeRule{
      "teletext-key-response",
      [](const runtime::Event& ev) {
        return ev.topic == "tv.input" && ev.str_field("key") == "teletext";
      },
      [](const runtime::Event& ev) {
        return ev.topic == "tv.output" && ev.name == "screen_state";
      },
      deadline});

  return rules;
}

}  // namespace trader::detection
