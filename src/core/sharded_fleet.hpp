// Sharded multi-threaded fleet runtime.
//
// The paper (§3) expects "several awareness monitors in a complex
// system"; MonitorFleet runs them all on one scheduler thread, which
// caps throughput at a single core. ShardedFleet partitions monitors
// across N worker threads. Each shard owns a private Scheduler +
// EventBus + Rng + MetricsRegistry, so the hot tick path is entirely
// shard-local and lock-free; the only synchronized structure is the
// MPSC mailbox carrying events that cross a shard boundary.
//
// Execution is epoch-based lockstep: virtual time advances in fixed
// quanta. At every epoch boundary all shards (a) drain their mailboxes
// in deterministic (send-time, source, sequence) order, then — behind a
// barrier — (b) run their schedulers in parallel to the epoch end.
// Cross-shard events published during an epoch are therefore always
// delivered at the next boundary, making delivery order a function of
// the virtual timeline rather than thread interleaving: a fixed seed
// produces identical error reports for 1, 2 or 8 shards.
//
// Monitor placement is a stable hash of the aspect name, so placement
// (and thus results on the deterministic publish paths) does not change
// between runs. Inject events either from outside via
// ShardedFleet::publish(), or from scheduled tasks inside a shard via
// Shard::publish(); both routes go through the mailbox. Publishing
// straight onto a shard's local bus also works (a wildcard router
// forwards to remote owner shards) but then same-shard subscribers see
// the event one epoch earlier than remote ones.
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.hpp"
#include "core/monitor_builder.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rng.hpp"

namespace trader::core {

struct ShardedFleetConfig {
  std::size_t shards = 1;
  /// Barrier quantum: cross-shard events are delivered on this grid.
  runtime::SimDuration epoch = runtime::msec(10);
  /// Master seed; each shard's Rng derives deterministically from it.
  std::uint64_t seed = 0x5eed;
};

class ShardedFleet {
 public:
  using AspectRecoveryHandler = MonitorFleet::AspectRecoveryHandler;

  /// One worker's private runtime island.
  class Shard {
   public:
    runtime::Scheduler& sched() { return sched_; }
    runtime::EventBus& bus() { return bus_; }
    runtime::Rng& rng() { return rng_; }
    runtime::MetricsRegistry& metrics() { return metrics_; }
    /// This shard's batched model state. Monitors placed here share
    /// per-program BatchExecutors; the arena (like the scheduler) is
    /// only ever touched from this shard's worker thread, while the
    /// ModelPrograms inside it are immutable and fleet-wide.
    ModelArena& arena() { return *arena_; }
    std::size_t index() const { return index_; }

    /// Deterministic publish from inside this shard (e.g. from a
    /// scheduled SUO task): the event lands in every owning shard's
    /// mailbox — this shard's included — and is delivered at the next
    /// epoch boundary everywhere.
    void publish(const runtime::Event& ev);

   private:
    friend class ShardedFleet;
    Shard(ShardedFleet& fleet, std::size_t index, std::uint64_t seed);

    struct Entry {
      std::string aspect;
      std::unique_ptr<AwarenessMonitor> monitor;
    };

    ShardedFleet& fleet_;
    std::size_t index_;
    runtime::Scheduler sched_;
    runtime::EventBus bus_;
    runtime::Rng rng_;
    runtime::MetricsRegistry metrics_;
    runtime::Mailbox mailbox_;
    std::shared_ptr<ModelArena> arena_ = std::make_shared<ModelArena>();
    runtime::Counter* cross_shard_out_ = nullptr;
    std::uint64_t route_seq_ = 0;
    bool routing_suppressed_ = false;
    std::vector<Entry> entries_;
    std::vector<AspectError> errors_;
  };

  explicit ShardedFleet(ShardedFleetConfig config = {});
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  /// Add a monitor for `aspect`; placement is hash(aspect) % shards.
  /// Only legal while the fleet is stopped (routing stays immutable
  /// while workers run). Returns the monitor for pre-start tuning.
  AwarenessMonitor& add_monitor(const std::string& aspect, MonitorBuilder builder);

  /// Route `topic` to a shard that has no monitor subscribed to it
  /// (tests or custom subscribers on shard(i).bus()).
  void add_route(const std::string& topic, std::size_t shard_index);

  /// Fleet-wide recovery hook. Called synchronously on worker threads
  /// (serialized by an internal mutex); cross-shard invocation order is
  /// unspecified — use errors() for the deterministic view.
  void set_recovery_handler(AspectRecoveryHandler handler) { handler_ = std::move(handler); }

  /// Start / stop every monitor. Idempotent, like the IControl
  /// contract: double start/stop are no-ops; restart is supported.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Advance all shards in lockstep to virtual time `t` (auto-starts).
  void run_until(runtime::SimTime t);
  void run_for(runtime::SimDuration d) { run_until(now_ + d); }
  runtime::SimTime now() const { return now_; }

  /// Inject an event from outside the fleet; delivered to every owning
  /// shard at the next epoch boundary. Call only between run_* calls.
  void publish(const runtime::Event& ev);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t monitor_count() const;
  std::size_t shard_of(const std::string& aspect) const;
  Shard& shard(std::size_t index) { return *shards_[index]; }
  AwarenessMonitor& monitor(const std::string& aspect);

  /// Merged error view across all shards, sorted by (detection time,
  /// aspect) — identical for identical seeds regardless of shard count.
  std::vector<AspectError> errors() const;
  std::size_t error_count(const std::string& aspect) const;

  /// Merged metrics: fleet-level instruments plus every shard's
  /// registry folded into one snapshot.
  runtime::MetricsSnapshot metrics() const;

 private:
  void spawn_workers();
  void worker_loop(std::size_t index);
  void run_epoch(runtime::SimTime target);
  void drain_mailbox(Shard& shard);
  void route_from_bus(Shard& source, const runtime::Event& ev);

  ShardedFleetConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::vector<std::size_t>> routes_;  // topic -> owner shards
  runtime::MetricsRegistry fleet_metrics_;
  runtime::Counter& epochs_metric_;
  runtime::Counter& external_events_metric_;
  runtime::Counter& unrouted_events_metric_;
  AspectRecoveryHandler handler_;
  std::mutex handler_mu_;

  runtime::SimTime now_ = 0;
  std::uint64_t external_seq_ = 0;
  bool running_ = false;

  // Worker pool: main thread publishes (generation, target) and waits
  // for `remaining_` to hit zero; a std::barrier separates the drain
  // phase from the run phase inside each epoch.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> phase_barrier_;
  std::mutex run_mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  runtime::SimTime target_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace trader::core
