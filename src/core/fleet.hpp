// Multiple awareness monitors per system (§3).
//
// "Typically, there will be several awareness monitors in a complex
// system, for different components, different aspects, and different
// kinds of faults." MonitorFleet owns a set of named monitors on one
// scheduler/bus, fans a single recovery handler out with the
// originating aspect attached, and aggregates error/statistics views —
// the hierarchical and incremental deployment the paper sketches.
//
// MonitorFleet is the single-threaded fleet; ShardedFleet
// (sharded_fleet.hpp) partitions the same abstraction across worker
// threads for multi-core scaling.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/monitor_builder.hpp"

namespace trader::core {

/// An error annotated with the monitor (aspect) that raised it.
struct AspectError {
  std::string aspect;
  ErrorReport report;
};

class MonitorFleet {
 public:
  using AspectRecoveryHandler = std::function<void(const AspectError&)>;

  MonitorFleet(runtime::Scheduler& sched, runtime::EventBus& bus)
      : sched_(sched), bus_(bus) {}

  /// Add a monitor watching one aspect, described by a builder. Returns
  /// a reference usable for per-aspect configuration before start().
  /// Builders without an explicit arena batch their model state into
  /// the fleet's arena, so monitors sharing a ModelProgram share one
  /// dense BatchExecutor.
  AwarenessMonitor& add_monitor(const std::string& aspect, MonitorBuilder builder);

  /// The fleet's batched model state (footprint introspection).
  ModelArena& arena() { return *arena_; }
  const ModelArena& arena() const { return *arena_; }

  void set_recovery_handler(AspectRecoveryHandler handler) { handler_ = std::move(handler); }

  /// Record per-monitor instruments in `metrics` (applies to monitors
  /// already added and to ones added later).
  void set_metrics(runtime::MetricsRegistry* metrics);

  /// Start / stop every monitor. Idempotent: double start/stop is a
  /// no-op and a stopped fleet can be restarted.
  void start();
  void stop();
  bool running() const { return running_; }

  std::size_t size() const { return entries_.size(); }
  AwarenessMonitor& monitor(const std::string& aspect);

  /// All errors across monitors, in report order per aspect.
  const std::vector<AspectError>& errors() const { return errors_; }
  std::size_t error_count(const std::string& aspect) const;

 private:
  struct Entry {
    std::string aspect;
    std::unique_ptr<AwarenessMonitor> monitor;
  };

  AwarenessMonitor& adopt(const std::string& aspect, std::unique_ptr<AwarenessMonitor> monitor);

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  std::shared_ptr<ModelArena> arena_ = std::make_shared<ModelArena>();
  runtime::MetricsRegistry* metrics_ = nullptr;
  std::vector<Entry> entries_;
  std::vector<AspectError> errors_;
  AspectRecoveryHandler handler_;
  bool running_ = false;
};

}  // namespace trader::core
