#include "core/monitor_builder.hpp"

#include <stdexcept>
#include <utility>

#include "core/model_impl.hpp"

namespace trader::core {

MonitorBuilder& MonitorBuilder::model(std::unique_ptr<IModelImpl> model) {
  model_ = std::move(model);
  return *this;
}

MonitorBuilder& MonitorBuilder::model(statemachine::StateMachineDef def) {
  model_ = std::make_unique<InterpretedModel>(std::move(def));
  return *this;
}

MonitorBuilder& MonitorBuilder::compiled_model(statemachine::StateMachineDef def) {
  return with_program(compile_model(std::move(def)));
}

MonitorBuilder& MonitorBuilder::with_program(ModelProgramPtr program) {
  program_ = std::move(program);
  return *this;
}

MonitorBuilder& MonitorBuilder::arena(std::shared_ptr<ModelArena> arena) {
  arena_ = std::move(arena);
  return *this;
}

MonitorBuilder& MonitorBuilder::default_arena(std::shared_ptr<ModelArena> arena) {
  if (!arena_) arena_ = std::move(arena);
  return *this;
}

MonitorBuilder& MonitorBuilder::wrap_model(
    std::function<std::unique_ptr<IModelImpl>(std::unique_ptr<IModelImpl>)> wrap) {
  wrap_ = std::move(wrap);
  return *this;
}

MonitorBuilder& MonitorBuilder::input_topic(std::string topic) {
  spec_.input_topic = std::move(topic);
  return *this;
}

MonitorBuilder& MonitorBuilder::output_topic(std::string topic) {
  if (output_topics_defaulted_) {
    spec_.output_topics.clear();
    output_topics_defaulted_ = false;
  }
  spec_.output_topics.push_back(std::move(topic));
  return *this;
}

MonitorBuilder& MonitorBuilder::threshold(const std::string& name, double threshold,
                                          int max_consecutive) {
  ObservableConfig oc;
  oc.name = name;
  oc.threshold = threshold;
  oc.max_consecutive = max_consecutive;
  return observe(std::move(oc));
}

MonitorBuilder& MonitorBuilder::observe(ObservableConfig oc) {
  for (auto& existing : spec_.config.observables) {
    if (existing.name == oc.name) {
      existing = std::move(oc);
      return *this;
    }
  }
  spec_.config.observables.push_back(std::move(oc));
  return *this;
}

MonitorBuilder& MonitorBuilder::comparison_period(runtime::SimDuration period) {
  spec_.config.comparison_period = period;
  return *this;
}

MonitorBuilder& MonitorBuilder::startup_grace(runtime::SimDuration grace) {
  spec_.config.startup_grace = grace;
  return *this;
}

MonitorBuilder& MonitorBuilder::input_channel(runtime::ChannelConfig channel) {
  spec_.config.input_channel = channel;
  return *this;
}

MonitorBuilder& MonitorBuilder::output_channel(runtime::ChannelConfig channel) {
  spec_.config.output_channel = channel;
  return *this;
}

MonitorBuilder& MonitorBuilder::channel_latency(runtime::SimDuration base_latency) {
  spec_.config.input_channel.base_latency = base_latency;
  spec_.config.output_channel.base_latency = base_latency;
  return *this;
}

MonitorBuilder& MonitorBuilder::input_mapper(InputMapper mapper) {
  spec_.input_mapper = std::move(mapper);
  return *this;
}

MonitorBuilder& MonitorBuilder::output_mapper(OutputMapper mapper) {
  spec_.output_mapper = std::move(mapper);
  return *this;
}

MonitorBuilder& MonitorBuilder::on_error(RecoveryHandler handler) {
  on_error_ = std::move(handler);
  return *this;
}

MonitorBuilder& MonitorBuilder::trace(runtime::TraceLog* trace) {
  trace_ = trace;
  return *this;
}

MonitorBuilder& MonitorBuilder::metrics(runtime::MetricsRegistry* metrics) {
  metrics_ = metrics;
  return *this;
}

std::unique_ptr<AwarenessMonitor> MonitorBuilder::build() {
  if (sched_ == nullptr || bus_ == nullptr) {
    throw std::logic_error(
        "MonitorBuilder::build(): no scheduler/bus bound; construct with "
        "MonitorBuilder(sched, bus) or use build(sched, bus)");
  }
  return build(*sched_, *bus_);
}

std::unique_ptr<AwarenessMonitor> MonitorBuilder::build(runtime::Scheduler& sched,
                                                        runtime::EventBus& bus) {
  std::unique_ptr<IModelImpl> model = std::move(model_);
  if (!model && program_) {
    if (arena_) {
      model = arena_->make_instance(program_);
    } else {
      // No arena in sight: a private batch of size 1 — the legacy
      // one-model-object-per-monitor path on the batched kernel.
      model = std::make_unique<ModelInstance>(
          std::make_shared<statemachine::BatchExecutor>(program_));
    }
  }
  if (!model) {
    throw std::logic_error(
        "MonitorBuilder::build(): no model set; call model(...) or with_program(...) first");
  }
  if (wrap_) model = wrap_(std::move(model));
  auto monitor = std::make_unique<AwarenessMonitor>(sched, bus, std::move(model), spec_);
  if (on_error_) monitor->set_recovery_handler(std::move(on_error_));
  if (trace_ != nullptr) monitor->set_trace(trace_);
  if (metrics_ != nullptr) monitor->set_metrics(metrics_);
  return monitor;
}

}  // namespace trader::core
