// Fluent construction of awareness monitors.
//
// Every pre-builder call site copied the same ritual: declare a Params
// struct, push ObservableConfig entries, tweak channel latencies, then
// thread the struct through the AwarenessMonitor constructor. The
// builder replaces that with one readable chain:
//
//   auto monitor = MonitorBuilder(sched, bus)
//                      .model(my_spec_model())
//                      .input_topic("suo.in")
//                      .output_topic("suo.out")
//                      .threshold("count", 0.0, /*max_consecutive=*/3)
//                      .on_error([](const ErrorReport& e) { ... })
//                      .build();
//
// A builder constructed without a scheduler/bus describes a monitor
// whose home is decided later — MonitorFleet and ShardedFleet call
// build(sched, bus) against the owning (shard's) runtime, which is how
// one description can land on any shard.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/model_program.hpp"
#include "core/monitor.hpp"
#include "statemachine/definition.hpp"

namespace trader::core {

class MonitorBuilder {
 public:
  /// Describe a monitor to be placed later (fleet use).
  MonitorBuilder() = default;
  /// Describe a monitor bound to this scheduler/bus (standalone use).
  MonitorBuilder(runtime::Scheduler& sched, runtime::EventBus& bus)
      : sched_(&sched), bus_(&bus) {}

  /// The executable specification model (one of model/with_program is
  /// required).
  MonitorBuilder& model(std::unique_ptr<IModelImpl> model);
  /// Convenience: run `def` through the interpreting executor.
  MonitorBuilder& model(statemachine::StateMachineDef def);
  /// Convenience: compile `def` into a private program (batched
  /// executor, batch of size 1 unless an arena groups it).
  MonitorBuilder& compiled_model(statemachine::StateMachineDef def);

  /// Share an already compiled program: N monitors built from the same
  /// ModelProgramPtr store one table set, and when they land in the
  /// same arena their state packs into one dense batch.
  MonitorBuilder& with_program(ModelProgramPtr program);
  /// Batch the model state into `arena` (fleets inject their own via
  /// default_arena; explicit arena() wins).
  MonitorBuilder& arena(std::shared_ptr<ModelArena> arena);
  /// Fleet placement hook: adopts `arena` only when none was set.
  MonitorBuilder& default_arena(std::shared_ptr<ModelArena> arena);
  /// Decorate the model right after construction (link gating etc.);
  /// applies to both the model() and with_program() paths.
  MonitorBuilder& wrap_model(
      std::function<std::unique_ptr<IModelImpl>(std::unique_ptr<IModelImpl>)> wrap);

  MonitorBuilder& input_topic(std::string topic);
  /// Appends; the first call replaces the default {"tv.output"}.
  MonitorBuilder& output_topic(std::string topic);

  /// Watch `name` with a deviation threshold and consecutive-deviation
  /// limit (§4.3 tolerance machinery). Repeatable, one call per
  /// observable; replaces an earlier entry of the same name.
  MonitorBuilder& threshold(const std::string& name, double threshold, int max_consecutive = 1);
  /// Full per-observable policy (event/time-based flags included).
  MonitorBuilder& observe(ObservableConfig oc);

  MonitorBuilder& comparison_period(runtime::SimDuration period);
  MonitorBuilder& startup_grace(runtime::SimDuration grace);
  MonitorBuilder& input_channel(runtime::ChannelConfig channel);
  MonitorBuilder& output_channel(runtime::ChannelConfig channel);
  /// Both directions at once (the common symmetric-latency case).
  MonitorBuilder& channel_latency(runtime::SimDuration base_latency);

  MonitorBuilder& input_mapper(InputMapper mapper);
  MonitorBuilder& output_mapper(OutputMapper mapper);

  /// Recovery hook applied right after construction.
  MonitorBuilder& on_error(RecoveryHandler handler);
  MonitorBuilder& trace(runtime::TraceLog* trace);
  MonitorBuilder& metrics(runtime::MetricsRegistry* metrics);

  /// Build against the scheduler/bus given at construction.
  std::unique_ptr<AwarenessMonitor> build();
  /// Build against an explicit runtime (fleet/shard placement).
  std::unique_ptr<AwarenessMonitor> build(runtime::Scheduler& sched, runtime::EventBus& bus);

  /// Topics this monitor will subscribe to — the fleet reads these to
  /// construct its cross-shard routing table before building.
  const std::string& input_topic() const { return spec_.input_topic; }
  const std::vector<std::string>& output_topics() const { return spec_.output_topics; }

 private:
  runtime::Scheduler* sched_ = nullptr;
  runtime::EventBus* bus_ = nullptr;
  std::unique_ptr<IModelImpl> model_;
  ModelProgramPtr program_;
  std::shared_ptr<ModelArena> arena_;
  std::function<std::unique_ptr<IModelImpl>(std::unique_ptr<IModelImpl>)> wrap_;
  MonitorSpec spec_;
  RecoveryHandler on_error_;
  runtime::TraceLog* trace_ = nullptr;
  runtime::MetricsRegistry* metrics_ = nullptr;
  bool output_topics_defaulted_ = true;
};

}  // namespace trader::core
