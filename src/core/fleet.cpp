#include "core/fleet.hpp"

#include <stdexcept>

namespace trader::core {

AwarenessMonitor& MonitorFleet::add_monitor(const std::string& aspect,
                                            std::unique_ptr<IModelImpl> model,
                                            AwarenessMonitor::Params params) {
  auto monitor = std::make_unique<AwarenessMonitor>(sched_, bus_, std::move(model),
                                                    std::move(params));
  AwarenessMonitor& ref = *monitor;
  const std::string name = aspect;
  ref.set_recovery_handler([this, name](const ErrorReport& report) {
    errors_.push_back(AspectError{name, report});
    if (handler_) handler_(errors_.back());
  });
  entries_.push_back(Entry{aspect, std::move(monitor)});
  return ref;
}

void MonitorFleet::start() {
  for (auto& e : entries_) e.monitor->start();
}

void MonitorFleet::stop() {
  for (auto& e : entries_) e.monitor->stop();
}

AwarenessMonitor& MonitorFleet::monitor(const std::string& aspect) {
  for (auto& e : entries_) {
    if (e.aspect == aspect) return *e.monitor;
  }
  throw std::out_of_range("no monitor for aspect: " + aspect);
}

std::size_t MonitorFleet::error_count(const std::string& aspect) const {
  std::size_t n = 0;
  for (const auto& e : errors_) {
    if (e.aspect == aspect) ++n;
  }
  return n;
}

}  // namespace trader::core
