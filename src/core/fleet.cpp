#include "core/fleet.hpp"

#include <stdexcept>

namespace trader::core {

AwarenessMonitor& MonitorFleet::adopt(const std::string& aspect,
                                      std::unique_ptr<AwarenessMonitor> monitor) {
  AwarenessMonitor& ref = *monitor;
  const std::string name = aspect;
  ref.set_recovery_handler([this, name](const ErrorReport& report) {
    errors_.push_back(AspectError{name, report});
    if (handler_) handler_(errors_.back());
  });
  if (metrics_ != nullptr) ref.set_metrics(metrics_);
  entries_.push_back(Entry{aspect, std::move(monitor)});
  if (running_) entries_.back().monitor->start();
  return ref;
}

AwarenessMonitor& MonitorFleet::add_monitor(const std::string& aspect, MonitorBuilder builder) {
  builder.default_arena(arena_);
  return adopt(aspect, builder.build(sched_, bus_));
}

void MonitorFleet::set_metrics(runtime::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& e : entries_) e.monitor->set_metrics(metrics);
}

void MonitorFleet::start() {
  if (running_) return;
  running_ = true;
  for (auto& e : entries_) e.monitor->start();
}

void MonitorFleet::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& e : entries_) e.monitor->stop();
}

AwarenessMonitor& MonitorFleet::monitor(const std::string& aspect) {
  for (auto& e : entries_) {
    if (e.aspect == aspect) return *e.monitor;
  }
  throw std::out_of_range("no monitor for aspect: " + aspect);
}

std::size_t MonitorFleet::error_count(const std::string& aspect) const {
  std::size_t n = 0;
  for (const auto& e : errors_) {
    if (e.aspect == aspect) ++n;
  }
  return n;
}

}  // namespace trader::core
