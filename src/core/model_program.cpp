#include "core/model_program.hpp"

namespace trader::core {

std::unique_ptr<ModelInstance> ModelArena::make_instance(const ModelProgramPtr& program) {
  auto& batch = batches_[program.get()];
  if (!batch) batch = std::make_shared<statemachine::BatchExecutor>(program);
  return std::make_unique<ModelInstance>(batch);
}

std::size_t ModelArena::live_instances() const {
  std::size_t n = 0;
  for (const auto& [program, batch] : batches_) n += batch->live_count();
  return n;
}

std::size_t ModelArena::slot_count() const {
  std::size_t n = 0;
  for (const auto& [program, batch] : batches_) n += batch->slot_count();
  return n;
}

std::size_t ModelArena::approx_bytes() const {
  std::size_t n = 0;
  for (const auto& [program, batch] : batches_) {
    n += batch->slot_count() * batch->approx_bytes_per_instance();
  }
  return n;
}

const statemachine::BatchExecutor* ModelArena::batch(const ModelProgramPtr& program) const {
  auto it = batches_.find(program.get());
  return it == batches_.end() ? nullptr : it->second.get();
}

}  // namespace trader::core
