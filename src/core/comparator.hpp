// Comparator (Fig. 2): compares model expectations with system
// observations, applying the §4.3 tolerance machinery.
//
// "the Comparator should not be too eager to report errors; small delays
// in system-internal communication might easily lead to differences
// during a short time interval."  Per observable it therefore applies:
//   1. a deviation threshold,
//   2. a maximum number of consecutive deviations before reporting,
//   3. event-based and/or time-based comparison, and
//   4. model-driven enable/disable windows (IEnableCompare).
// An error is reported once per deviating episode; the episode resets
// when a comparison agrees again.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/model_executor.hpp"
#include "core/observers.hpp"
#include "runtime/metrics.hpp"

namespace trader::core {

/// Aggregate comparator statistics (for the E3 trade-off bench).
struct ComparatorStats {
  std::uint64_t comparisons = 0;
  std::uint64_t deviations = 0;
  std::uint64_t errors = 0;
  std::uint64_t suppressed = 0;  ///< Skipped via IEnableCompare windows.
  std::uint64_t skipped = 0;     ///< Missing expectation or observation.
};

class Comparator : public IControl {
 public:
  Comparator(const Configuration& config, const ModelExecutor& executor,
             const OutputObserver& observer)
      : config_(config), executor_(executor), observer_(observer) {}

  void start(runtime::SimTime now) override { grace_until_ = now + config_.awareness().startup_grace; }

  /// Attach the error sink (IErrorNotify).
  void set_notify(IErrorNotify* notify) { notify_ = notify; }

  /// Mirror ComparatorStats increments into "comparator.*" counters.
  void set_metrics(runtime::MetricsRegistry* metrics);

  /// Event-based comparison: a fresh observation of `observable` arrived.
  void on_fresh_observation(const std::string& observable, runtime::SimTime now);

  /// Time-based comparison of every monitored observable.
  void compare_all(runtime::SimTime now);

  const ComparatorStats& stats() const { return stats_; }
  const std::vector<ErrorReport>& errors() const { return errors_; }

  /// Is the observable currently inside a deviating episode?
  bool in_deviation(const std::string& observable) const;

 private:
  struct EpisodeState {
    int consecutive = 0;
    bool reported = false;
    runtime::SimTime first_deviation = -1;
  };

  void compare_one(const ObservableConfig& oc, runtime::SimTime now);

  const Configuration& config_;
  const ModelExecutor& executor_;
  const OutputObserver& observer_;
  IErrorNotify* notify_ = nullptr;
  runtime::Counter* comparisons_metric_ = nullptr;
  runtime::Counter* deviations_metric_ = nullptr;
  runtime::Counter* errors_metric_ = nullptr;
  runtime::SimTime grace_until_ = 0;
  std::map<std::string, EpisodeState> episodes_;
  ComparatorStats stats_;
  std::vector<ErrorReport> errors_;
};

}  // namespace trader::core
