#include "core/model_executor.hpp"

namespace trader::core {

void ModelExecutor::start(runtime::SimTime now) {
  model_->start(now);
  drain(now);
}

void ModelExecutor::on_input(const statemachine::SmEvent& ev, runtime::SimTime now) {
  ++inputs_;
  if (inputs_metric_ != nullptr) inputs_metric_->inc();
  // Fire timers that were due before this event (e.g. digit timeouts),
  // then the event itself.
  model_->advance_time(now);
  model_->dispatch(ev, now);
  drain(now);
}

void ModelExecutor::advance(runtime::SimTime now) {
  model_->advance_time(now);
  drain(now);
}

void ModelExecutor::drain(runtime::SimTime now) {
  for (const auto& out : model_->drain_outputs()) {
    auto it = out.fields.find("value");
    if (it == out.fields.end()) continue;
    table_[out.name] = Expectation{it->second, now};
  }
}

std::optional<Expectation> ModelExecutor::expected(const std::string& observable) const {
  auto it = table_.find(observable);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace trader::core
