// IModelImpl adapters for the two state machine executors.
//
// §4.3: "An executable specification model of the SUO in Stateflow can be
// included by using the code generation possibilities of Stateflow. The
// generated C-code can be included easily, allowing quick experiments
// with different models." CompiledModel plays the generated-code role;
// InterpretedModel the direct-execution role. Both honour the
// IEnableCompare convention: a model disables comparison of observable X
// by setting its variable "nocompare:X" (or "nocompare" for all) to true
// while in an unstable state.
#pragma once

#include <memory>

#include "core/interfaces.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/machine.hpp"
#include "statemachine/machine_set.hpp"

namespace trader::core {

/// Runs a StateMachineDef through the interpreting executor.
///
/// Owns a copy of the definition: model implementations routinely
/// outlive the builder scope that produced the definition (the executor
/// classes themselves hold the definition by reference for cheap
/// short-lived instances).
class InterpretedModel : public IModelImpl {
 public:
  explicit InterpretedModel(statemachine::StateMachineDef def)
      : def_(std::move(def)), machine_(def_) {}

  void start(runtime::SimTime now) override { machine_.start(now); }
  bool dispatch(const statemachine::SmEvent& ev, runtime::SimTime now) override {
    return machine_.dispatch(ev, now);
  }
  void advance_time(runtime::SimTime now) override { machine_.advance_time(now); }
  std::vector<statemachine::ModelOutput> drain_outputs() override {
    return machine_.drain_outputs();
  }
  bool comparison_enabled(const std::string& observable) const override {
    if (machine_.vars().get_bool("nocompare", false)) return false;
    return !machine_.vars().get_bool("nocompare:" + observable, false);
  }
  std::string state_name() const override { return machine_.active_leaf(); }

  statemachine::StateMachine& machine() { return machine_; }

 private:
  statemachine::StateMachineDef def_;
  statemachine::StateMachine machine_;
};

/// Runs a StateMachineDef through the flat-table compiled executor
/// (a batch of size 1 since executor v2 — the machine's program owns
/// the definition copy, so no def_ member is needed here).
class CompiledModel : public IModelImpl {
 public:
  explicit CompiledModel(const statemachine::StateMachineDef& def) : machine_(def) {}
  /// Share an already compiled program across models.
  explicit CompiledModel(statemachine::ModelProgramPtr program)
      : machine_(std::move(program)) {}

  void start(runtime::SimTime now) override { machine_.start(now); }
  bool dispatch(const statemachine::SmEvent& ev, runtime::SimTime now) override {
    return machine_.dispatch(ev, now);
  }
  void advance_time(runtime::SimTime now) override { machine_.advance_time(now); }
  std::vector<statemachine::ModelOutput> drain_outputs() override {
    return machine_.drain_outputs();
  }
  bool comparison_enabled(const std::string& observable) const override {
    if (machine_.vars().get_bool("nocompare", false)) return false;
    return !machine_.vars().get_bool("nocompare:" + observable, false);
  }
  std::string state_name() const override { return machine_.active_leaf(); }

  statemachine::CompiledMachine& machine() { return machine_; }

 private:
  statemachine::CompiledMachine machine_;
};

/// Runs a parallel composition of per-aspect machines (Stateflow AND
/// states): events fan out to every region, outputs merge, and the
/// IEnableCompare convention is honoured when *any* region disables an
/// observable.
class ParallelModel : public IModelImpl {
 public:
  explicit ParallelModel(statemachine::MachineSet set) : set_(std::move(set)) {}

  void start(runtime::SimTime now) override { set_.start(now); }
  bool dispatch(const statemachine::SmEvent& ev, runtime::SimTime now) override {
    return set_.dispatch(ev, now) > 0;
  }
  void advance_time(runtime::SimTime now) override { set_.advance_time(now); }
  std::vector<statemachine::ModelOutput> drain_outputs() override {
    return set_.drain_outputs();
  }
  bool comparison_enabled(const std::string& observable) const override;
  std::string state_name() const override;

  statemachine::MachineSet& set() { return set_; }

 private:
  statemachine::MachineSet set_;
};

}  // namespace trader::core
