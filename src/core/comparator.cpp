#include "core/comparator.hpp"

namespace trader::core {

void Comparator::set_metrics(runtime::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    comparisons_metric_ = nullptr;
    deviations_metric_ = nullptr;
    errors_metric_ = nullptr;
    return;
  }
  comparisons_metric_ = &metrics->counter("comparator.comparisons");
  deviations_metric_ = &metrics->counter("comparator.deviations");
  errors_metric_ = &metrics->counter("comparator.errors");
}

void Comparator::on_fresh_observation(const std::string& observable, runtime::SimTime now) {
  auto oc = config_.lookup(observable);
  if (!oc || !oc->event_based) return;
  compare_one(*oc, now);
}

void Comparator::compare_all(runtime::SimTime now) {
  for (const auto& oc : config_.awareness().observables) {
    if (oc.time_based) compare_one(oc, now);
  }
}

void Comparator::compare_one(const ObservableConfig& oc, runtime::SimTime now) {
  if (now < grace_until_) return;
  if (!executor_.comparison_enabled(oc.name)) {
    ++stats_.suppressed;
    return;
  }
  const auto expected = executor_.expected(oc.name);
  const auto observed = observer_.observed(oc.name);
  if (!expected || !observed) {
    ++stats_.skipped;
    return;
  }
  ++stats_.comparisons;
  if (comparisons_metric_ != nullptr) comparisons_metric_->inc();

  auto& ep = episodes_[oc.name];
  const double dev = runtime::deviation(expected->value, observed->value);
  if (dev <= oc.threshold) {
    ep.consecutive = 0;
    ep.reported = false;
    ep.first_deviation = -1;
    return;
  }

  ++stats_.deviations;
  if (deviations_metric_ != nullptr) deviations_metric_->inc();
  if (ep.consecutive == 0) ep.first_deviation = now;
  ++ep.consecutive;
  if (ep.consecutive >= oc.max_consecutive && !ep.reported) {
    ep.reported = true;
    ++stats_.errors;
    if (errors_metric_ != nullptr) errors_metric_->inc();
    ErrorReport report{oc.name,        expected->value,     observed->value, dev,
                       ep.consecutive, now,                 ep.first_deviation};
    errors_.push_back(report);
    if (notify_ != nullptr) notify_->on_error(report);
  }
}

bool Comparator::in_deviation(const std::string& observable) const {
  auto it = episodes_.find(observable);
  return it != episodes_.end() && it->second.consecutive > 0;
}

}  // namespace trader::core
