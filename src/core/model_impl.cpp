#include "core/model_impl.hpp"

#include <sstream>

namespace trader::core {

bool ParallelModel::comparison_enabled(const std::string& observable) const {
  for (const auto& name : set_.region_names()) {
    const auto& vars = set_.region(name).vars();
    if (vars.get_bool("nocompare", false)) return false;
    if (vars.get_bool("nocompare:" + observable, false)) return false;
  }
  return true;
}

std::string ParallelModel::state_name() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& part : set_.configuration()) {
    if (!first) os << " | ";
    first = false;
    os << part;
  }
  return os.str();
}

}  // namespace trader::core
