// Interfaces of the awareness framework, named after Fig. 2 of the paper.
//
//   IControl        — lifecycle control of every framework component
//   IModelImpl      — the executable specification model (the box
//                     "Stateflow Model Implementation"; here: our state
//                     machine engine behind an abstract interface)
//   IErrorNotify    — error reporting from the Comparator
//
// The remaining Fig. 2 interfaces (IInputEvent, IOutputEvent, IEventInfo,
// ISpecInfo, IModelExecutor, IEnableCompare, IConfigInfo) appear as the
// concrete methods of InputObserver, OutputObserver, ModelExecutor,
// Comparator and Configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"
#include "statemachine/machine.hpp"

namespace trader::core {

/// Lifecycle interface implemented by all framework components (Fig. 2's
/// IControl, provided by every box and used by the Controller).
///
/// Contract: calls follow initialize() -> start() -> stop(), and the
/// whole sequence may repeat for a restart. Implementations must be
/// idempotent at every stage — initialize() after the first call,
/// start() while already running, and stop() while already stopped are
/// no-ops. In particular a component must never double-register
/// periodic work on a repeated start(); the Controller enforces this
/// ordering for the components it drives.
class IControl {
 public:
  virtual ~IControl() = default;
  virtual void initialize() {}
  virtual void start(runtime::SimTime now) { (void)now; }
  virtual void stop() {}
};

/// The executable specification model run by the Model Executor.
///
/// Implementations adapt the interpreting or the compiled state machine
/// executor (or any hand-written model) to the framework.
class IModelImpl {
 public:
  virtual ~IModelImpl() = default;

  virtual void start(runtime::SimTime now) = 0;
  /// Feed one input event; returns true when the model reacted.
  virtual bool dispatch(const statemachine::SmEvent& ev, runtime::SimTime now) = 0;
  /// Let model-internal timers fire up to `now`.
  virtual void advance_time(runtime::SimTime now) = 0;
  /// Model outputs produced since the last drain.
  virtual std::vector<statemachine::ModelOutput> drain_outputs() = 0;
  /// IEnableCompare: the model may suppress comparison of an observable
  /// while the system is legitimately "between modes" (§4.3).
  virtual bool comparison_enabled(const std::string& observable) const {
    (void)observable;
    return true;
  }
  /// Diagnostic name of the model's current state ("" if not applicable).
  virtual std::string state_name() const { return {}; }
};

/// One detected error (IErrorNotify payload).
struct ErrorReport {
  std::string observable;
  runtime::Value expected;
  runtime::Value observed;
  double deviation = 0.0;
  int consecutive = 0;              ///< Deviating comparisons in a row.
  runtime::SimTime detected_at = 0; ///< When the error was reported.
  runtime::SimTime first_deviation_at = 0;  ///< Start of the episode.

  std::string describe() const;
};

/// Receiver of comparator errors (Fig. 2's IErrorNotify).
class IErrorNotify {
 public:
  virtual ~IErrorNotify() = default;
  virtual void on_error(const ErrorReport& report) = 0;
};

}  // namespace trader::core
