#include "core/observers.hpp"

namespace trader::core {

std::optional<statemachine::SmEvent> default_input_mapper(const runtime::Event& ev) {
  statemachine::SmEvent sm;
  const std::string key = ev.str_field("key");
  if (!key.empty()) {
    sm.name = key;
  } else {
    sm.name = ev.name;
    sm.params = ev.fields;
  }
  return sm;
}

std::optional<std::pair<std::string, runtime::Value>> default_output_mapper(
    const runtime::Event& ev) {
  auto v = ev.field("value");
  if (!v) return std::nullopt;
  return std::make_pair(ev.name, *v);
}

// ------------------------------------------------------------- InputObserver

InputObserver::InputObserver(runtime::Scheduler& sched, runtime::EventBus& bus,
                             std::string topic, runtime::ChannelConfig channel,
                             InputMapper mapper, Sink sink)
    : sched_(sched),
      bus_(bus),
      topic_(std::move(topic)),
      mapper_(mapper ? std::move(mapper) : default_input_mapper),
      sink_(std::move(sink)),
      channel_(sched, runtime::Rng(0x1111), channel, [this](const runtime::Event& ev) {
        auto sm = mapper_(ev);
        if (sm && sink_) sink_(*sm, sched_.now());
      }) {}

void InputObserver::start(runtime::SimTime) {
  sub_ = bus_.subscribe(topic_, [this](const runtime::Event& ev) {
    ++observed_;
    channel_.send(ev);
  });
}

void InputObserver::stop() { bus_.unsubscribe(sub_); }

// ------------------------------------------------------------ OutputObserver

OutputObserver::OutputObserver(runtime::Scheduler& sched, runtime::EventBus& bus,
                               std::vector<std::string> topics, runtime::ChannelConfig channel,
                               OutputMapper mapper)
    : sched_(sched),
      bus_(bus),
      topics_(std::move(topics)),
      mapper_(mapper ? std::move(mapper) : default_output_mapper),
      channel_(sched, runtime::Rng(0x2222), channel,
               [this](const runtime::Event& ev) { deliver(ev); }) {}

void OutputObserver::start(runtime::SimTime) {
  for (const auto& topic : topics_) {
    subs_.push_back(bus_.subscribe(topic, [this](const runtime::Event& ev) {
      ++observed_;
      channel_.send(ev);
    }));
  }
}

void OutputObserver::stop() {
  for (auto& s : subs_) bus_.unsubscribe(s);
  subs_.clear();
}

void OutputObserver::deliver(const runtime::Event& ev) {
  auto mapped = mapper_(ev);
  if (!mapped) return;
  table_[mapped->first] = Observation{mapped->second, sched_.now()};
  if (fresh_) fresh_(mapped->first, sched_.now());
}

std::optional<Observation> OutputObserver::observed(const std::string& observable) const {
  auto it = table_.find(observable);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace trader::core
