// Controller and AwarenessMonitor facade (Fig. 2).
//
// "The Controller initiates and controls all components, except for the
// Configuration component which is controlled by the Model Executor."
// AwarenessMonitor assembles one complete monitor: observers, model
// executor, comparator, controller, configuration — the unit of which a
// complex system will typically run several, "for different components,
// different aspects, and different kinds of faults" (§3).
//
// Construction goes through MonitorBuilder (monitor_builder.hpp); the
// raw MonitorSpec constructor remains for the builder.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/comparator.hpp"
#include "core/configuration.hpp"
#include "core/model_executor.hpp"
#include "core/observers.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace_log.hpp"

namespace trader::core {

/// Recovery hook invoked on every reported error (the link from error
/// detection to the diagnosis/recovery stages of Fig. 1).
using RecoveryHandler = std::function<void(const ErrorReport&)>;

/// Complete wiring description of one awareness monitor. Produced by
/// MonitorBuilder.
struct MonitorSpec {
  AwarenessConfig config;
  std::string input_topic = "tv.input";
  std::vector<std::string> output_topics = {"tv.output"};
  InputMapper input_mapper;    ///< Default mapper when empty.
  OutputMapper output_mapper;  ///< Default mapper when empty.
};

/// The Controller box: lifecycle + error routing.
///
/// Lifecycle contract (IControl): initialize() must precede start();
/// start() auto-initializes when the caller skipped it. The sequence
/// initialize -> start -> stop may repeat; initialize() after the first
/// call, start() while running and stop() while stopped are idempotent
/// no-ops — a double start() must never schedule a second tick task.
class Controller : public IControl, public IErrorNotify {
 public:
  Controller(runtime::Scheduler& sched, Configuration& config, ModelExecutor& executor,
             InputObserver& input, OutputObserver& output, Comparator& comparator);

  void initialize() override;
  void start(runtime::SimTime now) override;
  void stop() override;

  void on_error(const ErrorReport& report) override;

  void set_recovery_handler(RecoveryHandler h) { recovery_ = std::move(h); }
  /// Passive observer of the error-report stream, invoked before the
  /// recovery handler. Unlike set_recovery_handler (which fleets claim
  /// for error aggregation), the tap is reserved for recorders — the
  /// testkit golden-trace machinery — so recording never steals the
  /// recovery hook.
  void set_error_tap(RecoveryHandler tap) { error_tap_ = std::move(tap); }
  void set_trace(runtime::TraceLog* trace) { trace_ = trace; }
  /// Attach a metrics registry: tick count, wall-clock tick latency and
  /// error count are recorded under "controller.*".
  void set_metrics(runtime::MetricsRegistry* metrics);

  bool running() const { return running_; }
  const std::vector<ErrorReport>& errors() const { return errors_; }

 private:
  void tick();

  runtime::Scheduler& sched_;
  Configuration& config_;
  ModelExecutor& executor_;
  InputObserver& input_;
  OutputObserver& output_;
  Comparator& comparator_;
  RecoveryHandler recovery_;
  RecoveryHandler error_tap_;
  runtime::TraceLog* trace_ = nullptr;
  runtime::Counter* ticks_metric_ = nullptr;
  runtime::Counter* errors_metric_ = nullptr;
  runtime::Histogram* tick_latency_metric_ = nullptr;
  runtime::TaskHandle tick_handle_;
  std::vector<ErrorReport> errors_;
  bool initialized_ = false;
  bool running_ = false;
};

/// One fully wired awareness monitor.
class AwarenessMonitor {
 public:
  AwarenessMonitor(runtime::Scheduler& sched, runtime::EventBus& bus,
                   std::unique_ptr<IModelImpl> model, MonitorSpec spec);

  /// Initialize and start every component (Controller included).
  /// Idempotent: calling start() on a running monitor is a no-op, and a
  /// stopped monitor can be started again.
  void start();
  void stop();
  bool running() const { return controller_.running(); }

  void set_recovery_handler(RecoveryHandler h) { controller_.set_recovery_handler(std::move(h)); }
  /// Passive error-report tap (see Controller::set_error_tap).
  void set_error_tap(RecoveryHandler tap) { controller_.set_error_tap(std::move(tap)); }
  void set_trace(runtime::TraceLog* trace) { controller_.set_trace(trace); }
  /// Wire controller/comparator/model-executor instruments into `m`.
  void set_metrics(runtime::MetricsRegistry* m);

  const std::vector<ErrorReport>& errors() const { return controller_.errors(); }
  const ComparatorStats& stats() const { return comparator_.stats(); }
  Configuration& configuration() { return configuration_; }
  ModelExecutor& executor() { return executor_; }
  const OutputObserver& output_observer() const { return output_; }
  Comparator& comparator() { return comparator_; }

 private:
  runtime::Scheduler& sched_;
  Configuration configuration_;
  ModelExecutor executor_;
  InputObserver input_;
  OutputObserver output_;
  Comparator comparator_;
  Controller controller_;
};

}  // namespace trader::core
