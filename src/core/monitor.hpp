// Controller and AwarenessMonitor facade (Fig. 2).
//
// "The Controller initiates and controls all components, except for the
// Configuration component which is controlled by the Model Executor."
// AwarenessMonitor assembles one complete monitor: observers, model
// executor, comparator, controller, configuration — the unit of which a
// complex system will typically run several, "for different components,
// different aspects, and different kinds of faults" (§3).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/comparator.hpp"
#include "core/configuration.hpp"
#include "core/model_executor.hpp"
#include "core/observers.hpp"
#include "runtime/trace_log.hpp"

namespace trader::core {

/// Recovery hook invoked on every reported error (the link from error
/// detection to the diagnosis/recovery stages of Fig. 1).
using RecoveryHandler = std::function<void(const ErrorReport&)>;

/// The Controller box: lifecycle + error routing.
class Controller : public IControl, public IErrorNotify {
 public:
  Controller(runtime::Scheduler& sched, Configuration& config, ModelExecutor& executor,
             InputObserver& input, OutputObserver& output, Comparator& comparator);

  void initialize() override;
  void start(runtime::SimTime now) override;
  void stop() override;

  void on_error(const ErrorReport& report) override;

  void set_recovery_handler(RecoveryHandler h) { recovery_ = std::move(h); }
  void set_trace(runtime::TraceLog* trace) { trace_ = trace; }

  const std::vector<ErrorReport>& errors() const { return errors_; }

 private:
  void tick();

  runtime::Scheduler& sched_;
  Configuration& config_;
  ModelExecutor& executor_;
  InputObserver& input_;
  OutputObserver& output_;
  Comparator& comparator_;
  RecoveryHandler recovery_;
  runtime::TraceLog* trace_ = nullptr;
  runtime::TaskHandle tick_handle_;
  std::vector<ErrorReport> errors_;
  bool running_ = false;
};

/// One fully wired awareness monitor.
class AwarenessMonitor {
 public:
  struct Params {
    AwarenessConfig config;
    std::string input_topic = "tv.input";
    std::vector<std::string> output_topics = {"tv.output"};
    InputMapper input_mapper;    ///< Default mapper when empty.
    OutputMapper output_mapper;  ///< Default mapper when empty.
  };

  AwarenessMonitor(runtime::Scheduler& sched, runtime::EventBus& bus,
                   std::unique_ptr<IModelImpl> model, Params params);

  /// Initialize and start every component (Controller included).
  void start();
  void stop();

  void set_recovery_handler(RecoveryHandler h) { controller_.set_recovery_handler(std::move(h)); }
  void set_trace(runtime::TraceLog* trace) { controller_.set_trace(trace); }

  const std::vector<ErrorReport>& errors() const { return controller_.errors(); }
  const ComparatorStats& stats() const { return comparator_.stats(); }
  Configuration& configuration() { return configuration_; }
  ModelExecutor& executor() { return executor_; }
  const OutputObserver& output_observer() const { return output_; }
  Comparator& comparator() { return comparator_; }

 private:
  runtime::Scheduler& sched_;
  Configuration configuration_;
  ModelExecutor executor_;
  InputObserver input_;
  OutputObserver output_;
  Comparator comparator_;
  Controller controller_;
};

}  // namespace trader::core
