// Input and Output Observers (Fig. 2).
//
// The SUO publishes its input and output events on the event bus; the
// observers receive them *across the process boundary* — a latency
// channel standing in for the Unix domain sockets of the Linux
// implementation — and hand them to the Model Executor / Comparator.
// The SUO-side adaptation is minimal by design (§4.3: "The SUO has to be
// adapted slightly, to send messages with relevant input and output
// events"): it only needs to publish events, which TvSystem already does.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/interfaces.hpp"
#include "runtime/channel.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"

namespace trader::core {

/// Maps a SUO input event to a model event (IInputEvent -> IEventInfo).
using InputMapper = std::function<std::optional<statemachine::SmEvent>(const runtime::Event&)>;

/// Maps a SUO output event to (observable, value) (IOutputEvent).
using OutputMapper =
    std::function<std::optional<std::pair<std::string, runtime::Value>>(const runtime::Event&)>;

/// Default input mapping: a "key" string field becomes the event name;
/// otherwise the event's own name is used and fields become parameters.
std::optional<statemachine::SmEvent> default_input_mapper(const runtime::Event& ev);

/// Default output mapping: event name = observable, field "value" = value.
std::optional<std::pair<std::string, runtime::Value>> default_output_mapper(
    const runtime::Event& ev);

/// Observes SUO input events and delivers them (after channel latency)
/// to a sink — the Model Executor.
class InputObserver : public IControl {
 public:
  using Sink = std::function<void(const statemachine::SmEvent&, runtime::SimTime)>;

  InputObserver(runtime::Scheduler& sched, runtime::EventBus& bus, std::string topic,
                runtime::ChannelConfig channel, InputMapper mapper, Sink sink);

  void start(runtime::SimTime now) override;
  void stop() override;

  std::uint64_t observed_events() const { return observed_; }

 private:
  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  std::string topic_;
  InputMapper mapper_;
  Sink sink_;
  runtime::LatencyChannel channel_;
  runtime::Subscription sub_;
  std::uint64_t observed_ = 0;
};

/// Latest observed value of one observable.
struct Observation {
  runtime::Value value;
  runtime::SimTime at = -1;
};

/// Observes SUO output events; maintains the observed-value table the
/// Comparator reads, and notifies it for event-based comparison.
class OutputObserver : public IControl {
 public:
  /// Called on each fresh observation (event-based comparison trigger).
  using FreshHandler = std::function<void(const std::string& observable, runtime::SimTime)>;

  OutputObserver(runtime::Scheduler& sched, runtime::EventBus& bus,
                 std::vector<std::string> topics, runtime::ChannelConfig channel,
                 OutputMapper mapper);

  void start(runtime::SimTime now) override;
  void stop() override;

  void on_fresh(FreshHandler h) { fresh_ = std::move(h); }

  /// The observed-value table (IOutputEvent consumer side).
  std::optional<Observation> observed(const std::string& observable) const;

  std::uint64_t observed_events() const { return observed_; }

 private:
  void deliver(const runtime::Event& ev);

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  std::vector<std::string> topics_;
  OutputMapper mapper_;
  runtime::LatencyChannel channel_;
  std::vector<runtime::Subscription> subs_;
  FreshHandler fresh_;
  std::map<std::string, Observation> table_;
  std::uint64_t observed_ = 0;
};

}  // namespace trader::core
