#include "core/configuration.hpp"

#include <sstream>

namespace trader::core {

std::string ErrorReport::describe() const {
  std::ostringstream os;
  os << "[" << detected_at << "us] error on '" << observable
     << "': expected=" << runtime::to_string(expected)
     << " observed=" << runtime::to_string(observed) << " deviation=" << deviation
     << " consecutive=" << consecutive;
  return os.str();
}

std::optional<ObservableConfig> Configuration::lookup(const std::string& observable) const {
  for (const auto& oc : config_.observables) {
    if (oc.name == observable) return oc;
  }
  return std::nullopt;
}

void Configuration::set_observable(ObservableConfig oc) {
  for (auto& existing : config_.observables) {
    if (existing.name == oc.name) {
      existing = std::move(oc);
      return;
    }
  }
  config_.observables.push_back(std::move(oc));
}

std::vector<std::string> Configuration::observable_names() const {
  std::vector<std::string> out;
  out.reserve(config_.observables.size());
  for (const auto& oc : config_.observables) out.push_back(oc.name);
  return out;
}

}  // namespace trader::core
