// Configuration component (Fig. 2): which observables are compared, and
// how leniently.
//
// §4.3: "the user of the framework can specify, for each observable
// value: (1) a threshold for the allowed maximal deviation between
// specification model and system, and (2) a maximum for the number of
// consecutive deviations that are allowed before an error will be
// reported." Plus the comparison frequency for time-based comparison.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/interfaces.hpp"
#include "runtime/channel.hpp"

namespace trader::core {

/// Per-observable comparison policy.
struct ObservableConfig {
  std::string name;
  double threshold = 0.0;   ///< Max allowed |expected - observed|.
  int max_consecutive = 1;  ///< Deviations tolerated before an error.
  bool event_based = true;  ///< Compare when a fresh observation arrives.
  bool time_based = true;   ///< Compare on the periodic tick as well.
};

/// Whole-monitor configuration.
struct AwarenessConfig {
  std::vector<ObservableConfig> observables;
  /// Period of time-based comparison (§4.3: "the frequency with which
  /// time-based comparison takes place").
  runtime::SimDuration comparison_period = runtime::msec(50);
  /// Suppress comparisons for this long after start (boot transient).
  runtime::SimDuration startup_grace = runtime::msec(100);
  /// Simulated process boundary (Fig. 2): SUO -> monitor link.
  runtime::ChannelConfig input_channel;
  runtime::ChannelConfig output_channel;
};

/// The Configuration box: owned by the Model Executor side per Fig. 2
/// ("the Configuration component … is controlled by the Model Executor").
class Configuration : public IControl {
 public:
  explicit Configuration(AwarenessConfig config) : config_(std::move(config)) {}

  const AwarenessConfig& awareness() const { return config_; }

  /// IConfigInfo: policy for one observable (nullopt = not monitored).
  std::optional<ObservableConfig> lookup(const std::string& observable) const;

  /// Replace or add a per-observable policy at run time.
  void set_observable(ObservableConfig oc);

  /// All monitored observable names.
  std::vector<std::string> observable_names() const;

 private:
  AwarenessConfig config_;
};

}  // namespace trader::core
