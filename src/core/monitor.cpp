#include "core/monitor.hpp"

#include <chrono>

namespace trader::core {

// ----------------------------------------------------------------- Controller

Controller::Controller(runtime::Scheduler& sched, Configuration& config,
                       ModelExecutor& executor, InputObserver& input, OutputObserver& output,
                       Comparator& comparator)
    : sched_(sched),
      config_(config),
      executor_(executor),
      input_(input),
      output_(output),
      comparator_(comparator) {}

void Controller::initialize() {
  if (initialized_) return;
  config_.initialize();
  executor_.initialize();
  input_.initialize();
  output_.initialize();
  comparator_.initialize();
  comparator_.set_notify(this);
  initialized_ = true;
}

void Controller::start(runtime::SimTime now) {
  if (running_) return;  // double-start must not schedule a second tick
  if (!initialized_) initialize();
  executor_.start(now);
  input_.start(now);
  output_.start(now);
  comparator_.start(now);
  running_ = true;
  tick_handle_ = sched_.schedule_every(config_.awareness().comparison_period, [this] { tick(); });
  if (trace_ != nullptr) {
    trace_->log(now, runtime::TraceLevel::kInfo, "controller", "awareness monitor started");
  }
}

void Controller::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(tick_handle_);
  tick_handle_ = runtime::TaskHandle();
  input_.stop();
  output_.stop();
}

void Controller::set_metrics(runtime::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ticks_metric_ = nullptr;
    errors_metric_ = nullptr;
    tick_latency_metric_ = nullptr;
    return;
  }
  ticks_metric_ = &metrics->counter("controller.ticks");
  errors_metric_ = &metrics->counter("controller.errors");
  tick_latency_metric_ = &metrics->histogram("controller.tick_latency_ns");
}

void Controller::tick() {
  const bool timed = tick_latency_metric_ != nullptr;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const runtime::SimTime now = sched_.now();
  executor_.advance(now);
  comparator_.compare_all(now);
  if (ticks_metric_ != nullptr) ticks_metric_->inc();
  if (timed) {
    const auto t1 = std::chrono::steady_clock::now();
    tick_latency_metric_->record(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
}

void Controller::on_error(const ErrorReport& report) {
  errors_.push_back(report);
  if (errors_metric_ != nullptr) errors_metric_->inc();
  if (trace_ != nullptr) {
    trace_->log(report.detected_at, runtime::TraceLevel::kError, "comparator", report.describe());
  }
  if (error_tap_) error_tap_(report);
  if (recovery_) recovery_(report);
}

// ----------------------------------------------------------- AwarenessMonitor

AwarenessMonitor::AwarenessMonitor(runtime::Scheduler& sched, runtime::EventBus& bus,
                                   std::unique_ptr<IModelImpl> model, MonitorSpec spec)
    : sched_(sched),
      configuration_(spec.config),
      executor_(std::move(model)),
      input_(sched, bus, spec.input_topic, spec.config.input_channel,
             std::move(spec.input_mapper),
             [this](const statemachine::SmEvent& ev, runtime::SimTime now) {
               executor_.on_input(ev, now);
             }),
      output_(sched, bus, spec.output_topics, spec.config.output_channel,
              std::move(spec.output_mapper)),
      comparator_(configuration_, executor_, output_),
      controller_(sched, configuration_, executor_, input_, output_, comparator_) {
  output_.on_fresh([this](const std::string& observable, runtime::SimTime now) {
    comparator_.on_fresh_observation(observable, now);
  });
}

void AwarenessMonitor::start() {
  controller_.initialize();
  controller_.start(sched_.now());
}

void AwarenessMonitor::stop() { controller_.stop(); }

void AwarenessMonitor::set_metrics(runtime::MetricsRegistry* m) {
  controller_.set_metrics(m);
  comparator_.set_metrics(m);
  executor_.set_metrics(m);
}

}  // namespace trader::core
