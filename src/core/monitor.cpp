#include "core/monitor.hpp"

namespace trader::core {

// ----------------------------------------------------------------- Controller

Controller::Controller(runtime::Scheduler& sched, Configuration& config,
                       ModelExecutor& executor, InputObserver& input, OutputObserver& output,
                       Comparator& comparator)
    : sched_(sched),
      config_(config),
      executor_(executor),
      input_(input),
      output_(output),
      comparator_(comparator) {}

void Controller::initialize() {
  config_.initialize();
  executor_.initialize();
  input_.initialize();
  output_.initialize();
  comparator_.initialize();
  comparator_.set_notify(this);
}

void Controller::start(runtime::SimTime now) {
  executor_.start(now);
  input_.start(now);
  output_.start(now);
  comparator_.start(now);
  running_ = true;
  tick_handle_ = sched_.schedule_every(config_.awareness().comparison_period, [this] { tick(); });
  if (trace_ != nullptr) {
    trace_->log(now, runtime::TraceLevel::kInfo, "controller", "awareness monitor started");
  }
}

void Controller::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(tick_handle_);
  input_.stop();
  output_.stop();
}

void Controller::tick() {
  const runtime::SimTime now = sched_.now();
  executor_.advance(now);
  comparator_.compare_all(now);
}

void Controller::on_error(const ErrorReport& report) {
  errors_.push_back(report);
  if (trace_ != nullptr) {
    trace_->log(report.detected_at, runtime::TraceLevel::kError, "comparator", report.describe());
  }
  if (recovery_) recovery_(report);
}

// ----------------------------------------------------------- AwarenessMonitor

AwarenessMonitor::AwarenessMonitor(runtime::Scheduler& sched, runtime::EventBus& bus,
                                   std::unique_ptr<IModelImpl> model, Params params)
    : sched_(sched),
      configuration_(params.config),
      executor_(std::move(model)),
      input_(sched, bus, params.input_topic, params.config.input_channel,
             std::move(params.input_mapper),
             [this](const statemachine::SmEvent& ev, runtime::SimTime now) {
               executor_.on_input(ev, now);
             }),
      output_(sched, bus, params.output_topics, params.config.output_channel,
              std::move(params.output_mapper)),
      comparator_(configuration_, executor_, output_),
      controller_(sched, configuration_, executor_, input_, output_, comparator_) {
  output_.on_fresh([this](const std::string& observable, runtime::SimTime now) {
    comparator_.on_fresh_observation(observable, now);
  });
}

void AwarenessMonitor::start() {
  controller_.initialize();
  controller_.start(sched_.now());
}

void AwarenessMonitor::stop() { controller_.stop(); }

}  // namespace trader::core
