#include "core/sharded_fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace trader::core {

namespace {

/// Stable aspect hash (FNV-1a): placement must not depend on the
/// standard library's std::hash, which varies across platforms.
std::uint64_t stable_hash(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------- Shard

ShardedFleet::Shard::Shard(ShardedFleet& fleet, std::size_t index, std::uint64_t seed)
    : fleet_(fleet),
      index_(index),
      rng_(runtime::Rng(seed).fork()),
      cross_shard_out_(&metrics_.counter("fleet.cross_shard_out")) {
  // Router: forward bus-published events to remote owner shards. The
  // wildcard subscription runs after topic subscribers, so local
  // delivery has already happened when an event is forwarded.
  bus_.subscribe("", [this](const runtime::Event& ev) {
    if (routing_suppressed_) return;
    fleet_.route_from_bus(*this, ev);
  });
}

void ShardedFleet::Shard::publish(const runtime::Event& ev) {
  auto it = fleet_.routes_.find(ev.topic);
  if (it == fleet_.routes_.end()) {
    fleet_.unrouted_events_metric_.inc();
    return;
  }
  for (std::size_t dest : it->second) {
    fleet_.shards_[dest]->mailbox_.push(runtime::MailboxEntry{
        ev, sched_.now(), static_cast<std::uint32_t>(index_), route_seq_});
    if (dest != index_) cross_shard_out_->inc();
  }
  ++route_seq_;
}

// --------------------------------------------------------------- ShardedFleet

ShardedFleet::ShardedFleet(ShardedFleetConfig config)
    : config_(config),
      epochs_metric_(fleet_metrics_.counter("fleet.epochs")),
      external_events_metric_(fleet_metrics_.counter("fleet.external_events")),
      unrouted_events_metric_(fleet_metrics_.counter("fleet.unrouted_events")) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.epoch <= 0) config_.epoch = runtime::msec(10);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    // Per-shard seed: mix the shard index into the master seed so each
    // shard draws an independent deterministic stream.
    const std::uint64_t shard_seed =
        config_.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
    shards_.push_back(std::unique_ptr<Shard>(new Shard(*this, i, shard_seed)));
  }
  fleet_metrics_.gauge("fleet.shards").set(static_cast<double>(config_.shards));
}

ShardedFleet::~ShardedFleet() {
  stop();
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

std::size_t ShardedFleet::shard_of(const std::string& aspect) const {
  return stable_hash(aspect) % shards_.size();
}

AwarenessMonitor& ShardedFleet::add_monitor(const std::string& aspect, MonitorBuilder builder) {
  if (running_) {
    throw std::logic_error("ShardedFleet::add_monitor: stop() the fleet before adding monitors");
  }
  Shard& shard = *shards_[shard_of(aspect)];
  add_route(builder.input_topic(), shard.index_);
  for (const auto& topic : builder.output_topics()) add_route(topic, shard.index_);

  builder.default_arena(shard.arena_);
  auto monitor = builder.build(shard.sched_, shard.bus_);
  AwarenessMonitor& ref = *monitor;
  const std::string name = aspect;
  Shard* home = &shard;
  ref.set_recovery_handler([this, home, name](const ErrorReport& report) {
    home->errors_.push_back(AspectError{name, report});
    if (handler_) {
      std::lock_guard<std::mutex> lock(handler_mu_);
      handler_(home->errors_.back());
    }
  });
  ref.set_metrics(&shard.metrics_);
  shard.entries_.push_back(Shard::Entry{aspect, std::move(monitor)});
  fleet_metrics_.gauge("fleet.monitors").set(static_cast<double>(monitor_count()));
  return ref;
}

void ShardedFleet::add_route(const std::string& topic, std::size_t shard_index) {
  auto& owners = routes_[topic];
  if (std::find(owners.begin(), owners.end(), shard_index) == owners.end()) {
    owners.push_back(shard_index);
    std::sort(owners.begin(), owners.end());
  }
}

std::size_t ShardedFleet::monitor_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->entries_.size();
  return n;
}

AwarenessMonitor& ShardedFleet::monitor(const std::string& aspect) {
  for (auto& s : shards_) {
    for (auto& e : s->entries_) {
      if (e.aspect == aspect) return *e.monitor;
    }
  }
  throw std::out_of_range("no monitor for aspect: " + aspect);
}

void ShardedFleet::start() {
  if (running_) return;
  running_ = true;
  for (auto& s : shards_) {
    for (auto& e : s->entries_) e.monitor->start();
  }
  spawn_workers();
}

void ShardedFleet::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& s : shards_) {
    for (auto& e : s->entries_) e.monitor->stop();
  }
}

void ShardedFleet::publish(const runtime::Event& ev) {
  auto it = routes_.find(ev.topic);
  if (it == routes_.end()) {
    unrouted_events_metric_.inc();
    return;
  }
  external_events_metric_.inc();
  for (std::size_t dest : it->second) {
    shards_[dest]->mailbox_.push(
        runtime::MailboxEntry{ev, now_, runtime::Mailbox::kExternalSource, external_seq_});
  }
  ++external_seq_;
}

void ShardedFleet::route_from_bus(Shard& source, const runtime::Event& ev) {
  auto it = routes_.find(ev.topic);
  if (it == routes_.end()) return;
  for (std::size_t dest : it->second) {
    if (dest == source.index_) continue;  // local subscribers already served
    shards_[dest]->mailbox_.push(runtime::MailboxEntry{
        ev, source.sched_.now(), static_cast<std::uint32_t>(source.index_),
        source.route_seq_});
    source.cross_shard_out_->inc();
  }
  ++source.route_seq_;
}

void ShardedFleet::run_until(runtime::SimTime t) {
  if (!running_) start();
  while (now_ < t) {
    // Epoch boundaries sit on an absolute grid so delivery times do not
    // depend on how callers chunk their run_until() calls.
    const runtime::SimTime grid_next = (now_ / config_.epoch + 1) * config_.epoch;
    const runtime::SimTime target = std::min(t, grid_next);
    run_epoch(target);
    now_ = target;
    epochs_metric_.inc();
  }
}

void ShardedFleet::spawn_workers() {
  if (!workers_.empty()) return;
  phase_barrier_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(shards_.size()));
  workers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardedFleet::run_epoch(runtime::SimTime target) {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    target_ = target;
    remaining_ = shards_.size();
    ++generation_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(run_mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
}

void ShardedFleet::worker_loop(std::size_t index) {
  Shard& shard = *shards_[index];
  std::uint64_t seen_generation = 0;
  for (;;) {
    runtime::SimTime target;
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      target = target_;
    }
    // Phase 1: every shard drains before any shard runs, so events
    // routed during the run phase can only land in the next epoch.
    drain_mailbox(shard);
    phase_barrier_->arrive_and_wait();
    // Phase 2: lock-free shard-local event processing.
    shard.sched_.run_until(target);
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ShardedFleet::drain_mailbox(Shard& shard) {
  shard.routing_suppressed_ = true;
  for (auto& entry : shard.mailbox_.drain()) {
    runtime::Event ev = std::move(entry.event);
    ev.timestamp = shard.sched_.now();
    shard.bus_.publish(ev);
  }
  shard.routing_suppressed_ = false;
}

std::vector<AspectError> ShardedFleet::errors() const {
  std::vector<AspectError> merged;
  for (const auto& s : shards_) {
    merged.insert(merged.end(), s->errors_.begin(), s->errors_.end());
  }
  std::stable_sort(merged.begin(), merged.end(), [](const AspectError& a, const AspectError& b) {
    return std::tie(a.report.detected_at, a.aspect) < std::tie(b.report.detected_at, b.aspect);
  });
  return merged;
}

std::size_t ShardedFleet::error_count(const std::string& aspect) const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    for (const auto& e : s->errors_) {
      if (e.aspect == aspect) ++n;
    }
  }
  return n;
}

runtime::MetricsSnapshot ShardedFleet::metrics() const {
  runtime::MetricsSnapshot snap = fleet_metrics_.snapshot();
  for (const auto& s : shards_) snap.merge(s->metrics_.snapshot());
  return snap;
}

}  // namespace trader::core
