// Model Executor (Fig. 2): drives the executable specification model
// with input-event notifications from the Input Observer and maintains
// the expected-value table the Comparator reads (ISpecInfo).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/interfaces.hpp"
#include "runtime/metrics.hpp"

namespace trader::core {

/// Expected value of one observable according to the model.
struct Expectation {
  runtime::Value value;
  runtime::SimTime at = -1;
};

class ModelExecutor : public IControl {
 public:
  explicit ModelExecutor(std::unique_ptr<IModelImpl> model) : model_(std::move(model)) {}

  void start(runtime::SimTime now) override;

  /// Input-event notification (from the Input Observer).
  void on_input(const statemachine::SmEvent& ev, runtime::SimTime now);

  /// Let model timers fire (called from the periodic awareness tick).
  void advance(runtime::SimTime now);

  /// ISpecInfo: the model's expected value for an observable.
  std::optional<Expectation> expected(const std::string& observable) const;

  /// IEnableCompare pass-through.
  bool comparison_enabled(const std::string& observable) const {
    return model_->comparison_enabled(observable);
  }

  std::string model_state() const { return model_->state_name(); }
  IModelImpl& model() { return *model_; }

  std::uint64_t inputs_processed() const { return inputs_; }

  /// Count processed model inputs under "model.inputs".
  void set_metrics(runtime::MetricsRegistry* metrics) {
    inputs_metric_ = metrics != nullptr ? &metrics->counter("model.inputs") : nullptr;
  }

 private:
  void drain(runtime::SimTime now);

  std::unique_ptr<IModelImpl> model_;
  std::map<std::string, Expectation> table_;
  runtime::Counter* inputs_metric_ = nullptr;
  std::uint64_t inputs_ = 0;
};

}  // namespace trader::core
