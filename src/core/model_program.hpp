// Shared model programs and arena-batched model instances.
//
// The executor-v2 redesign splits "the model" into two artifacts with
// different lifetimes and sharing rules:
//
//   ModelProgram  (statemachine/program.hpp) — the compiled, immutable
//                 table set. Compile once per spec, share across any
//                 number of monitors and threads.
//   ModelInstance — one monitor's mutable model state, stored as a slot
//                 in a per-arena BatchExecutor so thousands of
//                 instances of the same program sit in dense arrays.
//
// A ModelArena is the per-runtime-island home of that batched state:
// MonitorFleet keeps one, every ShardedFleet shard keeps its own (the
// batch stays single-threaded while the program is shared), and a
// standalone MonitorBuilder::build() without an arena makes a private
// batch of size 1 — the legacy one-model-object-per-monitor path,
// reimplemented on the same kernel.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/interfaces.hpp"
#include "statemachine/batch.hpp"
#include "statemachine/program.hpp"

namespace trader::core {

using statemachine::ModelProgramPtr;

/// Compile `def` once into an immutable, shareable program.
inline ModelProgramPtr compile_model(statemachine::StateMachineDef def) {
  return statemachine::ModelProgram::compile(std::move(def));
}

/// IModelImpl facade over one slot of a shared BatchExecutor. Holds the
/// batch alive (shared_ptr) and returns the slot to its free list on
/// destruction, so monitor churn recycles arena rows instead of growing
/// them. Honours the IEnableCompare "nocompare[:X]" convention like the
/// other model impls.
class ModelInstance : public IModelImpl {
 public:
  explicit ModelInstance(std::shared_ptr<statemachine::BatchExecutor> batch)
      : batch_(std::move(batch)), id_(batch_->add_instance()) {}
  ~ModelInstance() override { batch_->release(id_); }

  ModelInstance(const ModelInstance&) = delete;
  ModelInstance& operator=(const ModelInstance&) = delete;

  void start(runtime::SimTime now) override { batch_->start(id_, now); }
  bool dispatch(const statemachine::SmEvent& ev, runtime::SimTime now) override {
    return batch_->dispatch(id_, ev, now);
  }
  void advance_time(runtime::SimTime now) override { batch_->advance_time(id_, now); }
  std::vector<statemachine::ModelOutput> drain_outputs() override {
    return batch_->drain_outputs(id_);
  }
  bool comparison_enabled(const std::string& observable) const override {
    const auto& vars = batch_->vars(id_);
    if (vars.get_bool("nocompare", false)) return false;
    return !vars.get_bool("nocompare:" + observable, false);
  }
  std::string state_name() const override { return batch_->active_leaf(id_); }

  statemachine::BatchExecutor& batch() { return *batch_; }
  const statemachine::BatchExecutor& batch() const { return *batch_; }
  statemachine::BatchExecutor::InstanceId id() const { return id_; }

 private:
  std::shared_ptr<statemachine::BatchExecutor> batch_;
  statemachine::BatchExecutor::InstanceId id_;
};

/// One runtime island's batched model state: a BatchExecutor per
/// distinct ModelProgram, instances handed out as IModelImpl slots.
/// Single-threaded, like the scheduler/bus it sits next to.
class ModelArena {
 public:
  /// Claim a slot in the batch for `program` (created on first use).
  std::unique_ptr<ModelInstance> make_instance(const ModelProgramPtr& program);

  std::size_t batch_count() const { return batches_.size(); }
  std::size_t live_instances() const;
  std::size_t slot_count() const;
  /// Dense + fixed cold bytes across all slots (E18 accounting).
  std::size_t approx_bytes() const;

  /// The batch backing `program`, or nullptr when no instance was ever
  /// made (introspection for tests and footprint reports).
  const statemachine::BatchExecutor* batch(const ModelProgramPtr& program) const;

 private:
  std::map<const statemachine::ModelProgram*, std::shared_ptr<statemachine::BatchExecutor>>
      batches_;
};

}  // namespace trader::core
