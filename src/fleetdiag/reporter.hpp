// SpectrumReporter: the SUO side of fleet-level online diagnosis.
//
// §4.4 instruments the TV software to record which blocks execute
// between two key presses; §5 asks for that spectrum data to feed the
// awareness loop *at runtime* instead of a post-mortem. The reporter is
// the instrumentation drain a fielded SUO runs: block hits accumulate
// into the current step, end_step(error) seals the step with its error
// verdict, and flush() packages the sealed steps into versioned
// kSpectrum wire frames (chunked so each frame respects the payload
// cap) ready to push over the SUO's existing hub link between probes.
//
// The reporter never blocks and never allocates per hit beyond the
// touched-id list; a step that cannot fit a frame at all (more ids than
// one payload carries) is counted in oversize_steps and dropped rather
// than tearing the stream — diagnosis degrades, the link survives.
#pragma once

#include <cstdint>
#include <vector>

#include "ipc/wire.hpp"
#include "observation/coverage.hpp"

namespace trader::fleetdiag {

struct ReporterConfig {
  /// Size of the instrumented block universe (ids are < block_count).
  std::uint32_t block_count = 0;
  /// Seal flush() frames at this payload size (<= ipc::kMaxFramePayload).
  std::size_t frame_budget = ipc::kMaxFramePayload;
  /// flush_due() turns true once this many steps are pending (0 = only
  /// explicit flushes).
  std::size_t flush_steps = 8;
};

class SpectrumReporter {
 public:
  explicit SpectrumReporter(ReporterConfig config);

  /// Mark a block executed in the current (open) step.
  void hit(std::uint32_t block);

  /// Seal the open step with its error verdict.
  void end_step(bool error);

  /// Seal a whole step from a recorder's open step (the SyntheticProgram
  /// integration path: run_step() marks coverage, this drains it).
  void end_step_from(const observation::BlockCoverageRecorder& coverage, bool error);

  /// Seal a pre-sorted spectrum directly (ids strictly ascending).
  void add_step(std::vector<std::uint32_t> sorted_blocks, bool error);

  std::size_t pending_steps() const { return pending_.size(); }
  bool flush_due() const {
    return config_.flush_steps > 0 && pending_.size() >= config_.flush_steps;
  }

  /// Package every pending step into kSpectrum frames (possibly several,
  /// each within frame_budget) and clear the backlog. Frames carry
  /// ascending seq numbers from the shared counter the caller threads
  /// through `seq`.
  std::vector<ipc::Frame> flush(std::uint32_t& seq, runtime::SimTime now = 0);

  // Lifetime stats.
  std::uint64_t steps_reported() const { return steps_reported_; }
  std::uint64_t frames_emitted() const { return frames_emitted_; }
  std::uint64_t oversize_steps() const { return oversize_steps_; }

  const ReporterConfig& config() const { return config_; }

 private:
  std::size_t step_wire_size(const ipc::SpectrumStep& step) const {
    return 1 + 4 + 4 * step.blocks.size();
  }

  ReporterConfig config_;
  std::vector<bool> current_;              ///< Open-step membership bits.
  std::vector<std::uint32_t> touched_;     ///< Open-step ids, hit order.
  std::vector<ipc::SpectrumStep> pending_; ///< Sealed, not yet flushed.
  std::uint64_t steps_reported_ = 0;
  std::uint64_t frames_emitted_ = 0;
  std::uint64_t oversize_steps_ = 0;
};

}  // namespace trader::fleetdiag
