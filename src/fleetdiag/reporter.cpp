#include "fleetdiag/reporter.hpp"

#include <algorithm>

namespace trader::fleetdiag {

SpectrumReporter::SpectrumReporter(ReporterConfig config)
    : config_(config), current_(config.block_count, false) {
  if (config_.frame_budget > ipc::kMaxFramePayload) config_.frame_budget = ipc::kMaxFramePayload;
}

void SpectrumReporter::hit(std::uint32_t block) {
  if (block >= config_.block_count) return;
  if (current_[block]) return;
  current_[block] = true;
  touched_.push_back(block);
}

void SpectrumReporter::end_step(bool error) {
  std::sort(touched_.begin(), touched_.end());
  for (const std::uint32_t b : touched_) current_[b] = false;
  std::vector<std::uint32_t> blocks;
  blocks.swap(touched_);
  add_step(std::move(blocks), error);
}

void SpectrumReporter::end_step_from(const observation::BlockCoverageRecorder& coverage,
                                     bool error) {
  std::vector<std::uint32_t> blocks;
  blocks.reserve(coverage.current_touched().size());
  for (const std::size_t b : coverage.current_touched()) {
    if (b < config_.block_count) blocks.push_back(static_cast<std::uint32_t>(b));
  }
  std::sort(blocks.begin(), blocks.end());
  add_step(std::move(blocks), error);
}

void SpectrumReporter::add_step(std::vector<std::uint32_t> sorted_blocks, bool error) {
  ipc::SpectrumStep step;
  step.error = error;
  step.blocks = std::move(sorted_blocks);
  // A step too wide for even an empty frame can never ship; drop it
  // whole rather than emitting a frame encode_frame() would refuse.
  if (step_wire_size(step) + 8 > config_.frame_budget) {
    ++oversize_steps_;
    return;
  }
  pending_.push_back(std::move(step));
  ++steps_reported_;
}

std::vector<ipc::Frame> SpectrumReporter::flush(std::uint32_t& seq, runtime::SimTime now) {
  std::vector<ipc::Frame> frames;
  if (pending_.empty()) return frames;

  ipc::Frame frame;
  frame.type = ipc::FrameType::kSpectrum;
  frame.block_count = config_.block_count;
  frame.time = now;
  std::size_t used = 8;  // block_count + step_count header fields
  for (ipc::SpectrumStep& step : pending_) {
    const std::size_t need = step_wire_size(step);
    if (!frame.spectra.empty() && used + need > config_.frame_budget) {
      frame.seq = ++seq;
      frames.push_back(std::move(frame));
      frame = ipc::Frame{};
      frame.type = ipc::FrameType::kSpectrum;
      frame.block_count = config_.block_count;
      frame.time = now;
      used = 8;
    }
    used += need;
    frame.spectra.push_back(std::move(step));
  }
  if (!frame.spectra.empty()) {
    frame.seq = ++seq;
    frames.push_back(std::move(frame));
  }
  pending_.clear();
  frames_emitted_ += frames.size();
  return frames;
}

}  // namespace trader::fleetdiag
