#include "fleetdiag/aggregator.hpp"

#include <algorithm>

namespace trader::fleetdiag {

FleetAggregator::FleetAggregator(AggregatorConfig config, runtime::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  if (config_.top_k == 0) config_.top_k = 1;
  if (config_.refresh_every == 0) config_.refresh_every = 1;
  if (metrics_ != nullptr) {
    reports_ctr_ = &metrics_->counter("hub.diag.reports");
    steps_ctr_ = &metrics_->counter("hub.diag.steps");
    error_steps_ctr_ = &metrics_->counter("hub.diag.error_steps");
    block_updates_ctr_ = &metrics_->counter("hub.diag.block_updates");
    refreshes_ctr_ = &metrics_->counter("hub.diag.refreshes");
    churn_ctr_ = &metrics_->counter("hub.diag.churn");
    retired_ctr_ = &metrics_->counter("hub.diag.retired_slots");
    slots_gauge_ = &metrics_->gauge("hub.diag.slots");
  }
}

std::size_t FleetAggregator::ingest(const std::string& slot, const ipc::Frame& frame) {
  if (frame.type != ipc::FrameType::kSpectrum) return 0;
  return ingest(slot, frame.spectra);
}

std::size_t FleetAggregator::ingest(const std::string& slot,
                                    const std::vector<ipc::SpectrumStep>& steps) {
  std::lock_guard<std::mutex> lock(mu_);
  return ingest_locked(slot, steps);
}

std::size_t FleetAggregator::ingest_locked(const std::string& slot_name,
                                           const std::vector<ipc::SpectrumStep>& steps) {
  Slot& slot = slots_[slot_name];
  std::uint64_t block_updates = 0;
  std::uint64_t error_steps = 0;
  for (const ipc::SpectrumStep& step : steps) {
    slot.counts.add(step.blocks, step.error);
    fleet_.add(step.blocks, step.error);
    block_updates += step.blocks.size();
    if (step.error) ++error_steps;
  }
  ++slot.reports;
  ++fleet_reports_;
  ++reports_;
  steps_ += steps.size();

  if (reports_ctr_ != nullptr) {
    reports_ctr_->inc();
    steps_ctr_->inc(steps.size());
    error_steps_ctr_->inc(error_steps);
    block_updates_ctr_->inc(block_updates);
    if (slots_gauge_ != nullptr) slots_gauge_->set(static_cast<double>(slots_.size()));
  }

  // Amortized refresh: at most one partial sort per refresh_every
  // reports keeps the cached top-k within the staleness budget.
  if (slot.reports - slot.reports_at_refresh >= config_.refresh_every) {
    if (refresh_slot_locked(slot_name, slot)) ++churn_;
  }
  if (fleet_reports_ - fleet_reports_at_refresh_ >= config_.refresh_every) {
    if (refresh_fleet_locked()) ++churn_;
  }
  return steps.size();
}

bool FleetAggregator::same_blocks(const std::vector<diagnosis::BlockScore>& a,
                                  const std::vector<diagnosis::BlockScore>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].block != b[i].block) return false;
  }
  return true;
}

bool FleetAggregator::refresh_slot_locked(const std::string& name, Slot& slot) {
  std::vector<diagnosis::BlockScore> next = slot.counts.top_k(config_.top_k, config_.coefficient);
  slot.reports_at_refresh = slot.reports;
  if (refreshes_ctr_ != nullptr) refreshes_ctr_->inc();
  const bool changed = !same_blocks(next, slot.top);
  slot.top = std::move(next);
  if (changed) {
    ++slot.churn;
    if (churn_ctr_ != nullptr) churn_ctr_->inc();
  }
  export_health_locked(name, slot);
  return changed;
}

bool FleetAggregator::refresh_fleet_locked() {
  std::vector<diagnosis::BlockScore> next = fleet_.top_k(config_.top_k, config_.coefficient);
  fleet_reports_at_refresh_ = fleet_reports_;
  if (refreshes_ctr_ != nullptr) refreshes_ctr_->inc();
  const bool changed = !same_blocks(next, fleet_top_);
  fleet_top_ = std::move(next);
  if (changed && churn_ctr_ != nullptr) churn_ctr_->inc();
  return changed;
}

void FleetAggregator::export_health_locked(const std::string& name, Slot& slot) {
  if (metrics_ == nullptr) return;
  if (slot.health_gauge == nullptr) {
    slot.health_gauge = &metrics_->gauge("hub.diag.health/" + name);
    slot.top_block_gauge = &metrics_->gauge("hub.diag.top_block/" + name);
  }
  const std::size_t steps = slot.counts.steps();
  const double error_rate =
      steps == 0 ? 0.0
                 : static_cast<double>(slot.counts.error_steps()) / static_cast<double>(steps);
  slot.health_gauge->set(1.0 - error_rate);
  slot.top_block_gauge->set(slot.top.empty() ? -1.0 : static_cast<double>(slot.top[0].block));
}

bool FleetAggregator::retire_slot(const std::string& slot_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot_name);
  if (it == slots_.end()) return false;
  // The fleet view must forget the slot too: re-derive it as the merge
  // of the survivors (exact, and far cheaper than replaying history).
  slots_.erase(it);
  fleet_.clear();
  for (auto& [name, slot] : slots_) fleet_.merge(slot.counts);
  fleet_top_ = fleet_.top_k(config_.top_k, config_.coefficient);
  fleet_reports_at_refresh_ = fleet_reports_;
  if (retired_ctr_ != nullptr) {
    retired_ctr_->inc();
    if (slots_gauge_ != nullptr) slots_gauge_->set(static_cast<double>(slots_.size()));
  }
  return true;
}

std::size_t FleetAggregator::slot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::vector<std::string> FleetAggregator::slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) out.push_back(name);
  return out;
}

bool FleetAggregator::has_slot(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(slot) > 0;
}

std::vector<diagnosis::BlockScore> FleetAggregator::top_suspects(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(slot);
  return it != slots_.end() ? it->second.top : std::vector<diagnosis::BlockScore>{};
}

std::vector<diagnosis::BlockScore> FleetAggregator::fleet_top_suspects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fleet_top_;
}

std::size_t FleetAggregator::refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t changed = 0;
  for (auto& [name, slot] : slots_) {
    if (refresh_slot_locked(name, slot)) {
      ++churn_;
      ++changed;
    }
  }
  if (refresh_fleet_locked()) {
    ++churn_;
    ++changed;
  }
  return changed;
}

diagnosis::DiagnosisReport FleetAggregator::report(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(slot);
  if (it == slots_.end()) return {};
  return it->second.counts.report(config_.coefficient);
}

diagnosis::DiagnosisReport FleetAggregator::fleet_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fleet_.report(config_.coefficient);
}

std::vector<diagnosis::ComponentScore> FleetAggregator::component_ranking(
    const std::string& slot,
    const std::function<std::string(std::size_t block)>& component_of, int top_k_blocks) const {
  return diagnosis::ComponentRanker::rank(report(slot), component_of, top_k_blocks);
}

SlotHealth FleetAggregator::health(const std::string& slot_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  SlotHealth h;
  h.slot = slot_name;
  const auto it = slots_.find(slot_name);
  if (it == slots_.end()) return h;
  const Slot& slot = it->second;
  h.reports = slot.reports;
  h.steps = slot.counts.steps();
  h.error_steps = slot.counts.error_steps();
  h.error_rate = h.steps == 0 ? 0.0
                              : static_cast<double>(h.error_steps) / static_cast<double>(h.steps);
  h.touched_blocks = slot.counts.touched_blocks();
  h.churn = slot.churn;
  if (!slot.top.empty()) {
    h.top_block = static_cast<std::int64_t>(slot.top[0].block);
    h.top_score = slot.top[0].score;
  }
  return h;
}

std::vector<SlotHealth> FleetAggregator::fleet_health() const {
  std::vector<std::string> names = slots();
  std::vector<SlotHealth> out;
  out.reserve(names.size());
  for (const std::string& name : names) out.push_back(health(name));
  return out;
}

std::uint64_t FleetAggregator::reports_ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::uint64_t FleetAggregator::steps_ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

std::uint64_t FleetAggregator::ranking_churn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return churn_;
}

void FleetAggregator::save_state(journal::Encoder& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.u64(reports_);
  out.u64(steps_);
  out.u64(churn_);
  fleet_.save(out);
  out.u64(fleet_reports_);
  out.u64(fleet_reports_at_refresh_);
  out.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const auto& [name, slot] : slots_) {
    out.str(name);
    slot.counts.save(out);
    out.u64(slot.reports);
    out.u64(slot.reports_at_refresh);
    out.u64(slot.churn);
  }
}

bool FleetAggregator::load_state(journal::Decoder& in, std::uint32_t version) {
  if (version != 1) return false;
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  fleet_.clear();
  fleet_top_.clear();
  reports_ = in.u64();
  steps_ = in.u64();
  churn_ = in.u64();
  if (!fleet_.load(in)) return false;
  fleet_reports_ = in.u64();
  fleet_reports_at_refresh_ = in.u64();
  const std::uint32_t slot_count = in.u32();
  for (std::uint32_t i = 0; i < slot_count && in.ok(); ++i) {
    const std::string name = in.str();
    Slot& slot = slots_[name];
    if (!slot.counts.load(in)) return false;
    slot.reports = in.u64();
    slot.reports_at_refresh = in.u64();
    slot.churn = in.u64();
  }
  if (!in.done()) {
    slots_.clear();
    fleet_.clear();
    return false;
  }
  // Re-derive the cached rankings from the restored counters. This is
  // a reconstruction, not a refresh: churn counters and refresh stamps
  // keep their checkpointed values so the convergence gate sees the
  // same history the live run saw.
  for (auto& [name, slot] : slots_) {
    slot.top = slot.counts.top_k(config_.top_k, config_.coefficient);
    export_health_locked(name, slot);
  }
  fleet_top_ = fleet_.top_k(config_.top_k, config_.coefficient);
  if (slots_gauge_ != nullptr) slots_gauge_->set(static_cast<double>(slots_.size()));
  return true;
}

}  // namespace trader::fleetdiag
