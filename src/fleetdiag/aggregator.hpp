// FleetAggregator: hub-side online spectrum-based diagnosis.
//
// The hub already sees every SUO's events; this closes the paper's §5
// observe -> diagnose loop by making it see their *spectra* too. Each
// kSpectrum report folds into the slot's IncrementalSflCounts in
// O(blocks touched) — no history rescan — and simultaneously into a
// fleet-wide accumulator, so both "which block of THIS set is suspect"
// and "which block is suspect ACROSS the fleet" stay answerable at wire
// rate (the LOLA unified runtime-verification + model-based diagnosis
// direction, run at ArVI fleet scale).
//
// Rankings: every slot keeps a cached top-k suspect list maintained by
// a bounded partial sort (O(touched x log k)); the cache refreshes every
// `refresh_every` reports, which bounds both the refresh cost amortized
// per report and the staleness of a live query. Refreshes that change
// the top-k sequence increment a churn counter — a fleet whose ranking
// keeps churning has not converged on a suspect yet, and operators can
// watch that converge through hub.diag.* metrics. report() always
// computes fresh and is bit-identical to an offline SflRanker::rank()
// over the same spectra (the online/offline differential the tests pin).
//
// Slot lifecycle mirrors the hub's: state persists across reconnects of
// the same slot (an outage must not amnesia the diagnosis) and is freed
// by retire_slot() when the hub gives up on the SUO. All entry points
// are mutex-guarded so ingest (hub loop thread) and ranking queries
// (operator/bench threads) can overlap safely.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "diagnosis/component_ranker.hpp"
#include "diagnosis/incremental.hpp"
#include "ipc/wire.hpp"
#include "journal/checkpoint.hpp"
#include "runtime/metrics.hpp"

namespace trader::fleetdiag {

struct AggregatorConfig {
  /// Suspects kept per cached ranking (slot and fleet level).
  std::size_t top_k = 10;
  diagnosis::Coefficient coefficient = diagnosis::Coefficient::kOchiai;
  /// Recompute cached top-k rankings every N ingested reports; a live
  /// query is therefore at most N-1 reports stale. 1 = always fresh.
  std::size_t refresh_every = 1;
};

/// Health rollup of one slot, exported through hub.diag.* gauges.
struct SlotHealth {
  std::string slot;
  std::uint64_t reports = 0;
  std::uint64_t steps = 0;
  std::uint64_t error_steps = 0;
  double error_rate = 0.0;
  std::size_t touched_blocks = 0;
  /// Most suspicious block id at the last refresh (-1 when no ranking).
  std::int64_t top_block = -1;
  double top_score = 0.0;
  /// Refreshes of THIS slot's ranking that changed its top-k sequence.
  /// A converged diagnosis stops churning; the RecoveryOrchestrator's
  /// convergence gate reads this to decide the suspect is stable
  /// enough to act on.
  std::uint64_t churn = 0;
};

class FleetAggregator : public journal::Checkpointable {
 public:
  explicit FleetAggregator(AggregatorConfig config = {},
                           runtime::MetricsRegistry* metrics = nullptr);

  /// Fold one decoded kSpectrum frame into `slot` (and the fleet).
  /// Returns the number of steps accounted. Non-spectrum frames are
  /// ignored (0). Creates the slot on first sight.
  std::size_t ingest(const std::string& slot, const ipc::Frame& frame);

  /// Frameless entry point for in-process producers / tests.
  std::size_t ingest(const std::string& slot, const std::vector<ipc::SpectrumStep>& steps);

  /// Drop a slot's spectra from the per-slot map AND the fleet-wide
  /// accumulator (the hub calls this when a slot is permanently failed).
  /// Returns false when the slot was unknown.
  bool retire_slot(const std::string& slot);

  std::size_t slot_count() const;
  std::vector<std::string> slots() const;
  bool has_slot(const std::string& slot) const;

  /// Cached top-k suspects (refreshed every refresh_every reports; call
  /// refresh() to force). Empty for unknown slots.
  std::vector<diagnosis::BlockScore> top_suspects(const std::string& slot) const;
  std::vector<diagnosis::BlockScore> fleet_top_suspects() const;

  /// Recompute every cached ranking now (returns rankings that changed).
  std::size_t refresh();

  /// Fresh full ranking — bit-identical to SflRanker::rank() over the
  /// same spectra (the online/offline equivalence surface).
  diagnosis::DiagnosisReport report(const std::string& slot) const;
  diagnosis::DiagnosisReport fleet_report() const;

  /// Fold a slot's block ranking into component suspiciousness via
  /// diagnosis::ComponentRanker (which recoverable unit to restart).
  std::vector<diagnosis::ComponentScore> component_ranking(
      const std::string& slot,
      const std::function<std::string(std::size_t block)>& component_of,
      int top_k_blocks = 3) const;

  SlotHealth health(const std::string& slot) const;
  std::vector<SlotHealth> fleet_health() const;

  // Lifetime stats (mirrored into hub.diag.* counters when a registry
  // was supplied).
  std::uint64_t reports_ingested() const;
  std::uint64_t steps_ingested() const;
  std::uint64_t ranking_churn() const;

  const AggregatorConfig& config() const { return config_; }

  // Checkpointable (the durable hub snapshots the whole aggregator:
  // every slot's counters + the fleet accumulator + churn/lifetime
  // stats; cached top-k rankings are re-derived on load without
  // counting as churn). Config is not persisted.
  std::string checkpoint_name() const override { return "fleetdiag"; }
  std::uint32_t checkpoint_version() const override { return 1; }
  void save_state(journal::Encoder& out) const override;
  bool load_state(journal::Decoder& in, std::uint32_t version) override;

 private:
  struct Slot {
    diagnosis::IncrementalSflCounts counts;
    std::uint64_t reports = 0;
    std::uint64_t reports_at_refresh = 0;
    std::uint64_t churn = 0;
    std::vector<diagnosis::BlockScore> top;
    runtime::Gauge* health_gauge = nullptr;
    runtime::Gauge* top_block_gauge = nullptr;
  };

  std::size_t ingest_locked(const std::string& slot_name,
                            const std::vector<ipc::SpectrumStep>& steps);
  /// Refresh one cached ranking; returns true when the top-k changed.
  bool refresh_slot_locked(const std::string& name, Slot& slot);
  bool refresh_fleet_locked();
  void export_health_locked(const std::string& name, Slot& slot);
  static bool same_blocks(const std::vector<diagnosis::BlockScore>& a,
                          const std::vector<diagnosis::BlockScore>& b);

  AggregatorConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  diagnosis::IncrementalSflCounts fleet_;
  std::uint64_t fleet_reports_ = 0;
  std::uint64_t fleet_reports_at_refresh_ = 0;
  std::vector<diagnosis::BlockScore> fleet_top_;
  std::uint64_t reports_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t churn_ = 0;

  // hub.diag.* instruments (null without a registry).
  runtime::MetricsRegistry* metrics_ = nullptr;
  runtime::Counter* reports_ctr_ = nullptr;
  runtime::Counter* steps_ctr_ = nullptr;
  runtime::Counter* error_steps_ctr_ = nullptr;
  runtime::Counter* block_updates_ctr_ = nullptr;
  runtime::Counter* refreshes_ctr_ = nullptr;
  runtime::Counter* churn_ctr_ = nullptr;
  runtime::Counter* retired_ctr_ = nullptr;
  runtime::Gauge* slots_gauge_ = nullptr;
};

}  // namespace trader::fleetdiag
