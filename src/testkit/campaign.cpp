#include "testkit/campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <set>
#include <tuple>

#include "core/fleet.hpp"
#include "core/model_impl.hpp"
#include "core/model_program.hpp"
#include "core/monitor_builder.hpp"
#include "core/sharded_fleet.hpp"
#include "faults/injector.hpp"
#include "hub/hub.hpp"
#include "ipc/link_gate.hpp"
#include "ipc/supervisor.hpp"
#include "ipc/transport.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/definition.hpp"

namespace trader::testkit {

namespace {

namespace sm = trader::statemachine;

// The scripted SUO's spec model: one aspect is a counter that expects
// an increment per "inc" command and emits the expected "count".
sm::StateMachineDef counter_model() {
  sm::StateMachineDef def("counter");
  const auto s = def.add_state("S");
  def.add_internal(s, "inc", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
    env.emit("count", {{"value", env.vars.get_int("n")}});
  });
  return def;
}

core::MonitorBuilder counter_monitor(std::size_t k, const ExecutorConfig& config,
                                     const core::ModelProgramPtr& program,
                                     std::shared_ptr<const std::atomic<bool>> gate) {
  core::MonitorBuilder builder;
  if (config.engine == ExecutorConfig::ModelEngine::kBatched) {
    builder.with_program(program);  // one table set across aspects AND scenarios
  } else {
    builder.model(std::make_unique<core::InterpretedModel>(counter_model()));
  }
  // With an IPC link in the path the model is wrapped in a LinkGatedModel
  // so comparisons quiesce while the SUO is unreachable (the §4.3
  // graceful-degradation policy); a null gate means in-process wiring.
  if (gate != nullptr) {
    builder.wrap_model(
        [gate = std::move(gate)](std::unique_ptr<core::IModelImpl> model)
            -> std::unique_ptr<core::IModelImpl> {
          return std::make_unique<ipc::LinkGatedModel>(std::move(model), gate);
        });
  }
  builder.input_topic("in." + std::to_string(k))
      .output_topic("out." + std::to_string(k))
      .threshold("count", 0.0, config.max_consecutive)
      .comparison_period(config.comparison_period)
      .startup_grace(config.startup_grace);
  return builder;
}

// Backend-neutral view of "an awareness runtime the driver feeds from
// outside": the single-scheduler MonitorFleet and the ShardedFleet
// behave identically as long as events are published at epoch-grid
// instants, which is exactly what the executor guarantees.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual void add_monitor(const std::string& aspect, core::MonitorBuilder builder) = 0;
  virtual void start() = 0;
  virtual void stop() = 0;
  virtual void run_until(runtime::SimTime t) = 0;
  virtual void publish(const runtime::Event& ev) = 0;
  virtual std::vector<core::AspectError> errors() const = 0;
  virtual const core::ComparatorStats& stats(const std::string& aspect) = 0;
  virtual runtime::MetricsSnapshot metrics() const = 0;
  /// Comparison gate shared with the models (IPC backends only).
  virtual std::shared_ptr<const std::atomic<bool>> gate() const { return nullptr; }
  /// Per-aspect comparison gate; the hub backend gates each slot
  /// independently, the single-link IPC backend shares one gate.
  virtual std::shared_ptr<const std::atomic<bool>> gate_for(const std::string& aspect) {
    (void)aspect;
    return gate();
  }
  /// Tear down / re-establish the SUO link (IPC backends only).
  virtual void set_link(bool up) { (void)up; }
};

void sort_errors(std::vector<core::AspectError>& errs) {
  std::stable_sort(errs.begin(), errs.end(),
                   [](const core::AspectError& a, const core::AspectError& b) {
                     return std::tie(a.report.detected_at, a.aspect) <
                            std::tie(b.report.detected_at, b.aspect);
                   });
}

// The in-process backends carry a *virtual* SUO link: the same shared
// gate the IPC backends flip on a real socket teardown, minus the
// socket. set_link(false) drops every publish and quiesces comparators
// through LinkGatedModel, so a kill-restart scenario fingerprints
// identically whether the SUO is a struct in this process or a peer
// behind a kernel stream — which is what lets the fuzzer's outage
// mutations run on the fast backend and still replay differentially.
class SingleBackend : public Backend {
 public:
  SingleBackend() : fleet_(sched_, bus_) {
    fleet_.set_metrics(&metrics_);
    gate_ = std::make_shared<std::atomic<bool>>(true);
  }

  void add_monitor(const std::string& aspect, core::MonitorBuilder builder) override {
    fleet_.add_monitor(aspect, std::move(builder));
  }
  void start() override { fleet_.start(); }
  void stop() override { fleet_.stop(); }
  void run_until(runtime::SimTime t) override { sched_.run_until(t); }
  void publish(const runtime::Event& ev) override {
    if (!gate_->load(std::memory_order_relaxed)) return;  // SUO unreachable
    runtime::Event stamped = ev;
    stamped.timestamp = sched_.now();
    bus_.publish(stamped);
  }
  std::vector<core::AspectError> errors() const override {
    auto errs = fleet_.errors();
    sort_errors(errs);
    return errs;
  }
  const core::ComparatorStats& stats(const std::string& aspect) override {
    return fleet_.monitor(aspect).stats();
  }
  runtime::MetricsSnapshot metrics() const override { return metrics_.snapshot(); }
  std::shared_ptr<const std::atomic<bool>> gate() const override { return gate_; }
  void set_link(bool up) override { gate_->store(up, std::memory_order_relaxed); }

 private:
  runtime::Scheduler sched_;
  runtime::EventBus bus_;
  runtime::MetricsRegistry metrics_;
  core::MonitorFleet fleet_;
  std::shared_ptr<std::atomic<bool>> gate_;
};

class ShardedBackend : public Backend {
 public:
  explicit ShardedBackend(const ExecutorConfig& config)
      : fleet_(core::ShardedFleetConfig{config.shards, config.epoch, config.seed}) {
    gate_ = std::make_shared<std::atomic<bool>>(true);
  }

  void add_monitor(const std::string& aspect, core::MonitorBuilder builder) override {
    fleet_.add_monitor(aspect, std::move(builder));
  }
  void start() override { fleet_.start(); }
  void stop() override { fleet_.stop(); }
  void run_until(runtime::SimTime t) override { fleet_.run_until(t); }
  void publish(const runtime::Event& ev) override {
    if (!gate_->load(std::memory_order_relaxed)) return;  // SUO unreachable
    fleet_.publish(ev);
  }
  std::vector<core::AspectError> errors() const override { return fleet_.errors(); }
  const core::ComparatorStats& stats(const std::string& aspect) override {
    return fleet_.monitor(aspect).stats();
  }
  runtime::MetricsSnapshot metrics() const override { return fleet_.metrics(); }
  std::shared_ptr<const std::atomic<bool>> gate() const override { return gate_; }
  // The driver only flips the link between run_until epochs, so the
  // relaxed store is ordered against shard threads by the epoch barrier.
  void set_link(bool up) override { gate_->store(up, std::memory_order_relaxed); }

 private:
  core::ShardedFleet fleet_;
  std::shared_ptr<std::atomic<bool>> gate_;
};

// The IPC backend puts the real wire in the campaign's SUO-to-monitor
// path: every scripted event is encoded, sent through a kernel stream
// socket (socketpair or a genuine AF_UNIX listener), received, decoded,
// and only then republished onto the monitor fleet's bus. Events carry
// virtual timestamps and each publish pumps its frame synchronously, so
// verdicts and golden traces are identical to the in-process backend —
// which is exactly the equivalence the tier-1 suite asserts.
class IpcBackend : public Backend {
 public:
  /// Strategy producing a connected (SUO side, monitor side) stream
  /// pair — the ONLY transport-specific piece. Each registered IPC mode
  /// supplies its own factory, so a new transport is one registration
  /// instead of `if (mode == ...)` edits across ctor/set_link/dtor.
  using StreamPair = std::pair<ipc::FramedSocket, ipc::FramedSocket>;
  using PairFactory = std::function<StreamPair()>;

  IpcBackend(const ExecutorConfig& config, PairFactory make_pair)
      : make_pair_(std::move(make_pair)), fleet_(sched_, bus_) {
    (void)config;
    fleet_.set_metrics(&metrics_);
    supervisor_.set_metrics(&metrics_);
    gate_ = std::make_shared<std::atomic<bool>>(false);
    set_link(true);
  }

  void add_monitor(const std::string& aspect, core::MonitorBuilder builder) override {
    fleet_.add_monitor(aspect, std::move(builder));
  }
  void start() override { fleet_.start(); }
  void stop() override { fleet_.stop(); }
  void run_until(runtime::SimTime t) override { sched_.run_until(t); }

  void publish(const runtime::Event& ev) override {
    if (!gate_->load(std::memory_order_relaxed)) return;  // SUO unreachable
    ipc::Frame f;
    f.type = ev.topic.rfind("in.", 0) == 0 ? ipc::FrameType::kInputEvent
                                           : ipc::FrameType::kOutputEvent;
    f.seq = ++seq_;
    f.time = sched_.now();
    f.event = ev;
    if (!suo_side_.send(f)) {
      set_link(false);
      return;
    }
    // Synchronous pump: the frame we just sent comes back out of the
    // kernel before the driver moves on, preserving SingleBackend's
    // publish-then-deliver ordering exactly.
    ipc::Frame in;
    if (monitor_side_.recv(in, /*timeout_ms=*/2000) != ipc::FramedSocket::RecvStatus::kFrame) {
      set_link(false);
      return;
    }
    runtime::Event stamped = in.event;
    stamped.timestamp = sched_.now();
    bus_.publish(stamped);
  }

  std::vector<core::AspectError> errors() const override {
    auto errs = fleet_.errors();
    sort_errors(errs);
    return errs;
  }
  const core::ComparatorStats& stats(const std::string& aspect) override {
    return fleet_.monitor(aspect).stats();
  }
  runtime::MetricsSnapshot metrics() const override { return metrics_.snapshot(); }
  std::shared_ptr<const std::atomic<bool>> gate() const override { return gate_; }

  void set_link(bool up) override {
    if (up == gate_->load(std::memory_order_relaxed)) return;
    if (!up) {
      suo_side_.close();
      monitor_side_.close();
      supervisor_.on_disconnected();
      gate_->store(false, std::memory_order_relaxed);
      return;
    }
    supervisor_.next_backoff_ms();  // the reconnect attempt (no wall sleep here)
    auto [a, b] = make_pair_();
    suo_side_ = std::move(a);
    monitor_side_ = std::move(b);
    suo_side_.set_metrics(&metrics_);
    monitor_side_.set_metrics(&metrics_);
    if (suo_side_.valid() && monitor_side_.valid()) {
      supervisor_.on_connected();
      gate_->store(true, std::memory_order_relaxed);
    }
  }

 private:
  PairFactory make_pair_;
  runtime::Scheduler sched_;
  runtime::EventBus bus_;
  runtime::MetricsRegistry metrics_;
  core::MonitorFleet fleet_;
  ipc::ProcessSupervisor supervisor_;
  ipc::FramedSocket suo_side_;      ///< Scripted SUO writes here.
  ipc::FramedSocket monitor_side_;  ///< Fleet-facing end; pumped per publish.
  std::shared_ptr<std::atomic<bool>> gate_;
  std::uint32_t seq_ = 0;
};

/// One AF_UNIX listener (abstract namespace: no filesystem entry,
/// kernel-cleaned) shared by every reconnect of one backend instance.
struct UnixEndpoint {
  std::string path;
  int listener = -1;

  UnixEndpoint() {
    static std::atomic<std::uint64_t> instance{0};
    path = "@trader-campaign-" + std::to_string(::getpid()) + "-" +
           std::to_string(instance.fetch_add(1));
    listener = ipc::listen_unix(path);
  }
  ~UnixEndpoint() {
    if (listener >= 0) ::close(listener);
  }

  IpcBackend::StreamPair make_pair() {
    const int client = ipc::connect_unix(path);
    const int server = ipc::accept_unix(listener, /*timeout_ms=*/2000);
    return {ipc::FramedSocket(client), ipc::FramedSocket(server)};
  }
};

// The hub backend runs the full fleet-over-sockets topology inside the
// campaign: every aspect gets its own AF_UNIX connection into one
// AwarenessHub epoll loop, which decodes frames and publishes them into
// its ShardedFleet. The driver stays synchronous — after each send it
// pumps the loop until the frame has been ingested — so publish-then-
// deliver ordering (and therefore every verdict and golden-trace
// fingerprint) matches the in-process backends exactly. This is the
// differential gate for the whole hub subsystem: epoll readiness,
// nonblocking decode, slot handshakes and per-slot gating all sit in
// the scored path.
class HubBackend : public Backend {
 public:
  explicit HubBackend(const ExecutorConfig& config) {
    hub::HubConfig hc;
    hc.shards = config.shards == 0 ? 1 : config.shards;
    hc.epoch = config.epoch;
    hc.seed = config.seed;
    hc.probe_liveness = false;  // the driver pumps; wall-clock probes would misfire
    hc.supervisor.backoff_initial_ms = 1;  // virtual-time campaign, no wall budget
    hub_ = std::make_unique<hub::AwarenessHub>(hc);
  }

  void add_monitor(const std::string& aspect, core::MonitorBuilder builder) override {
    aspects_.push_back(aspect);
    hub_->add_monitor(aspect, aspect, std::move(builder));
  }

  std::shared_ptr<const std::atomic<bool>> gate_for(const std::string& aspect) override {
    return hub_->slot_gate(aspect);
  }

  void start() override {
    hub_->start();
    set_link(true);
  }

  void stop() override {
    for (auto& c : clients_) c.close();
    drain_disconnects();
    hub_->stop();
  }

  void run_until(runtime::SimTime t) override { hub_->run_until(t); }

  void publish(const runtime::Event& ev) override {
    if (!link_up_) return;  // SUO process is down
    const auto dot = ev.topic.rfind('.');
    const std::size_t k = std::stoul(ev.topic.substr(dot + 1));
    if (k >= clients_.size()) return;
    ipc::Frame f;
    f.type = ev.topic.rfind("in.", 0) == 0 ? ipc::FrameType::kInputEvent
                                           : ipc::FrameType::kOutputEvent;
    f.seq = ++seq_;
    f.time = hub_->now();
    f.event = ev;
    if (!clients_[k].send(f)) {
      set_link(false);
      return;
    }
    // Synchronous pump: run the loop until this frame has been decoded
    // and published into the fleet, preserving publish-then-deliver
    // ordering exactly as the in-process backends see it.
    const std::uint64_t target = hub_->events_ingested() + 1;
    while (hub_->events_ingested() < target) {
      if (hub_->poll(2000) <= 0) {
        set_link(false);  // loop failure or 2s of silence: link is gone
        return;
      }
    }
  }

  std::vector<core::AspectError> errors() const override { return hub_->fleet().errors(); }
  const core::ComparatorStats& stats(const std::string& aspect) override {
    return hub_->fleet().monitor(aspect).stats();
  }
  runtime::MetricsSnapshot metrics() const override { return hub_->metrics(); }

  void set_link(bool up) override {
    if (up == link_up_) return;
    if (!up) {
      // Kill the whole SUO process: every connection drops at once. The
      // hub notices the EOFs, downs the slots and flips the gates.
      for (auto& c : clients_) c.close();
      drain_disconnects();
      link_up_ = false;
      return;
    }
    clients_.clear();
    clients_.resize(aspects_.size());
    bool all_up = true;
    for (std::size_t k = 0; k < aspects_.size(); ++k) {
      all_up = connect_slot(k) && all_up;
    }
    link_up_ = all_up;
  }

 private:
  bool connect_slot(std::size_t k) {
    const int fd = ipc::connect_unix_retry(hub_->path(), /*timeout_ms=*/2000);
    if (fd < 0) return false;
    clients_[k] = ipc::FramedSocket(fd);
    ipc::Frame hello;
    hello.type = ipc::FrameType::kHello;
    hello.detail = aspects_[k];
    if (!clients_[k].send(hello)) return false;
    for (;;) {
      ipc::Frame ack;
      const auto st = clients_[k].recv(ack, 0);
      if (st == ipc::FramedSocket::RecvStatus::kFrame) {
        return ack.type == ipc::FrameType::kHelloAck;
      }
      if (st != ipc::FramedSocket::RecvStatus::kTimeout) return false;
      if (hub_->poll(2000) < 0) return false;
    }
  }

  /// Pump until the hub has processed every pending hangup.
  void drain_disconnects() {
    while (hub_->connection_count() > 0) {
      if (hub_->poll(2000) <= 0) break;
    }
  }

  std::unique_ptr<hub::AwarenessHub> hub_;
  std::vector<std::string> aspects_;
  std::vector<ipc::FramedSocket> clients_;  ///< Indexed like aspects_.
  bool link_up_ = false;
  std::uint32_t seq_ = 0;
};

// ------------------------------------------------------- backend registry
//
// One row per IpcMode: the canonical backend name (the single source
// for to_string/backend_label, so JSON reports and bench emitters can
// never drift) and the factory. Adding a transport = adding one entry.
struct BackendEntry {
  const char* name;
  std::unique_ptr<Backend> (*make)(const ExecutorConfig&);
};

const std::map<IpcMode, BackendEntry>& backend_registry() {
  static const std::map<IpcMode, BackendEntry> registry = {
      {IpcMode::kOff,
       {"off",
        [](const ExecutorConfig& config) -> std::unique_ptr<Backend> {
          if (config.shards == 0) return std::make_unique<SingleBackend>();
          return std::make_unique<ShardedBackend>(config);
        }}},
      {IpcMode::kSocketpair,
       {"socketpair",
        [](const ExecutorConfig& config) -> std::unique_ptr<Backend> {
          return std::make_unique<IpcBackend>(config, [] {
            return IpcBackend::StreamPair{ipc::socketpair_transport()};
          });
        }}},
      {IpcMode::kUnix,
       {"unix",
        [](const ExecutorConfig& config) -> std::unique_ptr<Backend> {
          auto endpoint = std::make_shared<UnixEndpoint>();
          return std::make_unique<IpcBackend>(
              config, [endpoint] { return endpoint->make_pair(); });
        }}},
      {IpcMode::kHub,
       {"hub",
        [](const ExecutorConfig& config) -> std::unique_ptr<Backend> {
          return std::make_unique<HubBackend>(config);
        }}},
  };
  return registry;
}

std::unique_ptr<Backend> make_backend(const ExecutorConfig& config) {
  return backend_registry().at(config.ipc).make(config);
}

std::string fmt_value(std::int64_t v) { return std::to_string(v); }

}  // namespace

const char* to_string(IpcMode m) {
  const auto& registry = backend_registry();
  const auto it = registry.find(m);
  return it == registry.end() ? "?" : it->second.name;
}

const char* to_string(ExecutorConfig::ModelEngine e) {
  switch (e) {
    case ExecutorConfig::ModelEngine::kBatched:
      return "batched";
    case ExecutorConfig::ModelEngine::kInterpreted:
      return "interpreted";
  }
  return "?";
}

std::string backend_label(const ExecutorConfig& config) {
  std::string label = config.shards == 0
                          ? std::string("single")
                          : "sharded(" + std::to_string(config.shards) + ")";
  if (config.ipc != IpcMode::kOff) label += std::string("+ipc-") + to_string(config.ipc);
  if (config.engine != ExecutorConfig::ModelEngine::kBatched) {
    label += std::string("+") + to_string(config.engine);
  }
  return label;
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kTrueNegative:
      return "true-negative";
    case Verdict::kDetected:
      return "detected";
    case Verdict::kMissed:
      return "missed";
    case Verdict::kFalsePositive:
      return "false-positive";
  }
  return "?";
}

Verdict classify_verdict(bool manifested, std::size_t errors_on_target,
                         std::size_t errors_off_target) {
  if (manifested) {
    return errors_on_target > 0 ? Verdict::kDetected : Verdict::kMissed;
  }
  return errors_on_target + errors_off_target > 0 ? Verdict::kFalsePositive
                                                  : Verdict::kTrueNegative;
}

// ------------------------------------------------------------ ScenarioExecutor

ScenarioExecutor::ScenarioExecutor(ExecutorConfig config) : config_(config) {
  if (config_.epoch <= 0) config_.epoch = runtime::msec(10);
  // Compile the scripted counter spec once; every aspect of every
  // scenario shares these tables (the executor-v2 sharing model).
  counter_program_ = core::compile_model(counter_model());
}

ScenarioResult ScenarioExecutor::run(const ScenarioScript& script) {
  using faults::FaultKind;

  ScenarioResult result;
  result.name = script.name();
  result.fault_planned = !script.fault_plan().empty();
  if (result.fault_planned) result.fault = script.fault_plan().front();

  // Per-scenario deterministic substrate: the injector RNG depends only
  // on the executor seed, never on the backend topology.
  faults::FaultInjector injector(runtime::Rng(config_.seed ^ 0xca3'9a1e));
  for (const auto& spec : script.fault_plan()) injector.schedule(spec);

  auto backend = make_backend(config_);
  const std::size_t aspects = script.aspect_count();
  for (std::size_t k = 0; k < aspects; ++k) {
    backend->add_monitor(aspect_name(k), counter_monitor(k, config_, counter_program_,
                                                         backend->gate_for(aspect_name(k))));
  }
  backend->start();

  struct AspectState {
    std::int64_t model_count = 0;
    std::int64_t system_count = 0;
    std::int64_t backlog = 0;  ///< Increments deferred by a resource eater.
    bool crashed = false;
  };
  std::vector<AspectState> states(aspects);
  bool gave_up = false;
  recovery::RecoveryEscalator escalator(config_.escalation);
  GoldenTrace& trace = result.trace;
  std::size_t errors_seen = 0;

  // Re-sync replays believed state into the component (§5) AND the
  // component reports its corrected observable: without that report the
  // comparator's deviating episode never closes, so a fault window
  // would yield exactly one error — and one repair — no matter how much
  // state it corrupted afterwards.
  auto resync = [&](std::size_t k) {
    states[k].system_count = states[k].model_count;
    states[k].backlog = 0;
    states[k].crashed = false;
    runtime::Event out;
    out.topic = "out." + std::to_string(k);
    out.name = "count";
    out.fields["value"] = states[k].system_count;
    backend->publish(out);
  };

  // Apply detections reported since the last poll: the driver sees the
  // deterministic merged error view only between run_until calls, so
  // recovery decisions are a function of the virtual timeline on every
  // backend.
  auto poll_recovery = [&](runtime::SimTime now) {
    const auto errs = backend->errors();
    for (std::size_t e = errors_seen; e < errs.size(); ++e) {
      const auto& ae = errs[e];
      trace.add(ae.report.detected_at, "error", ae.aspect + " " + ae.report.describe());
      if (gave_up) continue;
      const auto action = escalator.next_action(ae.aspect, now);
      result.actions.push_back(action);
      trace.add(now, "recover", ae.aspect + " " + recovery::to_string(action));
      const std::size_t k = static_cast<std::size_t>(
          std::stoul(ae.aspect.substr(std::string("aspect").size())));
      switch (action) {
        case recovery::RecoveryAction::kResync:
        case recovery::RecoveryAction::kRestartUnit:
          resync(k);
          break;
        case recovery::RecoveryAction::kRestartDependents:
        case recovery::RecoveryAction::kFullRestart:
          for (std::size_t a = 0; a < aspects; ++a) resync(a);
          break;
        case recovery::RecoveryAction::kGiveUp:
          gave_up = true;
          break;
      }
    }
    errors_seen = errs.size();
  };

  // One scripted command: the user presses "inc" on aspect k; the
  // scripted system applies it subject to whatever faults manifest.
  auto apply_command = [&](std::size_t k, runtime::SimTime now) {
    AspectState& st = states[k];
    const std::string target = aspect_name(k);
    const std::string idx = std::to_string(k);

    runtime::Event in;
    in.topic = "in." + idx;
    in.name = "key";
    in.fields["key"] = std::string("inc");
    backend->publish(in);
    ++st.model_count;  // the spec model will expect this increment

    if (!st.crashed && injector.fires(FaultKind::kCrash, target, now, "component crashed")) {
      st.crashed = true;
      st.system_count = 0;  // restart-from-scratch once repaired
      st.backlog = 0;       // the deferred queue dies with the component
    }
    if (st.crashed) {
      trace.add(now, "cmd", target + " inc dropped (dead)");
      return;
    }
    if (injector.fires(FaultKind::kStuckComponent, target, now, "command swallowed")) {
      trace.add(now, "cmd", target + " inc swallowed (stuck)");
      return;
    }
    // Resource eater (§4.7, TASS): a CPU/bus eater steals the cycles
    // this command needed, so the component queues it and keeps
    // reporting its stale state — the published count lags the model
    // until the eater releases the resource and the backlog drains.
    if (injector.fires(FaultKind::kResourceEater, target, now, "processing deferred (starved)")) {
      ++st.backlog;
      runtime::Event out;
      out.topic = "out." + idx;
      out.name = "count";
      out.fields["value"] = st.system_count;
      backend->publish(out);
      trace.add(now, "cmd", target + " inc deferred (eater) out=" + fmt_value(st.system_count));
      return;
    }
    if (st.backlog > 0) {  // resource back: drain the deferred queue first
      st.system_count += st.backlog;
      st.backlog = 0;
    }

    const bool lost = injector.fires(FaultKind::kMessageLoss, target, now, "increment lost");
    if (!lost) {
      ++st.system_count;
      if (injector.fires(FaultKind::kModeDesync, target, now, "silent extra increment")) {
        ++st.system_count;
      }
      if (injector.fires(FaultKind::kMemoryCorruption, target, now, "counter overwritten")) {
        st.system_count += 7;
      }
    }
    // Manifestations a counter comparator cannot observe (timing and
    // input-quality degradations) — ground truth records them, the
    // detector stays blind: the "missed" verdict arm.
    injector.fires(FaultKind::kTaskOverrun, target, now, "task overran");
    injector.fires(FaultKind::kBadSignal, target, now, "input degraded");

    std::int64_t published = st.system_count;
    if (injector.fires(FaultKind::kMessageCorruption, target, now,
                       "output corrupted in transit")) {
      published ^= 0x15;
    }
    runtime::Event out;
    out.topic = "out." + idx;
    out.name = "count";
    out.fields["value"] = published;
    backend->publish(out);
    trace.add(now, "cmd", target + " inc sys=" + fmt_value(st.system_count) +
                              " out=" + fmt_value(published));
  };

  // Kill-and-restart window: between suo_down and suo_up the SUO is
  // gone. Commands reach nobody — neither the model nor the scripted
  // system advances, so no divergence is manufactured — and the
  // comparators quiesce through the link gate: a real socket teardown
  // on the IPC backends, the virtual link on the in-process ones (same
  // gate, same trace, so outage scenarios replay differentially). A
  // script-level outage overrides the executor-level window. Each
  // transition is traced exactly once (the no-error-flood policy).
  const runtime::SimTime suo_down =
      script.suo_down() >= 0 ? script.suo_down() : config_.suo_down_at;
  const runtime::SimTime suo_up = script.suo_down() >= 0 ? script.suo_up() : config_.suo_up_at;
  const bool has_outage = suo_down >= 0 && suo_up > suo_down;
  bool link_down = false;
  auto update_link = [&](runtime::SimTime t) {
    if (!has_outage) return;
    if (!link_down && t >= suo_down && t < suo_up) {
      backend->set_link(false);
      link_down = true;
      ++result.link_outages;
      trace.add(suo_down, "ipc", "link down (suo killed)");
    } else if (link_down && t >= suo_up) {
      backend->set_link(true);
      link_down = false;
      trace.add(suo_up, "ipc", "link up (suo restarted)");
    }
  };

  const auto commands = script.sorted_commands();
  std::size_t i = 0;
  while (i < commands.size()) {
    const runtime::SimTime t = commands[i].at;
    backend->run_until(t);
    update_link(t);
    poll_recovery(t);
    for (; i < commands.size() && commands[i].at == t; ++i) {
      if (link_down) {
        trace.add(t, "cmd", aspect_name(commands[i].aspect) + " inc unreachable (link down)");
      } else {
        apply_command(commands[i].aspect, t);
      }
    }
  }
  update_link(script.horizon());
  backend->run_until(script.horizon());
  backend->stop();

  // Tail errors (after the last command) enter the trace and the score
  // but trigger no recovery — the session is over.
  {
    const auto errs = backend->errors();
    for (std::size_t e = errors_seen; e < errs.size(); ++e) {
      trace.add(errs[e].report.detected_at, "error",
                errs[e].aspect + " " + errs[e].report.describe());
    }
  }

  // ------------------------------------------------- score the scenario
  // "On target" spans the union of planned fault targets: for a
  // single-fault script this is exactly the classic one-target scoring;
  // for the fuzzer's composed plans it keeps the verdict coherent (a
  // detected off-first-fault manifestation is a detection, not noise).
  std::set<std::string> targets;
  for (const auto& spec : script.fault_plan()) targets.insert(spec.target);
  result.fault_manifested = !injector.activations().empty();
  if (result.fault_manifested) {
    result.first_manifestation = injector.activations().front().time;
  }
  for (const auto& a : injector.activations()) {
    if (campaign_detectable(a.spec.kind)) result.detectable_manifested = true;
  }
  for (const auto& ae : backend->errors()) {
    if (targets.count(ae.aspect) != 0) {
      if (result.errors_on_target == 0) result.first_detection = ae.report.detected_at;
      ++result.errors_on_target;
    } else {
      ++result.errors_off_target;
    }
  }
  result.verdict =
      classify_verdict(result.fault_manifested, result.errors_on_target, result.errors_off_target);
  if (result.verdict == Verdict::kDetected) {
    runtime::SimTime first = -1;
    for (const auto& target : targets) {
      const runtime::SimTime t = injector.first_activation(target);
      if (t >= 0 && (first < 0 || t < first)) first = t;
    }
    result.detection_latency = result.first_detection - first;
    result.recovered = !gave_up;
    for (std::size_t k = 0; k < aspects; ++k) {
      if (targets.count(aspect_name(k)) == 0) continue;
      result.recovered = result.recovered &&
                         states[k].system_count == states[k].model_count && !states[k].crashed;
    }
  }
  result.gave_up = gave_up;

  // Deterministic end-of-run summary: per-aspect comparator stats plus
  // the deterministic counters of the merged metrics snapshot.
  for (std::size_t k = 0; k < aspects; ++k) {
    const auto& st = backend->stats(aspect_name(k));
    trace.add_line("stats " + aspect_name(k) + " comparisons=" + std::to_string(st.comparisons) +
                   " deviations=" + std::to_string(st.deviations) +
                   " errors=" + std::to_string(st.errors) +
                   " suppressed=" + std::to_string(st.suppressed) +
                   " skipped=" + std::to_string(st.skipped));
  }
  trace.capture_metrics(backend->metrics(), {"comparator.", "model."});
  trace.add_line(std::string("verdict ") + to_string(result.verdict) +
                 " latency=" + std::to_string(result.detection_latency) +
                 " recovered=" + (result.recovered ? "1" : "0"));
  return result;
}

// -------------------------------------------------------------- CampaignRunner

CampaignRunner::CampaignRunner(CampaignConfig config) : config_(std::move(config)) {}

CampaignReport CampaignRunner::run() {
  CampaignReport report;
  report.config = config_;

  runtime::Rng master(config_.seed);
  ScenarioExecutor executor(config_.executor);
  for (std::size_t i = 0; i < config_.scenarios; ++i) {
    runtime::Rng scenario_rng = master.fork();
    const ScenarioScript script = draw_scenario(scenario_rng, i, config_.draw);
    ScenarioResult result = executor.run(script);

    const std::string kind_key =
        result.fault_planned ? faults::to_string(result.fault.kind) : "none";
    KindStats& ks = report.by_kind[kind_key];
    ++ks.scenarios;
    switch (result.verdict) {
      case Verdict::kDetected:
        ++ks.detected;
        ks.latency_sum += result.detection_latency;
        if (result.recovered) ++ks.recovered;
        break;
      case Verdict::kMissed:
        ++ks.missed;
        break;
      case Verdict::kFalsePositive:
        ++ks.false_positive;
        break;
      case Verdict::kTrueNegative:
        ++ks.true_negative;
        break;
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

// -------------------------------------------------------------- CampaignReport

std::size_t CampaignReport::count(Verdict v) const {
  std::size_t n = 0;
  for (const auto& r : results) {
    if (r.verdict == v) ++n;
  }
  return n;
}

double CampaignReport::detection_rate_detectable() const {
  std::size_t manifested = 0;
  std::size_t detected = 0;
  for (const auto& r : results) {
    if (!r.detectable_manifested) continue;
    ++manifested;
    if (r.verdict == Verdict::kDetected) ++detected;
  }
  return manifested == 0 ? 1.0 : static_cast<double>(detected) / static_cast<double>(manifested);
}

GoldenTrace CampaignReport::golden_trace() const {
  GoldenTrace combined;
  for (const auto& r : results) {
    for (const auto& line : r.trace.lines()) combined.add_line(r.name + "| " + line);
  }
  return combined;
}

namespace {

std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

std::string CampaignReport::to_json() const {
  std::string out = "{\n";
  out += "  \"campaign\": {\n";
  out += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  out += "    \"scenarios\": " + std::to_string(config.scenarios) + ",\n";
  out += "    \"aspects\": " + std::to_string(config.draw.aspects) + ",\n";
  out += "    \"backend\": \"" + backend_label(config.executor) + "\",\n";
  out += "    \"horizon_us\": " + std::to_string(config.draw.horizon) + ",\n";
  out += "    \"trace_fingerprint\": \"" + golden_trace().fingerprint() + "\"\n";
  out += "  },\n";

  out += "  \"totals\": {\n";
  out += "    \"detected\": " + std::to_string(count(Verdict::kDetected)) + ",\n";
  out += "    \"missed\": " + std::to_string(count(Verdict::kMissed)) + ",\n";
  out += "    \"false_positive\": " + std::to_string(count(Verdict::kFalsePositive)) + ",\n";
  out += "    \"true_negative\": " + std::to_string(count(Verdict::kTrueNegative)) + ",\n";
  out += "    \"detection_rate_detectable\": " + fmt_rate(detection_rate_detectable()) + "\n";
  out += "  },\n";

  out += "  \"by_kind\": {";
  bool first = true;
  for (const auto& [kind, ks] : by_kind) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + kind + "\": {";
    out += "\"scenarios\": " + std::to_string(ks.scenarios);
    out += ", \"detected\": " + std::to_string(ks.detected);
    out += ", \"missed\": " + std::to_string(ks.missed);
    out += ", \"false_positive\": " + std::to_string(ks.false_positive);
    out += ", \"true_negative\": " + std::to_string(ks.true_negative);
    out += ", \"recovered\": " + std::to_string(ks.recovered);
    out += ", \"detection_rate\": " + fmt_rate(ks.detection_rate());
    out += ", \"mean_latency_us\": " + std::to_string(ks.mean_latency());
    out += "}";
  }
  out += "\n  },\n";

  out += "  \"scenarios\": [";
  first = true;
  for (const auto& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + r.name + "\"";
    out += ", \"kind\": \"" +
           std::string(r.fault_planned ? faults::to_string(r.fault.kind) : "none") + "\"";
    out += ", \"target\": \"" + (r.fault_planned ? r.fault.target : "") + "\"";
    out += ", \"verdict\": \"" + std::string(to_string(r.verdict)) + "\"";
    out += ", \"manifested\": " + std::string(r.fault_manifested ? "true" : "false");
    out += ", \"latency_us\": " + std::to_string(r.detection_latency);
    out += ", \"errors_on_target\": " + std::to_string(r.errors_on_target);
    out += ", \"errors_off_target\": " + std::to_string(r.errors_off_target);
    out += ", \"recovered\": " + std::string(r.recovered ? "true" : "false");
    out += ", \"trace_fp\": \"" + r.trace.fingerprint() + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace trader::testkit
