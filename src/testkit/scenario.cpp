#include "testkit/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace trader::testkit {

std::string aspect_name(std::size_t k) { return "aspect" + std::to_string(k); }

ScenarioScript& ScenarioScript::name(std::string n) {
  name_ = std::move(n);
  return *this;
}

ScenarioScript& ScenarioScript::aspects(std::size_t count) {
  aspects_ = count == 0 ? 1 : count;
  return *this;
}

ScenarioScript& ScenarioScript::horizon(runtime::SimTime end) {
  horizon_ = end;
  return *this;
}

ScenarioScript& ScenarioScript::command(runtime::SimTime at, std::size_t aspect) {
  commands_.push_back(ScriptCommand{at, aspect});
  return *this;
}

ScenarioScript& ScenarioScript::every(runtime::SimDuration period, runtime::SimTime from,
                                      runtime::SimTime to) {
  for (runtime::SimTime t = from; t <= to; t += period) {
    for (std::size_t k = 0; k < aspects_; ++k) commands_.push_back(ScriptCommand{t, k});
  }
  return *this;
}

ScenarioScript& ScenarioScript::inject(faults::FaultSpec spec) {
  faults_.push_back(std::move(spec));
  return *this;
}

ScenarioScript& ScenarioScript::inject(faults::FaultKind kind, std::size_t target_aspect,
                                       runtime::SimTime activate_at,
                                       runtime::SimDuration duration, double intensity) {
  return inject(
      faults::FaultSpec{kind, aspect_name(target_aspect), activate_at, duration, intensity, {}});
}

ScenarioScript& ScenarioScript::commands(std::vector<ScriptCommand> cmds) {
  commands_ = std::move(cmds);
  return *this;
}

ScenarioScript& ScenarioScript::faults(std::vector<faults::FaultSpec> plan) {
  faults_ = std::move(plan);
  return *this;
}

ScenarioScript& ScenarioScript::outage(runtime::SimTime down, runtime::SimTime up) {
  if (down < 0) {
    suo_down_ = -1;
    suo_up_ = -1;
  } else {
    suo_down_ = down;
    suo_up_ = up;
  }
  return *this;
}

std::vector<ScriptCommand> ScenarioScript::sorted_commands() const {
  std::vector<ScriptCommand> sorted = commands_;
  std::stable_sort(sorted.begin(), sorted.end(), [](const ScriptCommand& a,
                                                    const ScriptCommand& b) {
    return std::tie(a.at, a.aspect) < std::tie(b.at, b.aspect);
  });
  return sorted;
}

bool campaign_detectable(faults::FaultKind kind) {
  using faults::FaultKind;
  switch (kind) {
    case FaultKind::kMessageLoss:
    case FaultKind::kMessageCorruption:
    case FaultKind::kStuckComponent:
    case FaultKind::kModeDesync:
    case FaultKind::kCrash:
    case FaultKind::kMemoryCorruption:
    case FaultKind::kResourceEater:  // lagging output is value-visible
      return true;
    default:
      return false;
  }
}

std::vector<faults::FaultKind> campaign_default_kinds() {
  using faults::FaultKind;
  return {FaultKind::kMessageLoss,  FaultKind::kMessageCorruption, FaultKind::kStuckComponent,
          FaultKind::kModeDesync,   FaultKind::kCrash,             FaultKind::kMemoryCorruption,
          FaultKind::kTaskOverrun,  FaultKind::kBadSignal};
}

ScenarioScript draw_scenario(runtime::Rng& rng, std::size_t index, const ScenarioDraw& draw) {
  const auto kinds = draw.kinds.empty() ? campaign_default_kinds() : draw.kinds;

  ScenarioScript script;
  char label[16];
  std::snprintf(label, sizeof(label), "s%03zu", index);
  script.name(label).aspects(draw.aspects).horizon(draw.horizon);
  // Commands on the cadence grid, leaving a tail of one cadence for the
  // comparator to settle after the last command.
  script.every(draw.cadence, draw.cadence, draw.horizon - draw.cadence);

  if (rng.uniform() < draw.clean_fraction) return script;  // fault-free probe

  const auto kind = kinds[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
  const auto target =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(draw.aspects) - 1));
  // Activate on a command instant in the first half of the run so the
  // fault overlaps >= 2 command steps and detection has time to land.
  const std::int64_t steps = draw.horizon / draw.cadence;
  const std::int64_t first = std::max<std::int64_t>(1, steps / 4);
  const std::int64_t last = std::max<std::int64_t>(first, steps / 2);
  const runtime::SimTime at = rng.uniform_int(first, last) * draw.cadence;
  const runtime::SimDuration duration = rng.uniform_int(2, 6) * draw.cadence;
  script.inject(kind, target, at, duration, /*intensity=*/1.0);
  return script;
}

}  // namespace trader::testkit
