// Diagnosis-accuracy campaign: score the online fleet diagnosis chain
// against injector ground truth.
//
// The detection campaign (campaign.hpp) asks "was the failure noticed";
// this one asks the §4.4 question — "was the *faulty block* found" —
// and asks it through the full online path: a SyntheticProgram per
// scenario executes one instrumented step per scripted command, the
// step's coverage + error verdict streams through a SpectrumReporter
// into kSpectrum frames, a FleetAggregator ingests them, and the
// resulting per-slot ranking is scored by the rank of the *known*
// seeded fault block (and of its owning feature at component level).
// Because the true fault location is planted, accuracy is exact: rank,
// wasted effort and top-k membership per scenario, aggregated per fault
// kind — the diagnosis-accuracy table BENCH_fleetdiag.json ships.
//
// Scenarios come from two sources: the uniform draw_scenario() stream
// (the E16 generator) and the minimized missed-detection findings the
// coverage-guided fuzzer ships in FUZZ_corpus.json. Replaying findings
// here closes a loop: scenarios where *detection* failed are exactly
// where a ranked suspect list earns its keep, so each shipped finding
// becomes a labeled diagnosis benchmark.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "diagnosis/spectrum.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "fleetdiag/aggregator.hpp"
#include "testkit/scenario.hpp"

namespace trader::testkit {

/// A replayable scenario with its provenance label (fuzz finding or
/// uniform draw).
struct LabeledScenario {
  ScenarioScript script;
  std::string original;  ///< Corpus name a finding was minimized from.
  std::string cov_key;   ///< Coverage cell of the original miss.
};

/// Parse the "findings" array of a FUZZ_corpus.json document into
/// replayable labeled scripts. Unknown fault kinds and malformed
/// entries are skipped; a document without findings parses to empty.
std::vector<LabeledScenario> findings_from_json(const std::string& json_text);

/// findings_from_json() over a file ("" or unreadable path => empty).
std::vector<LabeledScenario> load_findings(const std::string& path);

struct DiagCampaignConfig {
  std::uint64_t seed = 99;
  std::size_t scenarios = 24;  ///< Uniform draws for run().
  ScenarioDraw draw;
  /// Program shape per scenario; feature_count is overridden with the
  /// script's aspect count, seed is decorrelated per scenario name.
  diagnosis::SyntheticProgramConfig program;
  diagnosis::Coefficient coefficient = diagnosis::Coefficient::kOchiai;
  std::size_t top_k = 10;
  /// SpectrumReporter flush cadence (frames per scenario ~ steps/this).
  std::size_t flush_steps = 4;
};

/// Ground-truth scoring of one scenario's diagnosis.
struct DiagnosisScore {
  std::string scenario;
  std::string kind = "none";  ///< Primary planned fault kind.
  std::string target;         ///< aspect_name(k) of the primary fault.
  std::size_t fault_block = 0;
  std::size_t steps = 0;
  std::size_t error_steps = 0;
  /// A scenario scores only when the fault manifested at least once;
  /// silent scenarios carry no SFL signal (every similarity is 0).
  bool scored = false;
  std::size_t block_rank = 0;      ///< Optimistic 1-based rank, when scored.
  std::size_t component_rank = 0;  ///< Rank of the target feature.
  double wasted_effort = 0.0;
  /// block_rank <= top_k (acc@k, optimistic ties — see wasted_effort for
  /// the tie-aware cost).
  bool in_top_k = false;
};

/// Per-fault-kind aggregation of scores.
struct DiagKindStats {
  std::size_t scenarios = 0;
  std::size_t scored = 0;
  std::size_t top_k_hits = 0;
  double mean_block_rank = 0.0;      ///< Over scored scenarios.
  double mean_component_rank = 0.0;  ///< Over scored scenarios.
  double mean_wasted_effort = 0.0;   ///< Over scored scenarios.
};

struct DiagCampaignReport {
  std::vector<DiagnosisScore> scores;
  std::map<std::string, DiagKindStats> by_kind;  ///< Keyed by kind name.
  std::size_t scenarios = 0;
  std::size_t scored = 0;
  std::size_t silent = 0;  ///< Faulted but never manifested.
  std::size_t clean = 0;   ///< No planned fault (nothing to localize).
  std::size_t top_k_hits = 0;
  std::uint64_t spectrum_frames = 0;  ///< kSpectrum frames streamed.

  double top_k_rate() const {
    return scored == 0 ? 0.0
                       : static_cast<double>(top_k_hits) / static_cast<double>(scored);
  }

  /// Canonical JSON (stable key order) for bench emitters.
  std::string to_json() const;
};

class DiagnosisCampaign {
 public:
  explicit DiagnosisCampaign(DiagCampaignConfig config = {});

  /// Replay one script through the full online chain (program ->
  /// reporter -> kSpectrum frames -> aggregator) and score the ranking
  /// against the planted fault block. When `agg` is null a private
  /// aggregator is used; otherwise the scenario lands in the shared one
  /// under its script name as slot.
  DiagnosisScore run_scenario(const ScenarioScript& script,
                              fleetdiag::FleetAggregator* agg = nullptr,
                              std::uint64_t* frames_out = nullptr);

  /// Score `config.scenarios` uniform draws (the E16 generator stream).
  DiagCampaignReport run();

  /// Score an explicit labeled set (e.g. load_findings() of the shipped
  /// fuzz corpus).
  DiagCampaignReport run(const std::vector<LabeledScenario>& labeled);

  const DiagCampaignConfig& config() const { return config_; }

 private:
  DiagCampaignConfig config_;
};

}  // namespace trader::testkit
