// Deterministic fault-injection campaign harness.
//
// The paper's core claim is that run-time awareness detects, diagnoses
// and recovers from injected faults; a campaign makes that claim
// measurable end to end. A CampaignRunner sweeps seeded scenarios
// (fault kind x target x timing x intensity drawn from runtime::Rng),
// executes each through a real awareness backend — a single-scheduler
// monitor fleet or a ShardedFleet at any shard count — and
// cross-references FaultInjector ground truth against comparator error
// reports to score per-scenario verdicts, detection latency and
// recovery success, plus an aggregate JSON report.
//
// Verdict taxonomy (per scenario):
//   detected       fault manifested and >= 1 error on the target aspect
//   missed         fault manifested, no error on the target aspect
//   false-positive no manifestation, yet errors were reported
//   true-negative  no manifestation, no errors (clean pass)
// Off-target errors during a manifested fault do not change the
// verdict but are tallied separately (errors_off_target).
//
// Everything is virtual-time deterministic: the same CampaignConfig
// produces a byte-identical JSON report and golden trace on every run,
// at every shard count — which is what turns "the fleet is
// deterministic" from a bespoke test loop into a one-line assertion.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault.hpp"
#include "recovery/escalation.hpp"
#include "runtime/sim_time.hpp"
#include "testkit/golden_trace.hpp"
#include "testkit/scenario.hpp"

namespace trader::statemachine {
class ModelProgram;
}

namespace trader::testkit {

enum class Verdict : std::uint8_t { kTrueNegative, kDetected, kMissed, kFalsePositive };

const char* to_string(Verdict v);

/// Pure verdict classification — the cross-reference of ground truth
/// (did the fault manifest?) with the detector view (errors on/off the
/// target aspect).
Verdict classify_verdict(bool manifested, std::size_t errors_on_target,
                         std::size_t errors_off_target);

/// Transport between the scripted SUO and the monitors (src/ipc, src/hub).
enum class IpcMode : std::uint8_t {
  kOff,         ///< Events go straight onto the backend bus (no IPC).
  kSocketpair,  ///< Real kernel stream via socketpair(AF_UNIX) — hermetic.
  kUnix,        ///< Real AF_UNIX listener/connect (abstract namespace).
  kHub,         ///< AwarenessHub epoll loop: one AF_UNIX connection per
                ///< aspect into one event loop feeding a sharded fleet.
};

/// Canonical backend name, read from the backend registry — the same
/// string for every consumer (campaign JSON, bench emitters, logs).
const char* to_string(IpcMode m);

/// How one scenario is executed.
struct ExecutorConfig {
  /// Which model-stepping kernel backs the scripted monitors.
  enum class ModelEngine : std::uint8_t {
    kBatched,      ///< Shared ModelProgram, arena-batched executor (production).
    kInterpreted,  ///< Legacy per-monitor interpreting executor.
  };
  /// 0 = single-scheduler MonitorFleet backend; N >= 1 = ShardedFleet.
  std::size_t shards = 0;
  /// Epoch grid (both backends deliver external events on it).
  runtime::SimDuration epoch = runtime::msec(10);
  /// Master seed for the sharded backend's per-shard Rngs.
  std::uint64_t seed = 0x5eed;
  runtime::SimDuration comparison_period = runtime::msec(10);
  runtime::SimDuration startup_grace = runtime::msec(5);
  int max_consecutive = 2;
  recovery::EscalationConfig escalation;
  /// Push every SUO event through the wire protocol over a real socket.
  /// kSocketpair/kUnix wrap the single-scheduler fleet (shards == 0);
  /// kHub multiplexes one connection per aspect through the epoll hub
  /// into a ShardedFleet (`shards` counts, 0 = 1). Verdicts and golden
  /// traces stay identical to IpcMode::kOff because events carry
  /// virtual timestamps and each one is pumped through the socket
  /// synchronously.
  IpcMode ipc = IpcMode::kOff;
  /// Model kernel. The batched executor is the default; the legacy
  /// interpreter remains selectable so the differential tests can pin
  /// both kernels to one golden trace.
  ModelEngine engine = ModelEngine::kBatched;
  /// Kill-and-restart window: the SUO link drops at suo_down_at and a
  /// restarted SUO is reconnected at suo_up_at (virtual time; both -1 =
  /// no outage). Commands inside the window reach nobody; comparators
  /// are quiesced through the link gate; the outage is traced once.
  /// Honored on every backend — the in-process fleets gate a virtual
  /// link so outage scenarios fingerprint identically across IpcModes.
  /// A ScenarioScript::outage window overrides this executor-level one.
  runtime::SimTime suo_down_at = -1;
  runtime::SimTime suo_up_at = -1;
};

const char* to_string(ExecutorConfig::ModelEngine e);

/// One-line config echo shared by campaign JSON reports and bench
/// emitters: "single" / "sharded(N)", "+ipc-<mode>" when a wire is in
/// the path, "+interpreted" when the legacy interpreter is selected.
std::string backend_label(const ExecutorConfig& config);

/// Outcome of one scenario run. Scripts may plan several (possibly
/// overlapping) faults: "on target" means on ANY planned fault's target
/// aspect, which reduces to the classic single-target reading for
/// one-fault scripts and stays coherent for the fuzzer's composed ones.
struct ScenarioResult {
  std::string name;
  faults::FaultSpec fault;  ///< First planned fault (meaningless when !fault_planned).
  bool fault_planned = false;
  bool fault_manifested = false;
  /// A fault of a campaign_detectable kind manifested — the scenarios
  /// the detection-floor rate is computed over.
  bool detectable_manifested = false;
  std::size_t errors_on_target = 0;
  std::size_t errors_off_target = 0;
  Verdict verdict = Verdict::kTrueNegative;
  runtime::SimTime first_manifestation = -1;
  runtime::SimTime first_detection = -1;
  runtime::SimDuration detection_latency = -1;  ///< -1 when not detected.
  bool recovered = false;
  bool gave_up = false;  ///< Escalation exhausted during the scenario.
  std::size_t link_outages = 0;  ///< SUO link down/up cycles.
  std::vector<recovery::RecoveryAction> actions;  ///< Ladder actions taken.
  GoldenTrace trace;
};

/// Replays one ScenarioScript through an awareness backend and scores
/// it. Reusable: each run() builds a fresh backend, so one executor can
/// replay a whole campaign.
class ScenarioExecutor {
 public:
  explicit ScenarioExecutor(ExecutorConfig config = {});

  ScenarioResult run(const ScenarioScript& script);

  const ExecutorConfig& config() const { return config_; }

 private:
  ExecutorConfig config_;
  /// The scripted counter spec, compiled once and shared by every
  /// aspect of every scenario this executor replays (batched engine).
  std::shared_ptr<const statemachine::ModelProgram> counter_program_;
};

/// A whole campaign: generator parameters plus executor parameters.
struct CampaignConfig {
  std::uint64_t seed = 2026;
  std::size_t scenarios = 50;
  ScenarioDraw draw;
  ExecutorConfig executor;
};

/// Per-fault-kind aggregate row of the campaign report.
struct KindStats {
  std::size_t scenarios = 0;
  std::size_t detected = 0;
  std::size_t missed = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t recovered = 0;
  runtime::SimDuration latency_sum = 0;  ///< Over detected scenarios.

  double detection_rate() const {
    const std::size_t manifested = detected + missed;
    return manifested == 0 ? 0.0
                           : static_cast<double>(detected) / static_cast<double>(manifested);
  }
  runtime::SimDuration mean_latency() const {
    return detected == 0 ? -1 : latency_sum / static_cast<runtime::SimDuration>(detected);
  }
};

/// Aggregate campaign outcome.
struct CampaignReport {
  CampaignConfig config;
  std::vector<ScenarioResult> results;
  std::map<std::string, KindStats> by_kind;  ///< Keyed by fault-kind name; "none" = clean.

  std::size_t count(Verdict v) const;
  /// Detection rate over manifested scenarios of detectable kinds only.
  double detection_rate_detectable() const;
  /// Combined golden trace: every scenario's lines, scenario-prefixed,
  /// plus per-scenario verdict lines. One fingerprint for the campaign.
  GoldenTrace golden_trace() const;

  /// Canonical JSON document: stable key order, integers and fixed
  /// 4-decimal rates only — byte-identical across runs and backends.
  std::string to_json() const;
};

/// Generates scenarios from the seed and executes them in order.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {});

  CampaignReport run();

 private:
  CampaignConfig config_;
};

}  // namespace trader::testkit
