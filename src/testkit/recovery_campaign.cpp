#include "testkit/recovery_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "fleetdiag/reporter.hpp"
#include "hub/hub.hpp"
#include "ipc/transport.hpp"
#include "journal/wal.hpp"
#include "observation/coverage.hpp"
#include "recovery/escalation.hpp"

namespace trader::testkit {

namespace {

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

hub::RecoveryConfig RecoveryCampaignConfig::default_recovery() {
  hub::RecoveryConfig rc;
  rc.enabled = true;
  rc.stable_reports = 2;
  rc.token_capacity = 8;
  rc.token_refill_every = runtime::msec(100);
  rc.cooldown = runtime::msec(100);
  rc.cooldown_jitter = runtime::msec(40);
  rc.ack_timeout = runtime::msec(200);
  rc.max_retries = 2;
  rc.flap_threshold = 3;
  rc.success_reports = 4;
  // One failure per rung: resync first, and when errors persist the very
  // next action is the targeted restart (scenarios are seconds long).
  rc.escalation.failures_per_level = 1;
  rc.escalation.window = runtime::sec(30);
  return rc;
}

ScenarioScript extend_for_recovery(const ScenarioScript& script, runtime::SimTime until,
                                   runtime::SimDuration cadence) {
  ScenarioScript out = script;
  if (cadence <= 0 || until <= script.horizon()) return out;
  std::vector<ScriptCommand> cmds = script.sorted_commands();
  const std::size_t aspects = std::max<std::size_t>(1, script.aspect_count());
  runtime::SimTime t = cmds.empty() ? 0 : cmds.back().at;
  std::size_t i = 0;
  for (t += cadence; t < until; t += cadence) {
    cmds.push_back({t, i++ % aspects});
  }
  out.commands(std::move(cmds));
  out.horizon(until);
  return out;
}

RecoveryCampaign::RecoveryCampaign(RecoveryCampaignConfig config) : config_(std::move(config)) {
  if (config_.top_k == 0) config_.top_k = 1;
  if (config_.flush_steps == 0) config_.flush_steps = 1;
  if (config_.shards == 0) config_.shards = 1;
}

RecoveryScore RecoveryCampaign::run_scenario(const ScenarioScript& script) {
  RecoveryScore score;
  score.scenario = script.name();

  // Ground truth: same convention as the diagnosis campaign — the first
  // planned fault targeting a scripted aspect seeds the program fault
  // into that aspect's feature.
  const faults::FaultSpec* primary = nullptr;
  std::size_t target_feature = SIZE_MAX;
  for (const faults::FaultSpec& spec : script.fault_plan()) {
    for (std::size_t k = 0; k < script.aspect_count(); ++k) {
      if (spec.target == aspect_name(k)) {
        primary = &spec;
        target_feature = k;
        break;
      }
    }
    if (primary != nullptr) break;
  }

  diagnosis::SyntheticProgramConfig prog_cfg = config_.program;
  prog_cfg.feature_count = std::max<std::size_t>(1, script.aspect_count());
  prog_cfg.seed ^= std::hash<std::string>{}(script.name());
  diagnosis::SyntheticProgram program(prog_cfg);
  if (primary != nullptr) {
    program.set_fault_in_feature(target_feature);
    score.kind = faults::to_string(primary->kind);
    score.target = primary->target;
    score.fault_block = program.fault_block();
  }

  // One hub per scenario, lockstep-driven: liveness probing off, virtual
  // time advanced by this thread, recovery ticked from poll(). The hub
  // lives on the heap so the crash drill can destroy and rebuild it
  // mid-scenario against the same journal directory.
  hub::HubConfig hub_cfg;
  hub_cfg.shards = config_.shards;
  hub_cfg.probe_liveness = false;
  hub_cfg.diag.top_k = config_.top_k;
  hub_cfg.diag.refresh_every = 1;
  hub_cfg.recovery = config_.recovery;
  hub_cfg.recovery.enabled = config_.orchestrate;
  hub_cfg.journal = config_.journal;
  if (hub_cfg.journal.enabled) {
    const std::string root = config_.journal_root.empty() ? std::string(".") : config_.journal_root;
    hub_cfg.journal.dir = root + "/" + script.name();
    journal::ensure_dir(hub_cfg.journal.dir);
    journal::purge_journal_dir(hub_cfg.journal.dir);
  }

  const std::string& slot = script.name();
  std::unique_ptr<hub::AwarenessHub> awareness_hub;
  const auto make_hub = [&] {
    awareness_hub = std::make_unique<hub::AwarenessHub>(hub_cfg);
    awareness_hub->add_slot(slot);
    // component_of is process wiring, installed before start(): journal
    // replay re-runs actuation decisions and needs the same mapping.
    awareness_hub->recovery().set_component_of([&program](std::size_t block) {
      const std::size_t f = program.feature_of(block);
      return f == SIZE_MAX ? std::string("infra") : aspect_name(f);
    });
    return awareness_hub->start();
  };
  if (!make_hub()) return score;

  const auto wall_deadline = [&] {
    return std::chrono::steady_clock::now() + std::chrono::milliseconds(config_.pump_budget_ms);
  };
  const auto pump_until = [&](auto done) {
    const auto deadline = wall_deadline();
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      if (awareness_hub->poll(10) < 0) return false;
    }
    return true;
  };

  // Handshake: the campaign itself plays the SUO end of the socket.
  ipc::FramedSocket sock;
  const auto connect = [&] {
    const int fd = ipc::connect_unix_retry(awareness_hub->path(), 2000);
    if (fd < 0) return false;
    sock = ipc::FramedSocket(fd);
    ipc::Frame hello;
    hello.type = ipc::FrameType::kHello;
    hello.detail = slot;
    if (!sock.send(hello)) return false;
    ipc::Frame ack;
    const auto deadline = wall_deadline();
    while (std::chrono::steady_clock::now() <= deadline) {
      const auto st = sock.recv(ack, 0);
      if (st == ipc::FramedSocket::RecvStatus::kFrame) {
        return ack.type == ipc::FrameType::kHelloAck;
      }
      if (st != ipc::FramedSocket::RecvStatus::kTimeout) return false;
      if (awareness_hub->poll(10) < 0) return false;
    }
    return false;
  };
  if (!connect()) return score;

  fleetdiag::ReporterConfig rep_cfg;
  rep_cfg.block_count = static_cast<std::uint32_t>(program.block_count());
  rep_cfg.flush_steps = config_.flush_steps;
  fleetdiag::SpectrumReporter reporter(rep_cfg);
  observation::BlockCoverageRecorder coverage(program.block_count());
  std::uint32_t seq = 0;
  std::uint64_t frames_shipped = 0;

  // Ship pending spectra and pump until the aggregator has folded every
  // frame — keeps the hub's diagnosis state a pure function of the
  // scenario prefix, independent of wall-clock poll interleaving.
  const auto ship = [&](runtime::SimTime now) {
    for (const ipc::Frame& f : reporter.flush(seq, now)) {
      if (!sock.send(f)) return false;
      ++frames_shipped;
    }
    return pump_until(
        [&] { return awareness_hub->diagnosis().health(slot).reports >= frames_shipped; });
  };

  // SUO-side actuation, same semantics as run_hub_publisher(): resync
  // never repairs, a targeted restart repairs only when the suspect
  // block lives in the faulty feature, the brute-force rungs always do.
  std::uint64_t last_token = 0;
  bool last_ok = false;
  std::string last_detail;
  const auto execute = [&](const ipc::Frame& f) {
    ipc::Frame ack;
    ack.type = ipc::FrameType::kRecoverAck;
    ack.seq = ++seq;
    ack.time = f.time;
    ack.action = f.action;
    ack.token = f.token;
    ack.unit = f.unit;
    if (f.token != 0 && f.token == last_token) {
      ack.ok = last_ok;
      ack.detail = last_detail;
      ++score.duplicates;
      return ack;
    }
    ++score.commands;
    const auto action = static_cast<recovery::RecoveryAction>(f.action);
    score.ladder.emplace_back(recovery::to_string(action));
    const std::size_t block_feature = program.feature_of(f.block);
    const bool on_target = target_feature != SIZE_MAX && block_feature == target_feature;
    bool ok = false;
    bool repairs = false;
    std::string detail;
    switch (action) {
      case recovery::RecoveryAction::kResync:
        ok = true;
        detail = "resynced";
        break;
      case recovery::RecoveryAction::kRestartUnit:
        ++score.restarts;
        if (score.restarts == 1) score.precise = on_target;
        repairs = program.has_fault() && on_target;
        ok = true;
        detail = repairs ? "repaired " + f.unit : "restarted " + f.unit;
        break;
      case recovery::RecoveryAction::kRestartDependents:
      case recovery::RecoveryAction::kFullRestart:
        ++score.restarts;
        if (score.restarts == 1) score.precise = on_target;
        repairs = program.has_fault();
        ok = true;
        detail = "restarted all";
        break;
      default:
        detail = "unsupported action";
        break;
    }
    if (repairs) {
      program.clear_fault();
      if (!score.repaired) {
        score.repaired = true;
        score.repaired_at = f.time;  // the command's virtual timestamp
      }
    }
    ack.ok = ok;
    ack.detail = detail;
    last_token = f.token;
    last_ok = ok;
    last_detail = detail;
    return ack;
  };

  // Service every in-flight command before virtual time moves again: one
  // command per slot is outstanding at a time, and the frozen clock
  // means no ack can time out mid-drain (zero spurious retries — the
  // action log is byte-identical run to run).
  const auto drain = [&] {
    if (!hub_cfg.recovery.enabled) return true;
    const auto deadline = wall_deadline();
    while (awareness_hub->recovery().has_outstanding(slot)) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      ipc::Frame f;
      const auto st = sock.recv(f, 0);
      if (st == ipc::FramedSocket::RecvStatus::kFrame) {
        if (f.type == ipc::FrameType::kRecover) {
          if (!sock.send(execute(f))) return false;
        }
        continue;
      }
      if (st != ipc::FramedSocket::RecvStatus::kTimeout) return false;
      if (awareness_hub->poll(10) < 0) return false;
    }
    return true;
  };

  // The lockstep loop: step the instrumented program, ship spectra,
  // advance the hub's virtual clock, let the orchestrator tick, then
  // execute whatever it commanded — all before the next command.
  std::size_t cmd_index = 0;
  for (const ScriptCommand& cmd : script.sorted_commands()) {
    const std::size_t feature = cmd.aspect % program.feature_count();
    const bool fault_fired = program.run_step(feature, coverage);
    // Persistent-fault model: once the planned fault activates, every
    // execution of the faulty block errs until an actuated repair clears
    // it (a crashed component does not heal when its window "ends") —
    // run_step() itself goes quiet after clear_fault().
    const bool err = primary != nullptr && fault_fired && cmd.at >= primary->activate_at;
    reporter.end_step_from(coverage, err);
    coverage.clear();
    ++score.steps;
    if (err) {
      if (score.error_steps == 0) score.first_error_at = cmd.at;
      ++score.error_steps;
    }
    if (reporter.flush_due() && !ship(cmd.at)) return score;
    awareness_hub->run_until(cmd.at);
    if (awareness_hub->poll(0) < 0) return score;  // recovery tick at cmd.at
    if (!drain()) return score;
    // Crash drill: at the configured boundary (commands drained, clock
    // frozen) drop the hub cold — no sync, no checkpoint, no goodbye —
    // and bring a fresh instance up on the same journal. The rest of
    // the scenario continues against the recovered state.
    if (hub_cfg.journal.enabled && cmd_index == config_.crash_at_command) {
      awareness_hub->simulate_crash();
      awareness_hub.reset();
      sock = ipc::FramedSocket();
      if (!make_hub() || !connect()) return score;
    }
    ++cmd_index;
  }
  if (!ship(script.horizon())) return score;
  awareness_hub->run_until(script.horizon());
  if (awareness_hub->poll(0) >= 0) drain();  // last chance at the horizon

  score.quarantined = awareness_hub->recovery().quarantined(slot);
  score.scored = primary != nullptr && score.error_steps > 0;
  if (score.scored) {
    const runtime::SimTime end = score.repaired ? score.repaired_at : script.horizon();
    score.downtime = end - score.first_error_at;
    score.censored = !score.repaired;
  }
  return score;
}

RecoveryCampaignReport RecoveryCampaign::run() {
  std::vector<LabeledScenario> labeled;
  runtime::Rng rng(config_.seed);
  labeled.reserve(config_.scenarios);
  for (std::size_t i = 0; i < config_.scenarios; ++i) {
    labeled.push_back({draw_scenario(rng, i, config_.draw), "", ""});
  }
  return run(labeled);
}

RecoveryCampaignReport RecoveryCampaign::run(const std::vector<LabeledScenario>& labeled) {
  RecoveryCampaignReport report;
  for (const LabeledScenario& entry : labeled) {
    RecoveryScore score = run_scenario(entry.script);
    ++report.scenarios;
    report.commands += score.commands;
    RecoveryKindStats& stats = report.by_kind[score.kind];
    ++stats.scenarios;
    if (score.scored) {
      ++report.scored;
      ++stats.scored;
      report.mean_downtime_ms += runtime::to_ms(score.downtime);
      stats.mean_downtime_ms += runtime::to_ms(score.downtime);
      if (score.repaired) {
        ++report.repaired;
        ++stats.repaired;
      } else {
        ++report.censored;
      }
      if (score.restarts > 0) {
        ++report.with_restart;
        if (score.precise) {
          ++report.precise;
          ++stats.precise;
        }
      }
    }
    report.scores.push_back(std::move(score));
  }
  if (report.scored > 0) {
    report.mean_downtime_ms /= static_cast<double>(report.scored);
  }
  for (auto& [kind, stats] : report.by_kind) {
    if (stats.scored > 0) stats.mean_downtime_ms /= static_cast<double>(stats.scored);
  }
  return report;
}

std::string RecoveryCampaignReport::to_json() const {
  std::string out = "{";
  out += "\"scenarios\": " + std::to_string(scenarios);
  out += ", \"scored\": " + std::to_string(scored);
  out += ", \"repaired\": " + std::to_string(repaired);
  out += ", \"censored\": " + std::to_string(censored);
  out += ", \"with_restart\": " + std::to_string(with_restart);
  out += ", \"precise\": " + std::to_string(precise);
  out += ", \"precision\": " + fmt3(precision());
  out += ", \"mean_downtime_ms\": " + fmt3(mean_downtime_ms);
  out += ", \"commands\": " + std::to_string(commands);
  out += ", \"by_kind\": {";
  bool first = true;
  for (const auto& [kind, stats] : by_kind) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + kind + "\": {";
    out += "\"scenarios\": " + std::to_string(stats.scenarios);
    out += ", \"scored\": " + std::to_string(stats.scored);
    out += ", \"repaired\": " + std::to_string(stats.repaired);
    out += ", \"precise\": " + std::to_string(stats.precise);
    out += ", \"mean_downtime_ms\": " + fmt3(stats.mean_downtime_ms) + "}";
  }
  out += "}, \"scores\": [";
  first = true;
  for (const RecoveryScore& s : scores) {
    if (!first) out += ", ";
    first = false;
    out += "{\"scenario\": \"" + s.scenario + "\"";
    out += ", \"kind\": \"" + s.kind + "\"";
    out += ", \"scored\": " + std::string(s.scored ? "true" : "false");
    out += ", \"steps\": " + std::to_string(s.steps);
    out += ", \"error_steps\": " + std::to_string(s.error_steps);
    if (s.scored) {
      out += ", \"first_error_at_us\": " + std::to_string(s.first_error_at);
      out += ", \"repaired\": " + std::string(s.repaired ? "true" : "false");
      if (s.repaired) out += ", \"repaired_at_us\": " + std::to_string(s.repaired_at);
      out += ", \"downtime_ms\": " + fmt3(runtime::to_ms(s.downtime));
      out += ", \"censored\": " + std::string(s.censored ? "true" : "false");
      out += ", \"commands\": " + std::to_string(s.commands);
      out += ", \"restarts\": " + std::to_string(s.restarts);
      out += ", \"precise\": " + std::string(s.precise ? "true" : "false");
      out += ", \"quarantined\": " + std::string(s.quarantined ? "true" : "false");
      out += ", \"duplicates\": " + std::to_string(s.duplicates);
      out += ", \"ladder\": [";
      bool lfirst = true;
      for (const std::string& rung : s.ladder) {
        if (!lfirst) out += ", ";
        lfirst = false;
        out += "\"" + rung + "\"";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace trader::testkit
