// Coverage-guided scenario fuzzing: steer a campaign by novelty instead
// of drawing scenarios uniformly.
//
// The uniform campaign (campaign.hpp, EXPERIMENTS.md E16) samples one
// fault per scenario from a fixed kind mix — fine for a detection-floor
// estimate, blind to the composed failure modes the paper's
// industry-as-laboratory cases kept producing (a fault *during* a
// restart, two faults overlapping on one aspect, a resource eater
// starving a component while the comparator watches). The fuzzer closes
// that gap: it mutates ScenarioScripts (shift / stretch / attenuate /
// retarget / re-kind / add / drop / splice fault plans, kill-restart
// windows inside active faults, command drops, horizon extensions) and
// keeps a scenario only when it reaches somewhere new.
//
// "New" is judged two ways, both deterministic:
//   - shape fingerprint: the golden trace with every digit run replaced
//     by '#', FNV-hashed — the *shape* of the run (which categories, in
//     which order, with which words) with times and counter values
//     abstracted away. Raw trace fingerprints are nearly always unique;
//     shapes collapse runs that differ only in timing.
//   - coverage key: fault-kind set x verdict x detection-latency bucket
//     (plus outage / recovered markers) — a coarse behavioural cell. The
//     campaign's uniform draw only ever reaches single-kind, no-outage
//     cells, so any composed cell is evidence the fuzzer left the E16
//     envelope.
//
// Scenarios that manifest a fault and still score kMissed are the
// valuable ones: each is greedily minimized (drop faults, drop command
// chunks, drop the outage, shrink the horizon — keeping the miss) and
// shipped in the findings corpus as replayable JSON.
//
// Everything is seeded and byte-reproducible: same FuzzConfig => same
// corpus, same coverage map, same findings, same to_json() bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "faults/fault.hpp"
#include "runtime/rng.hpp"
#include "runtime/sim_time.hpp"
#include "testkit/campaign.hpp"
#include "testkit/golden_trace.hpp"
#include "testkit/scenario.hpp"

namespace trader::testkit {

/// FNV-1a fingerprint of the trace's *shape*: every run of decimal
/// digits collapses to one '#', so two runs that differ only in virtual
/// times or counter values share a shape. 16 hex digits, like
/// GoldenTrace::fingerprint().
std::string shape_fingerprint(const GoldenTrace& trace);

/// Behavioural coverage cell for one executed scenario:
///   "<kind[+kind...]>|<verdict>|L<latency/bucket>[|outage][|rec]"
/// Kinds are the sorted unique planned fault kinds ("none" when clean);
/// the latency bucket is "L-" when nothing was detected.
std::string coverage_key(const ScenarioScript& script, const ScenarioResult& result,
                         runtime::SimDuration latency_bucket);

/// Canonical JSON value for one script — enough to re-build and replay
/// it byte-for-byte (name, aspects, horizon, outage window, sorted
/// commands, fault plan). Stable key order, no whitespace variance.
std::string script_to_json(const ScenarioScript& script);

/// Mutation engine over ScenarioScripts. All mutated times stay on the
/// draw cadence grid (the executor epoch grid's coarser multiple), so
/// mutants replay deterministically on every backend.
class ScenarioMutator {
 public:
  explicit ScenarioMutator(ScenarioDraw draw);

  /// One mutation of `parent` (splice also reads `second`). The result
  /// is named `name`; `op_name`, when non-null, receives the operator
  /// actually applied. Deterministic in `rng`.
  ScenarioScript mutate(runtime::Rng& rng, const ScenarioScript& parent,
                        const ScenarioScript& second, const std::string& name,
                        std::string* op_name = nullptr) const;

  /// Kind pool for add / re-kind mutations: the campaign mix plus
  /// kResourceEater (the kind the uniform draw deliberately excludes).
  static std::vector<faults::FaultKind> mutation_kinds();

 private:
  ScenarioDraw draw_;
  std::vector<faults::FaultKind> kinds_;
};

/// Greedy event-drop minimizer (ddmin flavoured): starting from a
/// scenario whose verdict is kMissed with a manifested fault, repeatedly
/// drop the outage, surplus faults, contiguous command chunks and the
/// horizon tail, keeping each reduction only if the miss (with a
/// manifested fault) survives. Spends at most `budget` executor runs;
/// `runs_out`, when non-null, receives the number actually spent. The
/// result is renamed "<name>-min".
ScenarioScript minimize_scenario(ScenarioExecutor& executor, const ScenarioScript& script,
                                 std::size_t budget, runtime::SimDuration grid,
                                 std::size_t* runs_out = nullptr);

/// Fuzz campaign parameters.
struct FuzzConfig {
  std::uint64_t seed = 2026;
  /// Iteration 0..seed_scenarios-1: uniform draw_scenario() seeds the
  /// corpus (every seed scenario is admitted).
  std::size_t seed_scenarios = 10;
  /// Mutation iterations after seeding.
  std::size_t iterations = 200;
  ScenarioDraw draw;
  ExecutorConfig executor;
  /// Detection-latency quantisation for coverage keys.
  runtime::SimDuration latency_bucket = runtime::msec(20);
  /// Executor runs the minimizer may spend per finding.
  std::size_t minimize_budget = 120;
  /// Cap on minimized findings (first-come, deterministic).
  std::size_t max_findings = 8;
};

/// One corpus member: the script plus the novelty evidence that
/// admitted it.
struct CorpusEntry {
  ScenarioScript script;
  std::string parent;    ///< Corpus name mutated from ("" = seed draw).
  std::string op;        ///< Mutation operator ("draw" for seeds).
  Verdict verdict = Verdict::kTrueNegative;
  std::string shape_fp;  ///< shape_fingerprint() of the run.
  std::string trace_fp;  ///< Raw GoldenTrace fingerprint.
  std::string cov_key;   ///< coverage_key() of the run.
  std::size_t found_at = 0;  ///< Global execution index (seeds first).
};

/// One minimized missed-detection finding.
struct Finding {
  ScenarioScript script;    ///< Minimized reproducer ("<original>-min").
  std::string original;     ///< Corpus name it was minimized from.
  std::string cov_key;      ///< Coverage cell of the original miss.
  std::size_t found_at = 0;
  std::size_t shrink_runs = 0;      ///< Executor runs the minimizer spent.
  std::size_t commands_before = 0;
  std::size_t commands_after = 0;
  std::size_t faults_before = 0;
  std::size_t faults_after = 0;
};

/// Hit statistics of one coverage cell.
struct CoverageCell {
  std::size_t hits = 0;
  std::size_t first_seen = 0;  ///< Execution index of the first hit.
};

/// Outcome of a fuzz campaign. All containers are ordered; to_json() is
/// byte-identical for identical configs.
struct FuzzReport {
  FuzzConfig config;
  std::vector<CorpusEntry> corpus;
  std::map<std::string, CoverageCell> coverage;
  std::vector<Finding> findings;
  /// corpus.size() after each mutation iteration (saturation curve).
  std::vector<std::size_t> corpus_growth;
  /// Fuzz-loop executor runs (excludes minimizer runs).
  std::size_t executions = 0;
  /// Executor runs spent by the minimizer across all findings.
  std::size_t minimize_executions = 0;
  // Per-execution verdict tallies (fuzz loop only).
  std::size_t detected = 0;
  std::size_t missed = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  /// Executions where a detectable-kind fault manifested, and how many
  /// of those were detected — the fuzzed detection floor.
  std::size_t detectable_manifested = 0;
  std::size_t detected_detectable = 0;

  double detection_floor() const {
    return detectable_manifested == 0 ? 1.0
                                      : static_cast<double>(detected_detectable) /
                                            static_cast<double>(detectable_manifested);
  }

  /// Canonical JSON document (config echo, totals, coverage map, growth
  /// curve, corpus metadata, findings with full replayable scripts).
  std::string to_json() const;
};

/// Runs the coverage-guided loop: seed corpus from the uniform draw,
/// then mutate corpus members, admitting mutants that reach a new trace
/// shape or a new coverage cell, minimizing novel missed detections.
class FuzzCampaignRunner {
 public:
  explicit FuzzCampaignRunner(FuzzConfig config = {});

  FuzzReport run();

 private:
  FuzzConfig config_;
};

}  // namespace trader::testkit
