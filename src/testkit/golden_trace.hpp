// Golden traces: canonical, hashable recordings of a run.
//
// Runtime-verification practice matches observed traces against
// reference traces (Chupilko & Kamkin); the sharded-fleet determinism
// claim — same seed => identical behaviour at any shard count — is the
// same idea turned inward. A GoldenTrace serializes the ordered stream
// of commands, error reports, trace-log records and deterministic
// metric counters into canonical text lines; two runs compare with a
// single fingerprint equality, and a mismatch points at the first
// diverging line instead of leaving the reader to eyeball two logs.
//
// Only deterministic material may enter a golden trace: virtual times,
// event payloads, error reports, counter values. Wall-clock latency
// histograms and per-shard topology counters (cross_shard_out, shard
// gauges) must stay out, or traces stop being comparable across shard
// counts and hosts. The same exclusion applies to the ipc.* wire
// counters (frames/bytes sent and received, heartbeat misses,
// reconnects, RTT): they depend on transport framing, retry timing and
// the kernel scheduler, so a campaign over AF_UNIX must fingerprint
// identically to its in-process twin — capture_metrics callers filter
// to the deterministic prefixes (comparator.*, model.*) only. The
// hub.recovery.* counters are likewise excluded by that filter: ack
// round-trips, retries and token-bucket refills ride wall-clock
// timers, so recovery accounting would diverge between transports even
// when the repaired behaviour is identical (pinned by
// RecoveryLoop.GoldenTraceFingerprintsExcludeRecoveryMetrics). So are
// the hub.journal.* counters: append/checkpoint/fsync tallies track
// durability plumbing, and a journaled run must fingerprint
// identically to an unjournaled one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_time.hpp"
#include "runtime/trace_log.hpp"

namespace trader::testkit {

/// Result of diffing two golden traces.
struct TraceDiff {
  bool identical = true;
  std::size_t first_divergence = 0;  ///< Line index, valid when !identical.
  std::string left;                  ///< Diverging line ("" = side exhausted).
  std::string right;
  std::string describe() const;
};

/// Append-only canonical recording of one run.
class GoldenTrace {
 public:
  /// Append one canonical line: "t=<time> <category> <detail>".
  void add(runtime::SimTime t, const std::string& category, const std::string& detail);

  /// Append a pre-formatted line verbatim.
  void add_line(std::string line);

  /// Record every aspect error in the (deterministically sorted) list.
  void capture_errors(const std::vector<core::AspectError>& errors);

  /// Record one monitor's error stream under an aspect label.
  void capture_errors(const std::string& aspect, const std::vector<core::ErrorReport>& errors);

  /// Record the deterministic counters of a metrics snapshot (see
  /// MetricsSnapshot::counter_lines for the prefix filter semantics).
  void capture_metrics(const runtime::MetricsSnapshot& snap,
                       const std::vector<std::string>& prefixes);

  /// Wire this trace as the live tap of `log`: every record logged from
  /// now on lands in the trace as it happens. The tap holds a pointer
  /// to this trace — clear it (or destroy the log) before the trace
  /// dies.
  void tap(runtime::TraceLog& log);

  const std::vector<std::string>& lines() const { return lines_; }
  bool empty() const { return lines_.empty(); }

  /// 16-hex-digit FNV-1a fingerprint over all lines.
  std::string fingerprint() const;

  /// Line-by-line comparison with a first-divergence pointer.
  static TraceDiff diff(const GoldenTrace& a, const GoldenTrace& b);

 private:
  std::vector<std::string> lines_;
};

}  // namespace trader::testkit
