#include "testkit/golden_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace trader::testkit {

std::string TraceDiff::describe() const {
  if (identical) return "traces identical";
  std::string out = "first divergence at line " + std::to_string(first_divergence) + ":\n";
  out += "  left : " + (left.empty() ? std::string("<end of trace>") : left) + "\n";
  out += "  right: " + (right.empty() ? std::string("<end of trace>") : right);
  return out;
}

void GoldenTrace::add(runtime::SimTime t, const std::string& category,
                      const std::string& detail) {
  lines_.push_back("t=" + std::to_string(t) + " " + category + " " + detail);
}

void GoldenTrace::add_line(std::string line) { lines_.push_back(std::move(line)); }

void GoldenTrace::capture_errors(const std::vector<core::AspectError>& errors) {
  for (const auto& e : errors) {
    add(e.report.detected_at, "error", e.aspect + " " + e.report.describe());
  }
}

void GoldenTrace::capture_errors(const std::string& aspect,
                                 const std::vector<core::ErrorReport>& errors) {
  for (const auto& r : errors) add(r.detected_at, "error", aspect + " " + r.describe());
}

void GoldenTrace::capture_metrics(const runtime::MetricsSnapshot& snap,
                                  const std::vector<std::string>& prefixes) {
  for (auto& line : snap.counter_lines(prefixes)) add_line("metric " + std::move(line));
}

void GoldenTrace::tap(runtime::TraceLog& log) {
  log.set_tap([this](const runtime::TraceRecord& r) {
    add(r.time, "trace", std::string(runtime::to_string(r.level)) + " " + r.component + " " +
                             r.message);
  });
}

std::string GoldenTrace::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& line : lines_) {
    for (unsigned char c : line) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= static_cast<unsigned char>('\n');
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

TraceDiff GoldenTrace::diff(const GoldenTrace& a, const GoldenTrace& b) {
  TraceDiff d;
  static const std::string kEmpty;
  const std::size_t n = std::max(a.lines_.size(), b.lines_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& left = i < a.lines_.size() ? a.lines_[i] : kEmpty;
    const std::string& right = i < b.lines_.size() ? b.lines_[i] : kEmpty;
    if (left != right) {
      d.identical = false;
      d.first_divergence = i;
      d.left = left;
      d.right = right;
      return d;
    }
  }
  return d;
}

}  // namespace trader::testkit
