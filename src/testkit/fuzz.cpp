#include "testkit/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace trader::testkit {

namespace {

std::string fmt_intensity(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// Clamp `t` onto the grid inside [lo, hi] (all grid multiples).
runtime::SimTime snap_clamp(runtime::SimTime t, runtime::SimDuration grid, runtime::SimTime lo,
                            runtime::SimTime hi) {
  runtime::SimTime snapped = (t / grid) * grid;
  if (snapped < lo) snapped = lo;
  if (snapped > hi) snapped = hi;
  return snapped;
}

}  // namespace

// ------------------------------------------------------------- fingerprints

std::string shape_fingerprint(const GoldenTrace& trace) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 0x100000001b3ULL;
  };
  // Two abstractions make this a *shape*: digit runs collapse to '#'
  // (times, counter values, aspect indices vanish) and consecutive
  // identical collapsed lines fold into one (a phase of N repeated
  // steps equals a phase of M) — what remains is the sequence of
  // distinct behavioural phases the run went through.
  std::string prev;
  for (const auto& line : trace.lines()) {
    std::string collapsed;
    collapsed.reserve(line.size());
    bool in_digits = false;
    for (const char c : line) {
      if (c >= '0' && c <= '9') {
        if (!in_digits) collapsed += '#';
        in_digits = true;
        continue;
      }
      in_digits = false;
      collapsed += c;
    }
    if (collapsed == prev) continue;
    for (const unsigned char c : collapsed) mix(c);
    mix('\n');
    prev = std::move(collapsed);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string coverage_key(const ScenarioScript& script, const ScenarioResult& result,
                         runtime::SimDuration latency_bucket) {
  std::set<std::string> kinds;
  for (const auto& f : script.fault_plan()) kinds.insert(faults::to_string(f.kind));

  std::string key;
  if (kinds.empty()) {
    key = "none";
  } else {
    bool first = true;
    for (const auto& k : kinds) {
      if (!first) key += "+";
      first = false;
      key += k;
    }
  }
  key += "|";
  key += to_string(result.verdict);
  key += "|";
  if (result.detection_latency >= 0 && latency_bucket > 0) {
    key += "L" + std::to_string(result.detection_latency / latency_bucket);
  } else {
    key += "L-";
  }
  if (script.has_outage()) key += "|outage";
  if (result.recovered) key += "|rec";
  return key;
}

// ------------------------------------------------------------ script JSON

std::string script_to_json(const ScenarioScript& script) {
  std::string out = "{";
  out += "\"name\": \"" + script.name() + "\"";
  out += ", \"aspects\": " + std::to_string(script.aspect_count());
  out += ", \"horizon_us\": " + std::to_string(script.horizon());
  if (script.has_outage()) {
    out += ", \"outage_us\": [" + std::to_string(script.suo_down()) + ", " +
           std::to_string(script.suo_up()) + "]";
  } else {
    out += ", \"outage_us\": null";
  }
  out += ", \"commands\": [";
  bool first = true;
  for (const auto& c : script.sorted_commands()) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(c.at) + ", " + std::to_string(c.aspect) + "]";
  }
  out += "], \"faults\": [";
  first = true;
  for (const auto& f : script.fault_plan()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"kind\": \"" + std::string(faults::to_string(f.kind)) + "\"";
    out += ", \"target\": \"" + f.target + "\"";
    out += ", \"at_us\": " + std::to_string(f.activate_at);
    out += ", \"duration_us\": " + std::to_string(f.duration);
    out += ", \"intensity\": " + fmt_intensity(f.intensity) + "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------- ScenarioMutator

std::vector<faults::FaultKind> ScenarioMutator::mutation_kinds() {
  auto kinds = campaign_default_kinds();
  kinds.push_back(faults::FaultKind::kResourceEater);
  return kinds;
}

ScenarioMutator::ScenarioMutator(ScenarioDraw draw)
    : draw_(std::move(draw)), kinds_(mutation_kinds()) {}

ScenarioScript ScenarioMutator::mutate(runtime::Rng& rng, const ScenarioScript& parent,
                                       const ScenarioScript& second, const std::string& name,
                                       std::string* op_name) const {
  constexpr std::size_t kMaxFaults = 4;
  const runtime::SimDuration grid = draw_.cadence;
  const auto set_op = [op_name](const char* op) {
    if (op_name != nullptr) *op_name = op;
  };

  ScenarioScript child = parent;
  child.name(name);
  const runtime::SimTime horizon = child.horizon();
  // Latest grid point a fault may start at and still overlap a command
  // before the run ends (one command plus the settle tail).
  const runtime::SimTime last_start = std::max<runtime::SimTime>(grid, horizon - 2 * grid);

  // Draw operators until one applies; every attempt consumes draws, so
  // the sequence stays deterministic regardless of which ops fire.
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto plan = child.fault_plan();
    const int op = static_cast<int>(rng.uniform_int(0, 10));
    switch (op) {
      case 0: {  // shift-fault: move a fault along the grid
        if (plan.empty()) break;
        auto& f = plan[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
        std::int64_t delta = rng.uniform_int(-3, 3);
        if (delta == 0) delta = 1;
        f.activate_at = snap_clamp(f.activate_at + delta * grid, grid, grid, last_start);
        child.faults(std::move(plan));
        set_op("shift-fault");
        return child;
      }
      case 1: {  // stretch-fault: grow or shrink the active window
        if (plan.empty()) break;
        auto& f = plan[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
        std::int64_t delta = rng.uniform_int(-2, 3);
        if (delta == 0) delta = 2;
        f.duration = snap_clamp(f.duration + delta * grid, grid, grid, horizon);
        child.faults(std::move(plan));
        set_op("stretch-fault");
        return child;
      }
      case 2: {  // attenuate: drop intensity onto the probability grid
        if (plan.empty()) break;
        auto& f = plan[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
        static constexpr double kLevels[] = {0.25, 0.5, 0.75, 1.0};
        f.intensity = kLevels[rng.uniform_int(0, 3)];
        child.faults(std::move(plan));
        set_op("attenuate");
        return child;
      }
      case 3: {  // retarget: point a fault at another aspect
        if (plan.empty() || child.aspect_count() < 2) break;
        auto& f = plan[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
        f.target = aspect_name(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(child.aspect_count()) - 1)));
        child.faults(std::move(plan));
        set_op("retarget");
        return child;
      }
      case 4: {  // mutate-kind: same window, different fault class
        if (plan.empty()) break;
        auto& f = plan[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
        f.kind = kinds_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(kinds_.size()) - 1))];
        child.faults(std::move(plan));
        set_op("mutate-kind");
        return child;
      }
      case 5: {  // add-fault: compose a second fault, overlapping if possible
        if (plan.size() >= kMaxFaults) break;
        faults::FaultSpec add;
        add.kind = kinds_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(kinds_.size()) - 1))];
        add.target = aspect_name(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(child.aspect_count()) - 1)));
        if (!plan.empty()) {
          // Land inside an existing fault's window so faults overlap.
          const auto& base = plan[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
          add.activate_at =
              snap_clamp(base.activate_at + rng.uniform_int(0, 2) * grid, grid, grid, last_start);
        } else {
          add.activate_at = snap_clamp(rng.uniform_int(1, std::max<std::int64_t>(
                                                              1, horizon / (2 * grid))) *
                                           grid,
                                       grid, grid, last_start);
        }
        add.duration = rng.uniform_int(2, 6) * grid;
        add.intensity = 1.0;
        plan.push_back(std::move(add));
        child.faults(std::move(plan));
        set_op("add-fault");
        return child;
      }
      case 6: {  // drop-fault
        if (plan.empty()) break;
        plan.erase(plan.begin() + rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1));
        child.faults(std::move(plan));
        set_op("drop-fault");
        return child;
      }
      case 7: {  // splice: merge the second parent's fault plan in
        if (second.fault_plan().empty() || plan.size() >= kMaxFaults) break;
        for (const auto& f : second.fault_plan()) {
          if (plan.size() >= kMaxFaults) break;
          faults::FaultSpec spliced = f;
          spliced.activate_at = snap_clamp(spliced.activate_at, grid, grid, last_start);
          plan.push_back(std::move(spliced));
        }
        child.faults(std::move(plan));
        set_op("splice");
        return child;
      }
      case 8: {  // outage: kill-restart window, inside a fault when one exists
        runtime::SimTime down;
        if (!plan.empty()) {
          const auto& base = plan[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1))];
          down = base.activate_at + grid;
        } else {
          down = horizon / 3;
        }
        // The restart must land well before the horizon so comparators
        // resume and persistent divergence is still detectable.
        down = snap_clamp(down, grid, grid, std::max<runtime::SimTime>(grid, horizon - 4 * grid));
        const runtime::SimTime up =
            snap_clamp(down + rng.uniform_int(2, 4) * grid, grid, grid, horizon - 2 * grid);
        if (up <= down) break;
        child.outage(down, up);
        set_op("outage");
        return child;
      }
      case 9: {  // drop-commands: lose a contiguous chunk of user input
        auto cmds = child.sorted_commands();
        if (cmds.size() < 4) break;
        const std::int64_t n = static_cast<std::int64_t>(cmds.size());
        const std::int64_t len = rng.uniform_int(1, n / 2);
        const std::int64_t start = rng.uniform_int(0, n - len);
        cmds.erase(cmds.begin() + start, cmds.begin() + start + len);
        child.commands(std::move(cmds));
        set_op("drop-commands");
        return child;
      }
      case 10: {  // extend: longer horizon with a fresh command tail
        const runtime::SimDuration extra = rng.uniform_int(2, 5) * grid;
        auto cmds = child.sorted_commands();
        for (runtime::SimTime t = horizon; t < horizon + extra; t += grid) {
          for (std::size_t k = 0; k < child.aspect_count(); ++k) {
            cmds.push_back(ScriptCommand{t, k});
          }
        }
        child.commands(std::move(cmds));
        child.horizon(horizon + extra);
        set_op("extend");
        return child;
      }
      default:
        break;
    }
  }

  // Nothing applied (e.g. a clean, short script that kept drawing
  // fault-edit ops): force an add-fault so every mutate() moves.
  faults::FaultSpec add;
  add.kind = kinds_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kinds_.size()) - 1))];
  add.target = aspect_name(
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(child.aspect_count()) - 1)));
  add.activate_at = snap_clamp(
      rng.uniform_int(1, std::max<std::int64_t>(1, horizon / (2 * grid))) * grid, grid, grid,
      last_start);
  add.duration = rng.uniform_int(2, 6) * grid;
  add.intensity = 1.0;
  auto plan = child.fault_plan();
  if (plan.size() < kMaxFaults) plan.push_back(std::move(add));
  child.faults(std::move(plan));
  set_op("add-fault");
  return child;
}

// --------------------------------------------------------------- minimizer

namespace {

/// One probe of the miss criterion; counts against the budget.
bool still_missed(ScenarioExecutor& executor, const ScenarioScript& candidate,
                  std::size_t& runs) {
  ++runs;
  const ScenarioResult r = executor.run(candidate);
  return r.verdict == Verdict::kMissed && r.fault_manifested;
}

}  // namespace

ScenarioScript minimize_scenario(ScenarioExecutor& executor, const ScenarioScript& script,
                                 std::size_t budget, runtime::SimDuration grid,
                                 std::size_t* runs_out) {
  ScenarioScript best = script;
  best.name(script.name() + "-min");
  std::size_t runs = 0;

  bool progress = true;
  while (progress && runs < budget) {
    progress = false;

    // Drop the outage window, if any.
    if (best.has_outage() && runs < budget) {
      ScenarioScript cand = best;
      cand.outage(-1, -1);
      if (still_missed(executor, cand, runs)) {
        best = std::move(cand);
        progress = true;
      }
    }

    // Drop surplus faults one at a time (a finding keeps >= 1 fault —
    // the miss criterion requires a manifestation).
    for (std::size_t i = 0; best.fault_plan().size() > 1 && i < best.fault_plan().size() &&
                            runs < budget;) {
      auto plan = best.fault_plan();
      plan.erase(plan.begin() + static_cast<std::ptrdiff_t>(i));
      ScenarioScript cand = best;
      cand.faults(std::move(plan));
      if (still_missed(executor, cand, runs)) {
        best = std::move(cand);
        progress = true;
      } else {
        ++i;
      }
    }

    // Drop contiguous command chunks, halving the chunk size (ddmin).
    for (std::size_t size = best.sorted_commands().size() / 2; size >= 1 && runs < budget;
         size /= 2) {
      for (std::size_t start = 0;
           start + size <= best.sorted_commands().size() && runs < budget;) {
        auto cmds = best.sorted_commands();
        cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(start),
                   cmds.begin() + static_cast<std::ptrdiff_t>(start + size));
        ScenarioScript cand = best;
        cand.commands(std::move(cmds));
        if (still_missed(executor, cand, runs)) {
          best = std::move(cand);
          progress = true;
        } else {
          start += size;
        }
      }
    }

    // Shrink the horizon to just past the last command.
    if (runs < budget) {
      const auto cmds = best.sorted_commands();
      const runtime::SimTime last_cmd = cmds.empty() ? grid : cmds.back().at;
      const runtime::SimTime cand_h = last_cmd + 2 * grid;
      const bool outage_fits = !best.has_outage() || best.suo_up() <= cand_h - grid;
      if (cand_h < best.horizon() && outage_fits) {
        ScenarioScript cand = best;
        cand.horizon(cand_h);
        if (still_missed(executor, cand, runs)) {
          best = std::move(cand);
          progress = true;
        }
      }
    }
  }

  if (runs_out != nullptr) *runs_out = runs;
  return best;
}

// ------------------------------------------------------- FuzzCampaignRunner

FuzzCampaignRunner::FuzzCampaignRunner(FuzzConfig config) : config_(std::move(config)) {}

FuzzReport FuzzCampaignRunner::run() {
  FuzzReport report;
  report.config = config_;

  runtime::Rng master(config_.seed);
  ScenarioExecutor executor(config_.executor);
  ScenarioMutator mutator(config_.draw);
  std::set<std::string> shapes;

  // Admit one executed scenario into corpus / coverage / findings.
  const auto consider = [&](const ScenarioScript& script, std::size_t index,
                            const std::string& parent, const std::string& op, bool force_admit) {
    const ScenarioResult result = executor.run(script);
    ++report.executions;
    switch (result.verdict) {
      case Verdict::kDetected: ++report.detected; break;
      case Verdict::kMissed: ++report.missed; break;
      case Verdict::kFalsePositive: ++report.false_positive; break;
      case Verdict::kTrueNegative: ++report.true_negative; break;
    }
    if (result.detectable_manifested) {
      ++report.detectable_manifested;
      if (result.verdict == Verdict::kDetected) ++report.detected_detectable;
    }

    const std::string shape = shape_fingerprint(result.trace);
    const std::string key = coverage_key(script, result, config_.latency_bucket);
    const bool new_cell = report.coverage.find(key) == report.coverage.end();
    CoverageCell& cell = report.coverage[key];
    if (new_cell) cell.first_seen = index;
    ++cell.hits;
    const bool new_shape = shapes.insert(shape).second;

    const bool novel = new_shape || new_cell;
    if (novel || force_admit) {
      CorpusEntry entry;
      entry.script = script;
      entry.parent = parent;
      entry.op = op;
      entry.verdict = result.verdict;
      entry.shape_fp = shape;
      entry.trace_fp = result.trace.fingerprint();
      entry.cov_key = key;
      entry.found_at = index;
      report.corpus.push_back(std::move(entry));
    }

    // Novel misses with a manifested fault are the findings: a detector
    // hole reached by the mutation walk. Minimize and keep them.
    if (novel && result.verdict == Verdict::kMissed && result.fault_manifested &&
        report.findings.size() < config_.max_findings) {
      std::size_t shrink_runs = 0;
      ScenarioScript minimized = minimize_scenario(executor, script, config_.minimize_budget,
                                                   config_.draw.cadence, &shrink_runs);
      report.minimize_executions += shrink_runs;
      Finding finding;
      finding.original = script.name();
      finding.cov_key = key;
      finding.found_at = index;
      finding.shrink_runs = shrink_runs;
      finding.commands_before = script.sorted_commands().size();
      finding.commands_after = minimized.sorted_commands().size();
      finding.faults_before = script.fault_plan().size();
      finding.faults_after = minimized.fault_plan().size();
      finding.script = std::move(minimized);
      report.findings.push_back(std::move(finding));
    }
  };

  // Seed phase: the uniform campaign draw, every scenario admitted so
  // the mutation walk starts from the E16 envelope.
  for (std::size_t i = 0; i < config_.seed_scenarios; ++i) {
    runtime::Rng rng = master.fork();
    const ScenarioScript script = draw_scenario(rng, i, config_.draw);
    consider(script, i, "", "draw", /*force_admit=*/true);
  }

  // Mutation phase.
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    runtime::Rng rng = master.fork();
    const std::int64_t last = static_cast<std::int64_t>(report.corpus.size()) - 1;
    const CorpusEntry& parent = report.corpus[static_cast<std::size_t>(rng.uniform_int(0, last))];
    const CorpusEntry& second = report.corpus[static_cast<std::size_t>(rng.uniform_int(0, last))];
    char label[32];
    std::snprintf(label, sizeof(label), "f%04zu", it);
    std::string op;
    const ScenarioScript child = mutator.mutate(rng, parent.script, second.script, label, &op);
    // parent/second references die on corpus push; copy the name first.
    const std::string parent_name = parent.script.name();
    consider(child, config_.seed_scenarios + it, parent_name, op, /*force_admit=*/false);
    report.corpus_growth.push_back(report.corpus.size());
  }

  return report;
}

// --------------------------------------------------------------- FuzzReport

std::string FuzzReport::to_json() const {
  std::string out = "{\n";
  out += "  \"fuzz\": {\n";
  out += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  out += "    \"seed_scenarios\": " + std::to_string(config.seed_scenarios) + ",\n";
  out += "    \"iterations\": " + std::to_string(config.iterations) + ",\n";
  out += "    \"aspects\": " + std::to_string(config.draw.aspects) + ",\n";
  out += "    \"backend\": \"" + backend_label(config.executor) + "\",\n";
  out += "    \"latency_bucket_us\": " + std::to_string(config.latency_bucket) + ",\n";
  out += "    \"minimize_budget\": " + std::to_string(config.minimize_budget) + "\n";
  out += "  },\n";

  out += "  \"totals\": {\n";
  out += "    \"executions\": " + std::to_string(executions) + ",\n";
  out += "    \"minimize_executions\": " + std::to_string(minimize_executions) + ",\n";
  out += "    \"corpus\": " + std::to_string(corpus.size()) + ",\n";
  out += "    \"coverage_cells\": " + std::to_string(coverage.size()) + ",\n";
  out += "    \"findings\": " + std::to_string(findings.size()) + ",\n";
  out += "    \"detected\": " + std::to_string(detected) + ",\n";
  out += "    \"missed\": " + std::to_string(missed) + ",\n";
  out += "    \"false_positive\": " + std::to_string(false_positive) + ",\n";
  out += "    \"true_negative\": " + std::to_string(true_negative) + ",\n";
  out += "    \"detection_floor\": " + fmt_rate(detection_floor()) + "\n";
  out += "  },\n";

  out += "  \"coverage\": {";
  bool first = true;
  for (const auto& [key, cell] : coverage) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + key + "\": {\"hits\": " + std::to_string(cell.hits) +
           ", \"first_seen\": " + std::to_string(cell.first_seen) + "}";
  }
  out += "\n  },\n";

  out += "  \"growth\": [";
  first = true;
  for (const std::size_t n : corpus_growth) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(n);
  }
  out += "],\n";

  out += "  \"corpus\": [";
  first = true;
  for (const auto& e : corpus) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + e.script.name() + "\"";
    out += ", \"parent\": \"" + e.parent + "\"";
    out += ", \"op\": \"" + e.op + "\"";
    out += ", \"verdict\": \"" + std::string(to_string(e.verdict)) + "\"";
    out += ", \"shape_fp\": \"" + e.shape_fp + "\"";
    out += ", \"trace_fp\": \"" + e.trace_fp + "\"";
    out += ", \"cov_key\": \"" + e.cov_key + "\"";
    out += ", \"found_at\": " + std::to_string(e.found_at) + "}";
  }
  out += "\n  ],\n";

  out += "  \"findings\": [";
  first = true;
  for (const auto& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"original\": \"" + f.original + "\"";
    out += ", \"cov_key\": \"" + f.cov_key + "\"";
    out += ", \"found_at\": " + std::to_string(f.found_at);
    out += ", \"shrink_runs\": " + std::to_string(f.shrink_runs);
    out += ", \"commands\": [" + std::to_string(f.commands_before) + ", " +
           std::to_string(f.commands_after) + "]";
    out += ", \"faults\": [" + std::to_string(f.faults_before) + ", " +
           std::to_string(f.faults_after) + "]";
    out += ", \"script\": " + script_to_json(f.script) + "}";
  }
  out += "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace trader::testkit
