// ScenarioScript: a programmatic mini-DSL composing user-input
// sequences with fault plans.
//
// A scenario drives N scripted "counter" aspects — the minimal SUO
// whose spec model expects one increment per command — through a timed
// command sequence while a FaultInjector plan perturbs the chosen
// target aspect. Tests, campaigns and the campaign_demo example all
// build scenarios through this one builder, so "the same scenario" is
// a value that can be replayed on any backend (a single
// AwarenessMonitor fleet or a ShardedFleet at any shard count).
//
// Command times must sit on the executor's epoch grid: both backends
// deliver externally published events at epoch boundaries, and grid
// alignment is what makes their golden traces byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault.hpp"
#include "runtime/rng.hpp"
#include "runtime/sim_time.hpp"

namespace trader::testkit {

/// One scripted user command: "increment aspect k at time t".
struct ScriptCommand {
  runtime::SimTime at = 0;
  std::size_t aspect = 0;
};

/// Canonical name of scripted aspect `k` ("aspect<k>") — also the fault
/// target namespace the injector plan uses.
std::string aspect_name(std::size_t k);

class ScenarioScript {
 public:
  ScenarioScript& name(std::string n);
  /// Number of counter aspects (monitors) in play. Default 1.
  ScenarioScript& aspects(std::size_t count);
  /// Virtual end time of the scenario. Default 500 ms.
  ScenarioScript& horizon(runtime::SimTime end);

  /// One command on one aspect at an absolute time.
  ScenarioScript& command(runtime::SimTime at, std::size_t aspect);
  /// Command cadence on every aspect: at from, from+period, ... <= to.
  ScenarioScript& every(runtime::SimDuration period, runtime::SimTime from, runtime::SimTime to);

  /// Add a fault to the plan. `spec.target` should be aspect_name(k).
  ScenarioScript& inject(faults::FaultSpec spec);
  /// Convenience: fault of `kind` on aspect `k`.
  ScenarioScript& inject(faults::FaultKind kind, std::size_t target_aspect,
                         runtime::SimTime activate_at, runtime::SimDuration duration,
                         double intensity = 1.0);

  /// Replace the whole command list / fault plan — the mutation hooks
  /// the fuzz driver uses (testkit/fuzz.hpp) to splice and shrink
  /// scripts without re-deriving them from a builder chain.
  ScenarioScript& commands(std::vector<ScriptCommand> cmds);
  ScenarioScript& faults(std::vector<faults::FaultSpec> plan);

  /// Kill-and-restart window carried by the scenario itself: the SUO is
  /// unreachable in [down, up). Honored by ScenarioExecutor on every
  /// backend (virtual link on the in-process fleets, real link drop on
  /// the IPC/hub ones) and overrides the executor-level window.
  /// down < 0 clears the window.
  ScenarioScript& outage(runtime::SimTime down, runtime::SimTime up);

  const std::string& name() const { return name_; }
  std::size_t aspect_count() const { return aspects_; }
  runtime::SimTime horizon() const { return horizon_; }
  const std::vector<faults::FaultSpec>& fault_plan() const { return faults_; }
  runtime::SimTime suo_down() const { return suo_down_; }
  runtime::SimTime suo_up() const { return suo_up_; }
  bool has_outage() const { return suo_down_ >= 0 && suo_up_ > suo_down_; }

  /// Commands sorted by (time, aspect) — the deterministic replay order.
  std::vector<ScriptCommand> sorted_commands() const;

 private:
  std::string name_ = "scenario";
  std::size_t aspects_ = 1;
  runtime::SimTime horizon_ = runtime::msec(500);
  std::vector<ScriptCommand> commands_;
  std::vector<faults::FaultSpec> faults_;
  runtime::SimTime suo_down_ = -1;
  runtime::SimTime suo_up_ = -1;
};

/// Parameters for drawing random scenarios (CampaignRunner's generator).
struct ScenarioDraw {
  std::size_t aspects = 4;
  runtime::SimTime horizon = runtime::msec(600);
  /// Command cadence; must be a multiple of the executor epoch.
  runtime::SimDuration cadence = runtime::msec(20);
  /// Fault kinds to draw from (empty => campaign_default_kinds()).
  std::vector<faults::FaultKind> kinds;
  /// Fraction of scenarios left fault-free (true-negative probes).
  double clean_fraction = 0.1;
};

/// Fault kinds the scripted counter SUO turns into observable
/// deviations — the kinds a comparator-based monitor can detect.
bool campaign_detectable(faults::FaultKind kind);

/// Default campaign mix: every detectable kind plus the two kinds whose
/// manifestation is invisible to a counter comparator (task-overrun,
/// bad-signal), which exercise the "missed" verdict arm. Deliberately
/// excludes kResourceEater: the E16 uniform draw is the fixed baseline
/// the coverage-guided fuzzer (testkit/fuzz.hpp) is measured against.
std::vector<faults::FaultKind> campaign_default_kinds();

/// Draw scenario `index` of a campaign deterministically from `rng`.
/// Fault activation times land on the command cadence so a planned
/// fault always overlaps actual manifestation points.
ScenarioScript draw_scenario(runtime::Rng& rng, std::size_t index, const ScenarioDraw& draw);

}  // namespace trader::testkit
