#include "testkit/diag_campaign.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "diagnosis/component_ranker.hpp"
#include "fleetdiag/reporter.hpp"
#include "observation/coverage.hpp"

namespace trader::testkit {

namespace {

// ------------------------------------------------------- minimal JSON
// Just enough of a recursive-descent parser for the FUZZ_corpus.json
// grammar (objects, arrays, strings without escapes beyond \" and \\,
// numbers, true/false/null). Not a general-purpose JSON library.

struct JsonValue {
  enum Kind : std::uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* find(const std::string& key) const {
    if (kind != kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    ok_ = true;
    pos_ = 0;
    out = value();
    skip_ws();
    return ok_ && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    ok_ = false;
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    if (!ok_ || pos_ >= text_.size()) {
      ok_ = false;
      return v;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = JsonValue::kString;
      v.str = string();
      return v;
    }
    if (c == 't') {
      if (literal("true")) {
        v.kind = JsonValue::kBool;
        v.boolean = true;
      }
      return v;
    }
    if (c == 'f') {
      if (literal("false")) v.kind = JsonValue::kBool;
      return v;
    }
    if (c == 'n') {
      literal("null");
      return v;
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    consume('{');
    if (consume('}')) return v;
    do {
      skip_ws();
      std::string key = string();
      if (!ok_ || !consume(':')) {
        ok_ = false;
        return v;
      }
      v.object.emplace_back(std::move(key), value());
    } while (ok_ && consume(','));
    if (!consume('}')) ok_ = false;
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    consume('[');
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (ok_ && consume(','));
    if (!consume(']')) ok_ = false;
    return v;
  }

  std::string string() {
    std::string out;
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      ok_ = false;
      return out;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    if (pos_ >= text_.size()) {
      ok_ = false;
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue number() {
    JsonValue v;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return v;
    }
    v.kind = JsonValue::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool kind_from_string(const std::string& name, faults::FaultKind& out) {
  static constexpr faults::FaultKind kAll[] = {
      faults::FaultKind::kMessageLoss,    faults::FaultKind::kMessageCorruption,
      faults::FaultKind::kStuckComponent, faults::FaultKind::kModeDesync,
      faults::FaultKind::kTaskOverrun,    faults::FaultKind::kDeadlock,
      faults::FaultKind::kBadSignal,      faults::FaultKind::kCodingDeviation,
      faults::FaultKind::kCrash,          faults::FaultKind::kMemoryCorruption,
      faults::FaultKind::kResourceEater,
  };
  for (const faults::FaultKind k : kAll) {
    if (name == faults::to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// Rebuild a ScenarioScript from one parsed "script" object. Returns
/// false for structurally incomplete entries.
bool script_from_value(const JsonValue& v, ScenarioScript& out) {
  const JsonValue* name = v.find("name");
  const JsonValue* aspects = v.find("aspects");
  const JsonValue* horizon = v.find("horizon_us");
  const JsonValue* commands = v.find("commands");
  const JsonValue* faults = v.find("faults");
  if (name == nullptr || aspects == nullptr || horizon == nullptr || commands == nullptr ||
      faults == nullptr || commands->kind != JsonValue::kArray ||
      faults->kind != JsonValue::kArray) {
    return false;
  }
  out = ScenarioScript{};
  out.name(name->str)
      .aspects(static_cast<std::size_t>(aspects->number))
      .horizon(static_cast<runtime::SimTime>(horizon->number));
  const JsonValue* outage = v.find("outage_us");
  if (outage != nullptr && outage->kind == JsonValue::kArray && outage->array.size() == 2) {
    out.outage(static_cast<runtime::SimTime>(outage->array[0].number),
               static_cast<runtime::SimTime>(outage->array[1].number));
  }
  std::vector<ScriptCommand> cmds;
  for (const JsonValue& c : commands->array) {
    if (c.kind != JsonValue::kArray || c.array.size() != 2) return false;
    cmds.push_back({static_cast<runtime::SimTime>(c.array[0].number),
                    static_cast<std::size_t>(c.array[1].number)});
  }
  out.commands(std::move(cmds));
  std::vector<faults::FaultSpec> plan;
  for (const JsonValue& f : faults->array) {
    const JsonValue* kind = f.find("kind");
    const JsonValue* target = f.find("target");
    const JsonValue* at = f.find("at_us");
    const JsonValue* duration = f.find("duration_us");
    const JsonValue* intensity = f.find("intensity");
    if (kind == nullptr || target == nullptr || at == nullptr || duration == nullptr) {
      return false;
    }
    faults::FaultSpec spec;
    if (!kind_from_string(kind->str, spec.kind)) return false;
    spec.target = target->str;
    spec.activate_at = static_cast<runtime::SimTime>(at->number);
    spec.duration = static_cast<runtime::SimDuration>(duration->number);
    spec.intensity = intensity != nullptr ? intensity->number : 1.0;
    plan.push_back(std::move(spec));
  }
  out.faults(std::move(plan));
  return true;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::vector<LabeledScenario> findings_from_json(const std::string& json_text) {
  std::vector<LabeledScenario> out;
  JsonValue root;
  if (!JsonParser(json_text).parse(root)) return out;
  const JsonValue* findings = root.find("findings");
  if (findings == nullptr || findings->kind != JsonValue::kArray) return out;
  for (const JsonValue& f : findings->array) {
    const JsonValue* script = f.find("script");
    if (script == nullptr) continue;
    LabeledScenario labeled;
    if (!script_from_value(*script, labeled.script)) continue;
    const JsonValue* original = f.find("original");
    const JsonValue* cov_key = f.find("cov_key");
    if (original != nullptr) labeled.original = original->str;
    if (cov_key != nullptr) labeled.cov_key = cov_key->str;
    out.push_back(std::move(labeled));
  }
  return out;
}

std::vector<LabeledScenario> load_findings(const std::string& path) {
  if (path.empty()) return {};
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return findings_from_json(buf.str());
}

DiagnosisCampaign::DiagnosisCampaign(DiagCampaignConfig config) : config_(std::move(config)) {
  if (config_.top_k == 0) config_.top_k = 1;
  if (config_.flush_steps == 0) config_.flush_steps = 1;
}

DiagnosisScore DiagnosisCampaign::run_scenario(const ScenarioScript& script,
                                               fleetdiag::FleetAggregator* agg,
                                               std::uint64_t* frames_out) {
  DiagnosisScore score;
  score.scenario = script.name();

  // Ground truth: the first planned fault whose target is a scripted
  // aspect. Its aspect index is the feature the fault block is seeded
  // into — exactly what component-level diagnosis must recover.
  const faults::FaultSpec* primary = nullptr;
  std::size_t target_feature = SIZE_MAX;
  for (const faults::FaultSpec& spec : script.fault_plan()) {
    for (std::size_t k = 0; k < script.aspect_count(); ++k) {
      if (spec.target == aspect_name(k)) {
        primary = &spec;
        target_feature = k;
        break;
      }
    }
    if (primary != nullptr) break;
  }

  diagnosis::SyntheticProgramConfig prog_cfg = config_.program;
  prog_cfg.feature_count = std::max<std::size_t>(1, script.aspect_count());
  prog_cfg.seed ^= std::hash<std::string>{}(script.name());
  diagnosis::SyntheticProgram program(prog_cfg);
  if (primary != nullptr) {
    program.set_fault_in_feature(target_feature);
    score.kind = faults::to_string(primary->kind);
    score.target = primary->target;
    score.fault_block = program.fault_block();
  }

  fleetdiag::FleetAggregator local(
      fleetdiag::AggregatorConfig{config_.top_k, config_.coefficient, 1});
  if (agg == nullptr) agg = &local;
  const std::string& slot = script.name();

  // The full online chain: instrumented step -> sealed spectrum ->
  // kSpectrum frames -> aggregator ingest, exactly what a publisher and
  // the hub do over the socket.
  fleetdiag::ReporterConfig rep_cfg;
  rep_cfg.block_count = static_cast<std::uint32_t>(program.block_count());
  rep_cfg.flush_steps = config_.flush_steps;
  fleetdiag::SpectrumReporter reporter(rep_cfg);
  observation::BlockCoverageRecorder coverage(program.block_count());
  std::uint32_t seq = 0;
  std::uint64_t frames = 0;
  const auto ship = [&](runtime::SimTime now) {
    for (const ipc::Frame& f : reporter.flush(seq, now)) {
      agg->ingest(slot, f);
      ++frames;
    }
  };

  for (const ScriptCommand& cmd : script.sorted_commands()) {
    const std::size_t feature = cmd.aspect % program.feature_count();
    const bool fault_fired = program.run_step(feature, coverage);
    // The step errs only while the planned fault is live: the injected
    // bug exists in the code the whole run, but only manifests inside
    // its activation window (the intermittent-fault model of §4.4).
    const bool err = primary != nullptr && fault_fired && primary->active_at(cmd.at);
    reporter.end_step_from(coverage, err);
    coverage.clear();
    ++score.steps;
    if (err) ++score.error_steps;
    if (reporter.flush_due()) ship(cmd.at);
  }
  ship(script.horizon());
  agg->refresh();
  if (frames_out != nullptr) *frames_out += frames;

  score.scored = primary != nullptr && score.error_steps > 0;
  if (!score.scored) return score;

  const diagnosis::DiagnosisReport report = agg->report(slot);
  score.block_rank = report.rank_of(score.fault_block);
  score.wasted_effort = report.wasted_effort(score.fault_block);
  // acc@k with optimistic tie-breaking: minimized scenarios often carry a
  // single error step, which ties every block of that step at the same
  // similarity; the live cached list cuts such ties by block id, so
  // membership there would measure id order, not localization.
  score.in_top_k = score.block_rank <= config_.top_k;
  const auto components = agg->component_ranking(slot, [&](std::size_t block) {
    const std::size_t f = program.feature_of(block);
    return f == SIZE_MAX ? std::string("infra") : aspect_name(f);
  });
  score.component_rank = diagnosis::ComponentRanker::rank_of(components, score.target);
  return score;
}

DiagCampaignReport DiagnosisCampaign::run() {
  std::vector<LabeledScenario> labeled;
  runtime::Rng rng(config_.seed);
  labeled.reserve(config_.scenarios);
  for (std::size_t i = 0; i < config_.scenarios; ++i) {
    labeled.push_back({draw_scenario(rng, i, config_.draw), "", ""});
  }
  return run(labeled);
}

DiagCampaignReport DiagnosisCampaign::run(const std::vector<LabeledScenario>& labeled) {
  DiagCampaignReport report;
  fleetdiag::FleetAggregator shared(
      fleetdiag::AggregatorConfig{config_.top_k, config_.coefficient, 1});
  for (const LabeledScenario& entry : labeled) {
    DiagnosisScore score = run_scenario(entry.script, &shared, &report.spectrum_frames);
    ++report.scenarios;
    DiagKindStats& stats = report.by_kind[score.kind];
    ++stats.scenarios;
    if (score.kind == "none") {
      ++report.clean;
    } else if (!score.scored) {
      ++report.silent;
    }
    if (score.scored) {
      ++report.scored;
      ++stats.scored;
      stats.mean_block_rank += static_cast<double>(score.block_rank);
      stats.mean_component_rank += static_cast<double>(score.component_rank);
      stats.mean_wasted_effort += score.wasted_effort;
      if (score.in_top_k) {
        ++report.top_k_hits;
        ++stats.top_k_hits;
      }
    }
    report.scores.push_back(std::move(score));
  }
  for (auto& [kind, stats] : report.by_kind) {
    if (stats.scored == 0) continue;
    const double n = static_cast<double>(stats.scored);
    stats.mean_block_rank /= n;
    stats.mean_component_rank /= n;
    stats.mean_wasted_effort /= n;
  }
  return report;
}

std::string DiagCampaignReport::to_json() const {
  std::string out = "{";
  out += "\"scenarios\": " + std::to_string(scenarios);
  out += ", \"scored\": " + std::to_string(scored);
  out += ", \"silent\": " + std::to_string(silent);
  out += ", \"clean\": " + std::to_string(clean);
  out += ", \"top_k_hits\": " + std::to_string(top_k_hits);
  out += ", \"top_k_rate\": " + fmt3(top_k_rate());
  out += ", \"spectrum_frames\": " + std::to_string(spectrum_frames);
  out += ", \"by_kind\": {";
  bool first = true;
  for (const auto& [kind, stats] : by_kind) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + kind + "\": {";
    out += "\"scenarios\": " + std::to_string(stats.scenarios);
    out += ", \"scored\": " + std::to_string(stats.scored);
    out += ", \"top_k_hits\": " + std::to_string(stats.top_k_hits);
    out += ", \"mean_block_rank\": " + fmt3(stats.mean_block_rank);
    out += ", \"mean_component_rank\": " + fmt3(stats.mean_component_rank);
    out += ", \"mean_wasted_effort\": " + fmt3(stats.mean_wasted_effort) + "}";
  }
  out += "}, \"scores\": [";
  first = true;
  for (const DiagnosisScore& s : scores) {
    if (!first) out += ", ";
    first = false;
    out += "{\"scenario\": \"" + s.scenario + "\"";
    out += ", \"kind\": \"" + s.kind + "\"";
    out += ", \"scored\": " + std::string(s.scored ? "true" : "false");
    out += ", \"steps\": " + std::to_string(s.steps);
    out += ", \"error_steps\": " + std::to_string(s.error_steps);
    if (s.scored) {
      out += ", \"block_rank\": " + std::to_string(s.block_rank);
      out += ", \"component_rank\": " + std::to_string(s.component_rank);
      out += ", \"wasted_effort\": " + fmt3(s.wasted_effort);
      out += ", \"in_top_k\": " + std::string(s.in_top_k ? "true" : "false");
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace trader::testkit
