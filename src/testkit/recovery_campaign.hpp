// Recovery campaign: score the CLOSED loop — observe -> diagnose -> act.
//
// The diagnosis campaign (diag_campaign.hpp) stops at "was the faulty
// block found"; this one keeps going to the paper's §5 end state: the
// hub's RecoveryOrchestrator consumes the converged ranking and
// actuates the escalation ladder on the SUO over real AF_UNIX sockets
// (kRecover/kRecoverAck, protocol v3), and the campaign measures what
// operators actually care about:
//
//   MTTR      — virtual time from the first manifested error to the
//               repair that stopped the errors. The campaign models
//               faults as PERSISTENT from activation until repaired
//               (a deadlocked or crashed component does not heal
//               itself), so the supervision-only baseline is
//               right-censored at the horizon and any actuated repair
//               is a measurable improvement.
//   precision — did the restart-class action land on the *faulty*
//               component (injector ground truth), or did the fleet
//               restart an innocent one?
//
// The campaign itself plays the SUO side of the socket in lockstep
// (ship spectra -> pump the hub -> advance virtual time -> execute the
// commands the orchestrator issued -> ack -> pump), so the whole run —
// action sequence, ladder rungs, repair times, report JSON — is
// byte-reproducible per seed and identical at any shard count.
// Scenarios come from uniform draws and from the fuzzer's minimized
// FUZZ_corpus.json findings (the scenarios detection found hardest are
// exactly where targeted recovery earns its keep).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "diagnosis/synthetic_program.hpp"
#include "hub/recovery.hpp"
#include "journal/replay.hpp"
#include "testkit/diag_campaign.hpp"
#include "testkit/scenario.hpp"

namespace trader::testkit {

struct RecoveryCampaignConfig {
  std::uint64_t seed = 77;
  std::size_t scenarios = 10;  ///< Uniform draws for run().
  /// Longer horizon than the detection draw: the loop needs virtual
  /// time to converge, climb the ladder and prove the repair stuck.
  ScenarioDraw draw{4, runtime::msec(2000), runtime::msec(20), {}, 0.1};
  /// Program shape per scenario (feature_count overridden with the
  /// script's aspect count, seed decorrelated per scenario name).
  diagnosis::SyntheticProgramConfig program;
  std::size_t flush_steps = 2;  ///< Spectrum reports every N steps.
  std::size_t top_k = 10;
  std::size_t shards = 1;
  /// false = supervision-only baseline: identical run, orchestrator
  /// disabled, nothing repairs (the MTTR yardstick).
  bool orchestrate = true;
  /// Campaign-paced orchestration policy: short cooldowns and one
  /// failure per ladder rung, so the §5 ladder can climb within the
  /// scenario horizon (the fleet defaults in hub::RecoveryConfig are
  /// tuned for hour-long deployments, not 2 s scenarios). `enabled` is
  /// overridden by `orchestrate`.
  static hub::RecoveryConfig default_recovery();
  hub::RecoveryConfig recovery = default_recovery();
  /// Wall-clock budget per pump loop (lockstep progress guard).
  int pump_budget_ms = 5000;

  /// Durability drill. When `journal.enabled`, every scenario's hub
  /// journals to `journal_root`/<scenario-name> (created and purged at
  /// scenario start), and when `crash_at_command` lands inside the
  /// script the campaign SIGKILLs the hub at that command boundary
  /// (commands drained, clock frozen), restarts a fresh hub on the
  /// same journal directory, reconnects and finishes the scenario.
  /// A crash-restart run must score byte-identically to an
  /// uninterrupted one — the surface journal_test pins.
  journal::JournalConfig journal;
  std::string journal_root;
  std::size_t crash_at_command = SIZE_MAX;
};

/// Ground-truth scoring of one closed-loop scenario.
struct RecoveryScore {
  std::string scenario;
  std::string kind = "none";
  std::string target;               ///< aspect_name of the faulty feature.
  std::size_t fault_block = 0;
  std::size_t steps = 0;
  std::size_t error_steps = 0;
  bool scored = false;              ///< Fault manifested at least once.
  runtime::SimTime first_error_at = 0;
  bool repaired = false;
  runtime::SimTime repaired_at = 0;
  /// first error -> repair; right-censored at the horizon when the
  /// fault was never repaired (always, in the baseline).
  runtime::SimDuration downtime = 0;
  bool censored = false;
  std::size_t commands = 0;         ///< kRecover frames executed SUO-side.
  std::size_t restarts = 0;         ///< Restart-class commands among them.
  /// First restart-class action resolved to the faulty feature.
  bool precise = false;
  bool quarantined = false;
  std::uint64_t duplicates = 0;     ///< Cached-ack replays (hub retries).
  std::vector<std::string> ladder;  ///< Executed action names, in order.
};

struct RecoveryKindStats {
  std::size_t scenarios = 0;
  std::size_t scored = 0;
  std::size_t repaired = 0;
  std::size_t precise = 0;
  double mean_downtime_ms = 0.0;  ///< Over scored scenarios.
};

struct RecoveryCampaignReport {
  std::vector<RecoveryScore> scores;
  std::map<std::string, RecoveryKindStats> by_kind;
  std::size_t scenarios = 0;
  std::size_t scored = 0;
  std::size_t repaired = 0;
  std::size_t censored = 0;
  std::size_t with_restart = 0;   ///< Scored scenarios that saw a restart.
  std::size_t precise = 0;
  double mean_downtime_ms = 0.0;  ///< Over scored scenarios.
  std::uint64_t commands = 0;     ///< Total executed kRecover frames.

  /// Correct-component rate over scenarios that restarted anything.
  double precision() const {
    return with_restart == 0
               ? 0.0
               : static_cast<double>(precise) / static_cast<double>(with_restart);
  }

  /// Canonical JSON (stable key order) — the byte-reproducibility and
  /// shard-differential surface, and what BENCH_recovery.json embeds.
  std::string to_json() const;
};

/// Pad a script's command stream with round-robin aspect activations at
/// `cadence` up to a new `until` horizon. Minimized fuzz findings carry
/// exactly the commands that trip detection — often just one — which
/// gives a recovery loop nothing to observe; under the persistent-fault
/// model the fault is still live after the original horizon, so the
/// padded steps are where diagnosis converges and the repair lands (and
/// where the repair then *proves* itself by staying quiet).
ScenarioScript extend_for_recovery(const ScenarioScript& script, runtime::SimTime until,
                                   runtime::SimDuration cadence);

class RecoveryCampaign {
 public:
  explicit RecoveryCampaign(RecoveryCampaignConfig config = {});

  /// Run one script through the closed loop over a real AF_UNIX socket
  /// (its own hub instance, one slot named after the script).
  RecoveryScore run_scenario(const ScenarioScript& script);

  /// Score `config.scenarios` uniform draws.
  RecoveryCampaignReport run();

  /// Score an explicit labeled set (e.g. load_findings() of the
  /// shipped fuzz corpus).
  RecoveryCampaignReport run(const std::vector<LabeledScenario>& labeled);

  const RecoveryCampaignConfig& config() const { return config_; }

 private:
  RecoveryCampaignConfig config_;
};

}  // namespace trader::testkit
