// Resource utilization monitor (processors, buses, buffers — §4.1).
//
// Keeps time-weighted utilization per named resource plus a sliding
// window of samples, so detectors can ask "what was the CPU load over
// the last 100 ms" the way the Trader memory-arbiter / bus monitors do.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::observation {

/// Sliding-window, time-weighted utilization tracker.
class ResourceMonitor {
 public:
  explicit ResourceMonitor(runtime::SimDuration window = runtime::msec(100))
      : window_(window) {}

  /// Record that `resource` utilization changed to `level` (0..1+) at `now`.
  void sample(const std::string& resource, double level, runtime::SimTime now);

  /// Time-weighted mean utilization over the window ending at `now`.
  double utilization(const std::string& resource, runtime::SimTime now) const;

  /// Peak sampled level within the window ending at `now`.
  double peak(const std::string& resource, runtime::SimTime now) const;

  /// Latest sampled level (0 when never sampled).
  double current(const std::string& resource) const;

  /// All resources seen.
  std::vector<std::string> resources() const;

  runtime::SimDuration window() const { return window_; }

 private:
  struct Sample {
    runtime::SimTime at;
    double level;
  };

  void prune(std::deque<Sample>& samples, runtime::SimTime now) const;

  runtime::SimDuration window_;
  mutable std::map<std::string, std::deque<Sample>> series_;
};

}  // namespace trader::observation
