#include "observation/coverage.hpp"

#include <algorithm>

namespace trader::observation {

std::size_t BlockCoverageRecorder::blocks_touched() const {
  std::vector<bool> any(block_count_, false);
  for (const auto& step : steps_) {
    for (std::size_t b = 0; b < block_count_; ++b) {
      if (step[b]) any[b] = true;
    }
  }
  return static_cast<std::size_t>(std::count(any.begin(), any.end(), true));
}

void BlockCoverageRecorder::clear() {
  std::fill(current_.begin(), current_.end(), false);
  current_touched_.clear();
  hits_in_step_ = 0;
  steps_.clear();
  hits_per_step_.clear();
  raw_hits_ = 0;
}

}  // namespace trader::observation
