// Block-coverage recorder — the instrumentation backend for §4.4.
//
// The diagnosis case study instruments C code "to record which blocks
// are executed", then groups hits per scenario step (between two key
// presses) into a *spectrum* per block. BlockCoverageRecorder implements
// exactly that: hit(block) marks a block in the current step; end_step()
// closes the step. The diagnosis module consumes the resulting matrix.
#pragma once

#include <cstdint>
#include <vector>

namespace trader::observation {

/// Records block hits grouped into scenario steps.
///
/// Storage is one bit vector per step (column-major in SFL terms: the
/// spectrum of block b is the sequence step_hits_[s][b] over steps s).
class BlockCoverageRecorder {
 public:
  explicit BlockCoverageRecorder(std::size_t block_count)
      : block_count_(block_count), current_(block_count, false) {}

  std::size_t block_count() const { return block_count_; }

  /// Mark a block as executed in the current step.
  void hit(std::size_t block) {
    if (block < block_count_ && !current_[block]) {
      current_[block] = true;
      current_touched_.push_back(block);
      ++hits_in_step_;
    }
    ++raw_hits_;
  }

  /// Close the current step and start a new one.
  void end_step() {
    steps_.push_back(current_);
    hits_per_step_.push_back(hits_in_step_);
    std::fill(current_.begin(), current_.end(), false);
    current_touched_.clear();
    hits_in_step_ = 0;
  }

  /// Distinct blocks hit in the still-open step, in first-hit order —
  /// lets a streaming consumer (fleetdiag::SpectrumReporter) read the
  /// step in O(hits) instead of scanning all block_count() bits.
  const std::vector<std::size_t>& current_touched() const { return current_touched_; }

  /// Number of completed steps.
  std::size_t step_count() const { return steps_.size(); }

  /// Was `block` executed during completed step `step`?
  bool executed(std::size_t step, std::size_t block) const {
    return steps_.at(step)[block];
  }

  /// Distinct blocks hit in a completed step.
  std::size_t blocks_in_step(std::size_t step) const { return hits_per_step_.at(step); }

  /// Distinct blocks hit in at least one completed step.
  std::size_t blocks_touched() const;

  /// Raw (non-deduplicated) hit count, for instrumentation overhead accounting.
  std::uint64_t raw_hits() const { return raw_hits_; }

  /// The full hit matrix, steps × blocks.
  const std::vector<std::vector<bool>>& matrix() const { return steps_; }

  void clear();

 private:
  std::size_t block_count_;
  std::vector<bool> current_;
  std::vector<std::size_t> current_touched_;
  std::size_t hits_in_step_ = 0;
  std::vector<std::vector<bool>> steps_;
  std::vector<std::size_t> hits_per_step_;
  std::uint64_t raw_hits_ = 0;
};

}  // namespace trader::observation
