#include "observation/resource_monitor.hpp"

#include <algorithm>

namespace trader::observation {

void ResourceMonitor::sample(const std::string& resource, double level, runtime::SimTime now) {
  auto& samples = series_[resource];
  samples.push_back(Sample{now, level});
  prune(samples, now);
}

void ResourceMonitor::prune(std::deque<Sample>& samples, runtime::SimTime now) const {
  // Keep one sample preceding the window start so time-weighting has a
  // level for the window's initial segment.
  const runtime::SimTime start = now - window_;
  while (samples.size() > 1 && samples[1].at <= start) samples.pop_front();
}

double ResourceMonitor::utilization(const std::string& resource, runtime::SimTime now) const {
  auto it = series_.find(resource);
  if (it == series_.end() || it->second.empty()) return 0.0;
  auto& samples = it->second;
  prune(samples, now);
  const runtime::SimTime start = now - window_;
  double weighted = 0.0;
  runtime::SimDuration covered = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const runtime::SimTime seg_start = std::max(samples[i].at, start);
    const runtime::SimTime seg_end = (i + 1 < samples.size()) ? samples[i + 1].at : now;
    if (seg_end <= seg_start) continue;
    weighted += samples[i].level * static_cast<double>(seg_end - seg_start);
    covered += seg_end - seg_start;
  }
  return covered > 0 ? weighted / static_cast<double>(covered) : samples.back().level;
}

double ResourceMonitor::peak(const std::string& resource, runtime::SimTime now) const {
  auto it = series_.find(resource);
  if (it == series_.end() || it->second.empty()) return 0.0;
  prune(it->second, now);
  double p = 0.0;
  for (const auto& s : it->second) p = std::max(p, s.level);
  return p;
}

double ResourceMonitor::current(const std::string& resource) const {
  auto it = series_.find(resource);
  if (it == series_.end() || it->second.empty()) return 0.0;
  return it->second.back().level;
}

std::vector<std::string> ResourceMonitor::resources() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, v] : series_) out.push_back(k);
  return out;
}

}  // namespace trader::observation
