// Value and range probes — the software side of §4.1 (Observation).
//
// The paper exploits on-chip debug/trace hardware to monitor values for
// range checking, call stacks, and memory arbiters, plus aspect-oriented
// code instrumentation. ProbeRegistry is the common attachment point: SUO
// components publish named values; observers and detectors read them or
// subscribe to updates; range probes flag out-of-range values at the
// moment of update (the "range checking" mechanism).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::observation {

/// A recorded range violation.
struct RangeViolation {
  std::string probe;
  double value = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  runtime::SimTime time = 0;
};

/// Central registry of named observable values.
class ProbeRegistry {
 public:
  using UpdateHandler =
      std::function<void(const std::string& name, const runtime::Value&, runtime::SimTime)>;

  /// Declare a numeric range for a probe; updates outside [lo, hi] are
  /// recorded as violations (and still stored).
  void set_range(const std::string& name, double lo, double hi);

  /// Update a probe value at time `now`.
  void update(const std::string& name, runtime::Value v, runtime::SimTime now);

  /// Latest value of a probe, if any.
  std::optional<runtime::Value> value(const std::string& name) const;

  /// Latest numeric value with default.
  double num(const std::string& name, double dflt = 0.0) const;

  /// Time of the last update of a probe (-1 when never updated).
  runtime::SimTime last_update(const std::string& name) const;

  /// Subscribe to all probe updates.
  void on_update(UpdateHandler h) { handlers_.push_back(std::move(h)); }

  const std::vector<RangeViolation>& violations() const { return violations_; }
  void clear_violations() { violations_.clear(); }

  /// Names of all probes seen so far.
  std::vector<std::string> names() const;

  std::uint64_t update_count() const { return updates_; }

 private:
  struct Slot {
    runtime::Value value;
    runtime::SimTime updated_at = -1;
    bool has_range = false;
    double lo = 0.0;
    double hi = 0.0;
  };

  std::map<std::string, Slot> slots_;
  std::vector<UpdateHandler> handlers_;
  std::vector<RangeViolation> violations_;
  std::uint64_t updates_ = 0;
};

}  // namespace trader::observation
