// Call-stack tracing — the on-chip trace infrastructure stand-in (§4.1).
//
// Records function entries/exits (name, parameters, result), maintains
// the live stack, and keeps per-function statistics. A RAII ScopedCall
// makes instrumentation of simulator code one line per function.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::observation {

/// One completed call record.
struct CallRecord {
  std::string function;
  std::map<std::string, runtime::Value> params;
  runtime::Value result;
  runtime::SimTime entered = 0;
  runtime::SimTime exited = 0;
  std::uint32_t depth = 0;
};

/// Per-function aggregate statistics.
struct CallStats {
  std::uint64_t calls = 0;
  runtime::SimDuration total_time = 0;
  std::uint32_t max_depth = 0;
};

class CallStackTracer {
 public:
  explicit CallStackTracer(std::size_t max_records = 16384) : max_records_(max_records) {}

  /// Enter a function at `now`.
  void enter(const std::string& function, std::map<std::string, runtime::Value> params,
             runtime::SimTime now);

  /// Exit the innermost call at `now` with a result value.
  void exit(runtime::SimTime now, runtime::Value result = std::int64_t{0});

  /// Current stack, outermost first (function names).
  std::vector<std::string> stack() const;

  std::uint32_t depth() const { return static_cast<std::uint32_t>(live_.size()); }
  std::uint32_t max_depth_seen() const { return max_depth_; }

  /// Retained completed-call records, completion order.
  const std::vector<CallRecord>& records() const { return records_; }

  const std::map<std::string, CallStats>& stats() const { return stats_; }

  /// Calls to a given function (0 if unseen).
  std::uint64_t calls_to(const std::string& function) const;

  void clear();

 private:
  struct LiveFrame {
    std::string function;
    std::map<std::string, runtime::Value> params;
    runtime::SimTime entered = 0;
  };

  std::size_t max_records_;
  std::vector<LiveFrame> live_;
  std::vector<CallRecord> records_;
  std::map<std::string, CallStats> stats_;
  std::uint32_t max_depth_ = 0;
};

/// RAII helper: traces enter on construction, exit on destruction.
class ScopedCall {
 public:
  ScopedCall(CallStackTracer& tracer, const std::string& function, runtime::SimTime now,
             std::map<std::string, runtime::Value> params = {})
      : tracer_(tracer), now_(now) {
    tracer_.enter(function, std::move(params), now);
  }
  ~ScopedCall() { tracer_.exit(now_); }

  ScopedCall(const ScopedCall&) = delete;
  ScopedCall& operator=(const ScopedCall&) = delete;

 private:
  CallStackTracer& tracer_;
  runtime::SimTime now_;
};

}  // namespace trader::observation
