#include "observation/probes.hpp"

namespace trader::observation {

void ProbeRegistry::set_range(const std::string& name, double lo, double hi) {
  auto& slot = slots_[name];
  slot.has_range = true;
  slot.lo = lo;
  slot.hi = hi;
}

void ProbeRegistry::update(const std::string& name, runtime::Value v, runtime::SimTime now) {
  ++updates_;
  auto& slot = slots_[name];
  slot.value = v;
  slot.updated_at = now;
  if (slot.has_range) {
    bool numeric = false;
    double n = 0.0;
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      numeric = true;
      n = static_cast<double>(*i);
    } else if (const auto* d = std::get_if<double>(&v)) {
      numeric = true;
      n = *d;
    }
    if (numeric && (n < slot.lo || n > slot.hi)) {
      violations_.push_back(RangeViolation{name, n, slot.lo, slot.hi, now});
    }
  }
  for (const auto& h : handlers_) h(name, v, now);
}

std::optional<runtime::Value> ProbeRegistry::value(const std::string& name) const {
  auto it = slots_.find(name);
  if (it == slots_.end() || it->second.updated_at < 0) return std::nullopt;
  return it->second.value;
}

double ProbeRegistry::num(const std::string& name, double dflt) const {
  auto v = value(name);
  if (!v) return dflt;
  if (const auto* i = std::get_if<std::int64_t>(&*v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&*v)) return *d;
  if (const auto* b = std::get_if<bool>(&*v)) return *b ? 1.0 : 0.0;
  return dflt;
}

runtime::SimTime ProbeRegistry::last_update(const std::string& name) const {
  auto it = slots_.find(name);
  return it == slots_.end() ? -1 : it->second.updated_at;
}

std::vector<std::string> ProbeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [k, v] : slots_) out.push_back(k);
  return out;
}

}  // namespace trader::observation
