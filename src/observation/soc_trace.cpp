#include "observation/soc_trace.hpp"

#include <sstream>

namespace trader::observation {

void SocTraceUnit::watch(const std::string& name, CounterFn fn) {
  watches_.push_back(Watch{name, std::move(fn)});
}

void SocTraceUnit::watch_ranged(const std::string& name, CounterFn fn, double lo, double hi) {
  probes_.set_range(name, lo, hi);
  watch(name, std::move(fn));
}

void SocTraceUnit::start() {
  if (running_) return;
  running_ = true;
  handle_ = sched_.schedule_every(period_, [this] { sample(); });
}

void SocTraceUnit::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(handle_);
}

void SocTraceUnit::sample() {
  const runtime::SimTime now = sched_.now();
  ++samples_;
  std::ostringstream line;
  for (const auto& w : watches_) {
    const double v = w.fn();
    probes_.update(w.name, v, now);
    monitor_.sample(w.name, v, now);
    if (trace_decimation_ > 0 && samples_ % static_cast<std::uint64_t>(trace_decimation_) == 0) {
      line << w.name << "=" << v << " ";
    }
  }
  const std::string rendered = line.str();
  if (!rendered.empty()) {
    trace_.log(now, runtime::TraceLevel::kDebug, "soc-trace", rendered);
  }
}

}  // namespace trader::observation
