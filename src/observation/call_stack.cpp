#include "observation/call_stack.hpp"

#include <algorithm>

namespace trader::observation {

void CallStackTracer::enter(const std::string& function,
                            std::map<std::string, runtime::Value> params, runtime::SimTime now) {
  live_.push_back(LiveFrame{function, std::move(params), now});
  max_depth_ = std::max(max_depth_, static_cast<std::uint32_t>(live_.size()));
  auto& st = stats_[function];
  ++st.calls;
  st.max_depth = std::max(st.max_depth, static_cast<std::uint32_t>(live_.size()));
}

void CallStackTracer::exit(runtime::SimTime now, runtime::Value result) {
  if (live_.empty()) return;  // tolerate unbalanced instrumentation
  LiveFrame frame = std::move(live_.back());
  live_.pop_back();
  stats_[frame.function].total_time += now - frame.entered;
  if (records_.size() < max_records_) {
    records_.push_back(CallRecord{std::move(frame.function), std::move(frame.params),
                                  std::move(result), frame.entered, now,
                                  static_cast<std::uint32_t>(live_.size() + 1)});
  }
}

std::vector<std::string> CallStackTracer::stack() const {
  std::vector<std::string> out;
  out.reserve(live_.size());
  for (const auto& f : live_) out.push_back(f.function);
  return out;
}

std::uint64_t CallStackTracer::calls_to(const std::string& function) const {
  auto it = stats_.find(function);
  return it == stats_.end() ? 0 : it->second.calls;
}

void CallStackTracer::clear() {
  live_.clear();
  records_.clear();
  stats_.clear();
  max_depth_ = 0;
}

}  // namespace trader::observation
