// Scenario recording and replay.
//
// §4.4 defines a scenario as "a sequence of key presses". Diagnosis
// needs the failing scenario to be *re-executed under instrumentation*
// (coverage recording is too expensive to leave on in the field), so the
// observation layer records input events with their timing and replays
// them — against a fresh SUO instance — preserving relative timing under
// virtual time.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"

namespace trader::observation {

/// One recorded stimulus.
struct RecordedEvent {
  runtime::Event event;
  runtime::SimTime at = 0;
};

class ScenarioRecorder {
 public:
  /// Records events published on `topic` while started.
  ScenarioRecorder(runtime::Scheduler& sched, runtime::EventBus& bus, std::string topic)
      : sched_(sched), bus_(bus), topic_(std::move(topic)) {}

  ~ScenarioRecorder() { stop(); }

  void start();
  void stop();
  void clear() { events_.clear(); }

  const std::vector<RecordedEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Schedule the recorded events into `sink` on `sched`, preserving the
  /// original inter-event gaps; the first event fires `initial_delay`
  /// after the current time. Returns the virtual duration of the replay.
  runtime::SimDuration replay(runtime::Scheduler& sched,
                              std::function<void(const runtime::Event&)> sink,
                              runtime::SimDuration initial_delay = 0) const;

 private:
  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  std::string topic_;
  runtime::Subscription sub_;
  bool running_ = false;
  std::vector<RecordedEvent> events_;
};

}  // namespace trader::observation
