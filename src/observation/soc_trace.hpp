// Simulated on-chip trace unit (§4.1).
//
// "Hardware-related work in Trader currently aims at exploiting
// mechanisms already available in hardware, such as the on-chip debug
// and trace infrastructure, to monitor values for range checking, call
// stacks … and memory arbiters." SocTraceUnit periodically samples a set
// of counter callbacks into the resource monitor, the probe registry
// (where range checks fire) and — at a configurable decimation — the
// trace log, mimicking a hardware trace port draining to a buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "observation/probes.hpp"
#include "observation/resource_monitor.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace_log.hpp"

namespace trader::observation {

class SocTraceUnit {
 public:
  using CounterFn = std::function<double()>;

  SocTraceUnit(runtime::Scheduler& sched, ProbeRegistry& probes, ResourceMonitor& monitor,
               runtime::TraceLog& trace, runtime::SimDuration period = runtime::msec(20),
               int trace_decimation = 10)
      : sched_(sched),
        probes_(probes),
        monitor_(monitor),
        trace_(trace),
        period_(period),
        trace_decimation_(trace_decimation) {}

  ~SocTraceUnit() { stop(); }

  /// Watch a counter under `name`; optional [lo, hi] arms a range check.
  void watch(const std::string& name, CounterFn fn);
  void watch_ranged(const std::string& name, CounterFn fn, double lo, double hi);

  void start();
  void stop();

  std::uint64_t samples() const { return samples_; }

 private:
  void sample();

  struct Watch {
    std::string name;
    CounterFn fn;
  };

  runtime::Scheduler& sched_;
  ProbeRegistry& probes_;
  ResourceMonitor& monitor_;
  runtime::TraceLog& trace_;
  runtime::SimDuration period_;
  int trace_decimation_;
  std::vector<Watch> watches_;
  runtime::TaskHandle handle_;
  bool running_ = false;
  std::uint64_t samples_ = 0;
};

}  // namespace trader::observation
