#include "observation/aspect.hpp"

namespace trader::observation {

void AspectRegistry::before(const std::string& join_point, BeforeAdvice advice) {
  before_[join_point].push_back(std::move(advice));
}

void AspectRegistry::after(const std::string& join_point, AfterAdvice advice) {
  after_[join_point].push_back(std::move(advice));
}

runtime::Value AspectRegistry::dispatch(const std::string& join_point,
                                        std::map<std::string, runtime::Value> args,
                                        runtime::SimTime now,
                                        const std::function<runtime::Value()>& body) {
  ++counts_[join_point];
  JoinPointCall call{join_point, std::move(args), now, true};
  if (auto it = before_.find(join_point); it != before_.end()) {
    for (const auto& advice : it->second) advice(call);
  }
  runtime::Value result{std::int64_t{0}};
  if (call.proceed && body) result = body();
  if (auto it = after_.find(join_point); it != after_.end()) {
    for (const auto& advice : it->second) advice(call, result);
  }
  return result;
}

std::uint64_t AspectRegistry::dispatch_count(const std::string& join_point) const {
  auto it = counts_.find(join_point);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::string> AspectRegistry::advised_join_points() const {
  std::vector<std::string> out;
  for (const auto& [jp, v] : before_) {
    if (!v.empty()) out.push_back(jp);
  }
  for (const auto& [jp, v] : after_) {
    if (!v.empty() && before_.count(jp) == 0) out.push_back(jp);
  }
  return out;
}

}  // namespace trader::observation
