// Aspect-oriented instrumentation hooks — the AspectKoala stand-in.
//
// §4.1: software observation in Trader is "mainly done by code
// instrumentation using aspect-oriented techniques" via AspectKoala on
// the Koala component model. AspectRegistry provides the same join-point
// model: components announce join points (named interface calls); advice
// registered as before/after/around handlers observes or wraps them
// without modifying component code — the paper's requirement of
// "minimal adaptation of the software of the system".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::observation {

/// Payload passed through a join point (mutable for around advice).
struct JoinPointCall {
  std::string join_point;
  std::map<std::string, runtime::Value> args;
  runtime::SimTime now = 0;
  bool proceed = true;  ///< Around advice may veto the underlying call.
};

using BeforeAdvice = std::function<void(JoinPointCall&)>;
using AfterAdvice = std::function<void(const JoinPointCall&, const runtime::Value& result)>;

/// Registry of join points and advice.
class AspectRegistry {
 public:
  /// Register advice running before the join point body.
  void before(const std::string& join_point, BeforeAdvice advice);

  /// Register advice running after the join point body.
  void after(const std::string& join_point, AfterAdvice advice);

  /// Execute a join point around `body`. Before advice may set
  /// proceed=false to suppress the body (returns default Value then).
  runtime::Value dispatch(const std::string& join_point,
                          std::map<std::string, runtime::Value> args, runtime::SimTime now,
                          const std::function<runtime::Value()>& body);

  /// Number of dispatches per join point.
  std::uint64_t dispatch_count(const std::string& join_point) const;

  /// Join points with at least one advice attached.
  std::vector<std::string> advised_join_points() const;

 private:
  std::map<std::string, std::vector<BeforeAdvice>> before_;
  std::map<std::string, std::vector<AfterAdvice>> after_;
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace trader::observation
