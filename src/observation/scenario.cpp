#include "observation/scenario.hpp"

namespace trader::observation {

void ScenarioRecorder::start() {
  if (running_) return;
  running_ = true;
  sub_ = bus_.subscribe(topic_, [this](const runtime::Event& ev) {
    events_.push_back(RecordedEvent{ev, sched_.now()});
  });
}

void ScenarioRecorder::stop() {
  if (!running_) return;
  running_ = false;
  bus_.unsubscribe(sub_);
}

runtime::SimDuration ScenarioRecorder::replay(runtime::Scheduler& sched,
                                              std::function<void(const runtime::Event&)> sink,
                                              runtime::SimDuration initial_delay) const {
  if (events_.empty()) return 0;
  const runtime::SimTime t0 = events_.front().at;
  const runtime::SimTime base = sched.now() + initial_delay;
  for (const auto& rec : events_) {
    sched.schedule_at(base + (rec.at - t0), [sink, ev = rec.event] { sink(ev); });
  }
  return events_.back().at - t0 + initial_delay;
}

}  // namespace trader::observation
