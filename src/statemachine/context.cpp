#include "statemachine/types.hpp"

namespace trader::statemachine {

std::int64_t Context::get_int(const std::string& key, std::int64_t dflt) const {
  auto it = vars_.find(key);
  if (it == vars_.end()) return dflt;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i;
  if (const auto* d = std::get_if<double>(&it->second)) return static_cast<std::int64_t>(*d);
  if (const auto* b = std::get_if<bool>(&it->second)) return *b ? 1 : 0;
  return dflt;
}

double Context::get_num(const std::string& key, double dflt) const {
  auto it = vars_.find(key);
  if (it == vars_.end()) return dflt;
  if (const auto* d = std::get_if<double>(&it->second)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return static_cast<double>(*i);
  if (const auto* b = std::get_if<bool>(&it->second)) return *b ? 1.0 : 0.0;
  return dflt;
}

bool Context::get_bool(const std::string& key, bool dflt) const {
  auto it = vars_.find(key);
  if (it == vars_.end()) return dflt;
  if (const auto* b = std::get_if<bool>(&it->second)) return *b;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i != 0;
  return dflt;
}

std::string Context::get_str(const std::string& key, const std::string& dflt) const {
  auto it = vars_.find(key);
  if (it == vars_.end()) return dflt;
  if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
  return dflt;
}

}  // namespace trader::statemachine
