// Structure-of-arrays batch executor over one shared ModelProgram.
//
// A fleet of awareness monitors watching identical SUOs runs thousands
// of copies of the SAME spec model. CompiledMachine stored the full
// table set per copy; BatchExecutor stores the tables once (in the
// immutable ModelProgram) and keeps only the per-instance state in
// dense parallel arrays:
//
//   leaf_[i]                      current leaf row (-1 = not started)
//   entered_[i*max_depth + d]     entry time of the state at depth d
//   flags_[i]                     live / livelock bits
//   fired_[i]                     transitions fired (E11 accounting)
//   vars_[i], outputs_[i]         cold per-instance data (deques: the
//                                 Context& handed to actions stays
//                                 valid across add_instance growth)
//
// Slots are recycled through a free list so monitor churn (recovery
// restarts, SUO reconnects) does not grow the arena. Dispatch semantics
// are bit-for-bit those of CompiledMachine — the batch-of-1 wrapper in
// compiled.hpp and the golden-trace differential tests hold it to that.
//
// Thread-safety: a BatchExecutor is single-threaded (one per shard);
// the ModelProgram it shares with other shards is immutable, so guards
// and actions may run concurrently across batches as long as they only
// touch their ActionEnv (which all in-tree models do).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "statemachine/machine.hpp"
#include "statemachine/program.hpp"

namespace trader::statemachine {

class BatchExecutor {
 public:
  using InstanceId = std::int32_t;

  explicit BatchExecutor(ModelProgramPtr program);

  const ModelProgram& program() const { return *program_; }
  const ModelProgramPtr& program_ptr() const { return program_; }

  /// Claim a slot (recycled from the free list when possible; recycled
  /// slots come back with clean vars/outputs/counters, never started).
  InstanceId add_instance();
  /// Return a slot to the free list, scrubbing its state.
  void release(InstanceId i);

  std::size_t live_count() const { return live_; }
  std::size_t slot_count() const { return leaf_.size(); }
  std::size_t free_count() const { return free_.size(); }

  // --- Per-instance stepping (CompiledMachine semantics) --------------
  void start(InstanceId i, runtime::SimTime now);
  bool dispatch(InstanceId i, const SmEvent& ev, runtime::SimTime now);
  int advance_time(InstanceId i, runtime::SimTime now);
  runtime::SimTime next_deadline(InstanceId i) const;

  /// advance_time over every live, started instance in slot order — the
  /// one tight loop a shard runs per epoch. Returns transitions fired.
  int advance_all(runtime::SimTime now);

  bool started(InstanceId i) const { return leaf_[idx(i)] >= 0; }
  bool in(InstanceId i, const std::string& name) const;
  std::string active_leaf(InstanceId i) const;

  Context& vars(InstanceId i) { return vars_[idx(i)]; }
  const Context& vars(InstanceId i) const { return vars_[idx(i)]; }
  std::vector<ModelOutput> drain_outputs(InstanceId i);
  bool livelock_detected(InstanceId i) const { return (flags_[idx(i)] & kLivelock) != 0; }
  std::uint64_t transitions_fired(InstanceId i) const { return fired_[idx(i)]; }

  // --- Footprint accounting (E18) -------------------------------------
  /// Dense array bytes one instance occupies (program-determined).
  std::size_t dense_bytes_per_instance() const { return program_->dense_bytes_per_instance(); }
  /// Dense bytes plus the fixed headers of the cold per-instance
  /// containers (variable map nodes and pending outputs are workload-
  /// dependent and excluded).
  std::size_t approx_bytes_per_instance() const;

 private:
  static constexpr int kMaxMicrosteps = 64;
  static constexpr std::uint8_t kLive = 0x1;
  static constexpr std::uint8_t kLivelock = 0x2;

  static std::size_t idx(InstanceId i) { return static_cast<std::size_t>(i); }
  runtime::SimTime entry(InstanceId i, std::int32_t depth) const {
    return entered_[idx(i) * stride_ + static_cast<std::size_t>(depth)];
  }

  bool fire(InstanceId i, const ModelProgram::Trans& ct, const SmEvent& ev,
            runtime::SimTime now);
  void run_completions(InstanceId i, runtime::SimTime now);
  void run_action(InstanceId i, const Action& a, const SmEvent& ev, runtime::SimTime now);

  ModelProgramPtr program_;
  std::size_t stride_ = 0;  ///< program max_depth: entry-time slots per instance.

  // Hot dense arrays, indexed by slot.
  std::vector<std::int32_t> leaf_;
  std::vector<runtime::SimTime> entered_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint64_t> fired_;
  // Cold per-instance data. Deques: references survive growth.
  std::deque<Context> vars_;
  std::deque<std::vector<ModelOutput>> outputs_;
  std::vector<InstanceId> free_;
  std::size_t live_ = 0;

  // emit closure shared by every action invocation; captures only
  // `this` (fits std::function's small-buffer slot — no allocation per
  // step). The current instance/time travel through these members: a
  // batch is single-threaded and actions cannot re-enter the executor.
  std::function<void(const std::string&, std::map<std::string, runtime::Value>)> emit_;
  InstanceId cur_instance_ = -1;
  runtime::SimTime cur_now_ = 0;
};

}  // namespace trader::statemachine
