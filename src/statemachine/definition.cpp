#include "statemachine/definition.hpp"

namespace trader::statemachine {

void StateMachineDef::check_state(StateId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= states_.size()) {
    throw std::invalid_argument("StateMachineDef(" + name_ + "): invalid state id " +
                                std::to_string(id));
  }
}

StateId StateMachineDef::add_state(const std::string& name, StateId parent) {
  if (parent != kNoState) check_state(parent);
  if (name.empty()) throw std::invalid_argument("state name must not be empty");
  const auto id = static_cast<StateId>(states_.size());
  StateDef def;
  def.name = name;
  def.parent = parent;
  states_.push_back(std::move(def));
  if (parent != kNoState) {
    auto& p = states_[static_cast<std::size_t>(parent)];
    p.children.push_back(id);
    if (p.initial_child == kNoState) p.initial_child = id;
  } else if (top_initial_ == kNoState) {
    top_initial_ = id;
  }
  return id;
}

void StateMachineDef::set_initial(StateId parent, StateId child) {
  check_state(parent);
  check_state(child);
  if (states_[static_cast<std::size_t>(child)].parent != parent) {
    throw std::invalid_argument("set_initial: child " + path(child) + " is not a child of " +
                                path(parent));
  }
  states_[static_cast<std::size_t>(parent)].initial_child = child;
}

void StateMachineDef::set_history(StateId state, bool enabled) {
  check_state(state);
  states_[static_cast<std::size_t>(state)].history = enabled;
}

void StateMachineDef::on_entry(StateId state, Action a) {
  check_state(state);
  states_[static_cast<std::size_t>(state)].on_entry = std::move(a);
}

void StateMachineDef::on_exit(StateId state, Action a) {
  check_state(state);
  states_[static_cast<std::size_t>(state)].on_exit = std::move(a);
}

int StateMachineDef::add_transition(StateId source, StateId target, const std::string& event,
                                    Guard guard, Action action) {
  check_state(source);
  check_state(target);
  if (event.empty()) throw std::invalid_argument("use add_completion for eventless transitions");
  TransitionDef t;
  t.source = source;
  t.target = target;
  t.event = event;
  t.guard = std::move(guard);
  t.action = std::move(action);
  t.index = static_cast<int>(transitions_.size());
  transitions_.push_back(std::move(t));
  return t.index;
}

int StateMachineDef::add_internal(StateId source, const std::string& event, Guard guard,
                                  Action action) {
  check_state(source);
  if (event.empty()) throw std::invalid_argument("internal transition requires an event");
  TransitionDef t;
  t.source = source;
  t.target = kNoState;
  t.event = event;
  t.internal = true;
  t.guard = std::move(guard);
  t.action = std::move(action);
  t.index = static_cast<int>(transitions_.size());
  transitions_.push_back(std::move(t));
  return t.index;
}

int StateMachineDef::add_timed(StateId source, StateId target, runtime::SimDuration after,
                               Guard guard, Action action) {
  check_state(source);
  check_state(target);
  if (after <= 0) throw std::invalid_argument("timed transition requires after > 0");
  TransitionDef t;
  t.source = source;
  t.target = target;
  t.after = after;
  t.guard = std::move(guard);
  t.action = std::move(action);
  t.index = static_cast<int>(transitions_.size());
  transitions_.push_back(std::move(t));
  return t.index;
}

int StateMachineDef::add_completion(StateId source, StateId target, Guard guard, Action action) {
  check_state(source);
  check_state(target);
  TransitionDef t;
  t.source = source;
  t.target = target;
  t.guard = std::move(guard);
  t.action = std::move(action);
  t.index = static_cast<int>(transitions_.size());
  transitions_.push_back(std::move(t));
  return t.index;
}

void StateMachineDef::set_top_initial(StateId state) {
  check_state(state);
  if (states_[static_cast<std::size_t>(state)].parent != kNoState) {
    throw std::invalid_argument("top initial state must be top-level");
  }
  top_initial_ = state;
}

StateId StateMachineDef::find_state(const std::string& name) const {
  // Accept both bare names and dotted paths.
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (states_[i].name == name || path(id) == name) return id;
  }
  return kNoState;
}

bool StateMachineDef::is_ancestor(StateId maybe_ancestor, StateId s) const {
  StateId cur = s;
  while (cur != kNoState) {
    if (cur == maybe_ancestor) return true;
    cur = states_[static_cast<std::size_t>(cur)].parent;
  }
  return false;
}

std::string StateMachineDef::path(StateId id) const {
  check_state(id);
  std::string out = states_[static_cast<std::size_t>(id)].name;
  StateId cur = states_[static_cast<std::size_t>(id)].parent;
  while (cur != kNoState) {
    out = states_[static_cast<std::size_t>(cur)].name + "." + out;
    cur = states_[static_cast<std::size_t>(cur)].parent;
  }
  return out;
}

}  // namespace trader::statemachine
