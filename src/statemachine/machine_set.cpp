#include "statemachine/machine_set.hpp"

#include <stdexcept>

namespace trader::statemachine {

void MachineSet::add_region(const std::string& name, StateMachineDef def) {
  Region region;
  region.name = name;
  region.def = std::make_unique<StateMachineDef>(std::move(def));
  region.machine = std::make_unique<StateMachine>(*region.def);
  regions_.push_back(std::move(region));
}

void MachineSet::start(runtime::SimTime now) {
  for (auto& r : regions_) r.machine->start(now);
}

int MachineSet::dispatch(const SmEvent& ev, runtime::SimTime now) {
  int reacted = 0;
  for (auto& r : regions_) {
    if (r.machine->dispatch(ev, now)) ++reacted;
  }
  return reacted;
}

int MachineSet::advance_time(runtime::SimTime now) {
  int fired = 0;
  for (auto& r : regions_) fired += r.machine->advance_time(now);
  return fired;
}

runtime::SimTime MachineSet::next_deadline() const {
  runtime::SimTime best = -1;
  for (const auto& r : regions_) {
    const runtime::SimTime d = r.machine->next_deadline();
    if (d >= 0 && (best < 0 || d < best)) best = d;
  }
  return best;
}

bool MachineSet::in(const std::string& state) const {
  for (const auto& r : regions_) {
    if (r.machine->in(state)) return true;
  }
  return false;
}

StateMachine& MachineSet::region(const std::string& name) {
  for (auto& r : regions_) {
    if (r.name == name) return *r.machine;
  }
  throw std::out_of_range("no region named " + name);
}

const StateMachine& MachineSet::region(const std::string& name) const {
  for (const auto& r : regions_) {
    if (r.name == name) return *r.machine;
  }
  throw std::out_of_range("no region named " + name);
}

std::vector<ModelOutput> MachineSet::drain_outputs() {
  std::vector<ModelOutput> out;
  for (auto& r : regions_) {
    auto part = r.machine->drain_outputs();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<std::string> MachineSet::region_names() const {
  std::vector<std::string> out;
  out.reserve(regions_.size());
  for (const auto& r : regions_) out.push_back(r.name);
  return out;
}

std::vector<std::string> MachineSet::configuration() const {
  std::vector<std::string> out;
  out.reserve(regions_.size());
  for (const auto& r : regions_) out.push_back(r.name + "=" + r.machine->active_leaf());
  return out;
}

}  // namespace trader::statemachine
