// Builder-side definition of a timed hierarchical state machine.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "statemachine/types.hpp"

namespace trader::statemachine {

/// A state node. States form a tree rooted at an implicit root (parent
/// kNoState). Composite states have children and an initial child.
struct StateDef {
  std::string name;
  StateId parent = kNoState;
  StateId initial_child = kNoState;  ///< kNoState for leaf states.
  bool history = false;              ///< Shallow history on re-entry.
  Action on_entry;                   ///< May be empty.
  Action on_exit;                    ///< May be empty.
  std::vector<StateId> children;     ///< Filled by the builder.
};

/// A transition. `event` empty + `after == 0` → completion transition
/// (evaluated after every step); `after > 0` → timed transition firing
/// once the source state has been active for `after`.
struct TransitionDef {
  StateId source = kNoState;
  StateId target = kNoState;  ///< kNoState for internal transitions.
  std::string event;
  runtime::SimDuration after = 0;
  Guard guard;    ///< May be empty (always enabled).
  Action action;  ///< May be empty.
  bool internal = false;  ///< Internal: no exit/entry, stays in source.
  int index = 0;          ///< Definition order = priority among peers.
};

/// Immutable-after-build machine description.
///
/// Throws std::invalid_argument on structural misuse at build time so
/// model errors surface as early as possible (§4.2 reports that modeling
/// errors are easy to make; the checker module adds deeper analyses).
class StateMachineDef {
 public:
  explicit StateMachineDef(std::string name) : name_(std::move(name)) {}

  /// Add a state under `parent` (kNoState = top level). The first child
  /// added to a parent becomes its initial child unless overridden.
  StateId add_state(const std::string& name, StateId parent = kNoState);

  /// Override the initial child of a composite state.
  void set_initial(StateId parent, StateId child);

  /// Enable shallow history on a composite state.
  void set_history(StateId state, bool enabled = true);

  void on_entry(StateId state, Action a);
  void on_exit(StateId state, Action a);

  /// Add an event-triggered transition.
  int add_transition(StateId source, StateId target, const std::string& event,
                     Guard guard = nullptr, Action action = nullptr);

  /// Add an internal transition (action only, no state change).
  int add_internal(StateId source, const std::string& event, Guard guard = nullptr,
                   Action action = nullptr);

  /// Add a timed transition firing `after` of dwell time in `source`.
  int add_timed(StateId source, StateId target, runtime::SimDuration after,
                Guard guard = nullptr, Action action = nullptr);

  /// Add a completion transition (fires as soon as guard holds).
  int add_completion(StateId source, StateId target, Guard guard = nullptr,
                     Action action = nullptr);

  /// Set the top-level initial state (defaults to first top-level state).
  void set_top_initial(StateId state);

  // --- Introspection -------------------------------------------------
  const std::string& name() const { return name_; }
  const std::vector<StateDef>& states() const { return states_; }
  const std::vector<TransitionDef>& transitions() const { return transitions_; }
  StateId top_initial() const { return top_initial_; }

  StateId find_state(const std::string& name) const;  ///< kNoState if absent.
  const StateDef& state(StateId id) const { return states_.at(static_cast<std::size_t>(id)); }
  bool is_leaf(StateId id) const { return state(id).children.empty(); }
  bool is_ancestor(StateId maybe_ancestor, StateId s) const;

  /// Full dotted path of a state, e.g. "On.Teletext.Visible".
  std::string path(StateId id) const;

 private:
  void check_state(StateId id) const;

  std::string name_;
  std::vector<StateDef> states_;
  std::vector<TransitionDef> transitions_;
  StateId top_initial_ = kNoState;
};

}  // namespace trader::statemachine
