#include "statemachine/checker.hpp"

#include <algorithm>
#include <queue>
#include <set>

namespace trader::statemachine {

const char* to_string(IssueKind kind) {
  switch (kind) {
    case IssueKind::kUnreachableState:
      return "unreachable-state";
    case IssueKind::kNondeterministicChoice:
      return "nondeterministic-choice";
    case IssueKind::kCompletionLivelock:
      return "completion-livelock";
    case IssueKind::kSinkState:
      return "sink-state";
    case IssueKind::kShadowedTransition:
      return "shadowed-transition";
  }
  return "?";
}

std::size_t CheckReport::error_count() const {
  return static_cast<std::size_t>(std::count_if(
      issues.begin(), issues.end(),
      [](const ModelIssue& i) { return i.severity == IssueSeverity::kError; }));
}

std::size_t CheckReport::warning_count() const { return issues.size() - error_count(); }

bool CheckReport::has(IssueKind kind) const {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const ModelIssue& i) { return i.kind == kind; });
}

std::vector<StateId> ModelChecker::reachable_states(const StateMachineDef& def) const {
  std::set<StateId> seen;
  std::queue<StateId> work;

  // Entering a state makes its ancestors active and drills into initial
  // children; model that closure.
  auto enter = [&](StateId s) {
    StateId cur = s;
    while (cur != kNoState && seen.insert(cur).second) {
      work.push(cur);
      cur = def.state(cur).parent;
    }
    cur = s;
    while (!def.state(cur).children.empty()) {
      StateId next = def.state(cur).initial_child;
      // History entry can resurrect any child that was ever active; for
      // an over-approximation treat history composites as able to enter
      // any child. Conservative for reachability claims.
      if (def.state(cur).history) {
        for (StateId c : def.state(cur).children) {
          if (seen.insert(c).second) work.push(c);
        }
      }
      if (seen.insert(next).second) work.push(next);
      cur = next;
    }
  };

  if (def.top_initial() != kNoState) enter(def.top_initial());

  while (!work.empty()) {
    const StateId s = work.front();
    work.pop();
    for (const auto& t : def.transitions()) {
      if (t.source != s || t.internal) continue;
      // Guard assumed satisfiable (optimistic).
      if (seen.count(t.target) == 0 || true) enter(t.target);
    }
  }
  std::vector<StateId> out(seen.begin(), seen.end());
  return out;
}

void ModelChecker::check_reachability(const StateMachineDef& def, CheckReport& out) const {
  const auto reach = reachable_states(def);
  const std::set<StateId> set(reach.begin(), reach.end());
  for (std::size_t i = 0; i < def.states().size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (set.count(id) == 0) {
      out.issues.push_back(ModelIssue{IssueSeverity::kError, IssueKind::kUnreachableState,
                                      def.path(id),
                                      "state is unreachable from the initial configuration"});
    }
  }
}

void ModelChecker::check_determinism(const StateMachineDef& def, CheckReport& out) const {
  // Two guard-less transitions from the same source on the same trigger:
  // the second can never be intended, and if it was, the model is
  // nondeterministic in spirit (we resolve by definition order).
  const auto& ts = def.transitions();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      if (ts[i].source != ts[j].source) continue;
      if (ts[i].event != ts[j].event) continue;
      if (ts[i].after != ts[j].after) continue;
      if (ts[i].guard || ts[j].guard) continue;
      out.issues.push_back(ModelIssue{
          IssueSeverity::kWarning, IssueKind::kNondeterministicChoice,
          def.path(ts[i].source) + " on '" + (ts[i].event.empty() ? "<completion>" : ts[i].event) +
              "'",
          "two unguarded transitions compete; definition order decides"});
    }
  }
}

void ModelChecker::check_completion_cycles(const StateMachineDef& def, CheckReport& out) const {
  // A cycle of unguarded, untimed completion transitions is a guaranteed
  // run-to-completion livelock.
  const auto n = def.states().size();
  std::vector<std::vector<StateId>> adj(n);
  for (const auto& t : def.transitions()) {
    if (!t.event.empty() || t.after != 0 || t.internal) continue;
    if (t.guard) continue;  // guarded: not *guaranteed* to loop
    adj[static_cast<std::size_t>(t.source)].push_back(t.target);
  }
  // DFS cycle detection.
  std::vector<int> mark(n, 0);  // 0=unseen 1=active 2=done
  std::vector<StateId> stack;
  bool found = false;
  std::string cycle_at;
  auto dfs = [&](auto&& self, StateId s) -> void {
    if (found) return;
    mark[static_cast<std::size_t>(s)] = 1;
    for (StateId t : adj[static_cast<std::size_t>(s)]) {
      // Completion out of a composite applies when inside it; treat the
      // target's drill-down as reaching the target state itself.
      if (mark[static_cast<std::size_t>(t)] == 1) {
        found = true;
        cycle_at = def.path(t);
        return;
      }
      if (mark[static_cast<std::size_t>(t)] == 0) self(self, t);
    }
    mark[static_cast<std::size_t>(s)] = 2;
  };
  for (std::size_t i = 0; i < n && !found; ++i) {
    if (mark[i] == 0) dfs(dfs, static_cast<StateId>(i));
  }
  if (found) {
    out.issues.push_back(ModelIssue{IssueSeverity::kError, IssueKind::kCompletionLivelock,
                                    cycle_at,
                                    "cycle of unguarded completion transitions (livelock)"});
  }
}

void ModelChecker::check_sinks(const StateMachineDef& def, CheckReport& out) const {
  // A leaf with no outgoing transitions on itself or any ancestor can
  // never be left; flag unless it is the only state (trivial machine).
  if (def.states().size() <= 1) return;
  for (std::size_t i = 0; i < def.states().size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (!def.is_leaf(id)) continue;
    bool has_exit = false;
    for (const auto& t : def.transitions()) {
      if (t.internal) continue;
      if (def.is_ancestor(t.source, id)) {
        has_exit = true;
        break;
      }
    }
    if (!has_exit) {
      out.issues.push_back(ModelIssue{IssueSeverity::kWarning, IssueKind::kSinkState,
                                      def.path(id), "leaf state has no way out (final state?)"});
    }
  }
}

void ModelChecker::check_shadowing(const StateMachineDef& def, CheckReport& out) const {
  // An unguarded transition on event e in a descendant shadows an
  // ancestor's transition on e whenever the descendant is active; warn
  // only when the ancestor transition could never fire from any leaf,
  // i.e. every leaf under the ancestor has an unguarded closer handler.
  const auto& ts = def.transitions();
  for (const auto& outer : ts) {
    if (outer.event.empty()) continue;
    if (def.is_leaf(outer.source)) continue;
    bool all_shadowed = true;
    bool any_leaf = false;
    for (std::size_t i = 0; i < def.states().size(); ++i) {
      const auto leaf = static_cast<StateId>(i);
      if (!def.is_leaf(leaf) || !def.is_ancestor(outer.source, leaf)) continue;
      any_leaf = true;
      bool shadowed_here = false;
      for (const auto& inner : ts) {
        if (&inner == &outer || inner.event != outer.event || inner.guard) continue;
        if (inner.source == outer.source) continue;
        if (def.is_ancestor(outer.source, inner.source) && def.is_ancestor(inner.source, leaf)) {
          shadowed_here = true;
          break;
        }
      }
      if (!shadowed_here) {
        all_shadowed = false;
        break;
      }
    }
    if (any_leaf && all_shadowed) {
      out.issues.push_back(ModelIssue{IssueSeverity::kWarning, IssueKind::kShadowedTransition,
                                      def.path(outer.source) + " on '" + outer.event + "'",
                                      "transition is shadowed by inner handlers from every leaf"});
    }
  }
}

CheckReport ModelChecker::check(const StateMachineDef& def) const {
  CheckReport report;
  check_reachability(def, report);
  check_determinism(def, report);
  check_completion_cycles(def, report);
  check_sinks(def, report);
  check_shadowing(def, report);
  return report;
}

}  // namespace trader::statemachine
