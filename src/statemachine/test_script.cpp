#include "statemachine/test_script.hpp"

#include <sstream>

namespace trader::statemachine {

template <typename M>
ScriptResult TestScript::run_impl(M& m, runtime::SimTime start_time) const {
  ScriptResult result;
  runtime::SimTime now = start_time;
  m.start(now);
  std::vector<ModelOutput> pending = m.drain_outputs();

  auto fail = [&](std::size_t idx, const std::string& msg) {
    result.failures.push_back(ScriptFailure{idx, msg});
  };

  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const auto& step = steps_[i];
    if (const auto* inj = std::get_if<Inject>(&step)) {
      m.dispatch(inj->event, now);
      for (auto& o : m.drain_outputs()) pending.push_back(std::move(o));
    } else if (const auto* adv = std::get_if<Advance>(&step)) {
      now += adv->by;
      m.advance_time(now);
      for (auto& o : m.drain_outputs()) pending.push_back(std::move(o));
    } else if (const auto* es = std::get_if<ExpectState>(&step)) {
      if (!m.in(es->state)) {
        fail(i, "expected state '" + es->state + "' active, leaf is '" + m.active_leaf() + "'");
      }
    } else if (const auto* ens = std::get_if<ExpectNotState>(&step)) {
      if (m.in(ens->state)) {
        fail(i, "expected state '" + ens->state + "' inactive, leaf is '" + m.active_leaf() + "'");
      }
    } else if (const auto* ev = std::get_if<ExpectVar>(&step)) {
      if (!m.vars().has(ev->key)) {
        fail(i, "variable '" + ev->key + "' not set");
      } else {
        // Compare via the runtime deviation metric to handle int/double.
        runtime::Value actual(std::int64_t{0});
        // Re-read with correct type preference.
        const auto& all = m.vars().all();
        actual = all.at(ev->key);
        const double dev = runtime::deviation(actual, ev->value);
        if (dev > ev->tolerance) {
          fail(i, "variable '" + ev->key + "' = " + runtime::to_string(actual) + ", expected " +
                      runtime::to_string(ev->value));
        }
      }
    } else if (const auto* eo = std::get_if<ExpectOutput>(&step)) {
      bool found = false;
      for (const auto& o : pending) {
        if (o.name == eo->name) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::ostringstream os;
        os << "expected output '" << eo->name << "'; got {";
        for (const auto& o : pending) os << o.name << " ";
        os << "}";
        fail(i, os.str());
      }
      pending.clear();
    }
  }
  result.end_time = now;
  return result;
}

ScriptResult TestScript::run(StateMachine& m, runtime::SimTime start_time) const {
  return run_impl(m, start_time);
}

ScriptResult TestScript::run(CompiledMachine& m, runtime::SimTime start_time) const {
  return run_impl(m, start_time);
}

}  // namespace trader::statemachine
