// Random-walk model exploration.
//
// §4.2: models of realistic TVs are easy to get wrong, and the project
// investigates "formal model-checking and test scripts to improve model
// quality". The static checker (checker.hpp) over-approximates; the
// explorer complements it dynamically: drive the machine with random
// events and time steps from its own alphabet and measure which states
// are actually visited, flagging livelocks and never-entered states that
// guards keep unreachable in practice.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "statemachine/definition.hpp"

namespace trader::statemachine {

struct ExplorationConfig {
  int runs = 10;               ///< Independent random walks.
  int steps_per_run = 500;     ///< Events/time-steps per walk.
  double time_step_bias = 0.3; ///< P(step is a time advance, not an event).
  runtime::SimDuration max_time_step = runtime::msec(2000);
  std::uint64_t seed = 1;
};

struct ExplorationReport {
  std::size_t states_total = 0;
  std::size_t states_visited = 0;
  std::vector<std::string> never_visited;  ///< Paths of unvisited states.
  std::map<std::string, std::uint64_t> visit_counts;  ///< Path -> visits.
  std::uint64_t transitions_fired = 0;
  bool livelock_seen = false;

  double state_coverage() const {
    return states_total > 0
               ? static_cast<double>(states_visited) / static_cast<double>(states_total)
               : 1.0;
  }
};

/// The event alphabet of a definition (distinct trigger names).
std::vector<std::string> event_alphabet(const StateMachineDef& def);

class RandomWalkExplorer {
 public:
  explicit RandomWalkExplorer(ExplorationConfig config = {}) : config_(config) {}

  ExplorationReport explore(const StateMachineDef& def) const;

 private:
  ExplorationConfig config_;
};

}  // namespace trader::statemachine
