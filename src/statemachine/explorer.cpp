#include "statemachine/explorer.hpp"

#include <algorithm>
#include <set>

#include "runtime/rng.hpp"
#include "statemachine/machine.hpp"

namespace trader::statemachine {

std::vector<std::string> event_alphabet(const StateMachineDef& def) {
  std::set<std::string> names;
  for (const auto& t : def.transitions()) {
    if (!t.event.empty()) names.insert(t.event);
  }
  return {names.begin(), names.end()};
}

ExplorationReport RandomWalkExplorer::explore(const StateMachineDef& def) const {
  ExplorationReport report;
  report.states_total = def.states().size();
  const auto alphabet = event_alphabet(def);
  runtime::Rng rng(config_.seed);

  std::set<StateId> visited;
  auto mark_active = [&](const StateMachine& m) {
    for (const auto& path : m.active_path()) {
      const StateId id = def.find_state(path);
      if (id != kNoState) {
        visited.insert(id);
        ++report.visit_counts[path];
      }
    }
  };

  for (int run = 0; run < config_.runs; ++run) {
    StateMachine machine(def);
    runtime::SimTime now = 0;
    machine.start(now);
    mark_active(machine);
    for (int step = 0; step < config_.steps_per_run; ++step) {
      if (alphabet.empty() || rng.uniform() < config_.time_step_bias) {
        now += rng.uniform_int(1, config_.max_time_step);
        machine.advance_time(now);
      } else {
        const auto& name = alphabet[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size() - 1)))];
        machine.dispatch(SmEvent::named(name), now);
      }
      mark_active(machine);
      if (machine.livelock_detected()) {
        report.livelock_seen = true;
        break;
      }
    }
    report.transitions_fired += machine.transitions_fired();
  }

  report.states_visited = visited.size();
  for (std::size_t i = 0; i < def.states().size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (visited.count(id) == 0) report.never_visited.push_back(def.path(id));
  }
  return report;
}

}  // namespace trader::statemachine
