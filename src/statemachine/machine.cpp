#include "statemachine/machine.hpp"

#include <algorithm>

namespace trader::statemachine {

namespace {
const SmEvent kNullEvent{};
}  // namespace

StateMachine::StateMachine(const StateMachineDef& def) : def_(def) {}

void StateMachine::reset() {
  vars_.clear();
  active_.clear();
  entered_at_.clear();
  history_.clear();
  outputs_.clear();
  livelock_ = false;
  fired_ = 0;
}

bool StateMachine::is_active(StateId s) const {
  return std::find(active_.begin(), active_.end(), s) != active_.end();
}

runtime::SimTime StateMachine::entry_time(StateId s) const {
  auto it = entered_at_.find(s);
  return it != entered_at_.end() ? it->second : 0;
}

void StateMachine::run_action(const Action& a, const SmEvent& ev, runtime::SimTime now) {
  if (!a) return;
  ActionEnv env{vars_, ev, now,
                [this, now](const std::string& name, std::map<std::string, runtime::Value> f) {
                  outputs_.push_back(ModelOutput{name, std::move(f), now});
                }};
  a(env);
}

void StateMachine::start(runtime::SimTime now) {
  active_.clear();
  entered_at_.clear();
  if (def_.top_initial() == kNoState) return;  // empty machine
  enter_from(kNoState, def_.top_initial(), kNullEvent, now);
  run_completions(now);
}

void StateMachine::enter_from(StateId boundary, StateId target, const SmEvent& ev,
                              runtime::SimTime now) {
  // Build the chain boundary(exclusive) -> target, top-down.
  std::vector<StateId> chain;
  for (StateId s = target; s != boundary && s != kNoState; s = def_.state(s).parent) {
    chain.push_back(s);
  }
  std::reverse(chain.begin(), chain.end());
  for (StateId s : chain) {
    active_.push_back(s);
    entered_at_[s] = now;
    run_action(def_.state(s).on_entry, ev, now);
  }
  // Drill down to a leaf via history or initial children.
  StateId cur = target;
  while (!def_.state(cur).children.empty()) {
    StateId next = kNoState;
    if (def_.state(cur).history) {
      auto it = history_.find(cur);
      if (it != history_.end()) next = it->second;
    }
    if (next == kNoState) next = def_.state(cur).initial_child;
    active_.push_back(next);
    entered_at_[next] = now;
    run_action(def_.state(next).on_entry, ev, now);
    cur = next;
  }
}

void StateMachine::exit_to(StateId boundary, const SmEvent& ev, runtime::SimTime now) {
  // Exit from the leaf upwards until (excluding) boundary.
  while (!active_.empty() && active_.back() != boundary) {
    const StateId s = active_.back();
    const StateId parent = def_.state(s).parent;
    if (parent != kNoState && def_.state(parent).history) history_[parent] = s;
    run_action(def_.state(s).on_exit, ev, now);
    entered_at_.erase(s);
    active_.pop_back();
  }
}

const TransitionDef* StateMachine::select_transition(const SmEvent& ev) const {
  // Innermost active state first (UML priority), definition order within
  // one state.
  for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
    const TransitionDef* best = nullptr;
    for (const auto& t : def_.transitions()) {
      if (t.source != *it || t.event != ev.name || t.event.empty()) continue;
      if (t.guard && !t.guard(vars_, ev)) continue;
      if (best == nullptr || t.index < best->index) best = &t;
    }
    if (best != nullptr) return best;
  }
  return nullptr;
}

const TransitionDef* StateMachine::select_completion() const {
  for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
    const TransitionDef* best = nullptr;
    for (const auto& t : def_.transitions()) {
      if (t.source != *it || !t.event.empty() || t.after != 0) continue;
      if (t.guard && !t.guard(vars_, kNullEvent)) continue;
      if (best == nullptr || t.index < best->index) best = &t;
    }
    if (best != nullptr) return best;
  }
  return nullptr;
}

void StateMachine::fire(const TransitionDef& t, const SmEvent& ev, runtime::SimTime now) {
  ++fired_;
  if (t.internal) {
    run_action(t.action, ev, now);
    return;
  }
  // Scope boundary: lowest common ancestor of source and target; for
  // self- and ancestor-transitions, one level above (external semantics).
  StateId lca = t.source;
  while (lca != kNoState && !(def_.is_ancestor(lca, t.source) && def_.is_ancestor(lca, t.target))) {
    lca = def_.state(lca).parent;
  }
  if (lca == t.source || lca == t.target) {
    lca = (lca == kNoState) ? kNoState : def_.state(lca).parent;
  }
  exit_to(lca, ev, now);
  run_action(t.action, ev, now);
  enter_from(lca, t.target, ev, now);
}

void StateMachine::run_completions(runtime::SimTime now) {
  for (int i = 0; i < kMaxMicrosteps; ++i) {
    const TransitionDef* t = select_completion();
    if (t == nullptr) return;
    fire(*t, kNullEvent, now);
  }
  livelock_ = true;
}

bool StateMachine::dispatch(const SmEvent& ev, runtime::SimTime now) {
  if (active_.empty()) return false;
  const TransitionDef* t = select_transition(ev);
  if (t == nullptr) return false;
  fire(*t, ev, now);
  run_completions(now);
  return true;
}

int StateMachine::advance_time(runtime::SimTime now) {
  int fired_count = 0;
  for (int iter = 0; iter < kMaxMicrosteps; ++iter) {
    // Earliest due timed transition across the active configuration;
    // innermost wins ties, then definition order.
    const TransitionDef* best = nullptr;
    runtime::SimTime best_due = 0;
    int best_depth = -1;
    for (std::size_t depth = 0; depth < active_.size(); ++depth) {
      const StateId s = active_[depth];
      for (const auto& t : def_.transitions()) {
        if (t.source != s || t.after <= 0) continue;
        const runtime::SimTime due = entry_time(s) + t.after;
        if (due > now) continue;
        if (t.guard && !t.guard(vars_, kNullEvent)) continue;
        const bool better =
            best == nullptr || due < best_due ||
            (due == best_due && (static_cast<int>(depth) > best_depth ||
                                 (static_cast<int>(depth) == best_depth && t.index < best->index)));
        if (better) {
          best = &t;
          best_due = due;
          best_depth = static_cast<int>(depth);
        }
      }
    }
    if (best == nullptr) return fired_count;
    fire(*best, kNullEvent, best_due);
    run_completions(best_due);
    ++fired_count;
  }
  livelock_ = true;
  return fired_count;
}

runtime::SimTime StateMachine::next_deadline() const {
  runtime::SimTime best = -1;
  for (StateId s : active_) {
    for (const auto& t : def_.transitions()) {
      if (t.source != s || t.after <= 0) continue;
      const runtime::SimTime due = entry_time(s) + t.after;
      if (best < 0 || due < best) best = due;
    }
  }
  return best;
}

bool StateMachine::in(const std::string& name) const {
  for (StateId s : active_) {
    if (def_.state(s).name == name || def_.path(s) == name) return true;
  }
  return false;
}

std::string StateMachine::active_leaf() const {
  if (active_.empty()) return {};
  return def_.path(active_.back());
}

std::vector<std::string> StateMachine::active_path() const {
  std::vector<std::string> out;
  out.reserve(active_.size());
  for (StateId s : active_) out.push_back(def_.path(s));
  return out;
}

std::vector<ModelOutput> StateMachine::drain_outputs() {
  std::vector<ModelOutput> out;
  out.swap(outputs_);
  return out;
}

}  // namespace trader::statemachine
