// Test scripts against executable models.
//
// §4.2 mentions "test scripts to improve model quality". A TestScript is
// a linear scenario — inject events, let virtual time pass, assert on
// states / variables / emitted outputs — runnable against either
// executor. Model validation suites in tests/ are built from these.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "statemachine/compiled.hpp"
#include "statemachine/machine.hpp"

namespace trader::statemachine {

/// Script steps.
struct Inject {
  SmEvent event;
};
struct Advance {
  runtime::SimDuration by;
};
struct ExpectState {
  std::string state;  ///< Bare name or dotted path expected active.
};
struct ExpectNotState {
  std::string state;
};
struct ExpectVar {
  std::string key;
  runtime::Value value;
  double tolerance = 0.0;  ///< For numeric comparison.
};
struct ExpectOutput {
  std::string name;  ///< An output with this name must have been emitted
                     ///< since the previous step.
};

using ScriptStep =
    std::variant<Inject, Advance, ExpectState, ExpectNotState, ExpectVar, ExpectOutput>;

/// One failed expectation.
struct ScriptFailure {
  std::size_t step_index = 0;
  std::string message;
};

/// Result of a script run.
struct ScriptResult {
  std::vector<ScriptFailure> failures;
  runtime::SimTime end_time = 0;
  bool passed() const { return failures.empty(); }
};

/// A named scenario.
class TestScript {
 public:
  explicit TestScript(std::string name) : name_(std::move(name)) {}

  TestScript& inject(SmEvent ev) {
    steps_.push_back(Inject{std::move(ev)});
    return *this;
  }
  TestScript& inject(const std::string& event_name) {
    return inject(SmEvent::named(event_name));
  }
  TestScript& advance(runtime::SimDuration by) {
    steps_.push_back(Advance{by});
    return *this;
  }
  TestScript& expect_state(std::string s) {
    steps_.push_back(ExpectState{std::move(s)});
    return *this;
  }
  TestScript& expect_not_state(std::string s) {
    steps_.push_back(ExpectNotState{std::move(s)});
    return *this;
  }
  TestScript& expect_var(std::string key, runtime::Value v, double tol = 0.0) {
    steps_.push_back(ExpectVar{std::move(key), std::move(v), tol});
    return *this;
  }
  TestScript& expect_output(std::string name) {
    steps_.push_back(ExpectOutput{std::move(name)});
    return *this;
  }

  const std::string& name() const { return name_; }
  const std::vector<ScriptStep>& steps() const { return steps_; }

  /// Run against the interpreting executor (machine is started fresh).
  ScriptResult run(StateMachine& m, runtime::SimTime start_time = 0) const;
  /// Run against the compiled executor.
  ScriptResult run(CompiledMachine& m, runtime::SimTime start_time = 0) const;

 private:
  template <typename M>
  ScriptResult run_impl(M& m, runtime::SimTime start_time) const;

  std::string name_;
  std::vector<ScriptStep> steps_;
};

}  // namespace trader::statemachine
