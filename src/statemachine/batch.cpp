#include "statemachine/batch.hpp"

#include <algorithm>

namespace trader::statemachine {

namespace {
const SmEvent kNullEvent{};
}  // namespace

BatchExecutor::BatchExecutor(ModelProgramPtr program)
    : program_(std::move(program)), stride_(program_->max_depth()) {
  emit_ = [this](const std::string& name, std::map<std::string, runtime::Value> fields) {
    outputs_[idx(cur_instance_)].push_back(ModelOutput{name, std::move(fields), cur_now_});
  };
}

BatchExecutor::InstanceId BatchExecutor::add_instance() {
  ++live_;
  if (!free_.empty()) {
    const InstanceId i = free_.back();
    free_.pop_back();
    flags_[idx(i)] = kLive;  // release() scrubbed the rest
    return i;
  }
  const auto i = static_cast<InstanceId>(leaf_.size());
  leaf_.push_back(-1);
  entered_.resize(entered_.size() + stride_, 0);
  flags_.push_back(kLive);
  fired_.push_back(0);
  vars_.emplace_back();
  outputs_.emplace_back();
  return i;
}

void BatchExecutor::release(InstanceId i) {
  leaf_[idx(i)] = -1;
  flags_[idx(i)] = 0;
  fired_[idx(i)] = 0;
  vars_[idx(i)].clear();
  outputs_[idx(i)].clear();
  std::fill_n(entered_.begin() + static_cast<std::ptrdiff_t>(idx(i) * stride_), stride_, 0);
  free_.push_back(i);
  --live_;
}

void BatchExecutor::run_action(InstanceId i, const Action& a, const SmEvent& ev,
                               runtime::SimTime now) {
  if (!a) return;
  cur_instance_ = i;
  cur_now_ = now;
  ActionEnv env{vars_[idx(i)], ev, now, emit_};
  a(env);
}

void BatchExecutor::start(InstanceId i, runtime::SimTime now) {
  std::fill_n(entered_.begin() + static_cast<std::ptrdiff_t>(idx(i) * stride_), stride_, 0);
  if (program_->initial_leaf() < 0) return;
  leaf_[idx(i)] = program_->initial_leaf();
  const auto& row = program_->leaf(leaf_[idx(i)]);
  const auto& pool = program_->state_pool();
  const auto& def = program_->def();
  for (std::uint32_t d = 0; d < row.path_len; ++d) {
    const StateId s = pool[row.path_begin + d];
    entered_[idx(i) * stride_ + d] = now;
    run_action(i, def.state(s).on_entry, kNullEvent, now);
  }
  run_completions(i, now);
}

bool BatchExecutor::fire(InstanceId i, const ModelProgram::Trans& ct, const SmEvent& ev,
                         runtime::SimTime now) {
  ++fired_[idx(i)];
  if (ct.def->internal) {
    run_action(i, ct.def->action, ev, now);
    return true;
  }
  const auto& pool = program_->state_pool();
  const auto& def = program_->def();
  for (std::uint32_t k = 0; k < ct.exits_len; ++k) {
    run_action(i, def.state(pool[ct.exits_begin + k]).on_exit, ev, now);
  }
  run_action(i, ct.def->action, ev, now);
  for (std::uint32_t k = 0; k < ct.entries_len; ++k) {
    const StateId s = pool[ct.entries_begin + k];
    // Entries fill the new path below the boundary: depth boundary+1+k.
    const auto depth = static_cast<std::size_t>(ct.boundary_depth + 1) + k;
    entered_[idx(i) * stride_ + depth] = now;
    run_action(i, def.state(s).on_entry, ev, now);
  }
  leaf_[idx(i)] = ct.target_leaf;
  return true;
}

void BatchExecutor::run_completions(InstanceId i, runtime::SimTime now) {
  const auto& trans = program_->trans();
  for (int step = 0; step < kMaxMicrosteps; ++step) {
    const auto& row = program_->leaf(leaf_[idx(i)]);
    const ModelProgram::Trans* enabled = nullptr;
    for (std::uint32_t k = 0; k < row.completions.len; ++k) {
      const auto& ct = trans[row.completions.begin + k];
      if (ct.def->guard && !ct.def->guard(vars_[idx(i)], kNullEvent)) continue;
      enabled = &ct;
      break;
    }
    if (enabled == nullptr) return;
    fire(i, *enabled, kNullEvent, now);
  }
  flags_[idx(i)] |= kLivelock;
}

bool BatchExecutor::dispatch(InstanceId i, const SmEvent& ev, runtime::SimTime now) {
  if (leaf_[idx(i)] < 0) return false;
  const int eid = program_->event_id(ev.name);
  if (eid < 0) return false;
  const auto span = program_->dispatch_span(leaf_[idx(i)], eid);
  const auto& trans = program_->trans();
  for (std::uint32_t k = 0; k < span.len; ++k) {
    const auto& ct = trans[span.begin + k];
    if (ct.def->guard && !ct.def->guard(vars_[idx(i)], ev)) continue;
    fire(i, ct, ev, now);
    run_completions(i, now);
    return true;
  }
  return false;
}

int BatchExecutor::advance_time(InstanceId i, runtime::SimTime now) {
  if (leaf_[idx(i)] < 0) return 0;
  const auto& trans = program_->trans();
  int fired_count = 0;
  for (int iter = 0; iter < kMaxMicrosteps; ++iter) {
    const auto& row = program_->leaf(leaf_[idx(i)]);
    const ModelProgram::Trans* best = nullptr;
    runtime::SimTime best_due = 0;
    for (std::uint32_t k = 0; k < row.timed.len; ++k) {
      const auto& ct = trans[row.timed.begin + k];
      const runtime::SimTime due = entry(i, ct.source_depth) + ct.def->after;
      if (due > now) continue;
      if (ct.def->guard && !ct.def->guard(vars_[idx(i)], kNullEvent)) continue;
      if (best == nullptr || due < best_due) {
        best = &ct;
        best_due = due;
      }
    }
    if (best == nullptr) return fired_count;
    fire(i, *best, kNullEvent, best_due);
    run_completions(i, best_due);
    ++fired_count;
  }
  flags_[idx(i)] |= kLivelock;
  return fired_count;
}

int BatchExecutor::advance_all(runtime::SimTime now) {
  int total = 0;
  const auto n = static_cast<InstanceId>(leaf_.size());
  for (InstanceId i = 0; i < n; ++i) {
    if ((flags_[idx(i)] & kLive) == 0 || leaf_[idx(i)] < 0) continue;
    total += advance_time(i, now);
  }
  return total;
}

runtime::SimTime BatchExecutor::next_deadline(InstanceId i) const {
  if (leaf_[idx(i)] < 0) return -1;
  const auto& row = program_->leaf(leaf_[idx(i)]);
  const auto& trans = program_->trans();
  runtime::SimTime best = -1;
  for (std::uint32_t k = 0; k < row.timed.len; ++k) {
    const auto& ct = trans[row.timed.begin + k];
    const runtime::SimTime due = entry(i, ct.source_depth) + ct.def->after;
    if (best < 0 || due < best) best = due;
  }
  return best;
}

bool BatchExecutor::in(InstanceId i, const std::string& name) const {
  if (leaf_[idx(i)] < 0) return false;
  const auto& row = program_->leaf(leaf_[idx(i)]);
  const auto& pool = program_->state_pool();
  const auto& def = program_->def();
  for (std::uint32_t d = 0; d < row.path_len; ++d) {
    const StateId s = pool[row.path_begin + d];
    if (def.state(s).name == name || def.path(s) == name) return true;
  }
  return false;
}

std::string BatchExecutor::active_leaf(InstanceId i) const {
  if (leaf_[idx(i)] < 0) return {};
  return program_->def().path(program_->leaf(leaf_[idx(i)]).state);
}

std::vector<ModelOutput> BatchExecutor::drain_outputs(InstanceId i) {
  std::vector<ModelOutput> out;
  out.swap(outputs_[idx(i)]);
  return out;
}

std::size_t BatchExecutor::approx_bytes_per_instance() const {
  return dense_bytes_per_instance() + sizeof(Context) + sizeof(std::vector<ModelOutput>);
}

}  // namespace trader::statemachine
