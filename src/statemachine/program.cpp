#include "statemachine/program.hpp"

#include <algorithm>

namespace trader::statemachine {

namespace {

// Leaf reached from `s` by following initial children.
StateId drill_initial(const StateMachineDef& def, StateId s) {
  while (!def.state(s).children.empty()) s = def.state(s).initial_child;
  return s;
}

}  // namespace

std::shared_ptr<const ModelProgram> ModelProgram::compile(StateMachineDef def) {
  // shared_ptr via new: the constructor is private to force compile().
  std::shared_ptr<ModelProgram> p(new ModelProgram(std::move(def)));
  const StateMachineDef& d = p->def_;

  for (std::size_t i = 0; i < d.states().size(); ++i) {
    if (d.states()[i].history) {
      throw CompileError("ModelProgram: history state '" +
                         d.path(static_cast<StateId>(i)) + "' is not supported");
    }
  }

  // Intern event names in sorted order (map iteration) so ids are a pure
  // function of the definition, not of transition declaration order.
  for (const auto& t : d.transitions()) {
    if (!t.event.empty()) p->event_ids_.emplace(t.event, 0);
  }
  int next_event = 0;
  for (auto& [name, id] : p->event_ids_) id = next_event++;

  // Pass 1: enumerate leaves and their root paths.
  for (std::size_t i = 0; i < d.states().size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (!d.is_leaf(id)) continue;
    Leaf row;
    row.state = id;
    row.path_begin = static_cast<std::uint32_t>(p->state_pool_.size());
    std::vector<StateId> path;
    for (StateId s = id; s != kNoState; s = d.state(s).parent) path.push_back(s);
    std::reverse(path.begin(), path.end());
    for (StateId s : path) p->state_pool_.push_back(s);
    row.path_len = static_cast<std::uint32_t>(path.size());
    p->max_depth_ = std::max(p->max_depth_, path.size());
    p->leaf_index_[id] = static_cast<int>(p->leaves_.size());
    p->leaves_.push_back(row);
  }

  // Pass 2: per-leaf tables. Candidate order is the interpreter's
  // priority order — innermost source first, then definition order among
  // transitions sharing a source — exactly as CompiledMachine built its
  // per-event vectors.
  const std::size_t event_count = p->event_ids_.size();
  for (auto& row : p->leaves_) {
    std::vector<const TransitionDef*> candidates;
    const StateId* path = p->state_pool_.data() + row.path_begin;
    for (std::uint32_t depth = row.path_len; depth-- > 0;) {
      std::vector<const TransitionDef*> here;
      for (const auto& t : d.transitions()) {
        if (t.source == path[depth]) here.push_back(&t);
      }
      std::sort(here.begin(), here.end(),
                [](const TransitionDef* a, const TransitionDef* b) { return a->index < b->index; });
      candidates.insert(candidates.end(), here.begin(), here.end());
    }

    row.dispatch_begin = static_cast<std::uint32_t>(p->dispatch_.size());
    p->dispatch_.resize(p->dispatch_.size() + event_count);
    for (const auto& [name, eid] : p->event_ids_) {
      Span span;
      span.begin = static_cast<std::uint32_t>(p->trans_.size());
      for (const TransitionDef* t : candidates) {
        if (t->after > 0 || t->event != name) continue;
        p->trans_.push_back(p->compile_transition(row, *t));
      }
      span.len = static_cast<std::uint32_t>(p->trans_.size()) - span.begin;
      p->dispatch_[row.dispatch_begin + static_cast<std::uint32_t>(eid)] = span;
    }
    row.completions.begin = static_cast<std::uint32_t>(p->trans_.size());
    for (const TransitionDef* t : candidates) {
      if (t->after > 0 || !t->event.empty()) continue;
      p->trans_.push_back(p->compile_transition(row, *t));
    }
    row.completions.len =
        static_cast<std::uint32_t>(p->trans_.size()) - row.completions.begin;
    row.timed.begin = static_cast<std::uint32_t>(p->trans_.size());
    for (const TransitionDef* t : candidates) {
      if (t->after <= 0) continue;
      p->trans_.push_back(p->compile_transition(row, *t));
    }
    row.timed.len = static_cast<std::uint32_t>(p->trans_.size()) - row.timed.begin;
  }

  if (d.top_initial() != kNoState) {
    p->initial_leaf_ = p->leaf_index_.at(drill_initial(d, d.top_initial()));
  }
  return p;
}

ModelProgram::Trans ModelProgram::compile_transition(const Leaf& row,
                                                     const TransitionDef& t) {
  Trans ct;
  ct.def = &t;
  const StateId* path = state_pool_.data() + row.path_begin;
  for (std::uint32_t depth = 0; depth < row.path_len; ++depth) {
    if (path[depth] == t.source) ct.source_depth = static_cast<std::int32_t>(depth);
  }
  if (t.internal) return ct;  // no exits/entries, stays on the same leaf

  // Boundary as in the interpreter: LCA, bumped one level up for self /
  // ancestor-descendant transitions.
  StateId lca = t.source;
  while (lca != kNoState && !(def_.is_ancestor(lca, t.source) && def_.is_ancestor(lca, t.target))) {
    lca = def_.state(lca).parent;
  }
  if (lca == t.source || lca == t.target) {
    lca = (lca == kNoState) ? kNoState : def_.state(lca).parent;
  }
  ct.boundary_depth = -1;
  for (std::uint32_t depth = 0; depth < row.path_len; ++depth) {
    if (path[depth] == lca) ct.boundary_depth = static_cast<std::int32_t>(depth);
  }

  // Exits: leaf-first until the boundary. Spans are recorded by index —
  // state_pool_ may reallocate while later transitions compile.
  ct.exits_begin = static_cast<std::uint32_t>(state_pool_.size());
  {
    std::vector<StateId> exits;
    for (std::uint32_t depth = row.path_len; depth-- > 0;) {
      if (path[depth] == lca) break;
      exits.push_back(path[depth]);
    }
    for (StateId s : exits) state_pool_.push_back(s);
    ct.exits_len = static_cast<std::uint32_t>(exits.size());
  }

  // Entries: boundary(exclusive) -> target, then drill to the initial leaf.
  std::vector<StateId> chain;
  for (StateId s = t.target; s != lca && s != kNoState; s = def_.state(s).parent) {
    chain.push_back(s);
  }
  std::reverse(chain.begin(), chain.end());
  StateId cur = t.target;
  while (!def_.state(cur).children.empty()) {
    cur = def_.state(cur).initial_child;
    chain.push_back(cur);
  }
  ct.entries_begin = static_cast<std::uint32_t>(state_pool_.size());
  for (StateId s : chain) state_pool_.push_back(s);
  ct.entries_len = static_cast<std::uint32_t>(chain.size());
  ct.target_leaf = leaf_index_.at(cur);
  return ct;
}

std::size_t ModelProgram::dense_bytes_per_instance() const {
  // One leaf index, max_depth entry times, flags, and a fired counter —
  // the structure-of-arrays slots BatchExecutor allocates per instance.
  return sizeof(std::int32_t) + max_depth_ * sizeof(runtime::SimTime) +
         sizeof(std::uint8_t) + sizeof(std::uint64_t);
}

}  // namespace trader::statemachine
