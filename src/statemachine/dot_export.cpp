#include "statemachine/dot_export.hpp"

#include <sstream>

namespace trader::statemachine {

namespace {

std::string node_id(StateId s) { return "s" + std::to_string(s); }

void emit_state(const StateMachineDef& def, StateId s, std::ostringstream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const StateDef& st = def.state(s);
  const bool is_initial =
      (st.parent == kNoState && def.top_initial() == s) ||
      (st.parent != kNoState && def.state(st.parent).initial_child == s);
  if (st.children.empty()) {
    os << pad << node_id(s) << " [label=\"" << st.name << "\""
       << (is_initial ? ", penwidth=2" : "") << "];\n";
    return;
  }
  os << pad << "subgraph cluster_" << s << " {\n";
  os << pad << "  label=\"" << st.name << (st.history ? " (H)" : "") << "\";\n";
  if (is_initial) os << pad << "  penwidth=2;\n";
  for (StateId c : st.children) emit_state(def, c, os, indent + 1);
  os << pad << "}\n";
}

// An edge endpoint for a composite state: use its initial leaf with
// lhead/ltail pointing at the cluster (standard graphviz idiom).
StateId representative_leaf(const StateMachineDef& def, StateId s) {
  while (!def.state(s).children.empty()) s = def.state(s).initial_child;
  return s;
}

}  // namespace

std::string to_dot(const StateMachineDef& def) {
  std::ostringstream os;
  os << "digraph \"" << def.name() << "\" {\n";
  os << "  compound=true;\n  rankdir=LR;\n  node [shape=box, style=rounded];\n";
  for (std::size_t i = 0; i < def.states().size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (def.state(id).parent == kNoState) emit_state(def, id, os, 1);
  }
  for (const auto& t : def.transitions()) {
    std::string label;
    if (t.after > 0) {
      label = "after(" + std::to_string(t.after / 1000) + "ms)";
    } else if (t.event.empty()) {
      label = "<done>";
    } else {
      label = t.event;
    }
    if (t.guard) label += " [g]";
    if (t.internal) label += " /internal";
    const StateId src = representative_leaf(def, t.source);
    const StateId dst = t.internal ? src : representative_leaf(def, t.target);
    os << "  " << node_id(src) << " -> " << node_id(dst) << " [label=\"" << label << "\"";
    if (!def.state(t.source).children.empty()) os << ", ltail=cluster_" << t.source;
    if (!t.internal && !def.state(t.target).children.empty()) {
      os << ", lhead=cluster_" << t.target;
    }
    if (t.internal) os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace trader::statemachine
