// Parallel composition of state machines.
//
// Stateflow models routinely use parallel (AND) states; our executor is
// single-region, so parallel behaviour is expressed as a *set* of
// machines running side by side: every event is offered to each member,
// time advances in lockstep, and outputs are merged in member order.
// This is also how §3's "several awareness monitors … for different
// aspects" models are built: one small machine per aspect instead of a
// product-state monolith (the configuration space multiplies, the
// machine sizes add — see bench_scale).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "statemachine/machine.hpp"

namespace trader::statemachine {

class MachineSet {
 public:
  /// Add a member region. The definition is copied and owned.
  void add_region(const std::string& name, StateMachineDef def);

  std::size_t size() const { return regions_.size(); }

  void start(runtime::SimTime now);

  /// Offer the event to every region; returns how many reacted.
  int dispatch(const SmEvent& ev, runtime::SimTime now);

  /// Advance all regions to `now`; returns total timed transitions fired.
  int advance_time(runtime::SimTime now);

  /// Earliest deadline across regions (-1 when none).
  runtime::SimTime next_deadline() const;

  /// True when the named state is active in any region.
  bool in(const std::string& state) const;

  /// Region access by name (throws std::out_of_range when absent).
  StateMachine& region(const std::string& name);
  const StateMachine& region(const std::string& name) const;

  /// Merged outputs of all regions since the last drain (member order,
  /// then emission order).
  std::vector<ModelOutput> drain_outputs();

  /// Active leaf per region, "name=leaf" strings.
  std::vector<std::string> configuration() const;

  /// Names of all regions, in addition order.
  std::vector<std::string> region_names() const;

 private:
  struct Region {
    std::string name;
    std::unique_ptr<StateMachineDef> def;
    std::unique_ptr<StateMachine> machine;
  };
  std::vector<Region> regions_;
};

/// IModelImpl-compatible adapter lives in core/model_impl.hpp users: the
/// set already matches the interface shape (start/dispatch/advance/
/// drain); see core::ParallelModel.

}  // namespace trader::statemachine
