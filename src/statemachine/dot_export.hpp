// Graphviz export of state machine definitions.
//
// §4.2 stresses how easily modeling errors creep in; visual inspection
// of the generated structure (alongside the checker and test scripts) is
// a cheap mitigation. to_dot() renders the hierarchy as nested clusters
// with labeled transitions — pipe into `dot -Tsvg`.
#pragma once

#include <string>

#include "statemachine/definition.hpp"

namespace trader::statemachine {

/// DOT (graphviz) rendering of the definition. Composite states become
/// clusters; timed transitions are labeled "after(Xms)"; guarded
/// transitions carry a "[g]" marker; initial states get a bold border.
std::string to_dot(const StateMachineDef& def);

}  // namespace trader::statemachine
