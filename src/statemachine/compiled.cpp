#include "statemachine/compiled.hpp"

namespace trader::statemachine {

CompiledMachine::CompiledMachine(const StateMachineDef& def)
    : CompiledMachine(ModelProgram::compile(def)) {}

CompiledMachine::CompiledMachine(ModelProgramPtr program)
    : batch_(std::move(program)), id_(batch_.add_instance()) {}

}  // namespace trader::statemachine
