#include "statemachine/compiled.hpp"

#include <algorithm>

namespace trader::statemachine {

namespace {
const SmEvent kNullEvent{};

// Leaf reached from `s` by following initial children.
StateId drill_initial(const StateMachineDef& def, StateId s) {
  while (!def.state(s).children.empty()) s = def.state(s).initial_child;
  return s;
}
}  // namespace

CompiledMachine::CompiledMachine(const StateMachineDef& def) : def_(def) {
  for (std::size_t i = 0; i < def.states().size(); ++i) {
    if (def.states()[i].history) {
      throw CompileError("CompiledMachine: history state '" +
                         def.path(static_cast<StateId>(i)) + "' is not supported");
    }
  }
  // Enumerate leaves and their root-paths.
  for (std::size_t i = 0; i < def.states().size(); ++i) {
    const auto id = static_cast<StateId>(i);
    if (!def.is_leaf(id)) continue;
    LeafRow row;
    row.leaf = id;
    for (StateId s = id; s != kNoState; s = def.state(s).parent) row.path.push_back(s);
    std::reverse(row.path.begin(), row.path.end());
    leaf_index_[id] = static_cast<int>(leaves_.size());
    leaves_.push_back(std::move(row));
  }
  // Build per-leaf tables, innermost-first then definition order.
  for (auto& row : leaves_) {
    for (auto it = row.path.rbegin(); it != row.path.rend(); ++it) {
      std::vector<const TransitionDef*> here;
      for (const auto& t : def.transitions()) {
        if (t.source == *it) here.push_back(&t);
      }
      std::sort(here.begin(), here.end(),
                [](const TransitionDef* a, const TransitionDef* b) { return a->index < b->index; });
      for (const TransitionDef* t : here) {
        CompiledTrans ct = compile_transition(row, *t);
        if (t->after > 0) {
          row.timed.push_back(ct);
        } else if (t->event.empty()) {
          row.completions.push_back(ct);
        } else {
          row.by_event[t->event].push_back(ct);
        }
      }
    }
  }
}

CompiledMachine::CompiledTrans CompiledMachine::compile_transition(const LeafRow& row,
                                                                   const TransitionDef& t) const {
  CompiledTrans ct;
  ct.def = &t;
  if (t.internal) return ct;  // no exits/entries, stays on the same leaf
  // Boundary as in the interpreter: LCA, bumped one level up for self /
  // ancestor-descendant transitions.
  StateId lca = t.source;
  while (lca != kNoState && !(def_.is_ancestor(lca, t.source) && def_.is_ancestor(lca, t.target))) {
    lca = def_.state(lca).parent;
  }
  if (lca == t.source || lca == t.target) {
    lca = (lca == kNoState) ? kNoState : def_.state(lca).parent;
  }
  // Exits: leaf-first until the boundary.
  for (auto it = row.path.rbegin(); it != row.path.rend(); ++it) {
    if (*it == lca) break;
    ct.exits.push_back(*it);
  }
  // Entries: boundary(exclusive) -> target, then drill to the initial leaf.
  std::vector<StateId> chain;
  for (StateId s = t.target; s != lca && s != kNoState; s = def_.state(s).parent) {
    chain.push_back(s);
  }
  std::reverse(chain.begin(), chain.end());
  StateId cur = t.target;
  while (!def_.state(cur).children.empty()) {
    cur = def_.state(cur).initial_child;
    chain.push_back(cur);
  }
  ct.entries = std::move(chain);
  ct.target_leaf = leaf_index_.at(drill_initial(def_, t.target));
  return ct;
}

void CompiledMachine::run_action(const Action& a, const SmEvent& ev, runtime::SimTime now) {
  if (!a) return;
  ActionEnv env{vars_, ev, now,
                [this, now](const std::string& name, std::map<std::string, runtime::Value> f) {
                  outputs_.push_back(ModelOutput{name, std::move(f), now});
                }};
  a(env);
}

runtime::SimTime CompiledMachine::entry_time(StateId s) const {
  auto it = entered_at_.find(s);
  return it != entered_at_.end() ? it->second : 0;
}

void CompiledMachine::start(runtime::SimTime now) {
  entered_at_.clear();
  if (def_.top_initial() == kNoState) return;
  const StateId leaf = drill_initial(def_, def_.top_initial());
  leaf_ = leaf_index_.at(leaf);
  for (StateId s : leaves_[static_cast<std::size_t>(leaf_)].path) {
    entered_at_[s] = now;
    run_action(def_.state(s).on_entry, kNullEvent, now);
  }
  run_completions(now);
}

bool CompiledMachine::fire(const CompiledTrans& ct, const SmEvent& ev, runtime::SimTime now) {
  ++fired_;
  if (ct.def->internal) {
    run_action(ct.def->action, ev, now);
    return true;
  }
  for (StateId s : ct.exits) {
    run_action(def_.state(s).on_exit, ev, now);
    entered_at_.erase(s);
  }
  run_action(ct.def->action, ev, now);
  for (StateId s : ct.entries) {
    entered_at_[s] = now;
    run_action(def_.state(s).on_entry, ev, now);
  }
  leaf_ = ct.target_leaf;
  return true;
}

void CompiledMachine::run_completions(runtime::SimTime now) {
  for (int i = 0; i < kMaxMicrosteps; ++i) {
    const auto& comps = leaves_[static_cast<std::size_t>(leaf_)].completions;
    const CompiledTrans* enabled = nullptr;
    for (const auto& ct : comps) {
      if (ct.def->guard && !ct.def->guard(vars_, kNullEvent)) continue;
      enabled = &ct;
      break;
    }
    if (enabled == nullptr) return;
    fire(*enabled, kNullEvent, now);
  }
  livelock_ = true;
}

bool CompiledMachine::dispatch(const SmEvent& ev, runtime::SimTime now) {
  if (leaf_ < 0) return false;
  const auto& row = leaves_[static_cast<std::size_t>(leaf_)];
  auto it = row.by_event.find(ev.name);
  if (it == row.by_event.end()) return false;
  for (const auto& ct : it->second) {
    if (ct.def->guard && !ct.def->guard(vars_, ev)) continue;
    fire(ct, ev, now);
    run_completions(now);
    return true;
  }
  return false;
}

int CompiledMachine::advance_time(runtime::SimTime now) {
  int fired_count = 0;
  for (int iter = 0; iter < kMaxMicrosteps; ++iter) {
    const auto& row = leaves_[static_cast<std::size_t>(leaf_)];
    const CompiledTrans* best = nullptr;
    runtime::SimTime best_due = 0;
    for (const auto& ct : row.timed) {
      const runtime::SimTime due = entry_time(ct.def->source) + ct.def->after;
      if (due > now) continue;
      if (ct.def->guard && !ct.def->guard(vars_, kNullEvent)) continue;
      if (best == nullptr || due < best_due) {
        best = &ct;
        best_due = due;
      }
    }
    if (best == nullptr) return fired_count;
    fire(*best, kNullEvent, best_due);
    run_completions(best_due);
    ++fired_count;
  }
  livelock_ = true;
  return fired_count;
}

runtime::SimTime CompiledMachine::next_deadline() const {
  if (leaf_ < 0) return -1;
  runtime::SimTime best = -1;
  for (const auto& ct : leaves_[static_cast<std::size_t>(leaf_)].timed) {
    const runtime::SimTime due = entry_time(ct.def->source) + ct.def->after;
    if (best < 0 || due < best) best = due;
  }
  return best;
}

bool CompiledMachine::in(const std::string& name) const {
  if (leaf_ < 0) return false;
  for (StateId s : leaves_[static_cast<std::size_t>(leaf_)].path) {
    if (def_.state(s).name == name || def_.path(s) == name) return true;
  }
  return false;
}

std::string CompiledMachine::active_leaf() const {
  if (leaf_ < 0) return {};
  return def_.path(leaves_[static_cast<std::size_t>(leaf_)].leaf);
}

std::vector<ModelOutput> CompiledMachine::drain_outputs() {
  std::vector<ModelOutput> out;
  out.swap(outputs_);
  return out;
}

}  // namespace trader::statemachine
