// ModelProgram: the immutable compiled form of a state machine.
//
// The flat-table CompiledMachine (compiled.hpp) played the role of
// Stateflow's generated C code for ONE machine; a fleet of thousands of
// identical spec models would compile — and store — the same tables
// thousands of times. ModelProgram splits the executor in two:
//
//   ModelProgram   — everything that depends only on the *definition*:
//                    interned event ids, per-leaf dispatch spans,
//                    precomputed exit/entry chains, timed/completion
//                    tables. Immutable after compile(); shared by any
//                    number of instances across any number of threads.
//   BatchExecutor  — everything that depends on the *instance*: current
//                    leaf, per-depth entry times, variables, outputs.
//                    Stored as dense structure-of-arrays (batch.hpp) so
//                    thousands of instances step in one tight loop.
//
// Compilation rejects the same feature set CompiledMachine rejected
// (history states need dynamic resolution) and preserves its dispatch
// semantics exactly: innermost source first, definition order among
// peers, earliest-due-first timed firing, bounded completion chains.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "statemachine/definition.hpp"

namespace trader::statemachine {

/// Thrown when a definition uses features the compiler does not support.
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ModelProgram {
 public:
  /// A precompiled transition as seen from one source leaf.
  struct Trans {
    const TransitionDef* def = nullptr;  ///< Guard/action/after/internal.
    std::uint32_t exits_begin = 0;       ///< Span into state_pool(): leaf-first.
    std::uint32_t exits_len = 0;
    std::uint32_t entries_begin = 0;     ///< Span into state_pool(): top-down.
    std::uint32_t entries_len = 0;
    std::int32_t target_leaf = -1;       ///< Row index after firing; -1 internal.
    std::int32_t boundary_depth = -1;    ///< Depth of the LCA (-1 = above root).
    std::int32_t source_depth = 0;       ///< Depth of def->source in the row path.
  };

  /// Contiguous [begin, begin+len) range inside trans().
  struct Span {
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
  };

  /// One leaf state's row: its root path and transition tables.
  struct Leaf {
    StateId state = kNoState;
    std::uint32_t path_begin = 0;  ///< Span into state_pool(): root..leaf.
    std::uint32_t path_len = 0;
    std::uint32_t dispatch_begin = 0;  ///< event_count() Spans in dispatch().
    Span completions;
    Span timed;
  };

  /// Compile `def` (copied into the program). Throws CompileError on
  /// history states, mirroring CompiledMachine's feature set.
  static std::shared_ptr<const ModelProgram> compile(StateMachineDef def);

  const StateMachineDef& def() const { return def_; }
  std::size_t leaf_count() const { return leaves_.size(); }
  std::size_t event_count() const { return event_ids_.size(); }
  /// Deepest root..leaf path in the machine (the per-instance entry-time
  /// array is this many SimTime slots wide).
  std::size_t max_depth() const { return max_depth_; }
  std::size_t transition_count() const { return trans_.size(); }

  /// Interned id of an event name, or -1 when no transition consumes it.
  int event_id(const std::string& name) const {
    auto it = event_ids_.find(name);
    return it == event_ids_.end() ? -1 : it->second;
  }

  /// Row index of the initial configuration's leaf (-1 for an empty def).
  int initial_leaf() const { return initial_leaf_; }
  /// Row index of a leaf state id (-1 when `s` is not a leaf).
  int leaf_index(StateId s) const {
    auto it = leaf_index_.find(s);
    return it == leaf_index_.end() ? -1 : it->second;
  }

  const Leaf& leaf(int row) const { return leaves_[static_cast<std::size_t>(row)]; }
  const std::vector<StateId>& state_pool() const { return state_pool_; }
  const std::vector<Trans>& trans() const { return trans_; }
  /// Dispatch span for (leaf row, event id).
  const Span& dispatch_span(int row, int event) const {
    return dispatch_[leaf(row).dispatch_begin + static_cast<std::uint32_t>(event)];
  }

  /// Fixed bytes this program would add per instance in a batch (dense
  /// arrays only; variables and pending outputs are accounted by the
  /// batch, which owns them).
  std::size_t dense_bytes_per_instance() const;

 private:
  explicit ModelProgram(StateMachineDef def) : def_(std::move(def)) {}

  Trans compile_transition(const Leaf& row, const TransitionDef& t);

  StateMachineDef def_;
  std::map<std::string, int> event_ids_;
  std::vector<Leaf> leaves_;
  std::map<StateId, int> leaf_index_;
  std::vector<StateId> state_pool_;  ///< Flat paths/exits/entries storage.
  std::vector<Trans> trans_;
  std::vector<Span> dispatch_;  ///< leaf_count() x event_count() spans.
  std::size_t max_depth_ = 0;
  int initial_leaf_ = -1;
};

using ModelProgramPtr = std::shared_ptr<const ModelProgram>;

}  // namespace trader::statemachine
