// Flat-table compiled executor — the "generated C code" stand-in.
//
// §4.3: Stateflow's code generation produces C code that the Model
// Executor runs. CompiledMachine plays that role here, and since the
// executor-v2 redesign it is literally a batch of size 1: the tables
// live in an immutable, shareable ModelProgram (program.hpp) and the
// per-instance state in a private single-slot BatchExecutor
// (batch.hpp). Semantics are identical to the interpreting StateMachine
// for machines without history states (history needs dynamic resolution
// and is rejected at compile time).
#pragma once

#include <string>
#include <vector>

#include "statemachine/batch.hpp"
#include "statemachine/machine.hpp"
#include "statemachine/program.hpp"

namespace trader::statemachine {

/// Table-driven executor over the leaf states of a StateMachineDef.
class CompiledMachine {
 public:
  /// Compile a private program from `def` (copied into the program).
  explicit CompiledMachine(const StateMachineDef& def);
  /// Run an already compiled program — N machines share one table set.
  explicit CompiledMachine(ModelProgramPtr program);

  void start(runtime::SimTime now) { batch_.start(id_, now); }
  bool dispatch(const SmEvent& ev, runtime::SimTime now) { return batch_.dispatch(id_, ev, now); }
  int advance_time(runtime::SimTime now) { return batch_.advance_time(id_, now); }
  runtime::SimTime next_deadline() const { return batch_.next_deadline(id_); }

  bool started() const { return batch_.started(id_); }
  bool in(const std::string& name) const { return batch_.in(id_, name); }
  std::string active_leaf() const { return batch_.active_leaf(id_); }

  Context& vars() { return batch_.vars(id_); }
  const Context& vars() const { return batch_.vars(id_); }
  std::vector<ModelOutput> drain_outputs() { return batch_.drain_outputs(id_); }
  bool livelock_detected() const { return batch_.livelock_detected(id_); }
  std::uint64_t transitions_fired() const { return batch_.transitions_fired(id_); }

  /// Number of leaf states (rows in the table).
  std::size_t leaf_count() const { return batch_.program().leaf_count(); }

  const ModelProgramPtr& program() const { return batch_.program_ptr(); }

 private:
  BatchExecutor batch_;
  BatchExecutor::InstanceId id_;
};

}  // namespace trader::statemachine
