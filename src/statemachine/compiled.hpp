// Flat-table compiled executor — the "generated C code" stand-in.
//
// §4.3: Stateflow's code generation produces C code that the Model
// Executor runs. CompiledMachine plays that role here: it flattens a
// hierarchical definition into per-leaf transition tables at construction
// time, so each dispatch is a table lookup plus guard evaluation instead
// of a tree walk. Semantics are identical to the interpreting
// StateMachine for machines without history states (history needs
// dynamic resolution and is rejected at compile time).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "statemachine/machine.hpp"

namespace trader::statemachine {

/// Thrown when a definition uses features the compiler does not support.
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Table-driven executor over the leaf states of a StateMachineDef.
class CompiledMachine {
 public:
  explicit CompiledMachine(const StateMachineDef& def);

  void start(runtime::SimTime now);
  bool dispatch(const SmEvent& ev, runtime::SimTime now);
  int advance_time(runtime::SimTime now);
  runtime::SimTime next_deadline() const;

  bool started() const { return leaf_ >= 0; }
  bool in(const std::string& name) const;
  std::string active_leaf() const;

  Context& vars() { return vars_; }
  const Context& vars() const { return vars_; }
  std::vector<ModelOutput> drain_outputs();
  bool livelock_detected() const { return livelock_; }
  std::uint64_t transitions_fired() const { return fired_; }

  /// Number of leaf states (rows in the table).
  std::size_t leaf_count() const { return leaves_.size(); }

 private:
  static constexpr int kMaxMicrosteps = 64;

  struct CompiledTrans {
    const TransitionDef* def = nullptr;
    std::vector<StateId> exits;    // leaf-first
    std::vector<StateId> entries;  // top-down
    int target_leaf = -1;          // index into leaves_; -1 for internal
  };

  struct LeafRow {
    StateId leaf = kNoState;
    std::vector<StateId> path;  // root..leaf
    std::map<std::string, std::vector<CompiledTrans>> by_event;
    std::vector<CompiledTrans> completions;
    std::vector<CompiledTrans> timed;  // def->after holds the delay
  };

  CompiledTrans compile_transition(const LeafRow& row, const TransitionDef& t) const;
  bool fire(const CompiledTrans& ct, const SmEvent& ev, runtime::SimTime now);
  void run_completions(runtime::SimTime now);
  void run_action(const Action& a, const SmEvent& ev, runtime::SimTime now);
  runtime::SimTime entry_time(StateId s) const;

  const StateMachineDef& def_;
  std::vector<LeafRow> leaves_;
  std::map<StateId, int> leaf_index_;
  Context vars_;
  int leaf_ = -1;
  std::map<StateId, runtime::SimTime> entered_at_;
  std::vector<ModelOutput> outputs_;
  bool livelock_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace trader::statemachine
