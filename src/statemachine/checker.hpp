// Static model checker for state machine definitions.
//
// §4.2: "it was very easy to make modeling errors … we investigate the
// possibilities of formal model-checking and test scripts to improve
// model quality." ModelChecker performs the static analyses that catch
// the common modeling errors: unreachable states, nondeterministic
// transition pairs, guaranteed completion livelocks, and sink states.
// Guards are treated optimistically (assumed satisfiable), so
// reachability results are an over-approximation: a state reported
// unreachable is definitely unreachable.
#pragma once

#include <string>
#include <vector>

#include "statemachine/definition.hpp"

namespace trader::statemachine {

/// Severity of a reported model issue.
enum class IssueSeverity { kWarning, kError };

/// Kind of model issue.
enum class IssueKind {
  kUnreachableState,
  kNondeterministicChoice,
  kCompletionLivelock,
  kSinkState,
  kShadowedTransition,
};

const char* to_string(IssueKind kind);

/// One finding from the checker.
struct ModelIssue {
  IssueSeverity severity = IssueSeverity::kWarning;
  IssueKind kind = IssueKind::kUnreachableState;
  std::string subject;  ///< State path or transition description.
  std::string message;
};

/// Result of a full check.
struct CheckReport {
  std::vector<ModelIssue> issues;

  bool clean() const { return issues.empty(); }
  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool has(IssueKind kind) const;
};

/// Run all static analyses on a definition.
class ModelChecker {
 public:
  CheckReport check(const StateMachineDef& def) const;

  /// States reachable from the initial configuration (guards assumed
  /// satisfiable). Sorted by id.
  std::vector<StateId> reachable_states(const StateMachineDef& def) const;

 private:
  void check_reachability(const StateMachineDef& def, CheckReport& out) const;
  void check_determinism(const StateMachineDef& def, CheckReport& out) const;
  void check_completion_cycles(const StateMachineDef& def, CheckReport& out) const;
  void check_sinks(const StateMachineDef& def, CheckReport& out) const;
  void check_shadowing(const StateMachineDef& def, CheckReport& out) const;
};

}  // namespace trader::statemachine
