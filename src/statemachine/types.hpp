// Common types for the timed hierarchical state machine engine.
//
// The paper models desired TV behaviour as executable timed state
// machines (Stateflow) and runs generated C code inside the Model
// Executor (§4.2/§4.3). This module is the from-scratch substitute: the
// same semantic ingredients — hierarchy, guards, actions, timed
// ("after") transitions, history, run-to-completion — with a builder API
// instead of a graphical editor.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::statemachine {

/// Index of a state inside a StateMachineDef. kNoState means "none".
using StateId = std::int32_t;
inline constexpr StateId kNoState = -1;

/// An event dispatched into a machine (distinct from runtime::Event to
/// keep the model layer independent of transport details).
struct SmEvent {
  std::string name;
  std::map<std::string, runtime::Value> params;

  static SmEvent named(std::string n) { return SmEvent{std::move(n), {}}; }
};

/// Variable store for a machine instance (the model's "data" part).
class Context {
 public:
  void set(const std::string& key, runtime::Value v) { vars_[key] = std::move(v); }
  void set_int(const std::string& key, std::int64_t v) { vars_[key] = v; }
  void set_num(const std::string& key, double v) { vars_[key] = v; }
  void set_bool(const std::string& key, bool v) { vars_[key] = v; }
  void set_str(const std::string& key, std::string v) { vars_[key] = std::move(v); }

  bool has(const std::string& key) const { return vars_.count(key) > 0; }

  std::int64_t get_int(const std::string& key, std::int64_t dflt = 0) const;
  double get_num(const std::string& key, double dflt = 0.0) const;
  bool get_bool(const std::string& key, bool dflt = false) const;
  std::string get_str(const std::string& key, const std::string& dflt = {}) const;

  const std::map<std::string, runtime::Value>& all() const { return vars_; }
  void clear() { vars_.clear(); }

 private:
  std::map<std::string, runtime::Value> vars_;
};

/// Environment handed to transition/entry/exit actions.
struct ActionEnv {
  Context& vars;
  const SmEvent& event;       ///< Triggering event (empty name for timed/completion).
  runtime::SimTime now;       ///< Virtual time of the step.
  /// Emit a model output (routed to the Model Executor / Comparator).
  std::function<void(const std::string& name, std::map<std::string, runtime::Value>)> emit;
};

using Guard = std::function<bool(const Context&, const SmEvent&)>;
using Action = std::function<void(ActionEnv&)>;

}  // namespace trader::statemachine
