// Run-to-completion executor for timed hierarchical state machines.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "statemachine/definition.hpp"

namespace trader::statemachine {

/// A model output produced by an action's `emit`.
struct ModelOutput {
  std::string name;
  std::map<std::string, runtime::Value> fields;
  runtime::SimTime time = 0;
};

/// Executable instance of a StateMachineDef.
///
/// UML-style semantics: external events are dispatched to the innermost
/// active state first; firing a transition exits up to the transition
/// scope boundary, runs the action, and enters the target (drilling down
/// through initial or history children). After every microstep,
/// completion transitions run until quiescence (bounded to catch
/// modeling livelocks, which §4.2 reports are easy to introduce).
class StateMachine {
 public:
  explicit StateMachine(const StateMachineDef& def);

  /// Enter the initial configuration at time `now`.
  void start(runtime::SimTime now);

  /// Dispatch an external event. Returns true when any transition fired.
  bool dispatch(const SmEvent& ev, runtime::SimTime now);

  /// Fire all timed transitions due at or before `now`, in due order.
  /// Returns the number of timed transitions fired.
  int advance_time(runtime::SimTime now);

  /// Earliest pending timed-transition deadline, or -1 when none.
  runtime::SimTime next_deadline() const;

  // --- State inspection ----------------------------------------------
  bool started() const { return !active_.empty(); }
  /// True when `name` (bare or dotted path) is in the active configuration.
  bool in(const std::string& name) const;
  /// Active leaf state's dotted path ("" before start()).
  std::string active_leaf() const;
  /// Active configuration from top-level state to leaf (dotted paths).
  std::vector<std::string> active_path() const;

  Context& vars() { return vars_; }
  const Context& vars() const { return vars_; }

  /// Outputs emitted since the last drain (FIFO).
  std::vector<ModelOutput> drain_outputs();

  /// True when a run-to-completion step exceeded the microstep bound
  /// (modeling livelock); sticky until reset().
  bool livelock_detected() const { return livelock_; }

  /// Reset to the never-started state (vars cleared, history cleared).
  void reset();

  const StateMachineDef& def() const { return def_; }

  /// Total transitions fired (for overhead accounting, E11).
  std::uint64_t transitions_fired() const { return fired_; }

 private:
  static constexpr int kMaxMicrosteps = 64;

  // Innermost-first search for an enabled transition on `ev`.
  const TransitionDef* select_transition(const SmEvent& ev) const;
  // Enabled completion transition, innermost-first.
  const TransitionDef* select_completion() const;
  // Fire a transition; `now` is the semantic instant of the step.
  void fire(const TransitionDef& t, const SmEvent& ev, runtime::SimTime now);
  void run_completions(runtime::SimTime now);

  void enter_from(StateId boundary, StateId target, const SmEvent& ev, runtime::SimTime now);
  void exit_to(StateId boundary, const SmEvent& ev, runtime::SimTime now);
  void run_action(const Action& a, const SmEvent& ev, runtime::SimTime now);

  bool is_active(StateId s) const;
  runtime::SimTime entry_time(StateId s) const;

  const StateMachineDef& def_;
  Context vars_;
  std::vector<StateId> active_;  // root..leaf
  std::map<StateId, runtime::SimTime> entered_at_;
  std::map<StateId, StateId> history_;  // composite -> last active child
  std::vector<ModelOutput> outputs_;
  bool livelock_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace trader::statemachine
