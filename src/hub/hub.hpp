// AwarenessHub: one epoll loop multiplexing a fleet of remote SUOs.
//
// The paper's Fig. 2 deployment runs the System Under Observation in
// its own process; src/ipc scales that to one monitor per blocking
// socket. The hub inverts the topology for fleet scale: N SUO
// publisher processes connect *in* to a single AF_UNIX listener, and
// one nonblocking EventLoop drives every link plus the liveness wheel
// on one thread. Decoded input/output events are published into a
// ShardedFleet, whose epoch-lockstep delivery keeps verdicts and
// counter fingerprints identical to in-process runs — the hub adds a
// transport, never semantics.
//
// Slot model: each expected SUO is pre-registered as a named slot
// (its aspect). A connection claims a slot with the kHello peer name;
// unknown names, already-claimed slots and reconnects that land
// inside the slot's backoff window are rejected with kShutdown. The
// slot's ProcessSupervisor persists across reconnects, so outage
// accounting (exactly one report per up->down) and capped seeded
// backoff survive the connection churn they describe.
//
// Liveness is hub-driven: a fixed-rate EventLoop timer probes every
// live slot with kHeartbeat; a slot that fails to ack for
// heartbeat_miss_threshold consecutive probes is declared dead and
// evicted. Because the timer is fixed-rate with catch-up firing, a
// stalled loop iteration cannot silently stretch the liveness window.
// While a slot is down its LinkGatedModel gate quiesces comparison —
// the monitors degrade instead of flooding the error stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/interfaces.hpp"
#include "core/monitor_builder.hpp"
#include "core/sharded_fleet.hpp"
#include "fleetdiag/aggregator.hpp"
#include "hub/connection.hpp"
#include "hub/event_loop.hpp"
#include "hub/recovery.hpp"
#include "ipc/supervisor.hpp"
#include "ipc/wire.hpp"
#include "journal/replay.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace_log.hpp"

namespace trader::hub {

struct HubConfig {
  /// Listener path; '@' prefix = Linux abstract namespace. Empty picks
  /// a unique abstract name ("@trader-hub-<pid>-<n>").
  std::string path;
  int listen_backlog = 64;

  /// Fleet geometry (see ShardedFleetConfig).
  std::size_t shards = 1;
  runtime::SimDuration epoch = runtime::msec(10);
  std::uint64_t seed = 0x5eed;

  /// Hub-driven liveness probing. Off for lockstep test drivers that
  /// pump the loop manually (a probe between pumps would see misses).
  bool probe_liveness = true;
  std::int64_t heartbeat_interval_ms = 50;
  /// Per-slot supervision policy (miss threshold, reconnect backoff).
  ipc::SupervisorConfig supervisor;

  /// Prefix ingested event topics with "<slot>/" — lets many SUOs that
  /// all publish "tv.input" style topics coexist in one fleet.
  bool namespace_topics = false;

  /// Advance the fleet automatically to the watermark (minimum last
  /// event time across up slots) after each poll. Off when the caller
  /// drives virtual time via run_until().
  bool auto_advance = false;

  /// Per-connection outbound queue policy.
  ConnectionLimits limits;

  /// Accepted protocol range for handshakes.
  std::uint8_t min_version = ipc::kMinProtocolVersion;
  std::uint8_t max_version = ipc::kProtocolVersion;

  /// Online diagnosis policy (top-k size, coefficient, refresh cadence)
  /// for kSpectrum frames folded into the hub-side FleetAggregator.
  fleetdiag::AggregatorConfig diag;

  /// Closed-loop recovery actuation policy (off by default: an
  /// observing hub stays byte-identical to pre-v3 deployments).
  RecoveryConfig recovery;

  /// Durability policy (off by default). When enabled the hub journals
  /// every state-changing input (frames, slot transitions, actuation
  /// ticks) to a write-ahead log in `journal.dir` and checkpoints the
  /// diagnosis/recovery/slot state on a record cadence; a restarted hub
  /// pointed at the same directory replays back to the exact pre-crash
  /// state before accepting new connections.
  journal::JournalConfig journal;
};

// Private ReplaySink: recovery replays journaled inputs through the
// same ingest/diagnosis/actuation members a live connection feeds, so
// the replayed hub is the live hub minus the sockets. Private
// Checkpointable: the hub snapshots its own slot table (watermarks,
// sequence numbers, supervisor state) alongside the diagnosis and
// recovery parts it owns.
class AwarenessHub : private journal::ReplaySink, private journal::Checkpointable {
 public:
  explicit AwarenessHub(HubConfig config = {});
  ~AwarenessHub();

  AwarenessHub(const AwarenessHub&) = delete;
  AwarenessHub& operator=(const AwarenessHub&) = delete;

  /// Register an expected SUO. Returns the slot's link gate (true while
  /// the slot's connection is up) for wrapping models in LinkGatedModel.
  /// Slots must be added before start().
  std::shared_ptr<std::atomic<bool>> add_slot(const std::string& name);

  /// Gate of an existing slot (adds the slot when unknown).
  std::shared_ptr<std::atomic<bool>> slot_gate(const std::string& name);

  /// Add a monitor to the underlying fleet. `slot` is bookkeeping only:
  /// the monitor subscribes to whatever topics its builder configured.
  core::AwarenessMonitor& add_monitor(const std::string& slot, const std::string& aspect,
                                      core::MonitorBuilder builder);

  /// Bind the listener, start the fleet and (optionally) the liveness
  /// wheel. False when the listener cannot be created.
  bool start();
  void stop();
  bool running() const { return listen_fd_ >= 0; }

  /// One event-loop iteration (accepts, reads, flushes, timers).
  /// Returns the number of dispatched callbacks, -1 on loop failure.
  int poll(int timeout_ms);
  /// poll() until request_stop(). Thread-safe to stop.
  void run();
  void request_stop() { loop_.request_stop(); }

  /// Advance fleet virtual time (epoch-lockstep, deterministic).
  void run_until(runtime::SimTime t) { fleet_.run_until(t); }
  runtime::SimTime now() const { return fleet_.now(); }

  const std::string& path() const { return config_.path; }
  std::size_t connection_count() const { return connections_.size(); }
  std::size_t slot_count() const { return slots_.size(); }
  bool slot_up(const std::string& name) const;
  const ipc::ProcessSupervisor* slot_supervisor(const std::string& name) const;

  /// Total event frames published into the fleet so far.
  std::uint64_t events_ingested() const { return events_ingested_; }

  /// Observe every event right after it is published into the fleet
  /// (benches timestamp the decode->publish path through this).
  using IngestTap = std::function<void(const runtime::Event&)>;
  void set_ingest_tap(IngestTap tap) { ingest_tap_ = std::move(tap); }

  core::ShardedFleet& fleet() { return fleet_; }

  /// Link-outage reports (observable "hub.link/<slot>"), one per
  /// up->down transition. Orderly kShutdown teardown is not an outage.
  const std::vector<core::ErrorReport>& link_errors() const { return link_errors_; }
  void set_error_notify(core::IErrorNotify* notify) { notify_ = notify; }
  void set_trace(runtime::TraceLog* trace) { trace_ = trace; }

  /// Hub instruments ("hub.*") merged with the fleet-wide snapshot.
  runtime::MetricsSnapshot metrics() const;
  runtime::MetricsRegistry& hub_metrics() { return metrics_; }

  /// Online diagnosis state fed by kSpectrum frames: per-slot and
  /// fleet-wide top-k suspect rankings plus health rollups, persisted
  /// across reconnects and freed when a slot is permanently failed.
  fleetdiag::FleetAggregator& diagnosis() { return diag_; }
  const fleetdiag::FleetAggregator& diagnosis() const { return diag_; }

  /// Closed-loop recovery actuation driven by the diagnosis above:
  /// converged per-slot suspects climb the §5 escalation ladder over
  /// kRecover/kRecoverAck (v3 links only). Ticked from poll() when
  /// enabled; tests may tick it directly at a chosen virtual time.
  RecoveryOrchestrator& recovery() { return recovery_; }
  const RecoveryOrchestrator& recovery() const { return recovery_; }

  EventLoop& loop() { return loop_; }

  // -- durability ----------------------------------------------------------
  /// Crash simulation for restart testing: abandon the journal without
  /// syncing or checkpointing, hard-drop every connection without
  /// goodbye frames, and release the listener. The process survives;
  /// the hub object is dead. A fresh hub on the same journal dir must
  /// recover to the pre-crash state.
  void simulate_crash();
  /// How the last start() recovered (attempted=false when the journal
  /// is disabled or was already recovered).
  const journal::JournalRecoveryInfo& journal_recovery() const { return recovery_info_; }
  /// The live journal, or null when disabled.
  journal::HubJournal* journal() { return journal_.get(); }

 private:
  struct Slot {
    std::string name;
    ipc::ProcessSupervisor supervisor;
    std::shared_ptr<std::atomic<bool>> gate;
    HubConnection* conn = nullptr;  ///< Live claimed connection, or null.
    std::int64_t earliest_reconnect_ns = 0;
    std::int64_t up_since_ns = 0;  ///< Wall stamp of the current claim.
    /// Consecutive sessions that crashed before surviving one liveness
    /// window — the hub-side crash-loop detector (see slot_down).
    int unstable_downs = 0;
    std::uint64_t probe_nonce = 0;
    std::int64_t probe_sent_ns = 0;
    bool probe_outstanding = false;
    bool acked_since_probe = true;  ///< No miss on the first probe.
    runtime::SimTime watermark = 0;
    std::uint32_t seq = 0;  ///< Outbound sequence toward this slot.
    /// Version the live connection negotiated (0 while down). The
    /// orchestrator reads this through its own slot state to keep
    /// kRecover off links that negotiated < kRecoverMinVersion.
    std::uint8_t negotiated_version = 0;
  };

  /// One accepted connection and its hub-side protocol state.
  struct Peer {
    std::unique_ptr<HubConnection> conn;
    Slot* slot = nullptr;   ///< Null until the kHello claims a slot.
    bool orderly = false;   ///< Peer announced kShutdown — not an outage.
  };

  void on_accept_ready(std::uint32_t events);
  void on_frame(Peer* peer, const ipc::Frame& f);
  void on_close(Peer* peer, CloseReason reason);
  void handle_hello(Peer* peer, const ipc::Frame& f);
  void reject(Peer* peer, const std::string& why);
  void probe_tick();
  void slot_down(Slot& slot, bool orderly);
  /// Fold one post-handshake state-bearing frame into the hub. Shared
  /// between the live path (after journaling) and replay.
  void apply_frame(Slot& slot, const ipc::Frame& f);
  void ingest(Slot& slot, const ipc::Frame& f);
  void auto_advance();
  void reap();
  void trace(runtime::TraceLevel level, const std::string& msg);

  // journal::ReplaySink — re-fold journaled inputs through the same
  // members the live path mutates.
  void replay_frame(const std::string& slot, const ipc::Frame& f) override;
  void replay_slot_up(const std::string& slot, std::uint8_t version) override;
  void replay_slot_down(const std::string& slot, bool orderly) override;
  void replay_tick(runtime::SimTime now) override;

  // journal::Checkpointable — the hub's own slot table.
  std::string checkpoint_name() const override { return "hub.slots"; }
  std::uint32_t checkpoint_version() const override { return 1; }
  void save_state(journal::Encoder& out) const override;
  bool load_state(journal::Decoder& in, std::uint32_t version) override;

  /// Load the latest checkpoint + replay the WAL tail, fail-closed.
  bool recover_from_journal();
  /// (Re)install the orchestrator send that targets live connections
  /// (replay swaps it for a phantom, then restores through this).
  void install_live_send();

  HubConfig config_;
  EventLoop loop_;
  core::ShardedFleet fleet_;
  runtime::MetricsRegistry metrics_;
  fleetdiag::FleetAggregator diag_;
  RecoveryOrchestrator recovery_;
  std::unique_ptr<journal::HubJournal> journal_;
  journal::JournalRecoveryInfo recovery_info_;
  /// Checkpoint participants in load order: diagnosis before recovery
  /// (the orchestrator reads the aggregator), the hub's slots last.
  std::vector<journal::Checkpointable*> journal_parts_;
  bool replaying_ = false;
  int listen_fd_ = -1;
  EventLoop::TimerId probe_timer_ = 0;
  bool stopping_ = false;

  std::map<std::string, std::unique_ptr<Slot>> slots_;
  std::unordered_map<Peer*, std::unique_ptr<Peer>> connections_;
  std::vector<std::unique_ptr<Peer>> dead_;  ///< Reaped at a safe point.

  std::uint64_t events_ingested_ = 0;
  std::uint64_t nonce_counter_ = 0;
  IngestTap ingest_tap_;
  std::vector<core::ErrorReport> link_errors_;
  core::IErrorNotify* notify_ = nullptr;
  runtime::TraceLog* trace_ = nullptr;

  // hub.* instruments (shared across connections).
  ConnectionCounters conn_counters_;
  runtime::Counter* spectra_frames_ = nullptr;
  runtime::Gauge* connections_gauge_ = nullptr;
  runtime::Counter* accepted_ = nullptr;
  runtime::Counter* rejected_ = nullptr;
  runtime::Counter* evicted_ = nullptr;
  runtime::Counter* outages_ = nullptr;
  runtime::Counter* probes_ = nullptr;
  runtime::Histogram* rtt_ns_ = nullptr;
};

}  // namespace trader::hub
