#include "hub/agent.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <memory>
#include <thread>

#include "faults/injector.hpp"
#include "fleetdiag/reporter.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "recovery/escalation.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/rng.hpp"
#include "runtime/scheduler.hpp"
#include "tv/keys.hpp"

namespace trader::hub {

namespace {

/// Keys a synthetic viewer presses (no power toggles: a publisher that
/// turns its own set off produces a silent, uninteresting stream).
constexpr tv::Key kViewerKeys[] = {
    tv::Key::kChannelUp, tv::Key::kChannelDown, tv::Key::kVolumeUp,
    tv::Key::kVolumeDown, tv::Key::kDigit1,     tv::Key::kDigit2,
};

}  // namespace

int run_hub_publisher(const PublisherConfig& config, PublisherStats* out) {
  PublisherStats stats;
  const int fd = ipc::connect_unix_retry(config.hub_path, config.connect_timeout_ms);
  if (fd < 0) {
    if (out != nullptr) *out = stats;
    return 1;
  }
  ipc::FramedSocket sock(fd);

  // Claim our slot.
  ipc::Frame hello;
  hello.type = ipc::FrameType::kHello;
  hello.detail = config.name;
  if (!sock.send(hello)) {
    if (out != nullptr) *out = stats;
    return 1;
  }
  ipc::Frame reply;
  if (sock.recv(reply, config.connect_timeout_ms) != ipc::FramedSocket::RecvStatus::kFrame ||
      reply.type != ipc::FrameType::kHelloAck) {
    stats.rejected = true;
    if (out != nullptr) *out = stats;
    return 1;
  }
  stats.negotiated_version = reply.version;

  // Host a private TV simulation; stream its bus traffic to the hub.
  runtime::Scheduler sched;
  runtime::EventBus bus;
  faults::FaultInjector injector{runtime::Rng(config.seed ^ 0xfa17)};
  tv::TvSystem tv(sched, bus, injector, config.tv);

  std::uint32_t seq = 0;
  bool link_ok = true;
  const auto forward = [&](const runtime::Event& ev, ipc::FrameType type) {
    if (!link_ok) return;
    ipc::Frame f;
    f.type = type;
    f.seq = ++seq;
    f.time = ev.timestamp;
    f.event = ev;
    if (sock.send(f)) {
      ++stats.events_sent;
    } else {
      link_ok = false;
    }
  };
  const auto in_sub = bus.subscribe("tv.input", [&](const runtime::Event& ev) {
    forward(ev, ipc::FrameType::kInputEvent);
  });
  const auto out_sub = bus.subscribe("tv.output", [&](const runtime::Event& ev) {
    forward(ev, ipc::FrameType::kOutputEvent);
  });

  // Spectrum streaming is gated on the *negotiated* version: against a
  // hub that only speaks v1 the instrumented program never runs and no
  // kSpectrum frame is ever sent (fail-closed on the sender side too).
  const bool stream_spectra = config.diag.enabled &&
                              stats.negotiated_version >= ipc::kSpectrumMinVersion;
  std::unique_ptr<diagnosis::SyntheticProgram> program;
  std::unique_ptr<fleetdiag::SpectrumReporter> reporter;
  observation::BlockCoverageRecorder coverage(0);
  if (stream_spectra) {
    program = std::make_unique<diagnosis::SyntheticProgram>(config.diag.program);
    if (config.diag.fault_feature != SIZE_MAX) {
      program->set_fault_in_feature(config.diag.fault_feature, config.diag.fault_index);
    }
    fleetdiag::ReporterConfig rc_cfg;
    rc_cfg.block_count = static_cast<std::uint32_t>(program->block_count());
    rc_cfg.flush_steps = config.diag.flush_steps;
    reporter = std::make_unique<fleetdiag::SpectrumReporter>(rc_cfg);
    coverage = observation::BlockCoverageRecorder(program->block_count());
  }
  const auto ship_spectra = [&](bool force) {
    if (reporter == nullptr || !link_ok) return;
    if (!force && !reporter->flush_due()) return;
    for (ipc::Frame& f : reporter->flush(seq, sched.now())) {
      if (!sock.send(f)) {
        link_ok = false;
        return;
      }
      ++stats.spectrum_frames;
    }
  };

  tv.start();
  runtime::Rng keys(config.seed);
  runtime::SimTime next_key = config.key_period;
  int rc = 0;

  // Idempotent recovery actuation: the hub may resend a command whose
  // ack was lost, so the last executed token's outcome is cached and
  // replayed instead of acting twice (a double restart is exactly the
  // storm the hub-side guards exist to prevent).
  std::uint64_t last_recover_token = 0;
  bool last_recover_ok = false;
  std::string last_recover_detail;
  const auto execute_recover = [&](const ipc::Frame& f, ipc::Frame& ack) {
    ack.type = ipc::FrameType::kRecoverAck;
    ack.seq = ++seq;
    ack.time = sched.now();
    ack.action = f.action;
    ack.token = f.token;
    ack.unit = f.unit;
    if (f.token != 0 && f.token == last_recover_token) {
      ack.ok = last_recover_ok;
      ack.detail = last_recover_detail;
      ++stats.recover_duplicates;
      return;
    }
    bool ok = false;
    std::string detail;
    switch (static_cast<recovery::RecoveryAction>(f.action)) {
      case recovery::RecoveryAction::kResync:
        // Cheapest rung: re-announce believed state. Does not touch the
        // program fault — a real defect survives a state resync.
        tv.republish_outputs();
        ok = true;
        detail = "resynced";
        break;
      case recovery::RecoveryAction::kRestartUnit: {
        if (program == nullptr) {
          detail = "no instrumented program";
          break;
        }
        // Restarting the unit repairs the fault only when the suspect
        // block actually lives in the faulty feature — recovery
        // precision is measurable against ground truth.
        const std::size_t feature = program->feature_of(f.block);
        const bool repairs = program->has_fault() && feature != SIZE_MAX &&
                             program->feature_of(program->fault_block()) == feature;
        if (repairs) {
          program->clear_fault();
          ++stats.recover_repairs;
          detail = "repaired " + f.unit;
        } else {
          detail = "restarted " + f.unit;
        }
        ok = true;
        break;
      }
      case recovery::RecoveryAction::kRestartDependents:
      case recovery::RecoveryAction::kFullRestart:
        // Brute force: restarting the dependency closure (or everything)
        // repairs regardless of where the fault lives.
        if (program != nullptr && program->has_fault()) {
          program->clear_fault();
          ++stats.recover_repairs;
        }
        tv.republish_outputs();
        ok = true;
        detail = "restarted all";
        break;
      default:
        detail = "unsupported action";
        break;
    }
    ack.ok = ok;
    ack.detail = detail;
    last_recover_token = f.token;
    last_recover_ok = ok;
    last_recover_detail = detail;
    ++stats.recover_commands;
  };

  while (link_ok && sched.now() < config.horizon) {
    const runtime::SimTime target =
        std::min(config.horizon, sched.now() + config.step);
    if (config.key_period > 0 && sched.now() >= next_key) {
      const auto pick = static_cast<std::size_t>(
          keys.uniform_int(0, static_cast<std::int64_t>(std::size(kViewerKeys)) - 1));
      tv.press(kViewerKeys[pick]);
      if (reporter != nullptr) {
        // One instrumented program step per key press: the pressed key
        // activates one feature of the synthetic 60k-block program.
        const std::size_t feature = pick % program->feature_count();
        const bool err = program->run_step(feature, coverage);
        reporter->end_step_from(coverage, err);
        // Drop (not archive) the drained step: a long-running publisher
        // must not grow a step matrix it never reads.
        coverage.clear();
        ++stats.spectrum_steps;
        ship_spectra(false);
      }
      next_key += config.key_period;
    }
    sched.run_until(target);  // bus callbacks stream events inline

    // Service hub traffic: liveness probes and eviction notices.
    for (;;) {
      ipc::Frame f;
      const auto st = sock.recv(f, 0);
      if (st == ipc::FramedSocket::RecvStatus::kTimeout) break;
      if (st != ipc::FramedSocket::RecvStatus::kFrame) {
        stats.evicted = true;
        link_ok = false;
        rc = 2;
        break;
      }
      if (f.type == ipc::FrameType::kHeartbeat) {
        ipc::Frame ack;
        ack.type = ipc::FrameType::kHeartbeatAck;
        ack.seq = ++seq;
        ack.nonce = f.nonce;
        if (!sock.send(ack)) {
          link_ok = false;
          rc = 2;
          break;
        }
        ++stats.probes_answered;
      } else if (f.type == ipc::FrameType::kRecover) {
        // Hub-commanded recovery (v3 links only — the hub version-gates
        // its side, so a v2 publisher never reaches this branch).
        ipc::Frame ack;
        execute_recover(f, ack);
        if (!sock.send(ack)) {
          link_ok = false;
          rc = 2;
          break;
        }
      } else if (f.type == ipc::FrameType::kShutdown) {
        stats.evicted = true;
        link_ok = false;
        rc = 2;
        break;
      }
      // Anything else (stray acks) is ignored: the hub never drives us.
    }
    if (config.pace_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(config.pace_us));
    }
  }

  bus.unsubscribe(in_sub);
  bus.unsubscribe(out_sub);
  ship_spectra(true);  // drain the spectrum backlog before goodbye
  if (link_ok) {
    ipc::Frame bye;
    bye.type = ipc::FrameType::kShutdown;
    bye.seq = ++seq;
    bye.detail = "horizon reached";
    sock.send(bye);
  }
  if (out != nullptr) *out = stats;
  return rc;
}

}  // namespace trader::hub
