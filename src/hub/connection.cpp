#include "hub/connection.hpp"

#include <sys/epoll.h>
#include <sys/uio.h>

#include <utility>

namespace trader::hub {

namespace {

constexpr int kFlushIovBatch = 64;  ///< Buffers coalesced per writev.

}  // namespace

const char* to_string(CloseReason r) {
  switch (r) {
    case CloseReason::kPeerClosed:
      return "peer closed";
    case CloseReason::kProtocolError:
      return "protocol error";
    case CloseReason::kBackpressure:
      return "backpressure";
    case CloseReason::kEvicted:
      return "evicted";
    case CloseReason::kWriteFailed:
      return "write failed";
  }
  return "?";
}

HubConnection::HubConnection(EventLoop& loop, int fd, ConnectionLimits limits,
                             ConnectionCounters counters, FrameHandler on_frame,
                             CloseHandler on_close)
    : loop_(loop),
      fd_(fd),
      limits_(limits),
      counters_(counters),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {
  if (limits_.write_high_water < limits_.write_soft_water) {
    limits_.write_high_water = limits_.write_soft_water;
  }
  ipc::set_nonblocking(fd_, true);
  loop_.add_fd(fd_, EPOLLIN, [this](std::uint32_t events) { on_events(events); });
}

HubConnection::~HubConnection() {
  if (fd_ >= 0) {
    loop_.defer_close(fd_);
    fd_ = -1;
  }
}

void HubConnection::close(CloseReason reason) {
  if (fd_ < 0) return;
  loop_.defer_close(fd_);
  fd_ = -1;
  write_queue_.clear();
  queued_bytes_ = 0;
  if (on_close_) on_close_(reason);
}

void HubConnection::on_events(std::uint32_t events) {
  if (fd_ < 0) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    close(CloseReason::kPeerClosed);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flush()) return;  // connection died during flush
  }
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) handle_readable();
}

void HubConnection::handle_readable() {
  std::uint64_t batch = 0;
  std::uint8_t buf[16384];
  for (;;) {
    std::size_t n = 0;
    const ipc::IoStatus status = ipc::read_some(fd_, buf, sizeof(buf), n);
    if (status == ipc::IoStatus::kWouldBlock) break;
    if (status == ipc::IoStatus::kClosed || status == ipc::IoStatus::kError) {
      // EOF with a partial frame buffered is a truncated stream; the
      // decoder never surfaces partial frames (fail closed).
      if (batch > 0 && counters_.batch_frames != nullptr) {
        counters_.batch_frames->record(static_cast<double>(batch));
      }
      close(CloseReason::kPeerClosed);
      return;
    }
    if (counters_.bytes_in != nullptr) counters_.bytes_in->inc(n);
    decoder_.feed(buf, n);

    for (;;) {
      ipc::Frame f;
      const ipc::DecodeStatus ds = decoder_.next(f);
      if (ds == ipc::DecodeStatus::kNeedMore) break;
      if (ipc::is_decode_error(ds)) {
        if (counters_.decode_errors != nullptr) counters_.decode_errors->inc();
        close(CloseReason::kProtocolError);
        return;
      }
      ++frames_received_;
      ++batch;
      if (counters_.frames_in != nullptr) counters_.frames_in->inc();
      on_frame_(f);
      if (fd_ < 0) return;  // on_frame closed us (policy rejection)
    }
    if (n < sizeof(buf)) break;  // short read — the socket is drained
  }
  if (batch > 0 && counters_.batch_frames != nullptr) {
    counters_.batch_frames->record(static_cast<double>(batch));
  }
}

bool HubConnection::send(const ipc::Frame& f) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> bytes = ipc::encode_frame(f);
  if (bytes.empty()) return false;

  queued_bytes_ += bytes.size();
  write_queue_.push_back(std::move(bytes));
  ++frames_sent_;
  if (counters_.frames_out != nullptr) counters_.frames_out->inc();

  if (queued_bytes_ > limits_.write_soft_water && !over_soft_water_) {
    // One backpressure episode per soft-water crossing, not one count
    // per queued frame — mirrors the one-outage-per-down policy.
    over_soft_water_ = true;
    if (counters_.backpressure != nullptr) counters_.backpressure->inc();
  }
  if (!flush()) return false;
  if (queued_bytes_ > limits_.write_high_water) {
    close(CloseReason::kBackpressure);
    return false;
  }
  return true;
}

bool HubConnection::flush() {
  while (!write_queue_.empty()) {
    iovec iov[kFlushIovBatch];
    int iovcnt = 0;
    std::size_t first_offset = write_offset_;
    for (const auto& buf : write_queue_) {
      if (iovcnt == kFlushIovBatch) break;
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(buf.data()) + first_offset;
      iov[iovcnt].iov_len = buf.size() - first_offset;
      first_offset = 0;  // only the front buffer is partially consumed
      ++iovcnt;
    }

    std::size_t n = 0;
    const ipc::IoStatus status = ipc::writev_some(fd_, iov, iovcnt, n);
    if (status == ipc::IoStatus::kWouldBlock) break;
    if (status != ipc::IoStatus::kOk) {
      close(status == ipc::IoStatus::kClosed ? CloseReason::kPeerClosed
                                             : CloseReason::kWriteFailed);
      return false;
    }
    if (counters_.bytes_out != nullptr) counters_.bytes_out->inc(n);
    queued_bytes_ -= n;
    while (n > 0 && !write_queue_.empty()) {
      const std::size_t front_left = write_queue_.front().size() - write_offset_;
      if (n >= front_left) {
        n -= front_left;
        write_offset_ = 0;
        write_queue_.pop_front();
      } else {
        write_offset_ += n;
        n = 0;
      }
    }
  }
  if (queued_bytes_ <= limits_.write_soft_water) over_soft_water_ = false;
  update_write_interest();
  return true;
}

void HubConnection::update_write_interest() {
  if (fd_ < 0) return;
  const bool want = !write_queue_.empty();
  if (want == write_interest_) return;
  write_interest_ = want;
  loop_.modify_fd(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

}  // namespace trader::hub
