#include "hub/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace trader::hub {

namespace {

constexpr int kMaxEvents = 128;

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || timer_fd_ < 0 || wake_fd_ < 0) return;

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  for (const int fd : pending_close_) ::close(fd);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::int64_t EventLoop::now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

void EventLoop::set_metrics(runtime::MetricsRegistry* m) {
  loop_ns_ = m != nullptr ? &m->histogram("hub.loop_ns") : nullptr;
}

bool EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  if (epoll_fd_ < 0 || fd < 0 || fds_.count(fd) != 0) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  fds_.emplace(fd, std::move(cb));
  return true;
}

bool EventLoop::modify_fd(int fd, std::uint32_t events) {
  if (epoll_fd_ < 0 || fds_.count(fd) == 0) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::defer_close(int fd) {
  remove_fd(fd);
  if (in_poll_) {
    pending_close_.push_back(fd);
  } else {
    ::close(fd);
  }
}

EventLoop::TimerId EventLoop::add_timer(std::int64_t delay_ns, std::int64_t interval_ns,
                                        TimerCallback cb) {
  const TimerId id = next_timer_id_++;
  const std::int64_t deadline = now_ns() + (delay_ns > 0 ? delay_ns : 0);
  timers_.emplace(deadline, Timer{id, interval_ns > 0 ? interval_ns : 0, std::move(cb)});
  timer_deadlines_[id] = deadline;
  arm_timerfd();
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  const auto it = timer_deadlines_.find(id);
  if (it == timer_deadlines_.end()) return;
  auto [lo, hi] = timers_.equal_range(it->second);
  for (auto t = lo; t != hi; ++t) {
    if (t->second.id == id) {
      timers_.erase(t);
      break;
    }
  }
  timer_deadlines_.erase(it);
  arm_timerfd();
}

void EventLoop::arm_timerfd() {
  if (timer_fd_ < 0) return;
  itimerspec spec{};
  if (!timers_.empty()) {
    // Absolute arm to the earliest deadline; a deadline already in the
    // past must still tick, so clamp to 1ns instead of disarming.
    std::int64_t at = timers_.begin()->first;
    if (at <= now_ns()) at = now_ns();
    if (at <= 0) at = 1;
    spec.it_value.tv_sec = at / 1'000'000'000LL;
    spec.it_value.tv_nsec = at % 1'000'000'000LL;
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) spec.it_value.tv_nsec = 1;
  }
  ::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
}

int EventLoop::dispatch_timers() {
  // Drain the expiration count (level-triggered fd must be read).
  std::uint64_t expirations = 0;
  while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
  }

  int fired = 0;
  // Snapshot "due" against a fixed now: a stalled loop owes a periodic
  // one fire per missed period, and each catch-up fire re-registers at
  // deadline+interval (still <= now until caught up), so the outer
  // rounds drain the whole debt in this one dispatch. The fixed
  // snapshot guarantees termination — deadlines only move forward.
  const std::int64_t now = now_ns();
  for (;;) {
    // Collect this round first: callbacks may add/cancel timers.
    std::vector<std::pair<std::int64_t, Timer>> due;
    while (!timers_.empty() && timers_.begin()->first <= now) {
      auto it = timers_.begin();
      timer_deadlines_.erase(it->second.id);
      due.emplace_back(it->first, std::move(it->second));
      timers_.erase(it);
    }
    if (due.empty()) break;
    for (auto& [deadline, timer] : due) {
      if (timer.interval_ns > 0) {
        // Re-register before the callback runs so the callback can
        // cancel its own timer; next deadline sits on the original
        // schedule grid — never `now + interval` (no drift).
        const std::int64_t next = deadline + timer.interval_ns;
        timer_deadlines_[timer.id] = next;
        timers_.emplace(next, timer);
      }
      ++fired;
      timer.cb();
    }
  }
  arm_timerfd();
  return fired;
}

int EventLoop::poll(int timeout_ms) {
  if (epoll_fd_ < 0) return -1;
  epoll_event events[kMaxEvents];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;

  const std::int64_t t0 = now_ns();
  in_poll_ = true;
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drained = 0;
      while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    if (fd == timer_fd_) {
      dispatched += dispatch_timers();
      continue;
    }
    // A callback earlier in this batch may have deregistered this fd —
    // skip the stale readiness record.
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    ++dispatched;
    it->second(events[i].events);
  }
  in_poll_ = false;
  for (const int fd : pending_close_) ::close(fd);
  pending_close_.clear();

  ++iterations_;
  if (loop_ns_ != nullptr && dispatched > 0) {
    loop_ns_->record(static_cast<double>(now_ns() - t0));
  }
  return dispatched;
}

void EventLoop::run() {
  stop_requested_.store(false, std::memory_order_relaxed);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (poll(-1) < 0) break;
  }
}

void EventLoop::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake();
}

}  // namespace trader::hub
