// HubPublisher: the SUO side of a hub link.
//
// Where src/ipc's SuoServer *answers* a monitor that drives virtual
// time in lockstep, a hub publisher *pushes*: it hosts its own
// simulated TV, connects out to the AwarenessHub, claims a slot with
// kHello, and streams every tv.input / tv.output event as a frame
// while answering the hub's liveness probes. This is the ArVI-style
// topology — many instrumented systems feeding one central monitor —
// and it is what a real fielded SUO would run: no knowledge of the
// fleet, just "send what you observe, answer pings, say goodbye".
//
// run_hub_publisher() is the whole child-process body used by the
// hub_host example (fork per SUO) and by in-process test threads.
#pragma once

#include <cstdint>
#include <string>

#include "diagnosis/synthetic_program.hpp"
#include "runtime/sim_time.hpp"
#include "tv/tv_system.hpp"

namespace trader::hub {

/// Optional spectrum streaming (fleet-level online diagnosis). When
/// enabled the publisher also hosts a SyntheticProgram: every synthetic
/// key press runs one instrumented program step whose block coverage +
/// error verdict is shipped to the hub as kSpectrum frames — but only
/// when the negotiated protocol version carries them (a v1 hub simply
/// never sees spectra; the event stream is unaffected).
struct PublisherDiagConfig {
  bool enabled = false;
  diagnosis::SyntheticProgramConfig program;
  /// Seed the program fault into this feature (SIZE_MAX = no fault).
  std::size_t fault_feature = SIZE_MAX;
  std::size_t fault_index = 0;
  /// Ship pending spectra every N sealed steps.
  std::size_t flush_steps = 8;
};

struct PublisherConfig {
  std::string hub_path;    ///< AF_UNIX path of the hub listener.
  std::string name;        ///< Slot to claim (kHello peer name).
  tv::TvConfig tv;
  std::uint64_t seed = 7;  ///< Key-press stream seed (per publisher).
  /// Virtual time per loop iteration and total virtual horizon.
  runtime::SimDuration step = runtime::msec(20);
  runtime::SimTime horizon = runtime::msec(3000);
  /// A seeded remote-control key press every `key_period` of virtual
  /// time (0 = no synthetic input).
  runtime::SimDuration key_period = runtime::msec(200);
  /// Wall-clock pause per iteration, microseconds — paces the stream so
  /// liveness probing has time to happen (0 = stream flat out).
  std::int64_t pace_us = 0;
  int connect_timeout_ms = 2000;
  PublisherDiagConfig diag;
};

struct PublisherStats {
  std::uint64_t events_sent = 0;
  std::uint64_t probes_answered = 0;
  std::uint64_t spectrum_steps = 0;   ///< Sealed instrumented steps.
  std::uint64_t spectrum_frames = 0;  ///< kSpectrum frames shipped.
  std::uint64_t recover_commands = 0;    ///< kRecover frames executed.
  std::uint64_t recover_repairs = 0;     ///< Executions that cleared the fault.
  std::uint64_t recover_duplicates = 0;  ///< Replayed cached acks (hub retries).
  std::uint8_t negotiated_version = 0;  ///< From the kHelloAck.
  bool rejected = false;   ///< Hub refused the kHello.
  bool evicted = false;    ///< Hub closed the link before the horizon.
};

/// Connect, claim the slot, stream to the horizon, say kShutdown.
/// Returns 0 on an orderly run, 1 on connect/handshake failure, 2 when
/// the hub dropped the link mid-stream. `out` (optional) receives the
/// final stats.
int run_hub_publisher(const PublisherConfig& config, PublisherStats* out = nullptr);

}  // namespace trader::hub
