// HubPublisher: the SUO side of a hub link.
//
// Where src/ipc's SuoServer *answers* a monitor that drives virtual
// time in lockstep, a hub publisher *pushes*: it hosts its own
// simulated TV, connects out to the AwarenessHub, claims a slot with
// kHello, and streams every tv.input / tv.output event as a frame
// while answering the hub's liveness probes. This is the ArVI-style
// topology — many instrumented systems feeding one central monitor —
// and it is what a real fielded SUO would run: no knowledge of the
// fleet, just "send what you observe, answer pings, say goodbye".
//
// run_hub_publisher() is the whole child-process body used by the
// hub_host example (fork per SUO) and by in-process test threads.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/sim_time.hpp"
#include "tv/tv_system.hpp"

namespace trader::hub {

struct PublisherConfig {
  std::string hub_path;    ///< AF_UNIX path of the hub listener.
  std::string name;        ///< Slot to claim (kHello peer name).
  tv::TvConfig tv;
  std::uint64_t seed = 7;  ///< Key-press stream seed (per publisher).
  /// Virtual time per loop iteration and total virtual horizon.
  runtime::SimDuration step = runtime::msec(20);
  runtime::SimTime horizon = runtime::msec(3000);
  /// A seeded remote-control key press every `key_period` of virtual
  /// time (0 = no synthetic input).
  runtime::SimDuration key_period = runtime::msec(200);
  /// Wall-clock pause per iteration, microseconds — paces the stream so
  /// liveness probing has time to happen (0 = stream flat out).
  std::int64_t pace_us = 0;
  int connect_timeout_ms = 2000;
};

struct PublisherStats {
  std::uint64_t events_sent = 0;
  std::uint64_t probes_answered = 0;
  bool rejected = false;   ///< Hub refused the kHello.
  bool evicted = false;    ///< Hub closed the link before the horizon.
};

/// Connect, claim the slot, stream to the horizon, say kShutdown.
/// Returns 0 on an orderly run, 1 on connect/handshake failure, 2 when
/// the hub dropped the link mid-stream. `out` (optional) receives the
/// final stats.
int run_hub_publisher(const PublisherConfig& config, PublisherStats* out = nullptr);

}  // namespace trader::hub
