// RecoveryOrchestrator: the hub-side act half of observe -> diagnose -> act.
//
// PR 7 made the hub *see* fleet-wide fault suspects (FleetAggregator's
// online SFL rankings); this module makes it *act* on them — the §5
// "stronger feedback mechanisms" end of the paper's model spectrum, and
// the same architecture shape AWDRAT demonstrates (diagnosis feeding an
// adaptive recovery layer). Per slot, the orchestrator watches the
// diagnosis converge, then climbs the §5 escalation ladder
// (resync -> restart component -> restart dependents -> full restart ->
// give up) against the remote SUO over kRecover/kRecoverAck frames
// (protocol v3, version-gated: a v2 peer is observed but never actuated).
//
// Acting on a fleet is more dangerous than acting on one box, so every
// decision passes four guards, in order:
//
//   1. Convergence gate — act only when the slot's top suspect has been
//      stable for `stable_reports` reports with no ranking churn, and
//      only when there is *new* error evidence since the last action
//      (otherwise a successful repair would be "rewarded" with another
//      restart forever).
//   2. Per-slot cooldown — consecutive actions on one slot are spaced
//      by `cooldown` plus a seeded per-slot jitter, so a correlated
//      fleet-wide fault does not re-actuate every slot on the same tick
//      forever (the retry waves decorrelate deterministically).
//   3. Version gate — kRecover is only sent to peers that negotiated
//      >= ipc::kRecoverMinVersion.
//   4. Token bucket — at most `token_capacity` actions in a burst and
//      one per `token_refill_every` of virtual time across the whole
//      fleet: a storm can cost at most the budget, never a restart
//      avalanche.
//
// Failure handling is idempotent: every command carries a fresh token
// the ack must echo; a lost command is retried with the *same* token up
// to `max_retries`, duplicate or stale acks are counted and dropped,
// and a slot whose recovery keeps failing (acks ok=false or retries
// exhausted) flaps into quarantine — still observed, never again
// actuated (graceful degradation, not a restart loop).
//
// Everything is keyed on virtual time and ordered maps, so a lockstep
// campaign driving the hub produces byte-identical action sequences at
// any shard count; hub.recovery.* metrics are wall-clock-free but are
// still excluded from golden-trace fingerprints like every other hub.*
// transport metric.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "fleetdiag/aggregator.hpp"
#include "ipc/wire.hpp"
#include "journal/checkpoint.hpp"
#include "recovery/escalation.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_time.hpp"

namespace trader::hub {

/// Operator allow/deny mask over the §5 ladder rungs (the ROADMAP
/// "operator policy hooks" follow-up). Enforced at actuation time: a
/// denied rung is skipped upward to the next allowed one (each skip
/// counts in stats.policy_denied / hub.recovery.policy_denied), and
/// when nothing at or above the escalator's choice is allowed the slot
/// is treated as ladder-exhausted — give-up and quarantine. An
/// operator that denies everything has asked for an observe-only hub
/// that flags sick slots for service instead of silently spinning.
struct RecoveryPolicy {
  bool allow_resync = true;
  bool allow_restart_unit = true;
  bool allow_restart_dependents = true;
  bool allow_full_restart = true;

  bool allows(recovery::RecoveryAction action) const;
};

struct RecoveryConfig {
  /// Master switch; disabled orchestrators ignore ticks entirely (the
  /// default keeps existing hub deployments byte-identical).
  bool enabled = false;

  /// Convergence gate: reports the slot's top suspect must survive
  /// unchanged (same component, no ranking churn) before it is acted on.
  std::uint64_t stable_reports = 3;

  /// Fleet-wide token bucket on virtual time: capacity caps the burst,
  /// one token refills per `token_refill_every`. This is the storm
  /// guard — a correlated fault across the fleet can trigger at most
  /// `token_capacity` actions, then one per refill period.
  int token_capacity = 4;
  runtime::SimDuration token_refill_every = runtime::msec(500);

  /// Per-slot spacing between actions, plus a deterministic per-slot
  /// jitter in [0, cooldown_jitter] derived from `seed` so correlated
  /// slots decorrelate instead of re-synchronizing every window.
  runtime::SimDuration cooldown = runtime::sec(2);
  runtime::SimDuration cooldown_jitter = runtime::msec(250);
  std::uint64_t seed = 0x7ec0;

  /// Idempotent command handling: a command unacked for `ack_timeout`
  /// is resent with the same token up to `max_retries` times, then
  /// counted as a flap.
  runtime::SimDuration ack_timeout = runtime::msec(500);
  int max_retries = 2;

  /// Failed recoveries (ok=false acks or exhausted retries) tolerated
  /// before the slot is quarantined.
  int flap_threshold = 3;

  /// Reports without new error evidence after an action before the
  /// action is deemed to have worked (decays the escalation ladder).
  std::uint64_t success_reports = 4;

  /// Ladder policy per (slot, suspect-component).
  recovery::EscalationConfig escalation;

  /// Operator mask over which rungs may actually be actuated.
  RecoveryPolicy policy;

  /// Bound on the retained action log (oldest kept; campaigns read it).
  std::size_t action_log_limit = 8192;
};

/// One actuation decision, recorded in virtual time (deterministic).
struct RecoveryActionRecord {
  runtime::SimTime at = 0;
  std::string slot;
  recovery::RecoveryAction action = recovery::RecoveryAction::kResync;
  std::string unit;
  std::uint32_t block = 0;
  std::uint64_t token = 0;
  bool retry = false;
};

/// Lifetime counters (mirrored into hub.recovery.* when a registry was
/// supplied to the constructor).
struct RecoveryStats {
  std::uint64_t sent = 0;             ///< Commands issued (excl. retries).
  std::uint64_t retries = 0;          ///< Same-token resends after timeout.
  std::uint64_t timeouts = 0;         ///< Ack deadlines missed.
  std::uint64_t lost = 0;             ///< Outstanding commands dropped with the link.
  std::uint64_t acked_ok = 0;
  std::uint64_t acked_fail = 0;
  std::uint64_t duplicate_acks = 0;   ///< Stale/unknown tokens dropped.
  std::uint64_t suppressed_unconverged = 0;
  std::uint64_t suppressed_cooldown = 0;
  std::uint64_t suppressed_tokens = 0;
  std::uint64_t suppressed_version = 0;
  std::uint64_t quarantined = 0;      ///< Slots ever quarantined.
  std::uint64_t give_ups = 0;         ///< Ladder exhausted.
  std::uint64_t recovered = 0;        ///< Quiet periods that decayed the ladder.
  std::uint64_t send_failures = 0;
  std::uint64_t policy_denied = 0;    ///< Ladder rungs skipped by RecoveryPolicy.
};

class RecoveryOrchestrator : public journal::Checkpointable {
 public:
  /// Deliver one frame toward a slot's live connection; false when the
  /// link is gone (the command is then dropped, not queued — the next
  /// tick re-decides against fresh state).
  using SendFn = std::function<bool(const std::string& slot, const ipc::Frame&)>;
  /// Map a suspect block id to the component (RecoverableUnit) name the
  /// SUO should act on.
  using ComponentOf = std::function<std::string(std::size_t block)>;

  RecoveryOrchestrator(RecoveryConfig config, fleetdiag::FleetAggregator& diag,
                       runtime::MetricsRegistry* metrics = nullptr);

  void set_send(SendFn fn);
  void set_component_of(ComponentOf fn);

  // -- slot lifecycle (driven by the hub) ---------------------------------
  /// The slot's connection completed its handshake at `version`.
  void slot_up(const std::string& slot, std::uint8_t negotiated_version);
  /// The slot's connection dropped; an outstanding command is lost (the
  /// SUO may or may not have executed it — the token makes a late
  /// re-execution harmless).
  void slot_down(const std::string& slot);
  /// The hub gave up on the slot permanently: drop all orchestration
  /// and escalation state (mirrors FleetAggregator::retire_slot).
  void retire_slot(const std::string& slot);

  /// Fold one kRecoverAck from `slot`. Non-ack frames are ignored.
  void on_ack(const std::string& slot, const ipc::Frame& frame);

  /// One actuation pass at virtual time `now`: handle ack timeouts,
  /// then walk slots in name order and issue at most one command per
  /// eligible slot. Returns the number of frames sent (incl. retries).
  std::size_t tick(runtime::SimTime now);

  // -- introspection -------------------------------------------------------
  bool enabled() const { return config_.enabled; }
  bool quarantined(const std::string& slot) const;
  std::size_t quarantined_count() const;
  bool has_outstanding(const std::string& slot) const;
  RecoveryStats stats() const;
  std::vector<RecoveryActionRecord> actions() const;
  const RecoveryConfig& config() const { return config_; }

  // Checkpointable (the durable hub snapshots ladder positions, token
  // bucket, cooldowns, quarantine set, outstanding commands and the
  // action log; config and the send/component_of hooks are process
  // wiring and must match across the restart).
  std::string checkpoint_name() const override { return "hub.recovery"; }
  std::uint32_t checkpoint_version() const override { return 1; }
  void save_state(journal::Encoder& out) const override;
  bool load_state(journal::Decoder& in, std::uint32_t version) override;

 private:
  struct SlotState {
    std::uint8_t negotiated_version = 0;
    bool up = false;
    bool quarantined = false;
    int flaps = 0;
    runtime::SimDuration jitter = 0;   ///< Seeded per-slot cooldown extra.
    runtime::SimTime cooldown_until = 0;

    // Convergence candidate.
    bool has_candidate = false;
    std::string candidate;
    std::uint32_t candidate_block = 0;
    std::uint64_t candidate_reports = 0;
    std::uint64_t candidate_churn = 0;

    // Outstanding command (idempotency token pending an ack).
    bool outstanding = false;
    std::uint64_t token = 0;
    std::uint8_t action = 0;
    std::string unit;
    std::uint32_t block = 0;
    runtime::SimTime sent_at = 0;
    int retries = 0;

    // Post-action damping: act again only on *new* error evidence.
    // The error watermark persists past a quiet-success decay — the
    // cumulative error count never re-justifies a finished recovery.
    bool acted = false;
    std::string acted_unit;
    std::uint64_t error_steps_at_action = 0;
    std::uint64_t reports_at_action = 0;

    /// Escalator keys issued for this slot (forgotten on retire).
    std::set<std::string> ladder_keys;
  };

  void refill_tokens_locked(runtime::SimTime now);
  void quarantine_locked(SlotState& st, const std::string& slot);
  void record_action_locked(const RecoveryActionRecord& rec);
  void fail_outstanding_locked(SlotState& st, const std::string& slot);
  bool send_locked(const std::string& slot, SlotState& st, runtime::SimTime now, bool retry);

  RecoveryConfig config_;
  fleetdiag::FleetAggregator& diag_;
  mutable std::mutex mu_;
  SendFn send_;
  ComponentOf component_of_;
  recovery::RecoveryEscalator escalator_;
  std::map<std::string, SlotState> slots_;
  std::vector<RecoveryActionRecord> actions_;
  RecoveryStats stats_;
  std::uint64_t token_counter_ = 0;
  std::int64_t tokens_ = 0;
  runtime::SimTime last_refill_ = 0;

  // hub.recovery.* instruments (null without a registry).
  runtime::Counter* sent_ctr_ = nullptr;
  runtime::Counter* retries_ctr_ = nullptr;
  runtime::Counter* timeouts_ctr_ = nullptr;
  runtime::Counter* acked_ok_ctr_ = nullptr;
  runtime::Counter* acked_fail_ctr_ = nullptr;
  runtime::Counter* duplicate_acks_ctr_ = nullptr;
  runtime::Counter* suppressed_ctr_ = nullptr;
  runtime::Counter* quarantined_ctr_ = nullptr;
  runtime::Counter* give_ups_ctr_ = nullptr;
  runtime::Counter* recovered_ctr_ = nullptr;
  runtime::Counter* policy_denied_ctr_ = nullptr;
  runtime::Gauge* quarantined_gauge_ = nullptr;
};

}  // namespace trader::hub
