#include "hub/hub.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "ipc/transport.hpp"

namespace trader::hub {

namespace {

/// Bucket edges for frames-per-drain batches (power of two grid).
std::vector<double> batch_bounds() { return {1, 2, 4, 8, 16, 32, 64, 128, 256}; }

std::string auto_path() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return "@trader-hub-" + std::to_string(::getpid()) + "-" + std::to_string(n);
}

}  // namespace

AwarenessHub::AwarenessHub(HubConfig config)
    : config_(std::move(config)),
      fleet_(core::ShardedFleetConfig{config_.shards, config_.epoch, config_.seed}),
      diag_(config_.diag, &metrics_),
      recovery_(config_.recovery, diag_, &metrics_) {
  if (config_.path.empty()) config_.path = auto_path();
  install_live_send();
  if (config_.journal.enabled) {
    journal_ = std::make_unique<journal::HubJournal>(config_.journal, &metrics_);
  }
  journal_parts_ = {&diag_, &recovery_, this};
  loop_.set_metrics(&metrics_);
  spectra_frames_ = &metrics_.counter("hub.spectra_frames");
  conn_counters_.frames_in = &metrics_.counter("hub.frames_in");
  conn_counters_.frames_out = &metrics_.counter("hub.frames_out");
  conn_counters_.bytes_in = &metrics_.counter("hub.bytes_in");
  conn_counters_.bytes_out = &metrics_.counter("hub.bytes_out");
  conn_counters_.decode_errors = &metrics_.counter("hub.decode_errors");
  conn_counters_.backpressure = &metrics_.counter("hub.backpressure");
  conn_counters_.batch_frames = &metrics_.histogram("hub.batch_frames", batch_bounds());
  connections_gauge_ = &metrics_.gauge("hub.connections");
  accepted_ = &metrics_.counter("hub.accepted");
  rejected_ = &metrics_.counter("hub.rejected");
  evicted_ = &metrics_.counter("hub.evicted");
  outages_ = &metrics_.counter("hub.outages");
  probes_ = &metrics_.counter("hub.probes");
  rtt_ns_ = &metrics_.histogram("hub.rtt_ns");
}

AwarenessHub::~AwarenessHub() { stop(); }

std::shared_ptr<std::atomic<bool>> AwarenessHub::add_slot(const std::string& name) {
  auto it = slots_.find(name);
  if (it != slots_.end()) return it->second->gate;
  auto slot = std::make_unique<Slot>();
  slot->name = name;
  // Derive the jitter stream per slot so backoff is deterministic per
  // slot name but decorrelated across the fleet.
  ipc::SupervisorConfig sup = config_.supervisor;
  sup.jitter_seed ^= std::hash<std::string>{}(name);
  slot->supervisor = ipc::ProcessSupervisor(sup);
  slot->gate = std::make_shared<std::atomic<bool>>(false);
  auto* raw = slot.get();
  slots_.emplace(name, std::move(slot));
  return raw->gate;
}

std::shared_ptr<std::atomic<bool>> AwarenessHub::slot_gate(const std::string& name) {
  return add_slot(name);
}

core::AwarenessMonitor& AwarenessHub::add_monitor(const std::string& slot,
                                                  const std::string& aspect,
                                                  core::MonitorBuilder builder) {
  add_slot(slot);
  return fleet_.add_monitor(aspect, std::move(builder));
}

void AwarenessHub::install_live_send() {
  recovery_.set_send([this](const std::string& name, const ipc::Frame& f) {
    auto it = slots_.find(name);
    if (it == slots_.end() || it->second->conn == nullptr) return false;
    ipc::Frame out = f;
    out.seq = ++it->second->seq;
    return it->second->conn->send(out);
  });
}

bool AwarenessHub::start() {
  if (listen_fd_ >= 0) return true;
  if (!loop_.valid()) return false;
  if (journal_ != nullptr && !journal_->active() && !recover_from_journal()) {
    return false;  // fail closed: a damaged journal must not serve guessed state
  }
  listen_fd_ = ipc::listen_unix(config_.path, config_.listen_backlog);
  if (listen_fd_ < 0) return false;
  ipc::set_nonblocking(listen_fd_, true);
  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t ev) { on_accept_ready(ev); });
  if (config_.probe_liveness) {
    const std::int64_t interval = config_.heartbeat_interval_ms * 1'000'000;
    probe_timer_ = loop_.add_timer(interval, interval, [this] { probe_tick(); });
  }
  fleet_.start();
  trace(runtime::TraceLevel::kInfo, "listening on " + config_.path);
  return true;
}

void AwarenessHub::stop() {
  if (listen_fd_ < 0 && connections_.empty()) return;
  stopping_ = true;  // suppress outage reports for our own teardown
  if (probe_timer_ != 0) {
    loop_.cancel_timer(probe_timer_);
    probe_timer_ = 0;
  }
  // Orderly goodbye to every live peer, then drop the links.
  std::vector<Peer*> peers;
  peers.reserve(connections_.size());
  for (auto& [raw, owned] : connections_) peers.push_back(raw);
  for (Peer* p : peers) {
    ipc::Frame bye;
    bye.type = ipc::FrameType::kShutdown;
    bye.detail = "hub stopping";
    p->conn->send(bye);
    p->conn->close(CloseReason::kEvicted);
  }
  reap();
  if (listen_fd_ >= 0) {
    loop_.defer_close(listen_fd_);
    ipc::unlink_unix(config_.path);
    listen_fd_ = -1;
  }
  fleet_.stop();
  // Clean shutdown = checkpoint: the next start() restores from the
  // snapshot alone instead of replaying the whole tail.
  if (journal_ != nullptr && journal_->active()) {
    journal_->checkpoint_now(journal_parts_);
  }
  stopping_ = false;
}

void AwarenessHub::simulate_crash() {
  if (journal_ != nullptr) journal_->abandon();
  stopping_ = true;  // a crash reports no outages: the hub died, not the links
  std::vector<Peer*> peers;
  peers.reserve(connections_.size());
  for (auto& [raw, owned] : connections_) peers.push_back(raw);
  for (Peer* p : peers) p->conn->close(CloseReason::kEvicted);
  reap();
  if (probe_timer_ != 0) {
    loop_.cancel_timer(probe_timer_);
    probe_timer_ = 0;
  }
  if (listen_fd_ >= 0) {
    loop_.defer_close(listen_fd_);
    ipc::unlink_unix(config_.path);
    listen_fd_ = -1;
  }
  fleet_.stop();
  stopping_ = false;
}

int AwarenessHub::poll(int timeout_ms) {
  const int n = loop_.poll(timeout_ms);
  reap();
  if (config_.auto_advance) auto_advance();
  // Actuate after advancing: decisions are keyed on the fleet's virtual
  // clock, so a lockstep driver sees the same action sequence at any
  // shard count or poll cadence.
  if (config_.recovery.enabled) {
    // The tick itself is journaled — actuation decisions are pure
    // functions of (state, virtual time), so replaying the tick times
    // re-makes the same decisions.
    if (journal_ != nullptr) journal_->append_tick(fleet_.now());
    recovery_.tick(fleet_.now());
  }
  if (journal_ != nullptr) journal_->on_batch_end(journal_parts_);
  return n;
}

void AwarenessHub::run() {
  while (!loop_.stop_requested()) {
    if (poll(-1) < 0) break;
  }
}

bool AwarenessHub::slot_up(const std::string& name) const {
  const auto it = slots_.find(name);
  return it != slots_.end() && it->second->gate->load(std::memory_order_relaxed);
}

const ipc::ProcessSupervisor* AwarenessHub::slot_supervisor(const std::string& name) const {
  const auto it = slots_.find(name);
  return it != slots_.end() ? &it->second->supervisor : nullptr;
}

runtime::MetricsSnapshot AwarenessHub::metrics() const {
  runtime::MetricsSnapshot snap = metrics_.snapshot();
  snap.merge(fleet_.metrics());
  return snap;
}

void AwarenessHub::on_accept_ready(std::uint32_t /*events*/) {
  // Drain the whole accept backlog: under an accept storm the listener
  // becomes readable once for many pending connections.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure
    }
    auto peer = std::make_unique<Peer>();
    Peer* raw = peer.get();
    peer->conn = std::make_unique<HubConnection>(
        loop_, fd, config_.limits, conn_counters_,
        [this, raw](const ipc::Frame& f) { on_frame(raw, f); },
        [this, raw](CloseReason r) { on_close(raw, r); });
    connections_.emplace(raw, std::move(peer));
    connections_gauge_->set(static_cast<double>(connections_.size()));
  }
}

void AwarenessHub::on_frame(Peer* peer, const ipc::Frame& f) {
  if (peer->slot == nullptr) {
    handle_hello(peer, f);
    return;
  }
  switch (f.type) {
    case ipc::FrameType::kInputEvent:
    case ipc::FrameType::kOutputEvent:
    case ipc::FrameType::kSpectrum:
    case ipc::FrameType::kRecoverAck:
      // Write-ahead: the journal holds the frame before the hub's state
      // reflects it, so a crash between the two replays the mutation
      // instead of losing it.
      if (journal_ != nullptr) journal_->append_frame(peer->slot->name, f);
      apply_frame(*peer->slot, f);
      break;
    case ipc::FrameType::kHeartbeatAck: {
      Slot& slot = *peer->slot;
      slot.acked_since_probe = true;
      slot.supervisor.on_heartbeat_ack();
      if (slot.probe_outstanding && f.nonce == slot.probe_nonce) {
        slot.probe_outstanding = false;
        rtt_ns_->record(static_cast<double>(EventLoop::now_ns() - slot.probe_sent_ns));
      }
      break;
    }
    case ipc::FrameType::kHeartbeat: {
      // Peer-initiated probe: echo the nonce back.
      ipc::Frame ack;
      ack.type = ipc::FrameType::kHeartbeatAck;
      ack.seq = ++peer->slot->seq;
      ack.nonce = f.nonce;
      peer->conn->send(ack);
      break;
    }
    case ipc::FrameType::kShutdown:
      peer->orderly = true;
      peer->conn->close(CloseReason::kPeerClosed);
      break;
    default:
      // kHello after handshake, kControl/kControlAck toward the hub:
      // protocol violations on this link direction.
      reject(peer, std::string("unexpected ") + ipc::to_string(f.type));
      break;
  }
}

void AwarenessHub::handle_hello(Peer* peer, const ipc::Frame& f) {
  if (f.type != ipc::FrameType::kHello) {
    reject(peer, "handshake expected");
    return;
  }
  const std::uint8_t version = ipc::negotiate_version(config_.min_version, config_.max_version,
                                                      f.min_version, f.max_version);
  if (version == 0) {
    reject(peer, "version mismatch");
    return;
  }
  const auto it = slots_.find(f.detail);
  if (it == slots_.end()) {
    reject(peer, "unknown slot: " + f.detail);
    return;
  }
  Slot& slot = *it->second;
  if (slot.conn != nullptr) {
    reject(peer, "slot busy: " + slot.name);
    return;
  }
  if (slot.supervisor.exhausted()) {
    reject(peer, "slot failed: " + slot.name);
    return;
  }
  if (EventLoop::now_ns() < slot.earliest_reconnect_ns) {
    // Reconnect storm protection: the slot's capped backoff window is
    // enforced hub-side, so a crash-looping SUO cannot thrash the loop.
    reject(peer, "backoff: " + slot.name);
    return;
  }

  ipc::Frame ack;
  ack.type = ipc::FrameType::kHelloAck;
  ack.version = version;
  ack.seq = ++slot.seq;
  ack.detail = slot.name;
  ack.min_version = config_.min_version;
  ack.max_version = config_.max_version;
  if (!peer->conn->send(ack)) return;

  if (journal_ != nullptr) journal_->append_slot_up(slot.name, version, fleet_.now());
  peer->slot = &slot;
  slot.conn = peer->conn.get();
  slot.probe_outstanding = false;
  slot.acked_since_probe = true;
  slot.up_since_ns = EventLoop::now_ns();
  slot.negotiated_version = version;
  slot.supervisor.on_connected();
  slot.gate->store(true, std::memory_order_relaxed);
  recovery_.slot_up(slot.name, version);
  accepted_->inc();
  trace(runtime::TraceLevel::kInfo, "slot up: " + slot.name);
}

void AwarenessHub::reject(Peer* peer, const std::string& why) {
  rejected_->inc();
  trace(runtime::TraceLevel::kWarning, "rejected: " + why);
  ipc::Frame bye;
  bye.type = ipc::FrameType::kShutdown;
  bye.detail = why;
  peer->conn->send(bye);
  peer->orderly = peer->slot == nullptr;  // unclaimed rejects are not outages
  peer->conn->close(CloseReason::kEvicted);
}

void AwarenessHub::apply_frame(Slot& slot, const ipc::Frame& f) {
  switch (f.type) {
    case ipc::FrameType::kInputEvent:
    case ipc::FrameType::kOutputEvent:
      ingest(slot, f);
      break;
    case ipc::FrameType::kSpectrum:
      spectra_frames_->inc();
      diag_.ingest(slot.name, f);
      break;
    case ipc::FrameType::kRecoverAck:
      recovery_.on_ack(slot.name, f);
      break;
    default:
      break;  // non-state-bearing types are never journaled or replayed
  }
}

void AwarenessHub::ingest(Slot& slot, const ipc::Frame& f) {
  runtime::Event ev = f.event;
  if (config_.namespace_topics) ev.topic = slot.name + "/" + ev.topic;
  if (ev.timestamp > slot.watermark) slot.watermark = ev.timestamp;
  fleet_.publish(ev);
  ++events_ingested_;
  if (ingest_tap_) ingest_tap_(ev);
}

void AwarenessHub::probe_tick() {
  for (auto& [name, slot] : slots_) {
    if (slot->conn == nullptr) continue;
    if (!slot->acked_since_probe) {
      // The previous probe went unanswered; the supervisor decides when
      // the miss streak amounts to a dead link.
      if (slot->supervisor.on_heartbeat_miss()) {
        trace(runtime::TraceLevel::kWarning, "liveness lost: " + name);
        evicted_->inc();
        slot->conn->close(CloseReason::kEvicted);
        continue;  // on_close handled slot teardown
      }
    }
    probes_->inc();
    slot->probe_nonce = ++nonce_counter_;
    slot->probe_sent_ns = EventLoop::now_ns();
    slot->probe_outstanding = true;
    slot->acked_since_probe = false;
    ipc::Frame probe;
    probe.type = ipc::FrameType::kHeartbeat;
    probe.seq = ++slot->seq;
    probe.nonce = slot->probe_nonce;
    slot->conn->send(probe);
  }
}

void AwarenessHub::on_close(Peer* peer, CloseReason reason) {
  if (reason == CloseReason::kBackpressure || reason == CloseReason::kProtocolError) {
    evicted_->inc();
  }
  if (peer->slot != nullptr && peer->slot->conn == peer->conn.get()) {
    Slot& slot = *peer->slot;
    slot.conn = nullptr;
    trace(runtime::TraceLevel::kWarning,
          "slot down: " + slot.name + " (" + to_string(reason) + ")");
    slot_down(slot, peer->orderly || stopping_);
  }
  // Move ownership to the graveyard: the HubConnection object must
  // outlive the stack frames of the callback that closed it.
  const auto it = connections_.find(peer);
  if (it != connections_.end()) {
    dead_.push_back(std::move(it->second));
    connections_.erase(it);
  }
  connections_gauge_->set(static_cast<double>(connections_.size()));
}

void AwarenessHub::slot_down(Slot& slot, bool orderly) {
  if (journal_ != nullptr) journal_->append_slot_down(slot.name, orderly, fleet_.now());
  const bool was_up = slot.gate->exchange(false, std::memory_order_relaxed);
  slot.supervisor.on_disconnected();
  // Crash-loop accounting. The supervisor resets its attempt counter on
  // every successful connect, so left alone the "first attempt is free"
  // rule would make every reconnect free — a SUO that dies right after
  // its handshake could thrash the loop forever. The hub therefore
  // tracks consecutive *unstable* sessions (ended by a crash before
  // surviving one liveness window) and charges one extra attempt per
  // prior unstable session, walking the supervisor's capped seeded
  // exponential even though each session technically "connected".
  const std::int64_t window_ns =
      config_.heartbeat_interval_ms * 1'000'000 * config_.supervisor.heartbeat_miss_threshold;
  const bool stable =
      orderly || (slot.up_since_ns > 0 && EventLoop::now_ns() - slot.up_since_ns >= window_ns);
  slot.unstable_downs = stable ? 0 : slot.unstable_downs + 1;
  // Enforce the backoff window for the *next* reconnect attempt. The
  // first attempt after an outage is free (0ms) — a freshly restarted
  // SUO is picked up immediately; a crash loop pays capped exponential.
  std::int64_t backoff_ms = slot.supervisor.next_backoff_ms();
  for (int i = 1; i < slot.unstable_downs && backoff_ms >= 0; ++i) {
    backoff_ms = slot.supervisor.next_backoff_ms();
  }
  slot.earliest_reconnect_ns =
      backoff_ms > 0 ? EventLoop::now_ns() + backoff_ms * 1'000'000 : 0;
  slot.negotiated_version = 0;
  recovery_.slot_down(slot.name);
  // Diagnosis state persists across ordinary outages (the reconnecting
  // SUO keeps accumulating into the same spectra), but a permanently
  // failed slot will never report again — free its aggregator state
  // and its escalation-ladder state with it.
  if (slot.supervisor.exhausted()) {
    diag_.retire_slot(slot.name);
    recovery_.retire_slot(slot.name);
  }
  if (!was_up || orderly) return;

  // Exactly one outage report per up->down transition; while the link
  // stays dead the gated models quiesce instead of flooding errors.
  outages_->inc();
  core::ErrorReport report;
  report.observable = "hub.link/" + slot.name;
  report.expected = std::string("up");
  report.observed = std::string("down");
  report.deviation = 1.0;
  report.consecutive = 1;
  report.detected_at = fleet_.now();
  report.first_deviation_at = fleet_.now();
  link_errors_.push_back(report);
  if (notify_ != nullptr) notify_->on_error(report);
}

bool AwarenessHub::recover_from_journal() {
  replaying_ = true;
  // Replay must not actuate sockets that no longer exist: the journaled
  // ticks already made these send decisions once, and their observable
  // effects (the acks) are further down the WAL. A phantom send that
  // reports success re-walks the same state machine without I/O.
  recovery_.set_send([](const std::string&, const ipc::Frame&) { return true; });
  recovery_info_ = journal_->recover(journal_parts_, *this);
  install_live_send();
  replaying_ = false;
  if (!recovery_info_.ok) {
    trace(runtime::TraceLevel::kError, "journal recovery failed: " + recovery_info_.error);
    return false;
  }
  // Replayed slots may be logically up, but no socket survived the
  // restart: force every slot down so gates quiesce and reconnects are
  // accepted immediately. The restart is the hub's fault, not the
  // slots' — no backoff charge, no crash-loop accounting, no outage
  // report (link_errors_ is process-scoped by design).
  for (auto& [name, slot] : slots_) {
    slot->gate->store(false, std::memory_order_relaxed);
    slot->conn = nullptr;
    slot->negotiated_version = 0;
    slot->earliest_reconnect_ns = 0;
    slot->up_since_ns = 0;
    slot->unstable_downs = 0;
    slot->probe_outstanding = false;
    slot->acked_since_probe = true;
    if (slot->supervisor.up()) slot->supervisor.on_disconnected();
    recovery_.slot_down(name);
  }
  if (recovery_info_.from_checkpoint || recovery_info_.replayed_records > 0) {
    trace(runtime::TraceLevel::kInfo,
          "journal recovery: checkpoint seq " + std::to_string(recovery_info_.checkpoint_seq) +
              ", replayed " + std::to_string(recovery_info_.replayed_records) + " records");
  }
  return true;
}

void AwarenessHub::replay_frame(const std::string& slot_name, const ipc::Frame& f) {
  add_slot(slot_name);
  apply_frame(*slots_.find(slot_name)->second, f);
}

void AwarenessHub::replay_slot_up(const std::string& slot_name, std::uint8_t version) {
  add_slot(slot_name);
  Slot& slot = *slots_.find(slot_name)->second;
  slot.negotiated_version = version;
  slot.gate->store(true, std::memory_order_relaxed);
  slot.supervisor.on_connected();
  recovery_.slot_up(slot_name, version);
}

void AwarenessHub::replay_slot_down(const std::string& slot_name, bool /*orderly*/) {
  const auto it = slots_.find(slot_name);
  if (it == slots_.end()) return;
  Slot& slot = *it->second;
  slot.gate->store(false, std::memory_order_relaxed);
  slot.negotiated_version = 0;
  if (slot.supervisor.up()) slot.supervisor.on_disconnected();
  recovery_.slot_down(slot_name);
  // Backoff windows, crash-loop charges and outage reports are
  // wall-clock scoped and deliberately NOT part of the replayed state;
  // the permanent-failure retirement is.
  if (slot.supervisor.exhausted()) {
    diag_.retire_slot(slot_name);
    recovery_.retire_slot(slot_name);
  }
}

void AwarenessHub::replay_tick(runtime::SimTime now) { recovery_.tick(now); }

void AwarenessHub::save_state(journal::Encoder& out) const {
  out.u64(events_ingested_);
  out.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const auto& [name, slot] : slots_) {
    out.str(name);
    out.i64(slot->watermark);
    out.u32(slot->seq);
    const ipc::SupervisorSnapshot snap = slot->supervisor.snapshot();
    out.u8(snap.link_state);
    out.u32(static_cast<std::uint32_t>(snap.attempts));
    out.u32(static_cast<std::uint32_t>(snap.misses));
    out.boolean(snap.was_up);
    out.u64(snap.outages);
    out.u64(snap.reconnects);
    out.u64(snap.jitter_rng);
  }
}

bool AwarenessHub::load_state(journal::Decoder& in, std::uint32_t version) {
  if (version != 1) return false;
  events_ingested_ = in.u64();
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count && in.ok(); ++i) {
    const std::string name = in.str();
    if (!in.ok()) break;
    // Merge by name: the embedding app may have pre-registered slots
    // (gates are already handed out), so restore into them in place.
    add_slot(name);
    Slot& slot = *slots_.find(name)->second;
    slot.watermark = in.i64();
    slot.seq = in.u32();
    ipc::SupervisorSnapshot snap;
    snap.link_state = in.u8();
    snap.attempts = static_cast<std::int32_t>(in.u32());
    snap.misses = static_cast<std::int32_t>(in.u32());
    snap.was_up = in.boolean();
    snap.outages = in.u64();
    snap.reconnects = in.u64();
    snap.jitter_rng = in.u64();
    slot.supervisor.restore(snap);
  }
  return in.done();
}

void AwarenessHub::auto_advance() {
  bool any = false;
  runtime::SimTime watermark = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot->conn == nullptr) continue;
    if (!any || slot->watermark < watermark) watermark = slot->watermark;
    any = true;
  }
  if (any && watermark > fleet_.now()) fleet_.run_until(watermark);
}

void AwarenessHub::reap() { dead_.clear(); }

void AwarenessHub::trace(runtime::TraceLevel level, const std::string& msg) {
  if (trace_ != nullptr) trace_->log(fleet_.now(), level, "hub", msg);
}

}  // namespace trader::hub
