#include "hub/recovery.hpp"

#include <algorithm>

namespace trader::hub {

namespace {

/// Deterministic 64-bit mix (splitmix64) for the per-slot cooldown
/// jitter: same binary + same seed + same slot name -> same jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void bump(runtime::Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}

}  // namespace

bool RecoveryPolicy::allows(recovery::RecoveryAction action) const {
  switch (action) {
    case recovery::RecoveryAction::kResync: return allow_resync;
    case recovery::RecoveryAction::kRestartUnit: return allow_restart_unit;
    case recovery::RecoveryAction::kRestartDependents: return allow_restart_dependents;
    case recovery::RecoveryAction::kFullRestart: return allow_full_restart;
    case recovery::RecoveryAction::kGiveUp: return true;  // hub-local, never masked
  }
  return false;
}

RecoveryOrchestrator::RecoveryOrchestrator(RecoveryConfig config,
                                           fleetdiag::FleetAggregator& diag,
                                           runtime::MetricsRegistry* metrics)
    : config_(config), diag_(diag), escalator_(config.escalation) {
  if (config_.token_capacity < 1) config_.token_capacity = 1;
  if (config_.stable_reports == 0) config_.stable_reports = 1;
  tokens_ = config_.token_capacity;  // full bucket at start
  if (metrics != nullptr) {
    sent_ctr_ = &metrics->counter("hub.recovery.sent");
    retries_ctr_ = &metrics->counter("hub.recovery.retries");
    timeouts_ctr_ = &metrics->counter("hub.recovery.timeouts");
    acked_ok_ctr_ = &metrics->counter("hub.recovery.acked_ok");
    acked_fail_ctr_ = &metrics->counter("hub.recovery.acked_fail");
    duplicate_acks_ctr_ = &metrics->counter("hub.recovery.duplicate_acks");
    suppressed_ctr_ = &metrics->counter("hub.recovery.suppressed");
    quarantined_ctr_ = &metrics->counter("hub.recovery.quarantined");
    give_ups_ctr_ = &metrics->counter("hub.recovery.give_ups");
    recovered_ctr_ = &metrics->counter("hub.recovery.recovered");
    policy_denied_ctr_ = &metrics->counter("hub.recovery.policy_denied");
    quarantined_gauge_ = &metrics->gauge("hub.recovery.quarantined_slots");
  }
}

void RecoveryOrchestrator::set_send(SendFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  send_ = std::move(fn);
}

void RecoveryOrchestrator::set_component_of(ComponentOf fn) {
  std::lock_guard<std::mutex> lock(mu_);
  component_of_ = std::move(fn);
}

void RecoveryOrchestrator::slot_up(const std::string& slot, std::uint8_t negotiated_version) {
  std::lock_guard<std::mutex> lock(mu_);
  SlotState& st = slots_[slot];
  st.up = true;
  st.negotiated_version = negotiated_version;
  // A fresh link invalidates any in-flight command (the old socket is
  // gone; a late ack for it would be dropped by the token check).
  st.outstanding = false;
  st.jitter = config_.cooldown_jitter <= 0
                  ? 0
                  : static_cast<runtime::SimDuration>(
                        mix64(config_.seed ^ std::hash<std::string>{}(slot)) %
                        static_cast<std::uint64_t>(config_.cooldown_jitter + 1));
}

void RecoveryOrchestrator::slot_down(const std::string& slot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) return;
  SlotState& st = it->second;
  st.up = false;
  if (st.outstanding) {
    // The command went down with the link; whether the SUO executed it
    // is unknowable, which is exactly what the idempotency token is
    // for — a post-reconnect duplicate execution is a no-op SUO-side.
    st.outstanding = false;
    ++stats_.lost;
  }
}

void RecoveryOrchestrator::retire_slot(const std::string& slot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) return;
  for (const std::string& key : it->second.ladder_keys) escalator_.forget(key);
  slots_.erase(it);
  if (quarantined_gauge_ != nullptr) {
    std::size_t q = 0;
    for (const auto& [name, st] : slots_) q += st.quarantined ? 1 : 0;
    quarantined_gauge_->set(static_cast<double>(q));
  }
}

void RecoveryOrchestrator::quarantine_locked(SlotState& st, const std::string& slot) {
  if (st.quarantined) return;
  st.quarantined = true;
  st.outstanding = false;
  ++stats_.quarantined;
  bump(quarantined_ctr_);
  if (quarantined_gauge_ != nullptr) {
    std::size_t q = 0;
    for (const auto& [name, s] : slots_) q += s.quarantined ? 1 : 0;
    quarantined_gauge_->set(static_cast<double>(q));
  }
  (void)slot;
}

void RecoveryOrchestrator::fail_outstanding_locked(SlotState& st, const std::string& slot) {
  st.outstanding = false;
  ++st.flaps;
  if (st.flaps >= config_.flap_threshold) quarantine_locked(st, slot);
}

void RecoveryOrchestrator::record_action_locked(const RecoveryActionRecord& rec) {
  if (actions_.size() >= config_.action_log_limit) return;  // bounded
  actions_.push_back(rec);
}

bool RecoveryOrchestrator::send_locked(const std::string& slot, SlotState& st,
                                       runtime::SimTime now, bool retry) {
  ipc::Frame f;
  f.type = ipc::FrameType::kRecover;
  f.time = now;
  f.action = st.action;
  f.token = st.token;
  f.block = st.block;
  f.unit = st.unit;
  if (!send_ || !send_(slot, f)) {
    ++stats_.send_failures;
    return false;
  }
  st.outstanding = true;
  st.sent_at = now;
  RecoveryActionRecord rec;
  rec.at = now;
  rec.slot = slot;
  rec.action = static_cast<recovery::RecoveryAction>(st.action);
  rec.unit = st.unit;
  rec.block = st.block;
  rec.token = st.token;
  rec.retry = retry;
  record_action_locked(rec);
  return true;
}

void RecoveryOrchestrator::refill_tokens_locked(runtime::SimTime now) {
  if (config_.token_refill_every <= 0) {
    tokens_ = config_.token_capacity;
    return;
  }
  if (now <= last_refill_) return;
  const std::int64_t n = (now - last_refill_) / config_.token_refill_every;
  if (n <= 0) return;
  tokens_ = std::min<std::int64_t>(config_.token_capacity, tokens_ + n);
  last_refill_ += n * config_.token_refill_every;
  // A full bucket does not bank refill progress (classic token bucket).
  if (tokens_ == config_.token_capacity) last_refill_ = now;
}

std::size_t RecoveryOrchestrator::tick(runtime::SimTime now) {
  if (!config_.enabled) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  refill_tokens_locked(now);
  std::size_t frames = 0;

  // std::map order makes the walk deterministic: same diagnosis state +
  // same virtual time -> same action sequence at any shard count.
  for (auto& [name, st] : slots_) {
    if (!st.up || st.quarantined) continue;

    if (st.outstanding) {
      if (now - st.sent_at >= config_.ack_timeout) {
        ++stats_.timeouts;
        bump(timeouts_ctr_);
        if (st.retries < config_.max_retries) {
          // Resend the SAME token: if the SUO executed the lost
          // command, it replays its cached ack instead of acting twice.
          if (tokens_ >= 1 && send_locked(name, st, now, /*retry=*/true)) {
            --tokens_;
            ++st.retries;
            ++stats_.retries;
            bump(retries_ctr_);
            ++frames;
          }
          // No token / send failure: stay outstanding, retry next tick.
        } else {
          fail_outstanding_locked(st, name);
        }
      }
      continue;  // pending (or just failed) — never two in flight
    }

    const fleetdiag::SlotHealth h = diag_.health(name);

    if (st.acted && h.error_steps <= st.error_steps_at_action &&
        h.reports - st.reports_at_action >= config_.success_reports) {
      // Quiet since the last action: the repair worked. Decay the
      // ladder — but keep the error watermark, so the historical
      // (cumulative) error count can never justify another action.
      escalator_.report_success(name + "/" + st.acted_unit);
      st.acted = false;
      st.flaps = 0;
      st.has_candidate = false;
      ++stats_.recovered;
      bump(recovered_ctr_);
    }
    // Act only on error evidence no previous action has answered —
    // otherwise a successful repair would be "rewarded" with another
    // restart forever.
    if (h.error_steps <= st.error_steps_at_action) continue;

    const std::vector<diagnosis::BlockScore> suspects = diag_.top_suspects(name);
    if (suspects.empty() || suspects.front().score <= 0.0) continue;
    const std::string comp = component_of_
                                 ? component_of_(suspects.front().block)
                                 : "block" + std::to_string(suspects.front().block);

    // Convergence gate: (re)baseline whenever the top suspect or the
    // slot's churn counter moved, then require stable_reports further
    // reports of agreement before acting.
    if (!st.has_candidate || comp != st.candidate || h.churn != st.candidate_churn) {
      st.has_candidate = true;
      st.candidate = comp;
      st.candidate_block = static_cast<std::uint32_t>(suspects.front().block);
      st.candidate_reports = h.reports;
      st.candidate_churn = h.churn;
    }
    if (h.reports - st.candidate_reports < config_.stable_reports) {
      ++stats_.suppressed_unconverged;
      bump(suppressed_ctr_);
      continue;
    }

    if (now < st.cooldown_until) {
      ++stats_.suppressed_cooldown;
      bump(suppressed_ctr_);
      continue;
    }
    if (st.negotiated_version < ipc::kRecoverMinVersion) {
      // Observed, never actuated: a v2 peer must see zero kRecover
      // frames (its fail-closed decoder would poison the link).
      ++stats_.suppressed_version;
      bump(suppressed_ctr_);
      continue;
    }
    if (tokens_ < 1) {
      ++stats_.suppressed_tokens;
      bump(suppressed_ctr_);
      continue;
    }

    const std::string key = name + "/" + st.candidate;
    recovery::RecoveryAction action = escalator_.next_action(key, now);
    st.ladder_keys.insert(key);
    // Operator policy mask: a denied rung is skipped upward to the next
    // allowed one; denying everything climbs straight to give-up below.
    while (action != recovery::RecoveryAction::kGiveUp &&
           !config_.policy.allows(action)) {
      ++stats_.policy_denied;
      bump(policy_denied_ctr_);
      action = static_cast<recovery::RecoveryAction>(
          static_cast<std::uint8_t>(action) + 1);
    }
    if (action == recovery::RecoveryAction::kGiveUp) {
      // Give-up is hub-local: quarantine instead of yet another
      // full restart (the §5 "needs service" verdict, fleet-grade).
      ++stats_.give_ups;
      bump(give_ups_ctr_);
      quarantine_locked(st, name);
      continue;
    }

    --tokens_;
    st.token = ++token_counter_;
    st.action = static_cast<std::uint8_t>(action);
    st.unit = st.candidate;
    st.block = st.candidate_block;
    st.retries = 0;
    if (!send_locked(name, st, now, /*retry=*/false)) continue;
    ++frames;
    ++stats_.sent;
    bump(sent_ctr_);
    st.acted = true;
    st.acted_unit = st.candidate;
    st.error_steps_at_action = h.error_steps;
    st.reports_at_action = h.reports;
    st.cooldown_until = now + config_.cooldown + st.jitter;
  }
  return frames;
}

void RecoveryOrchestrator::on_ack(const std::string& slot, const ipc::Frame& frame) {
  if (frame.type != ipc::FrameType::kRecoverAck) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    ++stats_.duplicate_acks;
    bump(duplicate_acks_ctr_);
    return;
  }
  SlotState& st = it->second;
  if (!st.outstanding || frame.token != st.token) {
    // Stale or duplicate: the retry path can produce two executions of
    // one token SUO-side, hence two acks — drop the echo.
    ++stats_.duplicate_acks;
    bump(duplicate_acks_ctr_);
    return;
  }
  st.outstanding = false;
  if (frame.ok) {
    ++stats_.acked_ok;
    bump(acked_ok_ctr_);
  } else {
    ++stats_.acked_fail;
    bump(acked_fail_ctr_);
    fail_outstanding_locked(st, slot);
  }
}

bool RecoveryOrchestrator::quarantined(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(slot);
  return it != slots_.end() && it->second.quarantined;
}

std::size_t RecoveryOrchestrator::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t q = 0;
  for (const auto& [name, st] : slots_) q += st.quarantined ? 1 : 0;
  return q;
}

bool RecoveryOrchestrator::has_outstanding(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(slot);
  return it != slots_.end() && it->second.outstanding;
}

RecoveryStats RecoveryOrchestrator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<RecoveryActionRecord> RecoveryOrchestrator::actions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return actions_;
}

void RecoveryOrchestrator::save_state(journal::Encoder& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.u64(stats_.sent);
  out.u64(stats_.retries);
  out.u64(stats_.timeouts);
  out.u64(stats_.lost);
  out.u64(stats_.acked_ok);
  out.u64(stats_.acked_fail);
  out.u64(stats_.duplicate_acks);
  out.u64(stats_.suppressed_unconverged);
  out.u64(stats_.suppressed_cooldown);
  out.u64(stats_.suppressed_tokens);
  out.u64(stats_.suppressed_version);
  out.u64(stats_.quarantined);
  out.u64(stats_.give_ups);
  out.u64(stats_.recovered);
  out.u64(stats_.send_failures);
  out.u64(stats_.policy_denied);
  out.u64(token_counter_);
  out.i64(tokens_);
  out.i64(last_refill_);
  escalator_.save(out);
  out.u32(static_cast<std::uint32_t>(actions_.size()));
  for (const RecoveryActionRecord& rec : actions_) {
    out.i64(rec.at);
    out.str(rec.slot);
    out.u8(static_cast<std::uint8_t>(rec.action));
    out.str(rec.unit);
    out.u32(rec.block);
    out.u64(rec.token);
    out.boolean(rec.retry);
  }
  out.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const auto& [name, st] : slots_) {
    out.str(name);
    out.u8(st.negotiated_version);
    out.boolean(st.up);
    out.boolean(st.quarantined);
    out.u32(static_cast<std::uint32_t>(st.flaps));
    out.i64(st.jitter);
    out.i64(st.cooldown_until);
    out.boolean(st.has_candidate);
    out.str(st.candidate);
    out.u32(st.candidate_block);
    out.u64(st.candidate_reports);
    out.u64(st.candidate_churn);
    out.boolean(st.outstanding);
    out.u64(st.token);
    out.u8(st.action);
    out.str(st.unit);
    out.u32(st.block);
    out.i64(st.sent_at);
    out.u32(static_cast<std::uint32_t>(st.retries));
    out.boolean(st.acted);
    out.str(st.acted_unit);
    out.u64(st.error_steps_at_action);
    out.u64(st.reports_at_action);
    out.u32(static_cast<std::uint32_t>(st.ladder_keys.size()));
    for (const std::string& key : st.ladder_keys) out.str(key);
  }
}

bool RecoveryOrchestrator::load_state(journal::Decoder& in, std::uint32_t version) {
  if (version != 1) return false;
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  actions_.clear();
  stats_ = RecoveryStats{};
  stats_.sent = in.u64();
  stats_.retries = in.u64();
  stats_.timeouts = in.u64();
  stats_.lost = in.u64();
  stats_.acked_ok = in.u64();
  stats_.acked_fail = in.u64();
  stats_.duplicate_acks = in.u64();
  stats_.suppressed_unconverged = in.u64();
  stats_.suppressed_cooldown = in.u64();
  stats_.suppressed_tokens = in.u64();
  stats_.suppressed_version = in.u64();
  stats_.quarantined = in.u64();
  stats_.give_ups = in.u64();
  stats_.recovered = in.u64();
  stats_.send_failures = in.u64();
  stats_.policy_denied = in.u64();
  token_counter_ = in.u64();
  tokens_ = in.i64();
  last_refill_ = in.i64();
  if (!escalator_.load(in)) return false;
  const std::uint32_t action_count = in.u32();
  actions_.reserve(std::min<std::size_t>(action_count, config_.action_log_limit));
  for (std::uint32_t i = 0; i < action_count && in.ok(); ++i) {
    RecoveryActionRecord rec;
    rec.at = in.i64();
    rec.slot = in.str();
    rec.action = static_cast<recovery::RecoveryAction>(in.u8());
    rec.unit = in.str();
    rec.block = in.u32();
    rec.token = in.u64();
    rec.retry = in.boolean();
    actions_.push_back(rec);
  }
  const std::uint32_t slot_count = in.u32();
  for (std::uint32_t i = 0; i < slot_count && in.ok(); ++i) {
    const std::string name = in.str();
    SlotState& st = slots_[name];
    st.negotiated_version = in.u8();
    st.up = in.boolean();
    st.quarantined = in.boolean();
    st.flaps = static_cast<int>(in.u32());
    st.jitter = in.i64();
    st.cooldown_until = in.i64();
    st.has_candidate = in.boolean();
    st.candidate = in.str();
    st.candidate_block = in.u32();
    st.candidate_reports = in.u64();
    st.candidate_churn = in.u64();
    st.outstanding = in.boolean();
    st.token = in.u64();
    st.action = in.u8();
    st.unit = in.str();
    st.block = in.u32();
    st.sent_at = in.i64();
    st.retries = static_cast<int>(in.u32());
    st.acted = in.boolean();
    st.acted_unit = in.str();
    st.error_steps_at_action = in.u64();
    st.reports_at_action = in.u64();
    const std::uint32_t keys = in.u32();
    for (std::uint32_t k = 0; k < keys && in.ok(); ++k) {
      st.ladder_keys.insert(in.str());
    }
  }
  if (!in.done()) {
    slots_.clear();
    actions_.clear();
    stats_ = RecoveryStats{};
    return false;
  }
  if (quarantined_gauge_ != nullptr) {
    std::size_t q = 0;
    for (const auto& [name, st] : slots_) q += st.quarantined ? 1 : 0;
    quarantined_gauge_->set(static_cast<double>(q));
  }
  return true;
}

}  // namespace trader::hub
