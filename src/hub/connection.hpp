// One hub-side SUO link: nonblocking protocol state machine.
//
// A HubConnection owns an accepted fd in nonblocking mode and adapts
// the stream to whole frames in both directions:
//
//  * Inbound: readable events drain the fd until EAGAIN into the same
//    fail-closed ipc::FrameDecoder the blocking transport uses; every
//    complete frame goes to the owner's on_frame callback, and any
//    decode error poisons the stream and closes the link (a corrupted
//    SUO can never feed partial state into a monitor).
//  * Outbound: frames are encoded into a bounded byte queue and
//    flushed with coalesced writev batches (one syscall for many
//    queued frames). A consumer that stops reading fills the queue:
//    crossing the soft water mark counts hub.backpressure once per
//    episode, crossing the hard mark evicts the connection — a slow
//    SUO must not pin unbounded monitor memory.
//
// The connection registers itself with the EventLoop (EPOLLIN always,
// EPOLLOUT only while the queue is non-empty) and never owns protocol
// policy: handshake acceptance, slot mapping and liveness live in the
// AwarenessHub.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "hub/event_loop.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "runtime/metrics.hpp"

namespace trader::hub {

/// Why a connection ended (owner callback argument).
enum class CloseReason : std::uint8_t {
  kPeerClosed,     ///< Orderly EOF or reset from the SUO side.
  kProtocolError,  ///< Decoder poisoned — fail closed.
  kBackpressure,   ///< Outbound queue crossed the hard water mark.
  kEvicted,        ///< Hub policy (liveness death, slot rejection, shutdown).
  kWriteFailed,    ///< Transport write error.
};

const char* to_string(CloseReason r);

/// Instruments shared by all connections of one hub.
struct ConnectionCounters {
  runtime::Counter* frames_in = nullptr;
  runtime::Counter* frames_out = nullptr;
  runtime::Counter* bytes_in = nullptr;
  runtime::Counter* bytes_out = nullptr;
  runtime::Counter* decode_errors = nullptr;
  runtime::Counter* backpressure = nullptr;
  runtime::Histogram* batch_frames = nullptr;  ///< Frames per readable drain.
};

struct ConnectionLimits {
  /// Queue bytes that count one hub.backpressure episode.
  std::size_t write_soft_water = 64 * 1024;
  /// Queue bytes that evict the connection (slow consumer).
  std::size_t write_high_water = 256 * 1024;
};

class HubConnection {
 public:
  using FrameHandler = std::function<void(const ipc::Frame&)>;
  using CloseHandler = std::function<void(CloseReason)>;

  /// Takes ownership of `fd`, switches it to nonblocking and registers
  /// with the loop. `on_frame` receives every decoded frame; `on_close`
  /// fires exactly once, after which the connection is dead.
  HubConnection(EventLoop& loop, int fd, ConnectionLimits limits, ConnectionCounters counters,
                FrameHandler on_frame, CloseHandler on_close);
  ~HubConnection();

  HubConnection(const HubConnection&) = delete;
  HubConnection& operator=(const HubConnection&) = delete;

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Encode and queue one frame, then attempt an opportunistic flush.
  /// False when the frame could not be queued (encode failure, link
  /// already dead, or the queue crossed the hard water mark — the
  /// connection is closed with kBackpressure in that case).
  bool send(const ipc::Frame& f);

  /// Close from hub policy; fires on_close(reason) if still open.
  void close(CloseReason reason);

  std::size_t queued_bytes() const { return queued_bytes_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void on_events(std::uint32_t events);
  void handle_readable();
  /// Coalesced writev flush; returns false when the link died.
  bool flush();
  void update_write_interest();

  EventLoop& loop_;
  int fd_ = -1;
  ConnectionLimits limits_;
  ConnectionCounters counters_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  ipc::FrameDecoder decoder_;
  std::deque<std::vector<std::uint8_t>> write_queue_;
  std::size_t write_offset_ = 0;  ///< Consumed bytes of write_queue_.front().
  std::size_t queued_bytes_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_sent_ = 0;
  bool write_interest_ = false;
  bool over_soft_water_ = false;  ///< Inside one backpressure episode.
};

}  // namespace trader::hub
