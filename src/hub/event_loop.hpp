// Nonblocking event loop: epoll + timerfd timers + eventfd wakeup.
//
// The awareness hub multiplexes hundreds of SUO links over one thread;
// this is the reactor underneath it. Design constraints, in order:
//
//  * One epoll_wait per iteration services every readable/writable
//    connection, the timer wheel and cross-thread wakeups — no
//    per-connection threads, no per-read poll() like the blocking
//    FramedSocket path.
//  * Timers are fixed-rate, not fixed-delay: a periodic timer's next
//    deadline is computed from its *scheduled* deadline, never from
//    "now" at fire time. If the loop stalls for several periods the
//    timer fires once per missed period on resume (catch-up), so a
//    liveness window paced by the wheel cannot be silently stretched
//    by a slow iteration — the heartbeat-deadline drift bug class.
//  * Callbacks may add/remove fds and timers reentrantly. Closing an
//    fd from inside a callback defers the ::close to the end of the
//    iteration so the kernel cannot recycle the fd number into a
//    stale readiness record of the same epoll_wait batch.
//
// The loop is single-threaded by contract; wake() and request_stop()
// are the only thread-safe entry points (they write the eventfd).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "runtime/metrics.hpp"

namespace trader::hub {

class EventLoop {
 public:
  /// Receives the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const { return epoll_fd_ >= 0; }

  /// Register `fd` for `events` (EPOLL* mask). The loop never owns the
  /// fd — pair every add_fd with remove_fd before closing it.
  bool add_fd(int fd, std::uint32_t events, FdCallback cb);
  bool modify_fd(int fd, std::uint32_t events);
  /// Deregister `fd`. Safe from inside any callback; pending readiness
  /// records for it in the current batch are skipped.
  void remove_fd(int fd);

  /// Close `fd` at the end of the current iteration (or immediately
  /// when called outside poll()). Implies remove_fd.
  void defer_close(int fd);

  /// One-shot timer after `delay_ns`, or fixed-rate periodic when
  /// `interval_ns` > 0 (first fire after `delay_ns`, then every
  /// interval measured on the scheduled grid — see header comment).
  TimerId add_timer(std::int64_t delay_ns, std::int64_t interval_ns, TimerCallback cb);
  void cancel_timer(TimerId id);

  /// Run one iteration: wait up to `timeout_ms` (-1 = until activity),
  /// dispatch ready fds and due timers. Returns the number of
  /// callbacks dispatched, or -1 on an unrecoverable epoll error.
  int poll(int timeout_ms);

  /// poll(-1) until request_stop().
  void run();

  /// Make the current/next poll() return promptly. Thread-safe.
  void wake();
  /// Stop run() after the current iteration. Thread-safe.
  void request_stop();
  bool stop_requested() const { return stop_requested_; }

  /// CLOCK_MONOTONIC now, nanoseconds — the timer wheel's clock.
  static std::int64_t now_ns();

  std::size_t fd_count() const { return fds_.size(); }
  std::size_t timer_count() const { return timers_.size(); }
  std::uint64_t iterations() const { return iterations_; }

  /// Record per-iteration dispatch latency in `m` ("hub.loop_ns").
  void set_metrics(runtime::MetricsRegistry* m);

 private:
  struct Timer {
    TimerId id = 0;
    std::int64_t interval_ns = 0;  ///< 0 = one-shot.
    TimerCallback cb;
  };

  void arm_timerfd();
  int dispatch_timers();

  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, FdCallback> fds_;
  std::multimap<std::int64_t, Timer> timers_;  ///< deadline_ns -> timer
  std::unordered_map<TimerId, std::int64_t> timer_deadlines_;
  std::vector<int> pending_close_;
  TimerId next_timer_id_ = 1;
  std::uint64_t iterations_ = 0;
  bool in_poll_ = false;
  std::atomic<bool> stop_requested_{false};
  runtime::Histogram* loop_ns_ = nullptr;
};

}  // namespace trader::hub
