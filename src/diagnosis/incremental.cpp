#include "diagnosis/incremental.hpp"

#include <algorithm>

namespace trader::diagnosis {

void IncrementalSflCounts::ensure_span(std::uint32_t max_block) {
  if (max_block >= a11_.size()) {
    a11_.resize(max_block + 1, 0);
    a10_.resize(max_block + 1, 0);
  }
}

void IncrementalSflCounts::add(const std::vector<std::uint32_t>& blocks, bool error) {
  if (!blocks.empty()) ensure_span(blocks.back());
  for (const std::uint32_t b : blocks) {
    ensure_span(b);  // tolerate unsorted input (sorted input resizes once)
    if (a11_[b] + a10_[b] == 0) ++touched_;
    if (error) {
      ++a11_[b];
    } else {
      ++a10_[b];
    }
  }
  if (error) {
    ++error_steps_;
  } else {
    ++pass_steps_;
  }
}

void IncrementalSflCounts::retire(const std::vector<std::uint32_t>& blocks, bool error) {
  for (const std::uint32_t b : blocks) {
    if (b >= a11_.size()) continue;
    std::uint32_t& cell = error ? a11_[b] : a10_[b];
    if (cell == 0) continue;  // clamped: never retired more than added
    --cell;
    if (a11_[b] + a10_[b] == 0) --touched_;
  }
  if (error) {
    if (error_steps_ > 0) --error_steps_;
  } else {
    if (pass_steps_ > 0) --pass_steps_;
  }
}

SflCounts IncrementalSflCounts::counts(std::size_t block) const {
  SflCounts k;
  if (block < a11_.size()) {
    k.a11 = a11_[block];
    k.a10 = a10_[block];
  }
  k.a01 = static_cast<std::uint32_t>(error_steps_) - k.a11;
  k.a00 = static_cast<std::uint32_t>(pass_steps_) - k.a10;
  return k;
}

DiagnosisReport IncrementalSflCounts::report(Coefficient coefficient) const {
  DiagnosisReport out;
  out.coefficient = coefficient;
  out.ranking.reserve(touched_);
  for (std::size_t b = 0; b < a11_.size(); ++b) {
    if (a11_[b] + a10_[b] == 0) continue;
    out.ranking.push_back(BlockScore{b, similarity(coefficient, counts(b))});
  }
  out.blocks_considered = out.ranking.size();
  std::stable_sort(out.ranking.begin(), out.ranking.end(),
                   [](const BlockScore& a, const BlockScore& b) { return a.score > b.score; });
  return out;
}

std::vector<BlockScore> IncrementalSflCounts::top_k(std::size_t k, Coefficient coefficient) const {
  std::vector<BlockScore> scored;
  scored.reserve(touched_);
  for (std::size_t b = 0; b < a11_.size(); ++b) {
    if (a11_[b] + a10_[b] == 0) continue;
    scored.push_back(BlockScore{b, similarity(coefficient, counts(b))});
  }
  const std::size_t n = std::min(k, scored.size());
  // Candidates arrive in ascending block order, so breaking score ties
  // by block id reproduces stable_sort's order for the first n entries.
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(n),
                    scored.end(), [](const BlockScore& a, const BlockScore& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.block < b.block;
                    });
  scored.resize(n);
  return scored;
}

void IncrementalSflCounts::merge(const IncrementalSflCounts& other) {
  if (other.a11_.size() > a11_.size()) {
    a11_.resize(other.a11_.size(), 0);
    a10_.resize(other.a10_.size(), 0);
  }
  for (std::size_t b = 0; b < other.a11_.size(); ++b) {
    const std::uint32_t add = other.a11_[b] + other.a10_[b];
    if (add == 0) continue;
    if (a11_[b] + a10_[b] == 0) ++touched_;
    a11_[b] += other.a11_[b];
    a10_[b] += other.a10_[b];
  }
  error_steps_ += other.error_steps_;
  pass_steps_ += other.pass_steps_;
}

void IncrementalSflCounts::clear() {
  a11_.clear();
  a10_.clear();
  error_steps_ = 0;
  pass_steps_ = 0;
  touched_ = 0;
}

void IncrementalSflCounts::save(journal::Encoder& out) const {
  out.u32(static_cast<std::uint32_t>(a11_.size()));
  for (const std::uint32_t v : a11_) out.u32(v);
  for (const std::uint32_t v : a10_) out.u32(v);
  out.u64(error_steps_);
  out.u64(pass_steps_);
}

bool IncrementalSflCounts::load(journal::Decoder& in) {
  clear();
  const std::uint32_t span = in.u32();
  // The span is checksum-protected upstream, but bound it anyway so a
  // logic bug can never turn into a multi-gigabyte allocation.
  if (!in.ok() || in.remaining() < static_cast<std::size_t>(span) * 8) {
    in.fail();
    return false;
  }
  a11_.resize(span, 0);
  a10_.resize(span, 0);
  for (std::uint32_t b = 0; b < span; ++b) a11_[b] = in.u32();
  for (std::uint32_t b = 0; b < span; ++b) a10_[b] = in.u32();
  error_steps_ = in.u64();
  pass_steps_ = in.u64();
  if (!in.ok()) {
    clear();
    return false;
  }
  touched_ = 0;
  for (std::size_t b = 0; b < a11_.size(); ++b) {
    if (a11_[b] + a10_[b] > 0) ++touched_;
  }
  return true;
}

}  // namespace trader::diagnosis
