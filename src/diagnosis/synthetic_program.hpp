// Synthetic instrumented program — the 60 000-block TV software stand-in.
//
// The §4.4 case study instruments real NXP TV software (60 000 blocks)
// and injects a teletext fault. That code base is proprietary, so this
// generator builds a program with the same *spectral structure*: a pool
// of common infrastructure blocks executed on every step, per-feature
// block pools (one per remote-control feature), and partially varying
// execution within a feature from step to step. A fault is seeded into
// one block; executing it makes the step erroneous (optionally with a
// manifestation probability < 1 to model intermittent failures).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "observation/coverage.hpp"
#include "runtime/rng.hpp"

namespace trader::diagnosis {

struct SyntheticProgramConfig {
  std::size_t total_blocks = 60000;
  std::size_t feature_count = 24;    ///< Remote-control features.
  double common_fraction = 0.05;     ///< Blocks executed on every step.
  double shared_fraction = 0.10;     ///< Utility pool sampled each step.
  /// Fraction of a feature's blocks executed on a given activation
  /// (varies deterministically per step within [min, max]).
  double feature_cover_min = 0.65;
  double feature_cover_max = 0.95;
  double shared_cover = 0.25;        ///< Fraction of utilities per step.
  double fault_manifestation = 1.0;  ///< P(error | fault block executed).
  std::uint64_t seed = 1234;
};

/// A generated program whose steps produce coverage + pass/fail.
class SyntheticProgram {
 public:
  explicit SyntheticProgram(SyntheticProgramConfig config);

  const SyntheticProgramConfig& config() const { return config_; }
  std::size_t block_count() const { return config_.total_blocks; }
  std::size_t feature_count() const { return config_.feature_count; }

  /// Seed the fault into the `index`-th block of `feature`.
  void set_fault_in_feature(std::size_t feature, std::size_t index = 0);
  /// Seed the fault into an absolute block id.
  void set_fault_block(std::size_t block);
  /// Remove the seeded fault entirely — the effect of a successful
  /// repair (e.g. a hub-commanded restart of the faulty component):
  /// no step manifests an error afterwards.
  void clear_fault() { fault_block_ = static_cast<std::size_t>(-1); }
  bool has_fault() const { return fault_block_ != static_cast<std::size_t>(-1); }
  std::size_t fault_block() const { return fault_block_; }
  /// Feature owning a block (or SIZE_MAX for common/shared blocks).
  std::size_t feature_of(std::size_t block) const;

  /// Execute one scenario step activating `feature`; records coverage
  /// into `coverage` (the step is NOT closed — caller calls end_step())
  /// and returns whether the step manifested an error.
  bool run_step(std::size_t feature, observation::BlockCoverageRecorder& coverage);

  /// Convenience: run a whole scenario (one feature per step), closing
  /// each step; returns the error vector.
  std::vector<bool> run_scenario(const std::vector<std::size_t>& features,
                                 observation::BlockCoverageRecorder& coverage);

  // Block-range introspection (for tests).
  std::size_t common_begin() const { return 0; }
  std::size_t common_end() const { return common_count_; }
  std::size_t shared_begin() const { return common_count_; }
  std::size_t shared_end() const { return common_count_ + shared_count_; }
  std::size_t feature_begin(std::size_t feature) const;
  std::size_t feature_end(std::size_t feature) const;

 private:
  SyntheticProgramConfig config_;
  runtime::Rng rng_;
  std::size_t common_count_;
  std::size_t shared_count_;
  std::size_t per_feature_;
  std::size_t fault_block_;
};

}  // namespace trader::diagnosis
