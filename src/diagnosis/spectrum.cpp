#include "diagnosis/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "diagnosis/incremental.hpp"

namespace trader::diagnosis {

const char* to_string(Coefficient c) {
  switch (c) {
    case Coefficient::kOchiai:
      return "ochiai";
    case Coefficient::kTarantula:
      return "tarantula";
    case Coefficient::kJaccard:
      return "jaccard";
    case Coefficient::kAmple:
      return "ample";
    case Coefficient::kSimpleMatching:
      return "simple-matching";
  }
  return "?";
}

std::vector<Coefficient> all_coefficients() {
  return {Coefficient::kOchiai, Coefficient::kTarantula, Coefficient::kJaccard,
          Coefficient::kAmple, Coefficient::kSimpleMatching};
}

double similarity(Coefficient c, const SflCounts& k) {
  const double a11 = k.a11;
  const double a10 = k.a10;
  const double a01 = k.a01;
  const double a00 = k.a00;
  switch (c) {
    case Coefficient::kOchiai: {
      const double denom = std::sqrt((a11 + a01) * (a11 + a10));
      return denom > 0.0 ? a11 / denom : 0.0;
    }
    case Coefficient::kTarantula: {
      const double fail = a11 + a01;
      const double pass = a10 + a00;
      const double f = fail > 0 ? a11 / fail : 0.0;
      const double p = pass > 0 ? a10 / pass : 0.0;
      return (f + p) > 0.0 ? f / (f + p) : 0.0;
    }
    case Coefficient::kJaccard: {
      const double denom = a11 + a01 + a10;
      return denom > 0.0 ? a11 / denom : 0.0;
    }
    case Coefficient::kAmple: {
      const double fail = a11 + a01;
      const double pass = a10 + a00;
      const double f = fail > 0 ? a11 / fail : 0.0;
      const double p = pass > 0 ? a10 / pass : 0.0;
      return std::abs(f - p);
    }
    case Coefficient::kSimpleMatching: {
      const double total = a11 + a10 + a01 + a00;
      return total > 0.0 ? (a11 + a00) / total : 0.0;
    }
  }
  return 0.0;
}

SflCounts SflRanker::counts_for(const observation::BlockCoverageRecorder& coverage,
                                const std::vector<bool>& errors, std::size_t block) {
  SflCounts k;
  const std::size_t steps = coverage.step_count();
  for (std::size_t s = 0; s < steps; ++s) {
    const bool exec = coverage.executed(s, block);
    const bool err = errors[s];
    if (exec && err) {
      ++k.a11;
    } else if (exec && !err) {
      ++k.a10;
    } else if (!exec && err) {
      ++k.a01;
    } else {
      ++k.a00;
    }
  }
  return k;
}

DiagnosisReport SflRanker::rank(const observation::BlockCoverageRecorder& coverage,
                                const std::vector<bool>& errors, Coefficient coefficient) const {
  if (errors.size() != coverage.step_count()) {
    throw std::invalid_argument("error vector length (" + std::to_string(errors.size()) +
                                ") != step count (" + std::to_string(coverage.step_count()) + ")");
  }
  // The batch path is the streaming path replayed: feed each step's
  // spectrum into the incremental accumulator, then rank once. Only
  // blocks executed at least once carry information, which the
  // accumulator tracks by construction (untouched ids are never added).
  IncrementalSflCounts acc;
  const std::size_t blocks = coverage.block_count();
  const std::size_t steps = coverage.step_count();
  std::vector<std::uint32_t> executed;
  for (std::size_t s = 0; s < steps; ++s) {
    executed.clear();
    const auto& row = coverage.matrix()[s];
    for (std::size_t b = 0; b < blocks; ++b) {
      if (row[b]) executed.push_back(static_cast<std::uint32_t>(b));
    }
    acc.add(executed, errors[s]);
  }
  return acc.report(coefficient);
}

std::size_t DiagnosisReport::rank_of(std::size_t block) const {
  double score = -1.0;
  for (const auto& bs : ranking) {
    if (bs.block == block) {
      score = bs.score;
      break;
    }
  }
  if (score < 0.0) return ranking.size() + 1;  // not ranked
  std::size_t better = 0;
  for (const auto& bs : ranking) {
    if (bs.score > score) ++better;
  }
  return better + 1;
}

std::size_t DiagnosisReport::worst_rank_of(std::size_t block) const {
  double score = -1.0;
  bool found = false;
  for (const auto& bs : ranking) {
    if (bs.block == block) {
      score = bs.score;
      found = true;
      break;
    }
  }
  if (!found) return ranking.size() + 1;
  std::size_t better_or_equal = 0;
  for (const auto& bs : ranking) {
    if (bs.score >= score) ++better_or_equal;
  }
  return better_or_equal;
}

double DiagnosisReport::wasted_effort(std::size_t block) const {
  if (ranking.empty()) return 1.0;
  const double best = static_cast<double>(rank_of(block));
  const double worst = static_cast<double>(worst_rank_of(block));
  const double mid = (best + worst) / 2.0;
  return (mid - 1.0) / static_cast<double>(ranking.size());
}

}  // namespace trader::diagnosis
