// Component-level diagnosis.
//
// Block-level rankings localize the fault for a developer; the *recovery
// manager* needs a coarser answer — which recoverable unit to restart.
// ComponentRanker folds a block ranking into component suspiciousness
// using a block→component mapping (e.g. ControlBlock→feature, or
// synthetic-program feature ownership).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "diagnosis/spectrum.hpp"

namespace trader::diagnosis {

/// Component-level suspiciousness.
struct ComponentScore {
  std::string component;
  double score = 0.0;        ///< Aggregated from the component's blocks.
  std::size_t best_block = 0;
  std::size_t blocks = 0;    ///< Blocks of this component in the ranking.
};

class ComponentRanker {
 public:
  /// Aggregate a block ranking: per component, the mean of its top-k
  /// block scores (k small keeps one hot block decisive while damping
  /// single-block noise). Components are returned most suspicious first.
  static std::vector<ComponentScore> rank(
      const DiagnosisReport& report,
      const std::function<std::string(std::size_t block)>& component_of, int top_k = 3);

  /// 1-based rank of `component` (size+1 when absent).
  static std::size_t rank_of(const std::vector<ComponentScore>& scores,
                             const std::string& component);
};

}  // namespace trader::diagnosis
