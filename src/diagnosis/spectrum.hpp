// Spectrum-based fault localization (§4.4, after Zoeteweij et al. [20]).
//
// "for each sequence of key presses, a so-called scenario, for each
// block it is recorded whether it has been executed or not between two
// key presses. This leads to a vector, a so-called spectrum, for each
// block. … it is recorded for each key press whether it leads to error
// or not. … Next, the similarity between the error vector and the
// spectra is computed. Finally, the blocks are ranked according to their
// similarity."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "observation/coverage.hpp"

namespace trader::diagnosis {

/// Similarity coefficients between a block's spectrum and the error
/// vector. Ochiai is the strongest performer in the embedded-software
/// study the paper builds on; the others serve as comparison points.
enum class Coefficient : std::uint8_t {
  kOchiai,
  kTarantula,
  kJaccard,
  kAmple,
  kSimpleMatching,
};

const char* to_string(Coefficient c);

/// All coefficients, for sweeps.
std::vector<Coefficient> all_coefficients();

/// Contingency counts of one block vs the error vector:
///   a11: executed in erroneous step   a10: executed in passing step
///   a01: not executed in erroneous    a00: not executed in passing
struct SflCounts {
  std::uint32_t a11 = 0;
  std::uint32_t a10 = 0;
  std::uint32_t a01 = 0;
  std::uint32_t a00 = 0;
};

/// Coefficient value for one block's counts (higher = more suspicious).
double similarity(Coefficient c, const SflCounts& k);

/// A ranked block.
struct BlockScore {
  std::size_t block = 0;
  double score = 0.0;
};

/// Result of a diagnosis run.
struct DiagnosisReport {
  Coefficient coefficient = Coefficient::kOchiai;
  std::vector<BlockScore> ranking;  ///< Sorted by descending score.
  std::size_t blocks_considered = 0;

  /// 1-based rank of `block`, counting ties optimistically (number of
  /// strictly better blocks + 1).
  std::size_t rank_of(std::size_t block) const;
  /// 1-based rank counting ties pessimistically (better-or-equal blocks).
  std::size_t worst_rank_of(std::size_t block) const;
  /// Fraction of considered blocks a developer inspects before reaching
  /// `block` (mid-tie convention) — the standard wasted-effort metric.
  double wasted_effort(std::size_t block) const;
};

/// The ranker: combines a coverage matrix with an error vector.
class SflRanker {
 public:
  /// `errors[s]` says whether step s showed an error. Only blocks that
  /// were executed in at least one step are ranked (unexecuted blocks
  /// carry no information and are excluded, as in the paper's 13 796 of
  /// 60 000).
  DiagnosisReport rank(const observation::BlockCoverageRecorder& coverage,
                       const std::vector<bool>& errors,
                       Coefficient coefficient = Coefficient::kOchiai) const;

  /// Counts for a single block (exposed for tests/property checks).
  static SflCounts counts_for(const observation::BlockCoverageRecorder& coverage,
                              const std::vector<bool>& errors, std::size_t block);
};

}  // namespace trader::diagnosis
