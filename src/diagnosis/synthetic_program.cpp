#include "diagnosis/synthetic_program.hpp"

#include <algorithm>
#include <stdexcept>

namespace trader::diagnosis {

SyntheticProgram::SyntheticProgram(SyntheticProgramConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.feature_count == 0) throw std::invalid_argument("feature_count must be > 0");
  common_count_ = static_cast<std::size_t>(
      static_cast<double>(config_.total_blocks) * config_.common_fraction);
  shared_count_ = static_cast<std::size_t>(
      static_cast<double>(config_.total_blocks) * config_.shared_fraction);
  if (common_count_ + shared_count_ >= config_.total_blocks) {
    throw std::invalid_argument("common+shared fractions leave no feature blocks");
  }
  per_feature_ = (config_.total_blocks - common_count_ - shared_count_) / config_.feature_count;
  if (per_feature_ == 0) throw std::invalid_argument("too many features for block count");
  fault_block_ = feature_begin(0);
}

std::size_t SyntheticProgram::feature_begin(std::size_t feature) const {
  return common_count_ + shared_count_ + feature * per_feature_;
}

std::size_t SyntheticProgram::feature_end(std::size_t feature) const {
  return feature_begin(feature) + per_feature_;
}

void SyntheticProgram::set_fault_in_feature(std::size_t feature, std::size_t index) {
  if (feature >= config_.feature_count) throw std::out_of_range("no such feature");
  fault_block_ = feature_begin(feature) + (index % per_feature_);
}

void SyntheticProgram::set_fault_block(std::size_t block) {
  if (block >= config_.total_blocks) throw std::out_of_range("no such block");
  fault_block_ = block;
}

std::size_t SyntheticProgram::feature_of(std::size_t block) const {
  if (block < common_count_ + shared_count_) return static_cast<std::size_t>(-1);
  const std::size_t f = (block - common_count_ - shared_count_) / per_feature_;
  return f < config_.feature_count ? f : static_cast<std::size_t>(-1);
}

bool SyntheticProgram::run_step(std::size_t feature,
                                observation::BlockCoverageRecorder& coverage) {
  if (feature >= config_.feature_count) throw std::out_of_range("no such feature");
  bool fault_executed = false;
  auto touch = [&](std::size_t block) {
    coverage.hit(block);
    if (block == fault_block_) fault_executed = true;
  };

  // Common infrastructure runs on every step (event loop, dispatching).
  for (std::size_t b = 0; b < common_count_; ++b) touch(b);

  // A varying slice of the shared utility pool.
  for (std::size_t b = shared_begin(); b < shared_end(); ++b) {
    if (rng_.bernoulli(config_.shared_cover)) touch(b);
  }

  // The active feature's handler: a contiguous prefix of the feature's
  // blocks, its length varying per activation — deep branches of the
  // handler are not reached on every key press.
  const double cover =
      rng_.uniform(config_.feature_cover_min, config_.feature_cover_max);
  const auto begin = feature_begin(feature);
  const auto count = static_cast<std::size_t>(static_cast<double>(per_feature_) * cover);
  for (std::size_t b = begin; b < begin + count; ++b) touch(b);

  if (!fault_executed) return false;
  return config_.fault_manifestation >= 1.0 || rng_.bernoulli(config_.fault_manifestation);
}

std::vector<bool> SyntheticProgram::run_scenario(const std::vector<std::size_t>& features,
                                                 observation::BlockCoverageRecorder& coverage) {
  std::vector<bool> errors;
  errors.reserve(features.size());
  for (const std::size_t f : features) {
    errors.push_back(run_step(f, coverage));
    coverage.end_step();
  }
  return errors;
}

}  // namespace trader::diagnosis
