// Incremental spectrum-based fault localization counts.
//
// The offline SflRanker (spectrum.hpp) scans a full coverage matrix per
// ranking — fine for a post-mortem, useless for a hub ingesting spectra
// from a fleet at wire rate. IncrementalSflCounts keeps the §4.4
// contingency table current one spectrum at a time:
//
//   add(blocks, error):  for each executed block b
//                          error  ? ++a11[b] : ++a10[b]
//                        error ? ++error_steps : ++pass_steps
//
// The per-block counts the similarity coefficients need follow without
// any rescan, because the two columns a spectrum does NOT touch are
// derivable from the step totals:
//
//   a01[b] = error_steps - a11[b]     (erroneous steps that skipped b)
//   a00[b] = pass_steps  - a10[b]     (passing steps that skipped b)
//
// so one report costs O(blocks touched), never O(blocks x steps).
// retire() is the exact inverse, enabling sliding-window diagnosis.
// report() reproduces SflRanker::rank() bit-for-bit: same integer
// counts, same similarity() doubles, same stable descending sort — the
// equivalence the online/offline differential tests pin.
#pragma once

#include <cstdint>
#include <vector>

#include "diagnosis/spectrum.hpp"
#include "journal/codec.hpp"

namespace trader::diagnosis {

class IncrementalSflCounts {
 public:
  /// Account one spectrum: the sorted-unique ids of the blocks executed
  /// in a step that did (`error`) or did not show an error. Ids may
  /// exceed any previous maximum; storage grows to the largest id seen.
  void add(const std::vector<std::uint32_t>& blocks, bool error);

  /// Exact inverse of add() with the same arguments (sliding-window
  /// retirement). Retiring a spectrum that was never added is clamped
  /// to zero rather than underflowing.
  void retire(const std::vector<std::uint32_t>& blocks, bool error);

  std::size_t steps() const { return error_steps_ + pass_steps_; }
  std::size_t error_steps() const { return error_steps_; }
  std::size_t pass_steps() const { return pass_steps_; }

  /// One past the largest block id ever seen (the ranking universe).
  std::size_t block_span() const { return a11_.size(); }
  /// Blocks currently executed in >= 1 accounted step.
  std::size_t touched_blocks() const { return touched_; }
  bool touched(std::size_t block) const {
    return block < a11_.size() && a11_[block] + a10_[block] > 0;
  }

  /// Full contingency counts of one block (a01/a00 derived).
  SflCounts counts(std::size_t block) const;

  /// Full ranking over touched blocks — identical (scores, order,
  /// blocks_considered) to SflRanker::rank() over the same spectra.
  DiagnosisReport report(Coefficient coefficient = Coefficient::kOchiai) const;

  /// First k entries of report().ranking without sorting the tail:
  /// partial-sort with the tie order stable_sort would produce (score
  /// descending, block id ascending within a tie).
  std::vector<BlockScore> top_k(std::size_t k,
                                Coefficient coefficient = Coefficient::kOchiai) const;

  /// Fold another accumulator in (fleet-wide union over one id space).
  void merge(const IncrementalSflCounts& other);

  void clear();

  /// Serialize the full accumulator for the hub's checkpoint files.
  /// load() fully overwrites current state and fails closed (false,
  /// counts cleared) on any malformed input; `touched_` is recomputed
  /// rather than trusted from disk.
  void save(journal::Encoder& out) const;
  bool load(journal::Decoder& in);

 private:
  void ensure_span(std::uint32_t max_block);

  std::vector<std::uint32_t> a11_;  ///< Executed-in-error-step, per block.
  std::vector<std::uint32_t> a10_;  ///< Executed-in-pass-step, per block.
  std::size_t error_steps_ = 0;
  std::size_t pass_steps_ = 0;
  std::size_t touched_ = 0;
};

}  // namespace trader::diagnosis
