#include "diagnosis/component_ranker.hpp"

#include <algorithm>
#include <map>

namespace trader::diagnosis {

std::vector<ComponentScore> ComponentRanker::rank(
    const DiagnosisReport& report,
    const std::function<std::string(std::size_t block)>& component_of, int top_k) {
  struct Acc {
    std::vector<double> top;  // kept sorted descending, size <= top_k
    std::size_t best_block = 0;
    double best_score = -1.0;
    std::size_t blocks = 0;
  };
  std::map<std::string, Acc> accs;
  for (const auto& bs : report.ranking) {
    const std::string component = component_of(bs.block);
    if (component.empty()) continue;
    Acc& acc = accs[component];
    ++acc.blocks;
    if (bs.score > acc.best_score) {
      acc.best_score = bs.score;
      acc.best_block = bs.block;
    }
    acc.top.push_back(bs.score);
    std::sort(acc.top.begin(), acc.top.end(), std::greater<>());
    if (acc.top.size() > static_cast<std::size_t>(top_k)) acc.top.resize(
        static_cast<std::size_t>(top_k));
  }

  std::vector<ComponentScore> out;
  out.reserve(accs.size());
  for (const auto& [component, acc] : accs) {
    double sum = 0.0;
    for (double s : acc.top) sum += s;
    out.push_back(ComponentScore{component, acc.top.empty() ? 0.0 : sum / acc.top.size(),
                                 acc.best_block, acc.blocks});
  }
  std::stable_sort(out.begin(), out.end(), [](const ComponentScore& a, const ComponentScore& b) {
    return a.score > b.score;
  });
  return out;
}

std::size_t ComponentRanker::rank_of(const std::vector<ComponentScore>& scores,
                                     const std::string& component) {
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i].component == component) return i + 1;
  }
  return scores.size() + 1;
}

}  // namespace trader::diagnosis
