// Byte codec for durable hub artifacts (WAL records, checkpoints).
//
// Header-only on purpose: the low layers that serialize themselves
// (diagnosis counters, recovery escalator, supervisor snapshots)
// include this without linking trader_journal, which keeps the
// dependency graph acyclic — trader_journal links trader_ipc, never
// the other way around.
//
// The encoding mirrors the wire protocol's discipline (ipc/wire.hpp):
// explicit little-endian integers, u32-length-prefixed strings and
// byte blobs, and a fail-closed decoder — one malformed field poisons
// the decoder and every subsequent read returns zero, so a torn or
// corrupted record can never leak partial state into restored hubs.
// Integrity (checksums) is layered above by the WAL / checkpoint file
// formats; this codec only defines field layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace trader::journal {

/// Append-only little-endian field writer.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// u32 length prefix + raw bytes.
  void blob(const std::uint8_t* data, std::size_t n) {
    u32(static_cast<std::uint32_t>(n));
    buf_.insert(buf_.end(), data, data + n);
  }

  void blob(const std::vector<std::uint8_t>& b) { blob(b.data(), b.size()); }

  /// Raw bytes, no length prefix (caller owns the framing).
  void raw(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked field reader over a fixed byte range. Fails closed:
/// the first short or malformed read sets a sticky failure flag and
/// every later read yields zero / empty.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail();  // anything but 0/1 is malformed, not "truthy"
    return v == 1;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// Pointer into the underlying range for zero-copy framing; advances
  /// past `n` bytes. Null on underflow (and the decoder is poisoned).
  const std::uint8_t* raw(std::size_t n) {
    if (!need(n)) return nullptr;
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  bool ok() const { return !failed_; }
  bool done() const { return !failed_ && pos_ == size_; }
  std::size_t remaining() const { return failed_ ? 0 : size_ - pos_; }
  void fail() { failed_ = true; }

 private:
  bool need(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace trader::journal
