#include "journal/checkpoint.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ipc/wire.hpp"
#include "journal/wal.hpp"

namespace trader::journal {

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".bin";
constexpr std::size_t kHeaderBytes = 16;

std::string checkpoint_name_for(std::uint64_t wal_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kPrefix,
                static_cast<unsigned long long>(wal_seq), kSuffix);
  return buf;
}

/// Coverage seq from a snapshot file name; UINT64_MAX when the name is
/// not a ckpt-<seq>.bin (seq 0 is a legal coverage: "nothing yet").
std::uint64_t parse_checkpoint_seq(const std::string& name) {
  const std::size_t prefix = std::strlen(kPrefix);
  const std::size_t suffix = std::strlen(kSuffix);
  constexpr std::uint64_t kBad = ~0ULL;
  if (name.size() <= prefix + suffix) return kBad;
  if (name.compare(0, prefix, kPrefix) != 0) return kBad;
  if (name.compare(name.size() - suffix, suffix, kSuffix) != 0) return kBad;
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  if (digits.empty()) return kBad;
  for (char c : digits) {
    if (c < '0' || c > '9') return kBad;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::vector<std::uint64_t> list_checkpoints(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (dirent* e = ::readdir(d)) {
    const std::uint64_t seq = parse_checkpoint_seq(e->d_name);
    if (seq != ~0ULL) seqs.push_back(seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::read(fd, out.data() + off, out.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

bool write_file_durable(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::size_t retain)
    : dir_(std::move(dir)), retain_(retain > 0 ? retain : 1) {}

bool CheckpointStore::write(std::uint64_t wal_seq,
                            const std::vector<Checkpointable*>& parts,
                            std::string* error) {
  if (!ensure_dir(dir_)) {
    if (error) *error = "cannot create checkpoint dir " + dir_;
    return false;
  }
  Encoder body;
  body.u64(wal_seq);
  body.u32(static_cast<std::uint32_t>(parts.size()));
  for (const Checkpointable* part : parts) {
    Encoder section;
    part->save_state(section);
    body.str(part->checkpoint_name());
    body.u32(part->checkpoint_version());
    body.blob(section.buffer());
  }
  Encoder file;
  file.u32(kCheckpointMagic);
  file.u32(kCheckpointFormat);
  file.u32(ipc::fnv1a32(body.buffer().data(), body.size()));
  file.u32(static_cast<std::uint32_t>(body.size()));
  file.raw(body.buffer().data(), body.size());

  const std::string final_path = dir_ + "/" + checkpoint_name_for(wal_seq);
  const std::string tmp_path = final_path + ".tmp";
  if (!write_file_durable(tmp_path, file.buffer())) {
    if (error) *error = "cannot write " + tmp_path;
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    if (error) *error = "cannot rename " + tmp_path;
    ::unlink(tmp_path.c_str());
    return false;
  }
  fsync_dir(dir_);
  ++stats_.written;

  // Retention: keep the newest `retain_` snapshots.
  const std::vector<std::uint64_t> seqs = list_checkpoints(dir_);
  if (seqs.size() > retain_) {
    for (std::size_t i = 0; i + retain_ < seqs.size(); ++i) {
      if (::unlink((dir_ + "/" + checkpoint_name_for(seqs[i])).c_str()) == 0) {
        ++stats_.retired;
      }
    }
  }
  return true;
}

bool CheckpointStore::load_latest(const std::vector<Checkpointable*>& parts,
                                  std::uint64_t* wal_seq, std::string* error) {
  if (wal_seq) *wal_seq = 0;
  if (error) error->clear();
  std::vector<std::uint64_t> seqs = list_checkpoints(dir_);
  std::sort(seqs.rbegin(), seqs.rend());
  for (std::uint64_t seq : seqs) {
    ++stats_.load_attempts;
    const std::string path = dir_ + "/" + checkpoint_name_for(seq);
    std::vector<std::uint8_t> bytes;
    if (!read_file(path, bytes) || bytes.size() < kHeaderBytes) {
      ++stats_.load_failures;
      continue;  // container damage: fall back to an older snapshot
    }
    Decoder hdr(bytes.data(), kHeaderBytes);
    const std::uint32_t magic = hdr.u32();
    const std::uint32_t format = hdr.u32();
    const std::uint32_t checksum = hdr.u32();
    const std::uint32_t body_len = hdr.u32();
    if (magic != kCheckpointMagic || format != kCheckpointFormat ||
        bytes.size() != kHeaderBytes + body_len) {
      ++stats_.load_failures;
      continue;
    }
    const std::uint8_t* body = bytes.data() + kHeaderBytes;
    if (ipc::fnv1a32(body, body_len) != checksum) {
      ++stats_.load_failures;
      continue;
    }
    // Parse the full container before mutating any part, so container
    // damage never leaves components half-restored.
    Decoder dec(body, body_len);
    const std::uint64_t covered = dec.u64();
    const std::uint32_t part_count = dec.u32();
    struct Section {
      std::string name;
      std::uint32_t version;
      std::vector<std::uint8_t> state;
    };
    std::vector<Section> sections;
    sections.reserve(part_count);
    for (std::uint32_t i = 0; i < part_count && dec.ok(); ++i) {
      Section s;
      s.name = dec.str();
      s.version = dec.u32();
      s.state = dec.blob();
      sections.push_back(std::move(s));
    }
    if (!dec.done()) {
      ++stats_.load_failures;
      continue;
    }
    // A checksum-valid container whose sections will not load is a
    // software/version problem, not bit rot: fail the recovery closed.
    for (Checkpointable* part : parts) {
      const Section* found = nullptr;
      for (const Section& s : sections) {
        if (s.name == part->checkpoint_name()) {
          found = &s;
          break;
        }
      }
      if (found == nullptr) {
        if (error) {
          *error = "checkpoint " + path + " lacks section '" +
                   part->checkpoint_name() + "'";
        }
        return false;
      }
      Decoder state(found->state.data(), found->state.size());
      if (!part->load_state(state, found->version)) {
        if (error) {
          *error = "checkpoint " + path + " section '" +
                   part->checkpoint_name() + "' (v" +
                   std::to_string(found->version) + ") refused to load";
        }
        return false;
      }
    }
    if (wal_seq) *wal_seq = covered;
    return true;
  }
  return false;  // no usable snapshot: fresh start (error stays empty)
}

std::vector<std::uint64_t> CheckpointStore::available() const {
  return list_checkpoints(dir_);
}

}  // namespace trader::journal
