#include "journal/replay.hpp"

namespace trader::journal {

HubJournal::HubJournal(JournalConfig config, runtime::MetricsRegistry* metrics)
    : config_(std::move(config)),
      store_(config_.dir, config_.retain_checkpoints) {
  if (metrics != nullptr) {
    appends_ = &metrics->counter("hub.journal.appends");
    append_bytes_ = &metrics->counter("hub.journal.append_bytes");
    append_errors_ = &metrics->counter("hub.journal.append_errors");
    checkpoints_ = &metrics->counter("hub.journal.checkpoints");
    recoveries_ = &metrics->counter("hub.journal.recoveries");
    replayed_ = &metrics->counter("hub.journal.replayed_records");
    truncated_bytes_ = &metrics->counter("hub.journal.truncated_bytes");
  }
}

JournalRecoveryInfo HubJournal::recover(
    const std::vector<Checkpointable*>& parts, ReplaySink& sink) {
  JournalRecoveryInfo info;
  info.attempted = true;
  abandoned_ = false;
  writer_.close();
  if (!ensure_dir(config_.dir)) {
    info.ok = false;
    info.error = "cannot create journal dir " + config_.dir;
    return info;
  }

  std::uint64_t checkpoint_seq = 0;
  std::string error;
  if (store_.load_latest(parts, &checkpoint_seq, &error)) {
    info.from_checkpoint = true;
    info.checkpoint_seq = checkpoint_seq;
  } else if (!error.empty()) {
    // A snapshot exists but refuses to load: software mismatch, not
    // bit rot — restoring guessed state would be worse than failing.
    info.ok = false;
    info.error = error;
    return info;
  }

  bool dispatch_ok = true;
  std::string dispatch_error;
  const WalScanResult scanned = scan_wal(
      config_.dir, checkpoint_seq, /*repair_tail=*/true,
      [&](const WalRecord& rec) {
        switch (rec.type) {
          case WalRecordType::kFrame: {
            // The payload is the exact encoded wire frame; re-decode it
            // through the same fail-closed decoder live traffic uses.
            ipc::FrameDecoder decoder;
            decoder.feed(rec.payload.data(), rec.payload.size());
            ipc::Frame frame;
            if (decoder.next(frame) != ipc::DecodeStatus::kOk) {
              dispatch_ok = false;
              dispatch_error = "checksum-valid WAL record " +
                               std::to_string(rec.seq) +
                               " holds an undecodable frame";
              return false;
            }
            sink.replay_frame(rec.slot, frame);
            break;
          }
          case WalRecordType::kSlotUp: {
            Decoder dec(rec.payload.data(), rec.payload.size());
            const std::uint8_t version = dec.u8();
            if (!dec.done()) {
              dispatch_ok = false;
              dispatch_error = "malformed slot-up payload at seq " +
                               std::to_string(rec.seq);
              return false;
            }
            sink.replay_slot_up(rec.slot, version);
            break;
          }
          case WalRecordType::kSlotDown: {
            Decoder dec(rec.payload.data(), rec.payload.size());
            const bool orderly = dec.boolean();
            if (!dec.done()) {
              dispatch_ok = false;
              dispatch_error = "malformed slot-down payload at seq " +
                               std::to_string(rec.seq);
              return false;
            }
            sink.replay_slot_down(rec.slot, orderly);
            break;
          }
          case WalRecordType::kTick:
            sink.replay_tick(rec.time);
            break;
        }
        ++info.replayed_records;
        return true;
      });

  info.wal_status = scanned.status;
  info.truncated_bytes = scanned.truncated_bytes;
  if (!dispatch_ok) {
    info.ok = false;
    info.error = dispatch_error;
    return info;
  }
  if (!scanned.usable()) {
    info.ok = false;
    info.error = scanned.error;
    return info;
  }

  const std::uint64_t next_seq =
      (scanned.last_seq > checkpoint_seq ? scanned.last_seq : checkpoint_seq) +
      1;
  if (!writer_.open(config_.dir, next_seq, config_.segment_bytes,
                    config_.fsync)) {
    info.ok = false;
    info.error = "cannot open WAL writer in " + config_.dir;
    return info;
  }
  records_since_checkpoint_ = 0;
  if (recoveries_) recoveries_->inc();
  if (replayed_) replayed_->inc(info.replayed_records);
  if (truncated_bytes_) truncated_bytes_->inc(info.truncated_bytes);
  return info;
}

void HubJournal::append(WalRecordType type, const std::string& slot,
                        runtime::SimTime time, const std::uint8_t* payload,
                        std::size_t payload_len) {
  if (abandoned_ || !writer_.is_open()) return;
  const std::uint64_t before = writer_.stats().bytes;
  if (writer_.append(type, slot, time, payload, payload_len) == 0) {
    if (append_errors_) append_errors_->inc();
    return;
  }
  ++records_since_checkpoint_;
  if (appends_) appends_->inc();
  if (append_bytes_) append_bytes_->inc(writer_.stats().bytes - before);
}

void HubJournal::append_frame(const std::string& slot,
                              const ipc::Frame& frame) {
  if (abandoned_ || !writer_.is_open()) return;
  const std::vector<std::uint8_t> bytes = ipc::encode_frame(frame);
  if (bytes.empty()) {
    if (append_errors_) append_errors_->inc();
    return;
  }
  append(WalRecordType::kFrame, slot, frame.time, bytes.data(), bytes.size());
}

void HubJournal::append_slot_up(const std::string& slot, std::uint8_t version,
                                runtime::SimTime now) {
  const std::uint8_t payload[1] = {version};
  append(WalRecordType::kSlotUp, slot, now, payload, 1);
}

void HubJournal::append_slot_down(const std::string& slot, bool orderly,
                                  runtime::SimTime now) {
  const std::uint8_t payload[1] = {orderly ? std::uint8_t{1} : std::uint8_t{0}};
  append(WalRecordType::kSlotDown, slot, now, payload, 1);
}

void HubJournal::append_tick(runtime::SimTime now) {
  append(WalRecordType::kTick, std::string(), now, nullptr, 0);
}

void HubJournal::on_batch_end(const std::vector<Checkpointable*>& parts) {
  if (abandoned_ || !writer_.is_open()) return;
  writer_.sync();
  if (config_.checkpoint_every_records > 0 &&
      records_since_checkpoint_ >= config_.checkpoint_every_records) {
    checkpoint_now(parts);
  }
}

bool HubJournal::checkpoint_now(const std::vector<Checkpointable*>& parts) {
  if (abandoned_ || !writer_.is_open()) return false;
  // The snapshot claims coverage up to last_seq; those records must be
  // durable first or a crash between the two writes would leave a
  // checkpoint pointing past the end of the surviving WAL.
  writer_.sync(/*force=*/true);
  std::string error;
  if (!store_.write(writer_.last_seq(), parts, &error)) return false;
  records_since_checkpoint_ = 0;
  retire_wal_segments(config_.dir, writer_.last_seq());
  if (checkpoints_) checkpoints_->inc();
  return true;
}

void HubJournal::abandon() {
  // Drop the fd without fsync: whatever the page cache already holds
  // is what survives, same as a real SIGKILL.
  writer_.close_nosync();
  abandoned_ = true;
}

}  // namespace trader::journal
