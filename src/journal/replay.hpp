// Crash recovery for the awareness hub: checkpoint load + WAL replay.
//
// HubJournal ties the two durability layers together behind one
// object the hub owns when `HubConfig.journal.enabled`:
//
//   recover()       load the newest valid checkpoint into the hub's
//                   Checkpointable parts, then re-fold the WAL tail
//                   (records after the checkpoint's coverage) through
//                   a ReplaySink — the same ingest/apply code paths
//                   the live hub uses, which is what makes restart
//                   state bit-identical to the uninterrupted run.
//   append_*()      write-ahead appends, called *before* the hub
//                   applies the corresponding mutation.
//   on_batch_end()  batch boundary: group fsync (FsyncPolicy::kBatch)
//                   and cadence checkpointing. Called when every
//                   appended record has been applied, so a checkpoint
//                   taken here covers exactly writer.last_seq().
//   abandon()       crash simulation: drop the writer cold — no sync,
//                   no checkpoint; the bytes already on disk are
//                   exactly what a SIGKILL would have left.
//
// Recovery fails closed: a mid-log corrupt WAL or an unloadable
// checkpoint section refuses to start the hub rather than serving
// guessed state (the monitor must be at least as dependable as the
// fleet it watches — restoring fiction would be worse than amnesia).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ipc/wire.hpp"
#include "journal/checkpoint.hpp"
#include "journal/wal.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_time.hpp"

namespace trader::journal {

/// Durability knobs, hung off HubConfig.
struct JournalConfig {
  bool enabled = false;
  /// Directory for WAL segments + checkpoints (one hub per dir).
  std::string dir;
  /// Segment rotation threshold.
  std::size_t segment_bytes = 1 << 20;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Take a checkpoint after this many WAL records (0 = only on stop).
  std::uint64_t checkpoint_every_records = 4096;
  /// Snapshots kept on disk (older ones retired after each write).
  std::size_t retain_checkpoints = 2;
};

/// The hub-side application surface replay drives. Implemented by
/// AwarenessHub; the methods route into the same code paths live
/// traffic uses (frame apply, slot transitions, recovery ticks).
class ReplaySink {
 public:
  virtual ~ReplaySink() = default;
  virtual void replay_frame(const std::string& slot, const ipc::Frame& frame) = 0;
  virtual void replay_slot_up(const std::string& slot, std::uint8_t version) = 0;
  virtual void replay_slot_down(const std::string& slot, bool orderly) = 0;
  virtual void replay_tick(runtime::SimTime now) = 0;
};

/// What recover() did — surfaced via AwarenessHub::journal_recovery().
struct JournalRecoveryInfo {
  bool attempted = false;
  bool ok = true;
  bool from_checkpoint = false;
  std::uint64_t checkpoint_seq = 0;    ///< WAL coverage of the loaded snapshot.
  std::uint64_t replayed_records = 0;  ///< WAL tail records re-folded.
  std::size_t truncated_bytes = 0;     ///< Torn tail repaired away.
  WalScanStatus wal_status = WalScanStatus::kOk;
  std::string error;
};

class HubJournal {
 public:
  HubJournal(JournalConfig config, runtime::MetricsRegistry* metrics);

  const JournalConfig& config() const { return config_; }

  /// Restore `parts` + re-fold the WAL tail into `sink`, repair any
  /// torn tail, then arm the writer for new appends. Call once before
  /// the hub starts listening. On !info.ok the writer stays disarmed
  /// and the hub must refuse to start (fail closed).
  JournalRecoveryInfo recover(const std::vector<Checkpointable*>& parts,
                              ReplaySink& sink);

  /// Write-ahead appends (no-ops until recover() armed the writer, and
  /// after abandon()).
  void append_frame(const std::string& slot, const ipc::Frame& frame);
  void append_slot_up(const std::string& slot, std::uint8_t version,
                      runtime::SimTime now);
  void append_slot_down(const std::string& slot, bool orderly,
                        runtime::SimTime now);
  void append_tick(runtime::SimTime now);

  /// Batch boundary (end of one hub poll): kBatch fsync + cadence
  /// checkpoint. All appended records must be applied by now.
  void on_batch_end(const std::vector<Checkpointable*>& parts);

  /// Unconditional snapshot at the current WAL position; retires
  /// fully-covered segments on success. The WAL is force-synced first
  /// so the snapshot never claims records the platter does not hold.
  bool checkpoint_now(const std::vector<Checkpointable*>& parts);

  /// Simulated SIGKILL: close the writer without syncing or
  /// checkpointing and ignore all further appends.
  void abandon();

  bool active() const { return writer_.is_open(); }
  std::uint64_t last_seq() const { return writer_.last_seq(); }
  std::uint64_t records_since_checkpoint() const {
    return records_since_checkpoint_;
  }
  const WalWriterStats& wal_stats() const { return writer_.stats(); }
  const CheckpointStoreStats& checkpoint_stats() const {
    return store_.stats();
  }

 private:
  void append(WalRecordType type, const std::string& slot,
              runtime::SimTime time, const std::uint8_t* payload,
              std::size_t payload_len);

  JournalConfig config_;
  WalWriter writer_;
  CheckpointStore store_;
  std::uint64_t records_since_checkpoint_ = 0;
  bool abandoned_ = false;

  // hub.journal.* — excluded from golden traces like all hub.* metrics
  // (wall-clock and I/O scoped, not part of the determinism surface).
  runtime::Counter* appends_ = nullptr;
  runtime::Counter* append_bytes_ = nullptr;
  runtime::Counter* append_errors_ = nullptr;
  runtime::Counter* checkpoints_ = nullptr;
  runtime::Counter* recoveries_ = nullptr;
  runtime::Counter* replayed_ = nullptr;
  runtime::Counter* truncated_bytes_ = nullptr;
};

}  // namespace trader::journal
