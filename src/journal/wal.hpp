// Append-only segmented write-ahead log for the awareness hub.
//
// The hub is the fleet's brain — SFL counters, escalation-ladder
// positions, supervisor watermarks — and a crash must not lobotomize
// it. Every externally-caused state mutation (ingested frame, slot
// up/down transition, recovery tick boundary) is appended here
// *before* it is applied, so a restarted hub can re-fold the exact
// input stream and arrive at bit-identical state (replay.hpp).
//
// On-disk format, reusing the wire protocol's integrity discipline
// (ipc/wire.hpp — explicit little-endian, FNV-1a 32 checksums,
// fail-closed parsing):
//
//   segment file:  wal-<first_seq, 20-digit decimal>.log
//   record:        u32 magic "WALR"
//                  u32 checksum        FNV-1a 32 over the body bytes
//                  u32 body_len        <= kMaxWalBody
//                  body:
//                    u64 seq           monotonic, gapless across segments
//                    u8  type          WalRecordType
//                    i64 time          virtual timestamp (microseconds)
//                    str slot          u32 len + bytes (may be empty)
//                    blob payload      u32 len + bytes (type-specific)
//
// Segments rotate by size; the filename carries the first sequence
// number it holds so recovery can order segments lexicographically and
// retirement can drop segments fully covered by a checkpoint without
// opening them.
//
// Recovery semantics (the corruption contract, mirrored from the
// ipc_test frame-corruption sweep):
//   - a torn tail — the physically last record cut short or
//     checksum-dirty with nothing valid after it — is the expected
//     crash signature: scan_wal reports kTornTail, optionally
//     truncates the file back to the last valid record, and replay
//     proceeds on the surviving prefix;
//   - anything else (bad record in a non-final segment, a sequence
//     gap, or a corrupt record *followed by* a validating one) means
//     the log lies about history: kCorrupt, and recovery fails closed
//     rather than restoring guessed state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::journal {

/// Record magic, "WALR" little-endian.
inline constexpr std::uint32_t kWalMagic = 0x524c4157;

/// Upper bound on one record body. The largest legitimate record is a
/// journaled wire frame (header + kMaxFramePayload = 64 KiB) plus slot
/// name and framing; a header announcing more is corruption, not data.
inline constexpr std::size_t kMaxWalBody = 128 * 1024;

/// Fixed per-record header: magic + checksum + body length.
inline constexpr std::size_t kWalRecordHeader = 12;

/// What one WAL record describes.
enum class WalRecordType : std::uint8_t {
  kFrame = 1,     ///< One ingested wire frame (payload = encoded frame bytes).
  kSlotUp = 2,    ///< Slot handshake success (payload = u8 negotiated version).
  kSlotDown = 3,  ///< Slot disconnect (payload = u8 orderly flag).
  kTick = 4,      ///< Recovery tick boundary (empty payload; time in body).
};

const char* to_string(WalRecordType t);

/// When appends reach the platter.
enum class FsyncPolicy : std::uint8_t {
  kNone = 0,         ///< Never fsync (page cache only; fastest, weakest).
  kBatch = 1,        ///< fsync once per ingest batch (hub poll) — the default.
  kEveryRecord = 2,  ///< fsync after every append (strongest, slowest).
};

const char* to_string(FsyncPolicy p);

/// One decoded record, as delivered to the scan callback.
struct WalRecord {
  std::uint64_t seq = 0;
  WalRecordType type = WalRecordType::kFrame;
  runtime::SimTime time = 0;
  std::string slot;
  std::vector<std::uint8_t> payload;
};

struct WalWriterStats {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;     ///< Bytes appended (headers included).
  std::uint64_t segments = 0;  ///< Segment files opened.
  std::uint64_t syncs = 0;     ///< fsync calls issued.
  std::uint64_t errors = 0;    ///< Failed appends / syncs.
};

/// Single-threaded appender (the hub's event loop owns it).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Start (or resume) writing under `dir`, with the next record taking
  /// sequence number `next_seq`. Always begins a fresh segment named
  /// after `next_seq`; an existing file of that name is truncated —
  /// only reachable for the empty/torn leftovers of a crashed writer,
  /// because a segment holding valid records at `next_seq` would have
  /// made recovery hand us a larger `next_seq`.
  bool open(const std::string& dir, std::uint64_t next_seq,
            std::size_t segment_bytes, FsyncPolicy fsync);

  bool is_open() const { return fd_ >= 0; }

  /// Append one record; returns its sequence number, or 0 on error.
  std::uint64_t append(WalRecordType type, const std::string& slot,
                       runtime::SimTime time, const std::uint8_t* payload,
                       std::size_t payload_len);

  /// Batch boundary: flush under FsyncPolicy::kBatch (no-op otherwise
  /// unless `force`, used before checkpoints — a checkpoint must never
  /// outlive on disk the WAL records it claims to cover).
  bool sync(bool force = false);

  void close();

  /// Close without the final fsync — crash simulation. Whatever the
  /// kernel already flushed is what a scan will see, as after SIGKILL.
  void close_nosync();

  /// Sequence number of the last appended record (0 before any).
  std::uint64_t last_seq() const { return next_seq_ - 1; }
  std::uint64_t next_seq() const { return next_seq_; }
  const WalWriterStats& stats() const { return stats_; }

 private:
  bool open_segment(std::uint64_t first_seq);

  int fd_ = -1;
  std::string dir_;
  std::size_t segment_bytes_ = 1 << 20;
  FsyncPolicy fsync_ = FsyncPolicy::kBatch;
  std::uint64_t next_seq_ = 1;
  std::size_t current_bytes_ = 0;
  std::uint64_t current_records_ = 0;
  bool dirty_ = false;
  WalWriterStats stats_;
};

/// How a scan of the on-disk log ended.
enum class WalScanStatus : std::uint8_t {
  kOk = 0,        ///< Every byte parsed clean.
  kTornTail = 1,  ///< Valid prefix + torn final record(s) — crash signature.
  kCorrupt = 2,   ///< Mid-log corruption or sequence gap: fail closed.
  kIoError = 3,   ///< Could not read the directory / a segment.
};

const char* to_string(WalScanStatus s);

struct WalScanResult {
  WalScanStatus status = WalScanStatus::kOk;
  std::uint64_t records = 0;        ///< Records delivered (seq > after_seq).
  std::uint64_t last_seq = 0;       ///< Highest valid seq seen (0 = none).
  std::size_t truncated_bytes = 0;  ///< Torn tail dropped (repair mode).
  std::string error;                ///< Human-readable cause when !usable().

  /// True when replay may proceed (clean log or repaired torn tail).
  bool usable() const {
    return status == WalScanStatus::kOk || status == WalScanStatus::kTornTail;
  }
};

/// Scan every record in `dir`, validating magic/checksum/structure and
/// sequence continuity from the first surviving segment onward, and
/// deliver records with seq > after_seq to `fn` in order (`fn` may be
/// null; returning false stops the scan early with the current
/// result). `after_seq` is the checkpoint coverage: a log whose first
/// record starts beyond after_seq + 1 cannot bridge the gap and is
/// kCorrupt. With `repair_tail`, a torn tail is physically truncated
/// back to the last valid record so the next writer appends cleanly.
WalScanResult scan_wal(const std::string& dir, std::uint64_t after_seq,
                       bool repair_tail,
                       const std::function<bool(const WalRecord&)>& fn);

/// Segment file paths under `dir`, sorted by first sequence number.
std::vector<std::string> wal_segments(const std::string& dir);

/// Delete segments whose records are all covered by a checkpoint at
/// `covered_seq` (i.e. the *next* segment starts at or before
/// covered_seq + 1). The active (last) segment is never deleted.
/// Returns the number of segments removed.
std::size_t retire_wal_segments(const std::string& dir,
                                std::uint64_t covered_seq);

/// Delete every journal artifact (WAL segments, checkpoints, tmp
/// files) under `dir`. Returns the number of files removed.
std::size_t purge_journal_dir(const std::string& dir);

/// mkdir -p. True when the directory exists afterwards.
bool ensure_dir(const std::string& dir);

}  // namespace trader::journal
