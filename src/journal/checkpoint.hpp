// Versioned binary state snapshots for the durable hub.
//
// A checkpoint bounds recovery work: instead of replaying the WAL from
// the beginning of time, a restarted hub loads the newest valid
// snapshot and replays only the WAL records after its coverage
// sequence. Components opt in through the Checkpointable interface —
// the fleet aggregator (SFL counters), the recovery orchestrator
// (ladder positions, tokens, cooldowns, quarantine set) and the hub's
// own per-slot supervisor/watermark state each serialize themselves
// into a named, versioned section of one container file.
//
// File format (same integrity discipline as the WAL and the wire):
//
//   file name:  ckpt-<wal_seq, 20-digit decimal>.bin
//   header:     u32 magic "TRCK" | u32 format | u32 checksum | u32 body_len
//   body:       u64 wal_seq        last WAL record this snapshot covers
//               u32 part_count
//               per part: str name | u32 version | blob state
//
// Writes are atomic: encode, write to ckpt-<seq>.tmp, fsync, rename
// into place, fsync the directory — a crash mid-write leaves either
// the old world or the new one, never a half-snapshot. Loads walk
// candidates newest-first and fall back to an older file when the
// container fails validation; a container that validates but whose
// sections refuse to load (version/logic mismatch) fails the whole
// recovery closed — that is a software problem, not a crash artifact,
// and guessing state would forfeit the determinism guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "journal/codec.hpp"

namespace trader::journal {

inline constexpr std::uint32_t kCheckpointMagic = 0x4b435254;  // "TRCK"
inline constexpr std::uint32_t kCheckpointFormat = 1;

/// A component whose hub-side state survives crashes. save_state must
/// capture everything load_state needs to reconstruct the component
/// bit-identically; load_state fully overwrites current state (it may
/// be called on a dirty instance during fallback) and returns false on
/// any structural or version mismatch.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual std::string checkpoint_name() const = 0;
  virtual std::uint32_t checkpoint_version() const = 0;
  virtual void save_state(Encoder& out) const = 0;
  virtual bool load_state(Decoder& in, std::uint32_t version) = 0;
};

struct CheckpointStoreStats {
  std::uint64_t written = 0;
  std::uint64_t load_attempts = 0;  ///< Candidate files examined.
  std::uint64_t load_failures = 0;  ///< Candidates rejected (corrupt).
  std::uint64_t retired = 0;        ///< Old snapshots deleted by retention.
};

class CheckpointStore {
 public:
  CheckpointStore(std::string dir, std::size_t retain);

  /// Snapshot all `parts` at WAL coverage `wal_seq`, atomically, then
  /// apply retention. False (with `error`) on any I/O failure.
  bool write(std::uint64_t wal_seq, const std::vector<Checkpointable*>& parts,
             std::string* error);

  /// Restore `parts` from the newest valid snapshot; `*wal_seq`
  /// receives its coverage. Returns true on success. On false:
  /// an empty `*error` means no usable snapshot exists (fresh start);
  /// a non-empty `*error` means a checksum-valid snapshot exists whose
  /// sections would not load — the caller must fail closed.
  bool load_latest(const std::vector<Checkpointable*>& parts,
                   std::uint64_t* wal_seq, std::string* error);

  /// Coverage sequences of the snapshots on disk, ascending.
  std::vector<std::uint64_t> available() const;

  const CheckpointStoreStats& stats() const { return stats_; }

 private:
  std::string dir_;
  std::size_t retain_;
  CheckpointStoreStats stats_;
};

}  // namespace trader::journal
