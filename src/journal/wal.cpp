#include "journal/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ipc/wire.hpp"
#include "journal/codec.hpp"

namespace trader::journal {

namespace {

constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".log";

std::string segment_name(std::uint64_t first_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(first_seq), kSegmentSuffix);
  return buf;
}

/// First sequence number encoded in a segment file name, or 0 when the
/// name does not match the wal-<seq>.log pattern.
std::uint64_t parse_segment_seq(const std::string& name) {
  const std::size_t prefix = std::strlen(kSegmentPrefix);
  const std::size_t suffix = std::strlen(kSegmentSuffix);
  if (name.size() <= prefix + suffix) return 0;
  if (name.compare(0, prefix, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) return 0;
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  if (digits.empty()) return 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::vector<std::string> list_dir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::read(fd, out.data() + off, out.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Attempt to parse one record at `off`. Returns:
///   1  parsed (rec filled, *advance set)
///   0  torn candidate: bytes run out mid-header or mid-body
///  -1  structurally bad: magic/bound/checksum/decode failure
int parse_record(const std::uint8_t* data, std::size_t size, std::size_t off,
                 WalRecord& rec, std::size_t* advance, std::string* why) {
  if (size - off < kWalRecordHeader) {
    *why = "short header";
    return 0;
  }
  Decoder hdr(data + off, kWalRecordHeader);
  const std::uint32_t magic = hdr.u32();
  const std::uint32_t checksum = hdr.u32();
  const std::uint32_t body_len = hdr.u32();
  if (magic != kWalMagic) {
    *why = "bad magic";
    return -1;
  }
  if (body_len > kMaxWalBody) {
    *why = "body length over bound";
    return -1;
  }
  if (size - off - kWalRecordHeader < body_len) {
    *why = "short body";
    return 0;
  }
  const std::uint8_t* body = data + off + kWalRecordHeader;
  if (ipc::fnv1a32(body, body_len) != checksum) {
    *why = "checksum mismatch";
    return -1;
  }
  Decoder dec(body, body_len);
  rec.seq = dec.u64();
  const std::uint8_t type = dec.u8();
  rec.time = dec.i64();
  rec.slot = dec.str();
  rec.payload = dec.blob();
  if (!dec.done() || type < 1 || type > 4 || rec.seq == 0) {
    *why = "malformed body";
    return -1;
  }
  rec.type = static_cast<WalRecordType>(type);
  *advance = kWalRecordHeader + body_len;
  return 1;
}

/// True when a structurally valid record exists anywhere in
/// [from, size) — used to distinguish a torn tail (nothing valid
/// after the damage) from mid-log corruption (history continues past
/// the bad bytes, so truncating would silently drop real records).
bool has_valid_record_after(const std::uint8_t* data, std::size_t size,
                            std::size_t from) {
  for (std::size_t off = from;
       off + kWalRecordHeader <= size; ++off) {
    WalRecord rec;
    std::size_t advance = 0;
    std::string why;
    if (parse_record(data, size, off, rec, &advance, &why) == 1) return true;
  }
  return false;
}

bool truncate_file(const std::string& path, std::size_t len) {
  return ::truncate(path.c_str(), static_cast<off_t>(len)) == 0;
}

}  // namespace

const char* to_string(WalRecordType t) {
  switch (t) {
    case WalRecordType::kFrame: return "frame";
    case WalRecordType::kSlotUp: return "slot-up";
    case WalRecordType::kSlotDown: return "slot-down";
    case WalRecordType::kTick: return "tick";
  }
  return "?";
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kEveryRecord: return "every-record";
  }
  return "?";
}

const char* to_string(WalScanStatus s) {
  switch (s) {
    case WalScanStatus::kOk: return "ok";
    case WalScanStatus::kTornTail: return "torn-tail";
    case WalScanStatus::kCorrupt: return "corrupt";
    case WalScanStatus::kIoError: return "io-error";
  }
  return "?";
}

WalWriter::~WalWriter() { close(); }

bool WalWriter::open(const std::string& dir, std::uint64_t next_seq,
                     std::size_t segment_bytes, FsyncPolicy fsync) {
  close();
  if (next_seq == 0) next_seq = 1;
  if (!ensure_dir(dir)) return false;
  dir_ = dir;
  segment_bytes_ = segment_bytes > 0 ? segment_bytes : (1 << 20);
  fsync_ = fsync;
  next_seq_ = next_seq;
  return open_segment(next_seq_);
}

bool WalWriter::open_segment(std::uint64_t first_seq) {
  if (fd_ >= 0) {
    if (fsync_ != FsyncPolicy::kNone) {
      ::fsync(fd_);
      ++stats_.syncs;
    }
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + segment_name(first_seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    ++stats_.errors;
    return false;
  }
  current_bytes_ = 0;
  current_records_ = 0;
  dirty_ = false;
  ++stats_.segments;
  return true;
}

std::uint64_t WalWriter::append(WalRecordType type, const std::string& slot,
                                runtime::SimTime time,
                                const std::uint8_t* payload,
                                std::size_t payload_len) {
  if (fd_ < 0) return 0;
  Encoder body;
  body.u64(next_seq_);
  body.u8(static_cast<std::uint8_t>(type));
  body.i64(time);
  body.str(slot);
  body.blob(payload, payload_len);
  if (body.size() > kMaxWalBody) {
    ++stats_.errors;
    return 0;
  }
  const std::uint32_t checksum =
      ipc::fnv1a32(body.buffer().data(), body.size());
  Encoder rec;
  rec.u32(kWalMagic);
  rec.u32(checksum);
  rec.u32(static_cast<std::uint32_t>(body.size()));
  rec.raw(body.buffer().data(), body.size());

  // Rotate before the append so a segment never splits a record.
  if (current_records_ > 0 && current_bytes_ + rec.size() > segment_bytes_) {
    if (!open_segment(next_seq_)) return 0;
  }
  if (!write_all(fd_, rec.buffer().data(), rec.size())) {
    ++stats_.errors;
    return 0;
  }
  current_bytes_ += rec.size();
  ++current_records_;
  ++stats_.records;
  stats_.bytes += rec.size();
  dirty_ = true;
  if (fsync_ == FsyncPolicy::kEveryRecord) {
    if (::fsync(fd_) != 0) ++stats_.errors;
    ++stats_.syncs;
    dirty_ = false;
  }
  return next_seq_++;
}

bool WalWriter::sync(bool force) {
  if (fd_ < 0) return false;
  if (!dirty_) return true;
  if (!force && fsync_ != FsyncPolicy::kBatch) return true;
  if (::fsync(fd_) != 0) {
    ++stats_.errors;
    return false;
  }
  ++stats_.syncs;
  dirty_ = false;
  return true;
}

void WalWriter::close() {
  if (fd_ < 0) return;
  if (fsync_ != FsyncPolicy::kNone && dirty_) {
    ::fsync(fd_);
    ++stats_.syncs;
  }
  ::close(fd_);
  fd_ = -1;
  dirty_ = false;
}

void WalWriter::close_nosync() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  dirty_ = false;
}

std::vector<std::string> wal_segments(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const std::string& name : list_dir(dir)) {
    const std::uint64_t seq = parse_segment_seq(name);
    if (seq > 0) found.emplace_back(seq, dir + "/" + name);
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

WalScanResult scan_wal(const std::string& dir, std::uint64_t after_seq,
                       bool repair_tail,
                       const std::function<bool(const WalRecord&)>& fn) {
  WalScanResult result;
  const std::vector<std::string> paths = wal_segments(dir);
  if (paths.empty()) return result;

  const std::string first_name = paths.front().substr(dir.size() + 1);
  std::uint64_t expected = parse_segment_seq(first_name);
  if (expected > after_seq + 1) {
    result.status = WalScanStatus::kCorrupt;
    result.error = "wal starts at seq " + std::to_string(expected) +
                   " but checkpoint covers only up to " +
                   std::to_string(after_seq);
    return result;
  }

  for (std::size_t i = 0; i < paths.size(); ++i) {
    const bool last_segment = (i + 1 == paths.size());
    const std::string name = paths[i].substr(dir.size() + 1);
    const std::uint64_t file_seq = parse_segment_seq(name);
    if (file_seq != expected) {
      result.status = WalScanStatus::kCorrupt;
      result.error = "segment " + name + " expected first seq " +
                     std::to_string(expected);
      return result;
    }
    std::vector<std::uint8_t> data;
    if (!read_file(paths[i], data)) {
      result.status = WalScanStatus::kIoError;
      result.error = "cannot read " + name;
      return result;
    }
    std::size_t off = 0;
    while (off < data.size()) {
      WalRecord rec;
      std::size_t advance = 0;
      std::string why;
      const int parsed =
          parse_record(data.data(), data.size(), off, rec, &advance, &why);
      if (parsed == 1) {
        if (rec.seq != expected) {
          result.status = WalScanStatus::kCorrupt;
          result.error = "sequence gap in " + name + ": expected " +
                         std::to_string(expected) + " found " +
                         std::to_string(rec.seq);
          return result;
        }
        result.last_seq = rec.seq;
        ++expected;
        if (rec.seq > after_seq) {
          ++result.records;
          if (fn && !fn(rec)) return result;
        }
        off += advance;
        continue;
      }
      // Damage at `off`. Only the physically last bytes of the log may
      // be written off as a crash-torn tail; everything else fails
      // closed (real history would be silently dropped otherwise).
      // A "short body" (parsed == 0) is NOT automatically a tear: a
      // flipped bit in a mid-log length field claims bytes past EOF
      // and swallows every record behind it, so the valid-suffix check
      // applies to both damage kinds.
      const bool tail = last_segment &&
                        !has_valid_record_after(data.data(), data.size(),
                                                off + 1);
      if (!tail) {
        result.status = WalScanStatus::kCorrupt;
        result.error = "mid-log corruption in " + name + " at offset " +
                       std::to_string(off) + " (" + why + ")";
        return result;
      }
      result.status = WalScanStatus::kTornTail;
      result.truncated_bytes = data.size() - off;
      result.error = "torn tail in " + name + " at offset " +
                     std::to_string(off) + " (" + why + ")";
      if (repair_tail && !truncate_file(paths[i], off)) {
        result.status = WalScanStatus::kIoError;
        result.error = "failed to truncate torn tail of " + name;
      }
      return result;
    }
  }
  return result;
}

std::size_t retire_wal_segments(const std::string& dir,
                                std::uint64_t covered_seq) {
  const std::vector<std::string> paths = wal_segments(dir);
  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
    const std::string next_name = paths[i + 1].substr(dir.size() + 1);
    const std::uint64_t next_first = parse_segment_seq(next_name);
    // Everything in segment i is < next_first; covered iff the whole
    // range up to next_first - 1 is at or below covered_seq.
    if (next_first <= covered_seq + 1) {
      if (::unlink(paths[i].c_str()) == 0) ++removed;
    } else {
      break;
    }
  }
  return removed;
}

std::size_t purge_journal_dir(const std::string& dir) {
  std::size_t removed = 0;
  for (const std::string& name : list_dir(dir)) {
    const bool wal = parse_segment_seq(name) > 0;
    const bool ckpt = name.rfind("ckpt-", 0) == 0;
    if (!wal && !ckpt) continue;
    if (::unlink((dir + "/" + name).c_str()) == 0) ++removed;
  }
  return removed;
}

bool ensure_dir(const std::string& dir) {
  if (dir.empty()) return false;
  std::string path;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    const std::size_t end = (slash == std::string::npos) ? dir.size() : slash;
    path = dir.substr(0, end);
    if (!path.empty() && path != "/") {
      if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) return false;
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace trader::journal
