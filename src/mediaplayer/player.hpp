// Media-player SUO — the MPlayer case study (§5).
//
// "Currently, the framework is used for awareness experiments with the
// open source media player MPlayer, investigating both correctness and
// performance issues."
//
// The simulator reproduces the two issue classes: *correctness* of the
// transport state machine (play/pause/stop/seek), monitored by a spec
// model, and *performance* of the decode pipeline (A/V sync drift and
// frame drops under decoder overload or demuxer stalls), monitored by
// range probes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "faults/injector.hpp"
#include "observation/probes.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/definition.hpp"

namespace trader::mediaplayer {

enum class PlayerState : std::uint8_t { kStopped, kPlaying, kPaused, kBuffering };

const char* to_string(PlayerState s);

struct PlayerConfig {
  runtime::SimDuration frame_period = runtime::msec(40);  ///< 25 fps.
  double clip_seconds = 600.0;
  int video_queue_capacity = 8;   ///< Demuxed frames awaiting decode.
  int audio_queue_capacity = 16;
  std::uint64_t seed = 5;
};

class MediaPlayer {
 public:
  MediaPlayer(runtime::Scheduler& sched, runtime::EventBus& bus,
              faults::FaultInjector& injector, PlayerConfig config = {});

  /// Begin the pipeline tick.
  void start();

  // --- Transport commands ("mp.input" events) ---------------------------
  void play();
  void pause();
  void stop();
  void seek(double seconds);

  // --- Observables -------------------------------------------------------
  PlayerState state() const { return state_; }
  double position_seconds() const { return video_clock_; }
  bool at_end() const { return video_clock_ >= config_.clip_seconds - 1e-9; }
  /// Audio-minus-video clock offset in milliseconds (performance issue).
  double av_offset_ms() const { return (audio_clock_ - video_clock_) * 1000.0; }
  std::uint64_t frames_rendered() const { return frames_rendered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  int video_queue() const { return video_queue_; }

  observation::ProbeRegistry& probes() { return probes_; }

 private:
  void command(const std::string& name, std::map<std::string, runtime::Value> fields = {});
  void tick();
  void set_state(PlayerState s);
  void publish_output(const std::string& name, runtime::Value v);

  runtime::Scheduler& sched_;
  runtime::EventBus& bus_;
  faults::FaultInjector& injector_;
  PlayerConfig config_;

  PlayerState state_ = PlayerState::kStopped;
  double video_clock_ = 0.0;  // seconds of video presented
  double audio_clock_ = 0.0;  // seconds of audio played
  int video_queue_ = 0;
  int audio_queue_ = 0;
  double decode_credit_ = 0.0;  // fractional frames decodable this tick
  std::uint64_t frames_rendered_ = 0;
  std::uint64_t frames_dropped_ = 0;

  observation::ProbeRegistry probes_;
  std::map<std::string, runtime::Value> last_published_;
};

/// Spec model for the transport state machine; emits observable "state".
/// The model flags "nocompare:state" while the player may legitimately
/// be buffering (after seek) — the IEnableCompare mechanism of §4.3.
statemachine::StateMachineDef build_player_spec_model();

}  // namespace trader::mediaplayer
