#include "mediaplayer/player.hpp"

#include <algorithm>

namespace trader::mediaplayer {

using faults::FaultKind;

const char* to_string(PlayerState s) {
  switch (s) {
    case PlayerState::kStopped:
      return "stopped";
    case PlayerState::kPlaying:
      return "playing";
    case PlayerState::kPaused:
      return "paused";
    case PlayerState::kBuffering:
      return "buffering";
  }
  return "?";
}

MediaPlayer::MediaPlayer(runtime::Scheduler& sched, runtime::EventBus& bus,
                         faults::FaultInjector& injector, PlayerConfig config)
    : sched_(sched), bus_(bus), injector_(injector), config_(config) {
  probes_.set_range("mp.av_offset_ms", -80.0, 80.0);
  probes_.set_range("mp.video_queue", 0, config_.video_queue_capacity);
}

void MediaPlayer::start() {
  sched_.schedule_every(config_.frame_period, [this] { tick(); });
  publish_output("state", std::string(to_string(state_)));
}

void MediaPlayer::command(const std::string& name,
                          std::map<std::string, runtime::Value> fields) {
  runtime::Event ev;
  ev.topic = "mp.input";
  ev.name = "command";
  ev.fields = std::move(fields);
  ev.fields["cmd"] = name;
  ev.timestamp = sched_.now();
  bus_.publish(ev);
}

void MediaPlayer::set_state(PlayerState s) {
  if (state_ == s) return;
  state_ = s;
  publish_output("state", std::string(to_string(state_)));
}

void MediaPlayer::publish_output(const std::string& name, runtime::Value v) {
  auto it = last_published_.find(name);
  if (it != last_published_.end() && runtime::deviation(it->second, v) == 0.0) return;
  last_published_[name] = v;
  runtime::Event ev;
  ev.topic = "mp.output";
  ev.name = name;
  ev.fields["value"] = std::move(v);
  ev.timestamp = sched_.now();
  bus_.publish(ev);
}

void MediaPlayer::play() {
  command("play");
  if (state_ == PlayerState::kStopped || state_ == PlayerState::kPaused) {
    set_state(PlayerState::kPlaying);
  }
}

void MediaPlayer::pause() {
  command("pause");
  if (state_ == PlayerState::kPlaying || state_ == PlayerState::kBuffering) {
    set_state(PlayerState::kPaused);
  }
}

void MediaPlayer::stop() {
  command("stop");
  set_state(PlayerState::kStopped);
  video_clock_ = audio_clock_ = 0.0;
  video_queue_ = audio_queue_ = 0;
  decode_credit_ = 0.0;
}

void MediaPlayer::seek(double seconds) {
  command("seek", {{"pos", seconds}});
  if (state_ == PlayerState::kStopped) return;
  video_clock_ = audio_clock_ = std::clamp(seconds, 0.0, config_.clip_seconds);
  video_queue_ = audio_queue_ = 0;  // pipeline flush
  decode_credit_ = 0.0;
  set_state(PlayerState::kBuffering);
}

void MediaPlayer::tick() {
  const runtime::SimTime now = sched_.now();
  const double frame_sec = runtime::to_sec(config_.frame_period);

  if (state_ == PlayerState::kPlaying || state_ == PlayerState::kBuffering) {
    // --- End of clip ---------------------------------------------------------
    // When the material is exhausted and the pipeline has drained, the
    // player stops; the "eof" milestone is published as an input so the
    // spec model can follow (same pattern as the printer's milestones).
    if (at_end() && video_queue_ == 0) {
      command("eof");
      set_state(PlayerState::kStopped);
      video_clock_ = audio_clock_ = 0.0;
      audio_queue_ = 0;
      decode_credit_ = 0.0;
      publish_output("position", video_clock_);
      return;
    }

    // --- Demuxer -----------------------------------------------------------
    const bool demux_stuck = injector_.is_active(FaultKind::kStuckComponent, "demuxer", now);
    if (!demux_stuck && video_clock_ < config_.clip_seconds) {
      if (video_queue_ < config_.video_queue_capacity) {
        ++video_queue_;
      } else {
        ++frames_dropped_;  // queue overflow: demuxer discards
      }
      audio_queue_ = std::min(audio_queue_ + 1, config_.audio_queue_capacity);
    }

    // Buffering hysteresis: drop into buffering when starved, resume
    // once a few frames are queued again.
    if (state_ == PlayerState::kPlaying && video_queue_ == 0 && audio_queue_ == 0) {
      set_state(PlayerState::kBuffering);
    } else if (state_ == PlayerState::kBuffering && video_queue_ >= 3) {
      set_state(PlayerState::kPlaying);
    }

    if (state_ == PlayerState::kPlaying) {
      // --- Video decode ------------------------------------------------------
      double rate = 1.0;
      if (const auto f = injector_.active_spec(FaultKind::kTaskOverrun, "vdec", now)) {
        rate = 1.0 / (1.0 + 2.0 * f->intensity);
      }
      decode_credit_ += rate;
      while (decode_credit_ >= 1.0 && video_queue_ > 0) {
        decode_credit_ -= 1.0;
        --video_queue_;
        video_clock_ += frame_sec;
        ++frames_rendered_;
      }
      decode_credit_ = std::min(decode_credit_, 2.0);

      // --- Audio decode ------------------------------------------------------
      const bool adec_dead = injector_.is_active(FaultKind::kCrash, "adec", now);
      if (!adec_dead && audio_queue_ > 0) {
        --audio_queue_;
        audio_clock_ += frame_sec;
      }
    }
  }

  probes_.update("mp.av_offset_ms", av_offset_ms(), now);
  probes_.update("mp.video_queue", std::int64_t{video_queue_}, now);
  publish_output("position", video_clock_);
}

statemachine::StateMachineDef build_player_spec_model() {
  namespace sm = trader::statemachine;
  sm::StateMachineDef def("player_spec");

  const auto stopped = def.add_state("Stopped");
  const auto playing = def.add_state("Playing");
  const auto paused = def.add_state("Paused");
  const auto seeking = def.add_state("Seeking");
  def.set_top_initial(stopped);

  auto emit_state = [](const char* value) -> sm::Action {
    return [value](sm::ActionEnv& env) {
      env.emit("state", {{"value", std::string(value)}});
    };
  };
  def.on_entry(stopped, emit_state("stopped"));
  def.on_entry(playing, emit_state("playing"));
  def.on_entry(paused, emit_state("paused"));
  // While seeking, the real player may legitimately report "buffering":
  // suppress state comparison (IEnableCompare).
  def.on_entry(seeking, [](sm::ActionEnv& env) {
    env.vars.set_bool("nocompare:state", true);
  });
  def.on_exit(seeking, [](sm::ActionEnv& env) {
    env.vars.set_bool("nocompare:state", false);
  });

  def.add_transition(stopped, playing, "play");
  def.add_transition(playing, paused, "pause");
  def.add_transition(paused, playing, "play");
  def.add_transition(playing, stopped, "stop");
  def.add_transition(paused, stopped, "stop");
  def.add_transition(playing, stopped, "eof");
  def.add_transition(playing, seeking, "seek");
  def.add_transition(paused, seeking, "seek");
  def.add_transition(seeking, seeking, "seek");
  def.add_transition(seeking, stopped, "stop");
  def.add_transition(seeking, stopped, "eof");  // sought to the very end
  def.add_transition(seeking, paused, "pause");
  // Buffering after a seek resolves within half a second in the model.
  def.add_timed(seeking, playing, runtime::msec(500));

  return def;
}

}  // namespace trader::mediaplayer
