#include "recovery/ft_lib.hpp"

namespace trader::recovery {

// -------------------------------------------------------------- RetryExecutor

bool RetryExecutor::run(const std::function<bool()>& op) {
  for (int i = 0; i < max_attempts_; ++i) {
    ++attempts_;
    if (op()) return true;
  }
  ++failures_;
  return false;
}

// --------------------------------------------------------------- FallbackChain

void FallbackChain::add_level(const std::string& name, Provider provider) {
  levels_.push_back(Level{name, std::move(provider)});
}

std::optional<runtime::Value> FallbackChain::get() {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    auto result = levels_[i].provider();
    if (result.has_value()) {
      last_level_ = static_cast<int>(i);
      if (i > 0) ++degradations_;
      return result;
    }
  }
  ++outages_;
  last_level_ = -1;
  return std::nullopt;
}

// -------------------------------------------------------------- SafeStateGuard

bool SafeStateGuard::update(runtime::Value v) {
  if (valid_ && !valid_(v)) {
    ++rejected_;
    return false;
  }
  ++accepted_;
  value_ = std::move(v);
  return true;
}

// --------------------------------------------------------------- NVersionVoter

void NVersionVoter::add_variant(const std::string& name, Variant v) {
  variants_.push_back(Entry{name, std::move(v)});
}

NVersionVoter::Verdict NVersionVoter::vote() {
  Verdict verdict;
  if (variants_.empty()) return verdict;
  std::vector<runtime::Value> results;
  results.reserve(variants_.size());
  for (const auto& v : variants_) results.push_back(v.fn());

  // Find the value with the most equals (ties: first seen).
  std::size_t best_index = 0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::size_t count = 0;
    for (const auto& other : results) {
      if (runtime::deviation(results[i], other) == 0.0) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best_index = i;
    }
  }
  verdict.value = results[best_index];
  verdict.agreed = best_count * 2 > results.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (runtime::deviation(results[i], verdict.value) != 0.0) {
      verdict.dissenters.push_back(variants_[i].name);
    }
  }
  if (!verdict.dissenters.empty()) ++disagreements_;
  return verdict;
}

}  // namespace trader::recovery
