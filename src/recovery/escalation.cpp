#include "recovery/escalation.hpp"

#include <algorithm>

namespace trader::recovery {

const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kResync:
      return "resync";
    case RecoveryAction::kRestartUnit:
      return "restart-unit";
    case RecoveryAction::kRestartDependents:
      return "restart-dependents";
    case RecoveryAction::kFullRestart:
      return "full-restart";
    case RecoveryAction::kGiveUp:
      return "give-up";
  }
  return "?";
}

int RecoveryEscalator::count_recent(const std::string& unit, runtime::SimTime now) const {
  auto it = failures_.find(unit);
  if (it == failures_.end()) return 0;
  const runtime::SimTime cutoff = now - config_.window;
  return static_cast<int>(std::count_if(it->second.begin(), it->second.end(),
                                        [&](runtime::SimTime t) { return t >= cutoff; }));
}

int RecoveryEscalator::level(const std::string& unit, runtime::SimTime now) const {
  return count_recent(unit, now) / std::max(config_.failures_per_level, 1);
}

RecoveryAction RecoveryEscalator::next_action(const std::string& unit, runtime::SimTime now) {
  // Prune the whole map, not just the requested unit: a long campaign
  // with recurring distinct unit names would otherwise grow failures_
  // forever (count_recent filters expired stamps but never erases).
  const runtime::SimTime cutoff = now - config_.window;
  const auto expired = [&](runtime::SimTime t) { return t < cutoff; };
  for (auto it = failures_.begin(); it != failures_.end();) {
    auto& stamps = it->second;
    stamps.erase(std::remove_if(stamps.begin(), stamps.end(), expired), stamps.end());
    if (stamps.empty())
      it = failures_.erase(it);
    else
      ++it;
  }
  auto& history = failures_[unit];
  history.push_back(now);
  const int lvl = (static_cast<int>(history.size()) - 1) / std::max(config_.failures_per_level, 1);
  switch (lvl) {
    case 0:
      return RecoveryAction::kResync;
    case 1:
      return RecoveryAction::kRestartUnit;
    case 2:
      return RecoveryAction::kRestartDependents;
    case 3:
      return RecoveryAction::kFullRestart;
    default:
      ++give_ups_;
      return RecoveryAction::kGiveUp;
  }
}

void RecoveryEscalator::report_success(const std::string& unit) { failures_.erase(unit); }

void RecoveryEscalator::forget(const std::string& unit) { failures_.erase(unit); }

void RecoveryEscalator::save(journal::Encoder& out) const {
  out.u64(give_ups_);
  out.u32(static_cast<std::uint32_t>(failures_.size()));
  for (const auto& [unit, stamps] : failures_) {
    out.str(unit);
    out.u32(static_cast<std::uint32_t>(stamps.size()));
    for (const runtime::SimTime t : stamps) out.i64(t);
  }
}

bool RecoveryEscalator::load(journal::Decoder& in) {
  failures_.clear();
  give_ups_ = in.u64();
  const std::uint32_t units = in.u32();
  for (std::uint32_t i = 0; i < units && in.ok(); ++i) {
    const std::string unit = in.str();
    const std::uint32_t count = in.u32();
    if (in.remaining() < static_cast<std::size_t>(count) * 8) {
      in.fail();
      break;
    }
    std::vector<runtime::SimTime>& stamps = failures_[unit];
    stamps.reserve(count);
    for (std::uint32_t j = 0; j < count; ++j) stamps.push_back(in.i64());
  }
  if (!in.ok()) {
    failures_.clear();
    give_ups_ = 0;
    return false;
  }
  return true;
}

}  // namespace trader::recovery
