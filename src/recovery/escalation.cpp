#include "recovery/escalation.hpp"

#include <algorithm>

namespace trader::recovery {

const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kResync:
      return "resync";
    case RecoveryAction::kRestartUnit:
      return "restart-unit";
    case RecoveryAction::kRestartDependents:
      return "restart-dependents";
    case RecoveryAction::kFullRestart:
      return "full-restart";
    case RecoveryAction::kGiveUp:
      return "give-up";
  }
  return "?";
}

int RecoveryEscalator::count_recent(const std::string& unit, runtime::SimTime now) const {
  auto it = failures_.find(unit);
  if (it == failures_.end()) return 0;
  const runtime::SimTime cutoff = now - config_.window;
  return static_cast<int>(std::count_if(it->second.begin(), it->second.end(),
                                        [&](runtime::SimTime t) { return t >= cutoff; }));
}

int RecoveryEscalator::level(const std::string& unit, runtime::SimTime now) const {
  return count_recent(unit, now) / std::max(config_.failures_per_level, 1);
}

RecoveryAction RecoveryEscalator::next_action(const std::string& unit, runtime::SimTime now) {
  auto& history = failures_[unit];
  // Prune outside the window to bound memory.
  const runtime::SimTime cutoff = now - config_.window;
  history.erase(std::remove_if(history.begin(), history.end(),
                               [&](runtime::SimTime t) { return t < cutoff; }),
                history.end());
  history.push_back(now);
  const int lvl = (static_cast<int>(history.size()) - 1) / std::max(config_.failures_per_level, 1);
  switch (lvl) {
    case 0:
      return RecoveryAction::kResync;
    case 1:
      return RecoveryAction::kRestartUnit;
    case 2:
      return RecoveryAction::kRestartDependents;
    case 3:
      return RecoveryAction::kFullRestart;
    default:
      ++give_ups_;
      return RecoveryAction::kGiveUp;
  }
}

void RecoveryEscalator::report_success(const std::string& unit) { failures_.erase(unit); }

}  // namespace trader::recovery
