// Recoverable units (§4.5, Twente framework).
//
// "a framework for partial recovery has been developed which allows
// independent recovery of parts of the system, the so-called recoverable
// units. The framework includes a communication manager, which controls
// the communication between recoverable units, and a recovery manager,
// which executes the recovery actions such as killing and restarting
// units."
//
// A RecoverableUnit wraps a message-handling function plus a key/value
// state store with checkpointing; killing a unit drops its volatile
// state, restarting restores the last checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::recovery {

class RecoverableUnit;

/// Unit behaviour: react to a message, possibly updating unit state and
/// sending further messages via the communication manager (bound by the
/// owner through the send callback).
using UnitHandler = std::function<void(RecoverableUnit& self, const runtime::Event& msg)>;

class RecoverableUnit {
 public:
  enum class State : std::uint8_t { kRunning, kFailed, kRestarting };

  RecoverableUnit(std::string name, runtime::SimDuration restart_time)
      : name_(std::move(name)), restart_time_(restart_time) {}

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool running() const { return state_ == State::kRunning; }
  runtime::SimDuration restart_time() const { return restart_time_; }

  void set_handler(UnitHandler h) { handler_ = std::move(h); }

  /// Deliver a message (only when running). Returns false if ignored.
  bool deliver(const runtime::Event& msg);

  // --- State store -----------------------------------------------------
  void set_var(const std::string& key, runtime::Value v) { vars_[key] = std::move(v); }
  runtime::Value var(const std::string& key, runtime::Value dflt = std::int64_t{0}) const;
  std::int64_t var_int(const std::string& key, std::int64_t dflt = 0) const;

  /// Persist the current state (survives restarts).
  void checkpoint();

  // --- Recovery actions (driven by the RecoveryManager) -----------------
  void kill(runtime::SimTime now);
  void begin_restart(runtime::SimTime now);
  void complete_restart(runtime::SimTime now);

  // --- Metrics -----------------------------------------------------------
  std::uint64_t processed() const { return processed_; }
  std::uint64_t restarts() const { return restarts_; }
  runtime::SimDuration total_downtime() const { return total_downtime_; }
  runtime::SimTime failed_at() const { return failed_at_; }

 private:
  std::string name_;
  runtime::SimDuration restart_time_;
  UnitHandler handler_;
  State state_ = State::kRunning;

  std::map<std::string, runtime::Value> vars_;
  std::map<std::string, runtime::Value> checkpoint_;

  std::uint64_t processed_ = 0;
  std::uint64_t restarts_ = 0;
  runtime::SimTime failed_at_ = -1;
  runtime::SimDuration total_downtime_ = 0;
};

const char* to_string(RecoverableUnit::State s);

}  // namespace trader::recovery
