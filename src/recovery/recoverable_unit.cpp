#include "recovery/recoverable_unit.hpp"

namespace trader::recovery {

const char* to_string(RecoverableUnit::State s) {
  switch (s) {
    case RecoverableUnit::State::kRunning:
      return "running";
    case RecoverableUnit::State::kFailed:
      return "failed";
    case RecoverableUnit::State::kRestarting:
      return "restarting";
  }
  return "?";
}

bool RecoverableUnit::deliver(const runtime::Event& msg) {
  if (state_ != State::kRunning) return false;
  ++processed_;
  if (handler_) handler_(*this, msg);
  return true;
}

runtime::Value RecoverableUnit::var(const std::string& key, runtime::Value dflt) const {
  auto it = vars_.find(key);
  return it != vars_.end() ? it->second : dflt;
}

std::int64_t RecoverableUnit::var_int(const std::string& key, std::int64_t dflt) const {
  auto it = vars_.find(key);
  if (it == vars_.end()) return dflt;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) return *i;
  return dflt;
}

void RecoverableUnit::checkpoint() { checkpoint_ = vars_; }

void RecoverableUnit::kill(runtime::SimTime now) {
  if (state_ == State::kFailed) return;
  state_ = State::kFailed;
  failed_at_ = now;
  vars_.clear();  // volatile state is gone
}

void RecoverableUnit::begin_restart(runtime::SimTime now) {
  if (state_ != State::kFailed) return;
  (void)now;
  state_ = State::kRestarting;
}

void RecoverableUnit::complete_restart(runtime::SimTime now) {
  if (state_ == State::kRunning) return;
  state_ = State::kRunning;
  vars_ = checkpoint_;  // restore persisted state
  ++restarts_;
  if (failed_at_ >= 0) {
    total_downtime_ += now - failed_at_;
    failed_at_ = -1;
  }
}

}  // namespace trader::recovery
