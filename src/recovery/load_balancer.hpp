// Run-time load balancing by task migration (§4.5, IMEC result).
//
// "Project partner IMEC has demonstrated the possibility to migrate an
// image processing task from one processor to another, which leads to
// improved image quality in case of overload situations (e.g., due to
// intensive error correction on a bad input signal)."
//
// LoadBalancer is substrate-agnostic: it reads per-location load through
// a callback and migrates through another, so it drives TvSystem's
// decoder placement as well as any test double.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/sim_time.hpp"

namespace trader::recovery {

struct LoadBalancerConfig {
  double overload_threshold = 1.0;   ///< Load above this counts as overload.
  int sustain_ticks = 5;             ///< Consecutive overloaded ticks to act.
  double headroom_required = 0.85;   ///< Target location must be below this
                                     ///< (post-migration estimate).
  runtime::SimDuration cooldown = runtime::msec(500);  ///< Between migrations.
};

/// One migration event (for reporting).
struct Migration {
  int from = 0;
  int to = 0;
  runtime::SimTime at = 0;
};

class LoadBalancer {
 public:
  /// `load_of(loc)` returns the current load of a location;
  /// `task_cost()` the migrating task's own demand (in load units of the
  /// target, i.e. cost/capacity); `migrate_to(loc)` performs the move.
  LoadBalancer(LoadBalancerConfig config, int initial_location, int location_count,
               std::function<double(int)> load_of, std::function<double(int)> task_load_on,
               std::function<void(int)> migrate_to)
      : config_(config),
        location_(initial_location),
        location_count_(location_count),
        load_of_(std::move(load_of)),
        task_load_on_(std::move(task_load_on)),
        migrate_to_(std::move(migrate_to)) {}

  /// Periodic policy evaluation.
  void tick(runtime::SimTime now);

  int location() const { return location_; }
  const std::vector<Migration>& migrations() const { return migrations_; }
  int overloaded_streak() const { return streak_; }

 private:
  LoadBalancerConfig config_;
  int location_;
  int location_count_;
  std::function<double(int)> load_of_;
  std::function<double(int)> task_load_on_;
  std::function<void(int)> migrate_to_;
  int streak_ = 0;
  runtime::SimTime last_migration_ = -1'000'000'000;
  std::vector<Migration> migrations_;
};

}  // namespace trader::recovery
