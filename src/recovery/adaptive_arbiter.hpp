// Adaptive memory arbitration (§4.5, NXP Research result).
//
// "NXP Research investigates the possibility to make memory arbitration
// more flexible such that it can be adapted at run-time to deal with
// problems concerning memory access."
//
// The controller watches one arbiter port for sustained starvation and
// temporarily boosts its priority; once the port has been healthy again
// for a while, the original priority is restored.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/sim_time.hpp"
#include "tv/soc.hpp"

namespace trader::recovery {

struct AdaptiveArbiterConfig {
  int starvation_ticks_to_boost = 5;  ///< Sustained starvation trigger.
  int boost_priority = 10;            ///< Priority while boosted.
  int healthy_ticks_to_restore = 25;  ///< Healthy ticks before restore.
};

class AdaptiveArbiterController {
 public:
  AdaptiveArbiterController(tv::MemoryArbiter& arbiter, std::string port,
                            AdaptiveArbiterConfig config = {})
      : arbiter_(arbiter),
        port_(std::move(port)),
        config_(config),
        base_priority_(arbiter.priority(port_)) {}

  /// Periodic policy evaluation (call once per arbiter service tick).
  void tick(runtime::SimTime now);

  bool boosted() const { return boosted_; }
  std::uint64_t boosts() const { return boosts_; }
  std::uint64_t restores() const { return restores_; }

 private:
  tv::MemoryArbiter& arbiter_;
  std::string port_;
  AdaptiveArbiterConfig config_;
  int base_priority_;
  bool boosted_ = false;
  int healthy_streak_ = 0;
  std::uint64_t boosts_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace trader::recovery
