#include "recovery/adaptive_arbiter.hpp"

namespace trader::recovery {

void AdaptiveArbiterController::tick(runtime::SimTime now) {
  (void)now;
  if (!boosted_) {
    if (arbiter_.starvation_ticks(port_) >= config_.starvation_ticks_to_boost) {
      arbiter_.set_priority(port_, config_.boost_priority);
      boosted_ = true;
      healthy_streak_ = 0;
      ++boosts_;
    }
    return;
  }
  // Boosted: wait until the port has been served well long enough.
  if (arbiter_.last_fraction(port_) >= 0.999) {
    ++healthy_streak_;
    if (healthy_streak_ >= config_.healthy_ticks_to_restore) {
      arbiter_.set_priority(port_, base_priority_);
      boosted_ = false;
      ++restores_;
    }
  } else {
    healthy_streak_ = 0;
  }
}

}  // namespace trader::recovery
