// Reusable fault-tolerance library (§4.5).
//
// "To realize these concepts, a reusable fault tolerance library has
// been implemented." Four cost-conscious building blocks — none of them
// relying on hardware duplication, per the paper's high-volume
// constraint:
//
//   RetryExecutor   — bounded retry of an idempotent operation
//   FallbackChain   — primary / degraded / safe-default service levels
//   SafeStateGuard  — wrapper validating updates to a critical value
//                     (the COTS-wrapping idea of [16] Shin & Paniagua)
//   NVersionVoter   — majority vote over software variants
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runtime/event.hpp"

namespace trader::recovery {

/// Bounded retry of an operation that reports success.
class RetryExecutor {
 public:
  explicit RetryExecutor(int max_attempts = 3) : max_attempts_(max_attempts) {}

  /// Runs `op` until it returns true, at most max_attempts times.
  /// Returns whether it eventually succeeded.
  bool run(const std::function<bool()>& op);

  std::uint64_t total_attempts() const { return attempts_; }
  std::uint64_t failures() const { return failures_; }  ///< Exhausted retries.

 private:
  int max_attempts_;
  std::uint64_t attempts_ = 0;
  std::uint64_t failures_ = 0;
};

/// Graceful degradation: try service levels in order, remember which one
/// served (quality level 0 = primary).
class FallbackChain {
 public:
  using Provider = std::function<std::optional<runtime::Value>()>;

  /// Add a level (first added = primary).
  void add_level(const std::string& name, Provider provider);

  /// Query the chain; nullopt when every level failed.
  std::optional<runtime::Value> get();

  /// Level that served the last successful get() (-1 before any).
  int last_level() const { return last_level_; }
  const std::string& level_name(int level) const { return levels_.at(static_cast<std::size_t>(level)).name; }
  std::uint64_t degradations() const { return degradations_; }  ///< Served below primary.
  std::uint64_t outages() const { return outages_; }            ///< All levels failed.

 private:
  struct Level {
    std::string name;
    Provider provider;
  };
  std::vector<Level> levels_;
  int last_level_ = -1;
  std::uint64_t degradations_ = 0;
  std::uint64_t outages_ = 0;
};

/// Wrapper around a critical value: updates must satisfy a validity
/// predicate or they are rejected and the last good value kept. This is
/// how third-party/COTS components are contained without modifying them.
class SafeStateGuard {
 public:
  SafeStateGuard(runtime::Value initial, std::function<bool(const runtime::Value&)> valid)
      : value_(std::move(initial)), valid_(std::move(valid)) {}

  /// Attempt an update; returns whether it was accepted.
  bool update(runtime::Value v);

  const runtime::Value& value() const { return value_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  runtime::Value value_;
  std::function<bool(const runtime::Value&)> valid_;
  std::uint64_t rejected_ = 0;
  std::uint64_t accepted_ = 0;
};

/// Majority voting over N software variants (N-version programming —
/// software diversity, not hardware redundancy, so it fits the cost
/// envelope when variants are cheap).
class NVersionVoter {
 public:
  using Variant = std::function<runtime::Value()>;

  void add_variant(const std::string& name, Variant v);

  struct Verdict {
    bool agreed = false;        ///< A strict majority existed.
    runtime::Value value;       ///< Majority value (or first, if none).
    std::vector<std::string> dissenters;
  };

  /// Run all variants and vote. Values are compared with
  /// runtime::deviation == 0.
  Verdict vote();

  std::uint64_t disagreements() const { return disagreements_; }

 private:
  struct Entry {
    std::string name;
    Variant fn;
  };
  std::vector<Entry> variants_;
  std::uint64_t disagreements_ = 0;
};

}  // namespace trader::recovery
