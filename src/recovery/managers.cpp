#include "recovery/managers.hpp"

#include <algorithm>
#include <set>

namespace trader::recovery {

// ------------------------------------------------------ CommunicationManager

void CommunicationManager::register_unit(RecoverableUnit* unit) {
  units_[unit->name()] = unit;
}

RecoverableUnit* CommunicationManager::unit(const std::string& name) {
  auto it = units_.find(name);
  return it != units_.end() ? it->second : nullptr;
}

std::vector<std::string> CommunicationManager::unit_names() const {
  std::vector<std::string> out;
  out.reserve(units_.size());
  for (const auto& [k, v] : units_) out.push_back(k);
  return out;
}

void CommunicationManager::set_metrics(runtime::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    routed_metric_ = nullptr;
    quarantined_metric_ = nullptr;
    dropped_metric_ = nullptr;
    return;
  }
  routed_metric_ = &metrics->counter("comm.routed");
  quarantined_metric_ = &metrics->counter("comm.quarantined");
  dropped_metric_ = &metrics->counter("comm.dropped");
}

void CommunicationManager::send(const std::string& to, const runtime::Event& msg) {
  ++routed_;
  if (routed_metric_ != nullptr) routed_metric_->inc();
  auto it = units_.find(to);
  if (it == units_.end()) {
    ++dropped_;
    if (dropped_metric_ != nullptr) dropped_metric_->inc();
    return;
  }
  RecoverableUnit& u = *it->second;
  if (u.running()) {
    ++delivered_;
    u.deliver(msg);
    return;
  }
  auto& q = quarantine_[to];
  if (q.size() >= quarantine_cap_) {
    ++dropped_;
    if (dropped_metric_ != nullptr) dropped_metric_->inc();
    return;
  }
  q.push_back(msg);
  ++quarantined_;
  if (quarantined_metric_ != nullptr) quarantined_metric_->inc();
}

void CommunicationManager::flush(const std::string& to) {
  auto it = units_.find(to);
  if (it == units_.end()) return;
  auto& q = quarantine_[to];
  while (!q.empty() && it->second->running()) {
    ++delivered_;
    it->second->deliver(q.front());
    q.pop_front();
  }
}

std::size_t CommunicationManager::pending(const std::string& to) const {
  auto it = quarantine_.find(to);
  return it != quarantine_.end() ? it->second.size() : 0;
}

// ------------------------------------------------------------ RecoveryManager

const char* to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kRestartUnit:
      return "restart-unit";
    case RecoveryPolicy::kRestartDependents:
      return "restart-dependents";
    case RecoveryPolicy::kFullRestart:
      return "full-restart";
  }
  return "?";
}

void RecoveryManager::add_dependency(const std::string& dependent, const std::string& on) {
  dependents_.emplace(on, dependent);
}

std::vector<std::string> RecoveryManager::scope_of(const std::string& unit) const {
  if (policy_ == RecoveryPolicy::kFullRestart) return comm_.unit_names();
  std::vector<std::string> scope{unit};
  if (policy_ == RecoveryPolicy::kRestartDependents) {
    // Transitive closure over the dependency edges.
    std::set<std::string> seen{unit};
    std::vector<std::string> work{unit};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      auto [lo, hi] = dependents_.equal_range(cur);
      for (auto it = lo; it != hi; ++it) {
        if (seen.insert(it->second).second) {
          scope.push_back(it->second);
          work.push_back(it->second);
        }
      }
    }
  }
  return scope;
}

void RecoveryManager::set_metrics(runtime::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    recoveries_metric_ = nullptr;
    restarts_metric_ = nullptr;
    return;
  }
  recoveries_metric_ = &metrics->counter("recovery.invocations");
  restarts_metric_ = &metrics->counter("recovery.units_restarted");
}

void RecoveryManager::restart(RecoverableUnit& u, runtime::SimTime now) {
  u.kill(now);
  u.begin_restart(now);
  ++units_restarted_;
  if (restarts_metric_ != nullptr) restarts_metric_->inc();
  const std::string name = u.name();
  sched_.schedule_after(u.restart_time(), [this, name] {
    RecoverableUnit* unit = comm_.unit(name);
    if (unit == nullptr) return;
    unit->complete_restart(sched_.now());
    comm_.flush(name);
  });
}

std::size_t RecoveryManager::notify_failure(const std::string& unit, runtime::SimTime now) {
  RecoverableUnit* failed = comm_.unit(unit);
  if (failed == nullptr) return 0;
  ++recoveries_;
  if (recoveries_metric_ != nullptr) recoveries_metric_->inc();
  const auto scope = scope_of(unit);
  for (const auto& name : scope) {
    RecoverableUnit* u = comm_.unit(name);
    if (u != nullptr) restart(*u, now);
  }
  return scope.size();
}

}  // namespace trader::recovery
