// Communication manager and recovery manager (§4.5).
//
// The communication manager is the only path between recoverable units:
// it adds a small, measurable per-message overhead (the "without large
// overhead" claim of E5 is quantified against direct calls), and during
// a unit's recovery it quarantines inbound messages, delivering them on
// restart completion so neighbours keep running — the essence of
// *partial* recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "recovery/recoverable_unit.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"

namespace trader::recovery {

/// Routing + quarantine between recoverable units.
class CommunicationManager {
 public:
  explicit CommunicationManager(runtime::Scheduler& sched, std::size_t quarantine_cap = 1024)
      : sched_(sched), quarantine_cap_(quarantine_cap) {}

  void register_unit(RecoverableUnit* unit);
  RecoverableUnit* unit(const std::string& name);
  std::vector<std::string> unit_names() const;

  /// Route a message to `to`. Running → delivered now; recovering →
  /// quarantined (bounded); unknown → dropped.
  void send(const std::string& to, const runtime::Event& msg);

  /// Deliver everything quarantined for a freshly restarted unit.
  void flush(const std::string& to);

  /// Mirror routing outcomes into "comm.*" counters.
  void set_metrics(runtime::MetricsRegistry* metrics);

  std::uint64_t routed() const { return routed_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t quarantined() const { return quarantined_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t pending(const std::string& to) const;

 private:
  runtime::Scheduler& sched_;
  std::size_t quarantine_cap_;
  runtime::Counter* routed_metric_ = nullptr;
  runtime::Counter* quarantined_metric_ = nullptr;
  runtime::Counter* dropped_metric_ = nullptr;
  std::map<std::string, RecoverableUnit*> units_;
  std::map<std::string, std::deque<runtime::Event>> quarantine_;
  std::uint64_t routed_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Recovery scope policies compared in E5.
enum class RecoveryPolicy : std::uint8_t {
  kRestartUnit,        ///< Partial recovery: only the failed unit.
  kRestartDependents,  ///< The failed unit plus its dependents (closure).
  kFullRestart,        ///< Classic: restart everything.
};

const char* to_string(RecoveryPolicy p);

/// Executes recovery actions ("killing and restarting units").
class RecoveryManager {
 public:
  RecoveryManager(runtime::Scheduler& sched, CommunicationManager& comm,
                  RecoveryPolicy policy = RecoveryPolicy::kRestartUnit)
      : sched_(sched), comm_(comm), policy_(policy) {}

  void set_policy(RecoveryPolicy p) { policy_ = p; }
  RecoveryPolicy policy() const { return policy_; }

  /// Declare that `dependent` cannot survive a restart of `on`.
  void add_dependency(const std::string& dependent, const std::string& on);

  /// A failure of `unit` has been detected: kill the policy's scope and
  /// schedule restarts. Returns the number of units taken down.
  std::size_t notify_failure(const std::string& unit, runtime::SimTime now);

  /// Mirror recovery activity into "recovery.*" counters.
  void set_metrics(runtime::MetricsRegistry* metrics);

  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t units_restarted() const { return units_restarted_; }

 private:
  std::vector<std::string> scope_of(const std::string& unit) const;
  void restart(RecoverableUnit& u, runtime::SimTime now);

  runtime::Scheduler& sched_;
  CommunicationManager& comm_;
  RecoveryPolicy policy_;
  runtime::Counter* recoveries_metric_ = nullptr;
  runtime::Counter* restarts_metric_ = nullptr;
  std::multimap<std::string, std::string> dependents_;  // on -> dependent
  std::uint64_t recoveries_ = 0;
  std::uint64_t units_restarted_ = 0;
};

}  // namespace trader::recovery
