// Escalating recovery strategy.
//
// §5: "one can vary between light-weight models with limited corrective
// capacities, and more elaborate models with stronger feedback
// mechanisms." RecoveryEscalator encodes the standard light-to-heavy
// ladder: re-sync state first (cheapest, no downtime), then restart the
// unit, then its dependents, then the whole system; repeated failures of
// the same unit inside a sliding window climb the ladder, success decays
// back down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "journal/codec.hpp"
#include "runtime/sim_time.hpp"

namespace trader::recovery {

enum class RecoveryAction : std::uint8_t {
  kResync,             ///< Replay believed state into the component.
  kRestartUnit,        ///< Kill + restart the unit.
  kRestartDependents,  ///< Unit plus dependency closure.
  kFullRestart,        ///< Everything.
  kGiveUp,             ///< Escalation exhausted; needs service.
};

const char* to_string(RecoveryAction a);

struct EscalationConfig {
  /// Failures within this window count toward escalation.
  runtime::SimDuration window = runtime::sec(30);
  /// Failures tolerated per level before climbing to the next.
  int failures_per_level = 2;
};

class RecoveryEscalator {
 public:
  explicit RecoveryEscalator(EscalationConfig config = {}) : config_(config) {}

  /// A failure of `unit` was detected at `now`: which action to take?
  RecoveryAction next_action(const std::string& unit, runtime::SimTime now);

  /// Report that the unit has been healthy (e.g. a monitor episode
  /// closed); forgets failures older than the window anyway, but an
  /// explicit success resets the unit immediately.
  void report_success(const std::string& unit);

  /// Drop all escalation state for `unit` — used when a hub slot is
  /// retired (mirrors FleetAggregator::retire_slot) so dead slots
  /// don't pin memory. Unlike report_success this is also semantically
  /// a discard, not a recovery: the unit is gone, not healthy.
  void forget(const std::string& unit);

  /// Current level for a unit (0 = resync).
  int level(const std::string& unit, runtime::SimTime now) const;

  std::uint64_t give_ups() const { return give_ups_; }

  /// Units with at least one recorded failure (bounded: fully expired
  /// units are dropped by the periodic prune in next_action).
  std::size_t tracked_units() const { return failures_.size(); }

  /// Serialize the failure history + give-up count for the hub's
  /// checkpoint files (config is not persisted — a restarted hub runs
  /// whatever ladder its config says). load() overwrites and fails
  /// closed on malformed input.
  void save(journal::Encoder& out) const;
  bool load(journal::Decoder& in);

 private:
  int count_recent(const std::string& unit, runtime::SimTime now) const;

  EscalationConfig config_;
  std::map<std::string, std::vector<runtime::SimTime>> failures_;
  std::uint64_t give_ups_ = 0;
};

}  // namespace trader::recovery
