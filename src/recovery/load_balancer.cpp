#include "recovery/load_balancer.hpp"

namespace trader::recovery {

void LoadBalancer::tick(runtime::SimTime now) {
  if (load_of_(location_) <= config_.overload_threshold) {
    streak_ = 0;
    return;
  }
  ++streak_;
  if (streak_ < config_.sustain_ticks) return;
  if (now - last_migration_ < config_.cooldown) return;

  // Pick the best other location with enough headroom after the move.
  int best = -1;
  double best_load = 1e18;
  for (int loc = 0; loc < location_count_; ++loc) {
    if (loc == location_) continue;
    const double projected = load_of_(loc) + task_load_on_(loc);
    if (projected < config_.headroom_required && projected < best_load) {
      best = loc;
      best_load = projected;
    }
  }
  if (best < 0) return;  // nowhere to go

  migrate_to_(best);
  migrations_.push_back(Migration{location_, best, now});
  location_ = best;
  streak_ = 0;
  last_migration_ = now;
}

}  // namespace trader::recovery
