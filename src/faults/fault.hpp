// Fault taxonomy and injection specifications.
//
// The paper adopts the fault → error → failure terminology of Avizienis
// et al. [1]: a *fault* (programming mistake, unexpected input) causes an
// *error* (bad state: wrong memory value, wrong message) which may cause
// a *failure* (externally visible spec violation). This module describes
// *faults to inject*; the SUO turns them into errors; detectors in
// src/core and src/detection are judged on catching the failures.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "runtime/event.hpp"
#include "runtime/sim_time.hpp"

namespace trader::faults {

/// Classes of injectable faults, matching the threats §2 lists for
/// high-volume products.
enum class FaultKind : std::uint8_t {
  kMessageLoss,        ///< Inter-component message dropped (mode desync source).
  kMessageCorruption,  ///< Message payload altered in transit.
  kStuckComponent,     ///< Component stops reacting to input.
  kModeDesync,         ///< Component's internal mode silently flipped.
  kTaskOverrun,        ///< A task's execution time inflated.
  kDeadlock,           ///< Circular wait introduced between components.
  kBadSignal,          ///< Input signal degraded (external fault).
  kCodingDeviation,    ///< Stream deviates from the coding standard (external).
  kCrash,              ///< Component dies (divide-by-zero style).
  kMemoryCorruption,   ///< A state variable overwritten with a wrong value.
  kResourceEater,      ///< Shared-resource starvation (§4.7 CPU/bus eater):
                       ///< the component falls behind and processes late.
};

const char* to_string(FaultKind kind);

/// True for faults the user attributes to external causes (bad antenna,
/// broken broadcast) rather than to the product — the attribution
/// distinction driving the §4.6 perception results.
bool is_external(FaultKind kind);

/// A fault to inject.
struct FaultSpec {
  FaultKind kind = FaultKind::kMessageLoss;
  std::string target;                ///< Component / channel / variable name.
  runtime::SimTime activate_at = 0;  ///< Virtual time of activation.
  runtime::SimDuration duration = 0; ///< 0 = permanent once active.
  double intensity = 1.0;            ///< Probability / magnitude knob in [0,1].
  std::map<std::string, runtime::Value> params;  ///< Kind-specific extras.

  bool active_at(runtime::SimTime now) const {
    if (now < activate_at) return false;
    return duration == 0 || now < activate_at + duration;
  }
};

/// Ground-truth record of one fault manifestation (used to score
/// detection latency and diagnosis accuracy).
struct FaultActivation {
  FaultSpec spec;
  runtime::SimTime time = 0;
  std::string detail;
};

}  // namespace trader::faults
