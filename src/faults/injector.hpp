// Fault injector: a plan of FaultSpecs plus the query API that SUO code
// paths consult, and a ground-truth log of what actually manifested.
//
// The API splits into two strictly separated groups:
//
//   * Pure queries — is_active(), active_spec(), first_planned(),
//     plan(), activations(), first_activation(). These are const, draw
//     nothing from the RNG and never touch the ground-truth log. Use
//     them on every "should this code path behave differently?" check.
//
//   * Manifestations — fires() and record(). Calling fires() asserts
//     "the fault's effect is happening to this message/step right now":
//     it consumes an RNG draw (for intensity < 1) and appends to the
//     ground-truth activation log that campaign verdicts are scored
//     against. Calling it from a query-only path inflates ground truth
//     with activations that had no observable effect, which silently
//     deflates measured detection rates. When the component computes
//     the faulty effect itself, decide first, then log via record().
//
// Overlap rule — what happens when two planned faults cover the same
// target at the same instant:
//
//   | overlap                      | semantics                             |
//   |------------------------------|---------------------------------------|
//   | different kinds, same target | independent: each kind is queried and |
//   |                              | fired separately; effects compose     |
//   | same kind, same target       | merged, strongest-wins: one           |
//   |                              | manifestation per fires() call with   |
//   |                              | P(fire) = max intensity; ground truth |
//   |                              | logs the winning spec exactly once    |
//   |                              | (intensity tie -> earliest            |
//   |                              | activate_at, then plan order)         |
//   | same kind, different target  | unrelated plans; never interact       |
//
// The merge is explicit so that composed campaign scenarios (the fuzz
// driver splices fault plans freely) stay deterministic: a fires() call
// consumes at most ONE rng draw regardless of how many same-kind specs
// overlap, so adding an overlapping spec never perturbs the draw
// sequence seen by later manifestation checks.
#pragma once

#include <optional>
#include <vector>

#include "faults/fault.hpp"
#include "runtime/rng.hpp"

namespace trader::faults {

class FaultInjector {
 public:
  explicit FaultInjector(runtime::Rng rng = runtime::Rng(1)) : rng_(rng) {}

  /// Add a fault to the plan. Returns its index.
  std::size_t schedule(FaultSpec spec);

  /// Remove all planned faults (ground truth log kept).
  void clear_plan() { plan_.clear(); }

  /// Is any fault of `kind` on `target` active at `now`?
  /// (Deterministic — ignores intensity.)
  bool is_active(FaultKind kind, const std::string& target, runtime::SimTime now) const;

  /// The first active spec of `kind` on `target`, if any.
  std::optional<FaultSpec> active_spec(FaultKind kind, const std::string& target,
                                       runtime::SimTime now) const;

  /// Manifestation: true with probability `intensity` when a matching
  /// fault is active. Records a ground-truth activation when it fires —
  /// call this only where the fault's effect actually lands (a message
  /// genuinely dropped/corrupted); use is_active()/active_spec() for
  /// pure queries. Overlapping same-kind specs merge strongest-wins
  /// (see the overlap table above): at most one rng draw and one
  /// logged activation per call.
  bool fires(FaultKind kind, const std::string& target, runtime::SimTime now,
             const std::string& detail = {});

  /// Record a manifestation decided by the caller (for faults whose
  /// effect the component computes itself, e.g. a corrupted value).
  void record(const FaultSpec& spec, runtime::SimTime now, const std::string& detail);

  const std::vector<FaultSpec>& plan() const { return plan_; }
  const std::vector<FaultActivation>& activations() const { return log_; }

  /// Earliest ground-truth manifestation time of any fault on `target`
  /// (-1 when none).
  runtime::SimTime first_activation(const std::string& target) const;

  /// Earliest planned activation time across the plan (-1 when empty).
  runtime::SimTime first_planned() const;

 private:
  runtime::Rng rng_;
  std::vector<FaultSpec> plan_;
  std::vector<FaultActivation> log_;
};

}  // namespace trader::faults
