#include "faults/fault.hpp"

namespace trader::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageLoss:
      return "message-loss";
    case FaultKind::kMessageCorruption:
      return "message-corruption";
    case FaultKind::kStuckComponent:
      return "stuck-component";
    case FaultKind::kModeDesync:
      return "mode-desync";
    case FaultKind::kTaskOverrun:
      return "task-overrun";
    case FaultKind::kDeadlock:
      return "deadlock";
    case FaultKind::kBadSignal:
      return "bad-signal";
    case FaultKind::kCodingDeviation:
      return "coding-deviation";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kMemoryCorruption:
      return "memory-corruption";
    case FaultKind::kResourceEater:
      return "resource-eater";
  }
  return "?";
}

bool is_external(FaultKind kind) {
  return kind == FaultKind::kBadSignal || kind == FaultKind::kCodingDeviation;
}

}  // namespace trader::faults
