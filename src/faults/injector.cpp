#include "faults/injector.hpp"

namespace trader::faults {

std::size_t FaultInjector::schedule(FaultSpec spec) {
  plan_.push_back(std::move(spec));
  return plan_.size() - 1;
}

bool FaultInjector::is_active(FaultKind kind, const std::string& target,
                              runtime::SimTime now) const {
  for (const auto& f : plan_) {
    if (f.kind == kind && f.target == target && f.active_at(now)) return true;
  }
  return false;
}

std::optional<FaultSpec> FaultInjector::active_spec(FaultKind kind, const std::string& target,
                                                    runtime::SimTime now) const {
  for (const auto& f : plan_) {
    if (f.kind == kind && f.target == target && f.active_at(now)) return f;
  }
  return std::nullopt;
}

bool FaultInjector::fires(FaultKind kind, const std::string& target, runtime::SimTime now,
                          const std::string& detail) {
  // Strongest-wins merge over overlapping same-kind specs (injector.hpp
  // overlap table): pick the winner first, then spend at most one draw.
  const FaultSpec* winner = nullptr;
  for (const auto& f : plan_) {
    if (f.kind != kind || f.target != target || !f.active_at(now)) continue;
    if (winner == nullptr || f.intensity > winner->intensity ||
        (f.intensity == winner->intensity && f.activate_at < winner->activate_at)) {
      winner = &f;
    }
  }
  if (winner == nullptr) return false;
  if (winner->intensity >= 1.0 || rng_.bernoulli(winner->intensity)) {
    log_.push_back(FaultActivation{*winner, now, detail});
    return true;
  }
  return false;
}

void FaultInjector::record(const FaultSpec& spec, runtime::SimTime now,
                           const std::string& detail) {
  log_.push_back(FaultActivation{spec, now, detail});
}

runtime::SimTime FaultInjector::first_activation(const std::string& target) const {
  runtime::SimTime best = -1;
  for (const auto& a : log_) {
    if (a.spec.target != target) continue;
    if (best < 0 || a.time < best) best = a.time;
  }
  return best;
}

runtime::SimTime FaultInjector::first_planned() const {
  runtime::SimTime best = -1;
  for (const auto& f : plan_) {
    if (best < 0 || f.activate_at < best) best = f.activate_at;
  }
  return best;
}

}  // namespace trader::faults
