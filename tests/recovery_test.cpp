// Tests for the recovery framework (§4.5): recoverable units,
// communication/recovery managers, load balancing, adaptive arbitration.
#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "recovery/adaptive_arbiter.hpp"
#include "recovery/escalation.hpp"
#include "recovery/load_balancer.hpp"
#include "recovery/managers.hpp"
#include "recovery/recoverable_unit.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/soc.hpp"
#include "tv/tv_system.hpp"

namespace rec = trader::recovery;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;

namespace {

rt::Event msg(const std::string& name, std::int64_t n = 0) {
  rt::Event ev;
  ev.topic = "unit";
  ev.name = name;
  ev.fields["n"] = n;
  return ev;
}

// Counting unit: tallies received messages into its state store.
rec::UnitHandler counting_handler() {
  return [](rec::RecoverableUnit& self, const rt::Event&) {
    self.set_var("count", self.var_int("count") + 1);
  };
}

}  // namespace

// ----------------------------------------------------------- RecoverableUnit

TEST(Unit, ProcessesWhileRunning) {
  rec::RecoverableUnit u("a", rt::msec(50));
  u.set_handler(counting_handler());
  EXPECT_TRUE(u.deliver(msg("m")));
  EXPECT_TRUE(u.deliver(msg("m")));
  EXPECT_EQ(u.var_int("count"), 2);
  EXPECT_EQ(u.processed(), 2u);
}

TEST(Unit, KillDropsVolatileStateAndIgnoresMessages) {
  rec::RecoverableUnit u("a", rt::msec(50));
  u.set_handler(counting_handler());
  u.deliver(msg("m"));
  u.kill(100);
  EXPECT_EQ(u.state(), rec::RecoverableUnit::State::kFailed);
  EXPECT_FALSE(u.deliver(msg("m")));
  EXPECT_EQ(u.var_int("count"), 0);  // volatile state gone
}

TEST(Unit, RestartRestoresCheckpoint) {
  rec::RecoverableUnit u("a", rt::msec(50));
  u.set_handler(counting_handler());
  u.deliver(msg("m"));
  u.deliver(msg("m"));
  u.checkpoint();
  u.deliver(msg("m"));
  EXPECT_EQ(u.var_int("count"), 3);
  u.kill(100);
  u.begin_restart(100);
  u.complete_restart(150);
  EXPECT_TRUE(u.running());
  EXPECT_EQ(u.var_int("count"), 2);  // checkpointed value, not 3
  EXPECT_EQ(u.restarts(), 1u);
  EXPECT_EQ(u.total_downtime(), 50);
}

TEST(Unit, DowntimeAccumulatesAcrossFailures) {
  rec::RecoverableUnit u("a", rt::msec(10));
  u.kill(100);
  u.complete_restart(150);
  u.kill(200);
  u.complete_restart(300);
  EXPECT_EQ(u.total_downtime(), 50 + 100);
  EXPECT_EQ(u.restarts(), 2u);
}

TEST(Unit, StateNames) {
  EXPECT_STREQ(rec::to_string(rec::RecoverableUnit::State::kRunning), "running");
  EXPECT_STREQ(rec::to_string(rec::RecoverableUnit::State::kFailed), "failed");
}

// ------------------------------------------------------ CommunicationManager

TEST(Comm, DeliversToRunningUnits) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoverableUnit a("a", rt::msec(10));
  a.set_handler(counting_handler());
  comm.register_unit(&a);
  comm.send("a", msg("m"));
  EXPECT_EQ(a.var_int("count"), 1);
  EXPECT_EQ(comm.delivered(), 1u);
}

TEST(Comm, QuarantinesDuringRecoveryAndFlushes) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoverableUnit a("a", rt::msec(10));
  a.set_handler(counting_handler());
  a.checkpoint();
  comm.register_unit(&a);
  a.kill(0);
  comm.send("a", msg("m"));
  comm.send("a", msg("m"));
  EXPECT_EQ(comm.quarantined(), 2u);
  EXPECT_EQ(comm.pending("a"), 2u);
  EXPECT_EQ(a.var_int("count"), 0);
  a.complete_restart(10);
  comm.flush("a");
  EXPECT_EQ(a.var_int("count"), 2);  // nothing lost
  EXPECT_EQ(comm.pending("a"), 0u);
}

TEST(Comm, UnknownTargetDropped) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  comm.send("ghost", msg("m"));
  EXPECT_EQ(comm.dropped(), 1u);
}

TEST(Comm, QuarantineCapDropsOverflow) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched, /*quarantine_cap=*/2);
  rec::RecoverableUnit a("a", rt::msec(10));
  comm.register_unit(&a);
  a.kill(0);
  for (int i = 0; i < 5; ++i) comm.send("a", msg("m"));
  EXPECT_EQ(comm.quarantined(), 2u);
  EXPECT_EQ(comm.dropped(), 3u);
}

// ------------------------------------------------------------ RecoveryManager

namespace {

struct Cluster {
  Cluster()
      : comm(sched),
        mgr(sched, comm),
        a("a", rt::msec(20)),
        b("b", rt::msec(30)),
        c("c", rt::msec(40)) {
    for (auto* u : {&a, &b, &c}) {
      u->set_handler(counting_handler());
      u->checkpoint();
      comm.register_unit(u);
    }
  }

  rt::Scheduler sched;
  rec::CommunicationManager comm;
  rec::RecoveryManager mgr;
  rec::RecoverableUnit a, b, c;
};

}  // namespace

TEST(RecoveryMgr, PartialRecoveryRestartsOnlyFailedUnit) {
  Cluster cl;
  cl.mgr.set_policy(rec::RecoveryPolicy::kRestartUnit);
  EXPECT_EQ(cl.mgr.notify_failure("a", cl.sched.now()), 1u);
  EXPECT_FALSE(cl.a.running());
  EXPECT_TRUE(cl.b.running());
  EXPECT_TRUE(cl.c.running());
  cl.sched.run_for(rt::msec(25));
  EXPECT_TRUE(cl.a.running());
  EXPECT_EQ(cl.mgr.units_restarted(), 1u);
}

TEST(RecoveryMgr, DependentsPolicyRestartsClosure) {
  Cluster cl;
  cl.mgr.set_policy(rec::RecoveryPolicy::kRestartDependents);
  cl.mgr.add_dependency("b", "a");  // b depends on a
  cl.mgr.add_dependency("c", "b");  // c depends on b (transitive)
  EXPECT_EQ(cl.mgr.notify_failure("a", cl.sched.now()), 3u);
  EXPECT_FALSE(cl.a.running());
  EXPECT_FALSE(cl.b.running());
  EXPECT_FALSE(cl.c.running());
}

TEST(RecoveryMgr, DependentsPolicyLeavesUnrelatedAlone) {
  Cluster cl;
  cl.mgr.set_policy(rec::RecoveryPolicy::kRestartDependents);
  cl.mgr.add_dependency("b", "a");
  EXPECT_EQ(cl.mgr.notify_failure("a", cl.sched.now()), 2u);
  EXPECT_TRUE(cl.c.running());
}

TEST(RecoveryMgr, FullRestartTakesEverythingDown) {
  Cluster cl;
  cl.mgr.set_policy(rec::RecoveryPolicy::kFullRestart);
  EXPECT_EQ(cl.mgr.notify_failure("a", cl.sched.now()), 3u);
  EXPECT_FALSE(cl.b.running());
  cl.sched.run_for(rt::msec(50));
  EXPECT_TRUE(cl.a.running());
  EXPECT_TRUE(cl.b.running());
  EXPECT_TRUE(cl.c.running());
}

TEST(RecoveryMgr, MessagesDuringRecoveryAreDeliveredAfterFlush) {
  Cluster cl;
  cl.mgr.set_policy(rec::RecoveryPolicy::kRestartUnit);
  cl.mgr.notify_failure("a", cl.sched.now());
  cl.comm.send("a", msg("m"));
  cl.comm.send("b", msg("m"));  // neighbour keeps working
  EXPECT_EQ(cl.b.var_int("count"), 1);
  cl.sched.run_for(rt::msec(25));  // restart completes; auto-flush
  EXPECT_EQ(cl.a.var_int("count"), 1);
}

TEST(RecoveryMgr, UnknownUnitIsNoop) {
  Cluster cl;
  EXPECT_EQ(cl.mgr.notify_failure("ghost", 0), 0u);
  EXPECT_EQ(cl.mgr.recoveries(), 0u);
}

TEST(RecoveryMgr, PolicyNames) {
  EXPECT_STREQ(rec::to_string(rec::RecoveryPolicy::kRestartUnit), "restart-unit");
  EXPECT_STREQ(rec::to_string(rec::RecoveryPolicy::kFullRestart), "full-restart");
}

// --------------------------------------------------------------- LoadBalancer

namespace {

struct FakeCluster {
  std::vector<double> loads{1.4, 0.2};
  double task_load = 0.5;
  int location = 0;
  std::vector<int> moves;

  rec::LoadBalancer make(rec::LoadBalancerConfig cfg) {
    return rec::LoadBalancer(
        cfg, location, static_cast<int>(loads.size()),
        [this](int loc) { return loads[static_cast<std::size_t>(loc)]; },
        [this](int) { return task_load; },
        [this](int loc) {
          moves.push_back(loc);
          loads[static_cast<std::size_t>(location)] -= task_load;
          loads[static_cast<std::size_t>(loc)] += task_load;
          location = loc;
        });
  }
};

}  // namespace

TEST(LoadBalancer, MigratesAfterSustainedOverload) {
  FakeCluster fc;
  rec::LoadBalancerConfig cfg;
  cfg.sustain_ticks = 3;
  auto lb = fc.make(cfg);
  lb.tick(0);
  lb.tick(1000);
  EXPECT_TRUE(fc.moves.empty());  // not sustained yet
  lb.tick(2000);
  ASSERT_EQ(fc.moves.size(), 1u);
  EXPECT_EQ(fc.moves[0], 1);
  EXPECT_EQ(lb.location(), 1);
}

TEST(LoadBalancer, TransientOverloadDoesNotMigrate) {
  FakeCluster fc;
  rec::LoadBalancerConfig cfg;
  cfg.sustain_ticks = 3;
  auto lb = fc.make(cfg);
  lb.tick(0);
  fc.loads[0] = 0.5;  // overload vanished
  lb.tick(1000);
  fc.loads[0] = 1.4;
  lb.tick(2000);
  lb.tick(3000);
  EXPECT_TRUE(fc.moves.empty());  // streak was broken
}

TEST(LoadBalancer, RequiresHeadroomAtTarget) {
  FakeCluster fc;
  fc.loads = {1.4, 0.9};  // target would exceed headroom with +0.5
  rec::LoadBalancerConfig cfg;
  cfg.sustain_ticks = 1;
  auto lb = fc.make(cfg);
  for (int i = 0; i < 10; ++i) lb.tick(i * 1000);
  EXPECT_TRUE(fc.moves.empty());
}

TEST(LoadBalancer, CooldownPreventsPingPong) {
  FakeCluster fc;
  rec::LoadBalancerConfig cfg;
  cfg.sustain_ticks = 1;
  cfg.cooldown = rt::sec(10);
  auto lb = fc.make(cfg);
  lb.tick(0);
  ASSERT_EQ(fc.moves.size(), 1u);
  // New overload at the new location immediately after.
  fc.loads = {0.2, 1.6};
  lb.tick(1000);
  lb.tick(2000);
  EXPECT_EQ(fc.moves.size(), 1u);  // cooldown holds
  lb.tick(rt::sec(11));
  EXPECT_EQ(fc.moves.size(), 2u);
}

TEST(LoadBalancer, PicksLeastLoadedTarget) {
  FakeCluster fc;
  fc.loads = {1.5, 0.4, 0.1};
  rec::LoadBalancerConfig cfg;
  cfg.sustain_ticks = 1;
  auto lb = rec::LoadBalancer(
      cfg, 0, 3, [&fc](int loc) { return fc.loads[static_cast<std::size_t>(loc)]; },
      [&fc](int) { return fc.task_load; }, [&fc](int loc) { fc.moves.push_back(loc); });
  lb.tick(0);
  ASSERT_EQ(fc.moves.size(), 1u);
  EXPECT_EQ(fc.moves[0], 2);
}

// ----------------------------------------------------- AdaptiveArbiter

TEST(AdaptiveArbiter, BoostsStarvingPortThenRestores) {
  tv::MemoryArbiter arb(100.0);
  arb.add_port("video", 1);
  arb.add_port("hog", 3);
  rec::AdaptiveArbiterConfig cfg;
  cfg.starvation_ticks_to_boost = 3;
  cfg.healthy_ticks_to_restore = 2;
  rec::AdaptiveArbiterController ctrl(arb, "video", cfg);

  // Starve the video port behind the hog.
  for (int i = 0; i < 3; ++i) {
    arb.request("hog", 90.0);
    arb.request("video", 50.0);
    arb.service();
    ctrl.tick(i);
  }
  EXPECT_TRUE(ctrl.boosted());
  EXPECT_EQ(arb.priority("video"), cfg.boost_priority);

  // With the boost, video is served fully; after the healthy streak the
  // base priority returns.
  for (int i = 3; i < 6; ++i) {
    arb.request("hog", 90.0);
    arb.request("video", 50.0);
    arb.service();
    ctrl.tick(i);
  }
  EXPECT_FALSE(ctrl.boosted());
  EXPECT_EQ(arb.priority("video"), 1);
  EXPECT_EQ(ctrl.boosts(), 1u);
  EXPECT_EQ(ctrl.restores(), 1u);
}

TEST(AdaptiveArbiter, HealthyPortNeverBoosted) {
  tv::MemoryArbiter arb(100.0);
  arb.add_port("video", 3);
  rec::AdaptiveArbiterController ctrl(arb, "video");
  for (int i = 0; i < 20; ++i) {
    arb.request("video", 50.0);
    arb.service();
    ctrl.tick(i);
  }
  EXPECT_FALSE(ctrl.boosted());
  EXPECT_EQ(ctrl.boosts(), 0u);
}

// ------------------------------------------- Recovery integrated with the TV

TEST(RecoveryIntegration, CrashDetectThenPartialRestartHealsTeletext) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  set.press(tv::Key::kTeletext);
  sched.run_for(rt::msec(200));

  injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "teletext", sched.now(),
                                   rt::msec(100), 1.0, {}});
  sched.run_for(rt::msec(150));  // fault window passed, crash latched
  ASSERT_TRUE(set.crashed().count("teletext"));

  // Partial recovery: restart only the teletext engine.
  set.restart_component("teletext");
  sched.run_for(rt::msec(200));
  EXPECT_FALSE(set.crashed().count("teletext"));
  EXPECT_EQ(set.teletext().mode(), tv::TeletextEngine::Mode::kVisible);
  EXPECT_TRUE(set.teletext_content_ok());
  // The rest of the system never stopped.
  EXPECT_EQ(set.sound_output(), 30);
}

TEST(RecoveryIntegration, LoadBalancerImprovesQualityUnderBadSignal) {
  // E6 shape: bad signal -> error-correction overload -> migration to the
  // second CPU restores frame production.
  auto run = [](bool with_lb) {
    rt::Scheduler sched;
    rt::EventBus bus;
    flt::FaultInjector injector(rt::Rng(3));
    tv::TvConfig config;
    config.cpu1_capacity = 140.0;  // second media-capable processor (IMEC setup)
    tv::TvSystem set(sched, bus, injector, config);
    set.start();
    set.press(tv::Key::kPower);
    injector.schedule(flt::FaultSpec{flt::FaultKind::kBadSignal, "tuner", rt::sec(2), 0, 0.55,
                                     {}});
    std::unique_ptr<rec::LoadBalancer> lb;
    if (with_lb) {
      rec::LoadBalancerConfig cfg;
      cfg.sustain_ticks = 5;
      lb = std::make_unique<rec::LoadBalancer>(
          cfg, 0, 2, [&set](int cpu) { return set.cpu(cpu).load(); },
          [&set](int cpu) {
            return set.cpu(set.decoder_cpu()).task_cost("decoder") / set.cpu(cpu).capacity();
          },
          [&set](int cpu) { set.set_decoder_cpu(cpu); });
      sched.schedule_every(rt::msec(20), [&sched, &lb] { lb->tick(sched.now()); });
    }
    sched.run_until(rt::sec(10));
    return set.stats().drop_rate();
  };
  const double drop_without = run(false);
  const double drop_with = run(true);
  EXPECT_LT(drop_with, drop_without);
}

// ----------------------------------------------------------- RecoveryEscalator

TEST(Escalation, EveryLevelFailingEndsInPersistentGiveUp) {
  rec::EscalationConfig cfg;
  cfg.failures_per_level = 1;  // fastest possible climb
  cfg.window = rt::sec(1000);  // nothing ages out mid-test
  rec::RecoveryEscalator esc(cfg);
  // Four failures exhaust resync .. full-restart; every failure after
  // that must keep answering give-up — the unit needs service, the
  // ladder must not wrap around to light-weight actions.
  EXPECT_EQ(esc.next_action("u", rt::sec(1)), rec::RecoveryAction::kResync);
  EXPECT_EQ(esc.next_action("u", rt::sec(2)), rec::RecoveryAction::kRestartUnit);
  EXPECT_EQ(esc.next_action("u", rt::sec(3)), rec::RecoveryAction::kRestartDependents);
  EXPECT_EQ(esc.next_action("u", rt::sec(4)), rec::RecoveryAction::kFullRestart);
  for (int i = 5; i < 10; ++i) {
    EXPECT_EQ(esc.next_action("u", rt::sec(i)), rec::RecoveryAction::kGiveUp) << "failure " << i;
  }
  EXPECT_EQ(esc.give_ups(), 5u);
  EXPECT_EQ(esc.level("u", rt::sec(10)), 9);  // nine failures on record

  // Only an explicit success releases the unit from the dead level...
  esc.report_success("u");
  EXPECT_EQ(esc.next_action("u", rt::sec(20)), rec::RecoveryAction::kResync);
  // ...and the give-up tally stays cumulative for the service report.
  EXPECT_EQ(esc.give_ups(), 5u);
}

TEST(Escalation, FailureMapStaysBoundedAsUnitsChurn) {
  // A hub orchestrating a fleet routes thousands of distinct
  // (slot, component) keys through one escalator over its lifetime; a
  // unit whose failures have all aged out of the window must cost
  // nothing, or the map grows without bound.
  rec::EscalationConfig cfg;
  cfg.window = rt::msec(100);
  rec::RecoveryEscalator esc(cfg);
  for (int i = 0; i < 1000; ++i) {
    // Each unit fails once, 1 ms apart: by the time unit N fails, every
    // unit older than the 100 ms window is fully expired.
    esc.next_action("unit" + std::to_string(i), rt::msec(i));
    EXPECT_LE(esc.tracked_units(), 101u) << "at unit " << i;
  }
  // Long after the window, the next failure prunes everything else.
  esc.next_action("fresh", rt::sec(100));
  EXPECT_EQ(esc.tracked_units(), 1u);
}

TEST(Escalation, ForgetDropsAUnitWithoutTouchingOthers) {
  rec::EscalationConfig cfg;
  cfg.failures_per_level = 1;
  cfg.window = rt::sec(1000);
  rec::RecoveryEscalator esc(cfg);
  esc.next_action("gone", rt::sec(1));
  esc.next_action("gone", rt::sec(2));
  esc.next_action("kept", rt::sec(3));
  EXPECT_EQ(esc.tracked_units(), 2u);

  // Retiring a hub slot forgets its ladder state entirely: if the same
  // name ever comes back it starts from resync, not mid-climb...
  esc.forget("gone");
  EXPECT_EQ(esc.tracked_units(), 1u);
  EXPECT_EQ(esc.next_action("gone", rt::sec(4)), rec::RecoveryAction::kResync);

  // ...while an unrelated unit's history is untouched (one prior
  // failure -> its next action continues the climb).
  EXPECT_EQ(esc.next_action("kept", rt::sec(5)), rec::RecoveryAction::kRestartUnit);
  EXPECT_EQ(esc.level("kept", rt::sec(5)), 2);  // two failures on record
}
