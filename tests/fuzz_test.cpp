// Tests for the coverage-guided scenario fuzzer (src/testkit/fuzz):
// shape fingerprints, coverage keys, mutation determinism (same seed =>
// byte-identical corpus and report), coverage-map monotonicity and
// prefix stability, miss-preserving minimization, corpus
// growth-then-saturation over a long run, the novel-class claim (cells
// the E16 uniform draw cannot reach), the injector overlap merge rule,
// the resource-eater fault, and the cross-backend differential: a
// fuzzer-discovered corpus replays verdict-for-verdict and
// fingerprint-for-fingerprint on every IPC backend at 1/2/4 shards.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "testkit/campaign.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/golden_trace.hpp"
#include "testkit/scenario.hpp"

namespace rt = trader::runtime;
namespace tk = trader::testkit;
namespace faults = trader::faults;

namespace {

tk::FuzzConfig small_fuzz(std::uint64_t seed = 2026, std::size_t iterations = 60) {
  tk::FuzzConfig cfg;
  cfg.seed = seed;
  cfg.seed_scenarios = 10;
  cfg.iterations = iterations;
  return cfg;
}

}  // namespace

// --------------------------------------------------------- shape fingerprint

TEST(ShapeFingerprint, CollapsesDigitRunsKeepsWords) {
  tk::GoldenTrace a, b, c;
  a.add(100, "cmd", "aspect0 inc out=5");
  b.add(23400, "cmd", "aspect0 inc out=1789");  // same shape, other numbers
  c.add(100, "cmd", "aspect0 skipped out=5");   // other words, same numbers

  // Raw fingerprints all differ; shapes identify a and b only.
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(tk::shape_fingerprint(a), tk::shape_fingerprint(b));
  EXPECT_NE(tk::shape_fingerprint(a), tk::shape_fingerprint(c));
}

// -------------------------------------------------------------- coverage key

TEST(CoverageKey, SortedUniqueKindsVerdictLatencyAndMarkers) {
  using faults::FaultKind;
  tk::ScenarioScript s;
  s.aspects(2)
      .inject(FaultKind::kStuckComponent, 0, rt::msec(100), rt::msec(100))
      .inject(FaultKind::kMessageLoss, 1, rt::msec(100), rt::msec(100))
      .inject(FaultKind::kMessageLoss, 0, rt::msec(200), rt::msec(50));  // dup kind: once

  tk::ScenarioResult r;
  r.verdict = tk::Verdict::kDetected;
  r.detection_latency = rt::msec(50);  // bucket 20ms => L2
  EXPECT_EQ(tk::coverage_key(s, r, rt::msec(20)), "message-loss+stuck-component|detected|L2");

  r.recovered = true;
  s.outage(rt::msec(200), rt::msec(240));
  EXPECT_EQ(tk::coverage_key(s, r, rt::msec(20)),
            "message-loss+stuck-component|detected|L2|outage|rec");

  tk::ScenarioScript clean;
  tk::ScenarioResult nothing;
  EXPECT_EQ(tk::coverage_key(clean, nothing, rt::msec(20)), "none|true-negative|L-");
}

// ------------------------------------------------------ mutation determinism

TEST(Fuzz, SameSeedByteIdenticalCorpusAndReport) {
  const auto a = tk::FuzzCampaignRunner(small_fuzz()).run();
  const auto b = tk::FuzzCampaignRunner(small_fuzz()).run();

  EXPECT_EQ(a.to_json(), b.to_json());
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (std::size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus[i].script.name(), b.corpus[i].script.name());
    EXPECT_EQ(a.corpus[i].trace_fp, b.corpus[i].trace_fp);
    EXPECT_EQ(a.corpus[i].op, b.corpus[i].op);
  }
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(tk::script_to_json(a.findings[i].script), tk::script_to_json(b.findings[i].script));
  }
}

TEST(Fuzz, DifferentSeedDiverges) {
  const auto a = tk::FuzzCampaignRunner(small_fuzz(2026)).run();
  const auto b = tk::FuzzCampaignRunner(small_fuzz(2027)).run();
  EXPECT_NE(a.to_json(), b.to_json());
}

// ------------------------------------------------------ coverage monotonicity

TEST(Fuzz, CoverageMapMonotonicAndPrefixStable) {
  const auto shorter = tk::FuzzCampaignRunner(small_fuzz(2026, 40)).run();
  const auto longer = tk::FuzzCampaignRunner(small_fuzz(2026, 80)).run();

  // The growth curve never shrinks: coverage only accumulates.
  for (std::size_t i = 1; i < longer.corpus_growth.size(); ++i) {
    ASSERT_GE(longer.corpus_growth[i], longer.corpus_growth[i - 1]) << "iteration " << i;
  }

  // Running longer with the same seed replays the shorter run exactly:
  // every coverage cell of the 40-iteration run exists in the
  // 80-iteration run, and the shorter corpus is a prefix of the longer.
  for (const auto& [key, cell] : shorter.coverage) {
    const auto it = longer.coverage.find(key);
    ASSERT_NE(it, longer.coverage.end()) << key;
    EXPECT_EQ(it->second.first_seen, cell.first_seen) << key;
  }
  ASSERT_LE(shorter.corpus.size(), longer.corpus.size());
  for (std::size_t i = 0; i < shorter.corpus.size(); ++i) {
    EXPECT_EQ(shorter.corpus[i].script.name(), longer.corpus[i].script.name());
    EXPECT_EQ(shorter.corpus[i].trace_fp, longer.corpus[i].trace_fp);
  }
}

// ----------------------------------------------------------------- minimizer

TEST(Fuzz, MinimizerPreservesMissVerdict) {
  using faults::FaultKind;
  // Task overrun is invisible to a counter comparator: manifested but
  // missed — exactly the scenario class the findings corpus collects.
  tk::ScenarioScript s;
  s.name("overrun").aspects(2).horizon(rt::msec(400));
  s.every(rt::msec(20), rt::msec(20), rt::msec(380));
  s.inject(FaultKind::kTaskOverrun, 0, rt::msec(100), rt::msec(100));

  tk::ScenarioExecutor executor;
  const auto before = executor.run(s);
  ASSERT_EQ(before.verdict, tk::Verdict::kMissed);
  ASSERT_TRUE(before.fault_manifested);

  std::size_t runs = 0;
  const auto minimized = tk::minimize_scenario(executor, s, /*budget=*/200, rt::msec(20), &runs);
  EXPECT_GT(runs, 0u);
  EXPECT_EQ(minimized.name(), "overrun-min");

  const auto after = executor.run(minimized);
  EXPECT_EQ(after.verdict, tk::Verdict::kMissed);
  EXPECT_TRUE(after.fault_manifested);

  // It actually shrank — and hard: one command suffices for an overrun.
  EXPECT_LT(minimized.sorted_commands().size(), s.sorted_commands().size());
  EXPECT_LE(minimized.horizon(), s.horizon());
  EXPECT_EQ(minimized.fault_plan().size(), 1u);
}

// ------------------------------------------------------- growth / saturation

TEST(Fuzz, FiveHundredIterationCorpusGrowsThenSaturates) {
  auto cfg = small_fuzz(2026, 500);
  const auto report = tk::FuzzCampaignRunner(cfg).run();
  ASSERT_EQ(report.corpus_growth.size(), 500u);
  ASSERT_EQ(report.executions, 510u);

  // Monotone, strictly growing overall.
  for (std::size_t i = 1; i < 500; ++i) {
    ASSERT_GE(report.corpus_growth[i], report.corpus_growth[i - 1]) << "iteration " << i;
  }
  EXPECT_GE(report.corpus_growth.front(), cfg.seed_scenarios);
  EXPECT_GT(report.corpus_growth.back(), report.corpus_growth.front());

  // Saturation: novelty is much easier to find early than late.
  const std::size_t early = report.corpus_growth[99] - report.corpus_growth[0];
  const std::size_t late = report.corpus_growth[499] - report.corpus_growth[399];
  EXPECT_GT(early, 0u);
  EXPECT_LT(late, early);
}

// ------------------------------------------------------------- novel classes

TEST(Fuzz, DiscoversNovelClassBeyondUniformDraw) {
  // Reconstruct the E16 envelope: the exact uniform generator the
  // campaign runner uses, same seed, same draw parameters.
  tk::CampaignConfig camp;
  camp.seed = 2026;
  camp.scenarios = 50;
  rt::Rng master(camp.seed);
  tk::ScenarioExecutor executor(camp.executor);
  std::set<std::string> uniform_keys;
  for (std::size_t i = 0; i < camp.scenarios; ++i) {
    rt::Rng rng = master.fork();
    const auto script = tk::draw_scenario(rng, i, camp.draw);
    const auto result = executor.run(script);
    uniform_keys.insert(tk::coverage_key(script, result, rt::msec(20)));
  }

  const auto report = tk::FuzzCampaignRunner(small_fuzz(2026, 120)).run();

  // The fuzzer reaches cells the uniform draw produced...
  std::size_t novel = 0;
  bool composed = false, outage = false, eater = false;
  for (const auto& [key, cell] : report.coverage) {
    if (uniform_keys.find(key) == uniform_keys.end()) ++novel;
    composed = composed || key.find('+') != std::string::npos;
    outage = outage || key.find("|outage") != std::string::npos;
    eater = eater || key.find("resource-eater") != std::string::npos;
  }
  EXPECT_GT(novel, 0u);

  // ...and the novelty is structural, not a seed accident: the uniform
  // draw plans at most one fault, never an outage, never a resource
  // eater — so each of these cell families is unreachable from E16.
  EXPECT_TRUE(composed);
  EXPECT_TRUE(outage);
  EXPECT_TRUE(eater);
}

// ----------------------------------------------------- injector overlap rule

TEST(InjectorOverlap, StrongestWinsSingleActivation) {
  using faults::FaultKind;
  faults::FaultInjector inj(rt::Rng(7));
  inj.schedule({FaultKind::kMessageLoss, "aspect0", 0, 0, 0.5, {}});
  inj.schedule({FaultKind::kMessageLoss, "aspect0", 100, 1000, 1.0, {}});

  // Both specs are active at t=500; the intensity-1.0 spec wins, fires
  // deterministically, and ground truth logs exactly one activation —
  // attributed to the winner.
  EXPECT_TRUE(inj.fires(FaultKind::kMessageLoss, "aspect0", 500));
  ASSERT_EQ(inj.activations().size(), 1u);
  EXPECT_EQ(inj.activations()[0].spec.intensity, 1.0);
  EXPECT_EQ(inj.activations()[0].spec.activate_at, 100);
}

TEST(InjectorOverlap, IntensityTieBreaksToEarliestActivation) {
  using faults::FaultKind;
  faults::FaultInjector inj(rt::Rng(7));
  inj.schedule({FaultKind::kStuckComponent, "aspect1", 200, 1000, 1.0, {}});
  inj.schedule({FaultKind::kStuckComponent, "aspect1", 100, 1000, 1.0, {}});

  EXPECT_TRUE(inj.fires(FaultKind::kStuckComponent, "aspect1", 250));
  ASSERT_EQ(inj.activations().size(), 1u);
  EXPECT_EQ(inj.activations()[0].spec.activate_at, 100);
}

TEST(InjectorOverlap, OverlappingSpecNeverPerturbsDrawSequence) {
  using faults::FaultKind;
  // The determinism clause of the merge rule: fires() spends at most one
  // rng draw per call, so adding an overlapping weaker spec leaves the
  // fire/no-fire sequence bit-identical.
  faults::FaultInjector lone(rt::Rng(42));
  lone.schedule({FaultKind::kMessageLoss, "x", 0, 0, 0.5, {}});
  faults::FaultInjector crowded(rt::Rng(42));
  crowded.schedule({FaultKind::kMessageLoss, "x", 0, 0, 0.5, {}});
  crowded.schedule({FaultKind::kMessageLoss, "x", 0, 0, 0.25, {}});

  for (rt::SimTime t = 0; t < 100; ++t) {
    ASSERT_EQ(lone.fires(FaultKind::kMessageLoss, "x", t),
              crowded.fires(FaultKind::kMessageLoss, "x", t))
        << "t=" << t;
  }
}

TEST(InjectorOverlap, DifferentKindsComposeIndependently) {
  using faults::FaultKind;
  faults::FaultInjector inj(rt::Rng(7));
  inj.schedule({FaultKind::kMessageLoss, "aspect0", 0, 1000, 1.0, {}});
  inj.schedule({FaultKind::kStuckComponent, "aspect0", 0, 1000, 1.0, {}});

  EXPECT_TRUE(inj.fires(FaultKind::kMessageLoss, "aspect0", 10));
  EXPECT_TRUE(inj.fires(FaultKind::kStuckComponent, "aspect0", 10));
  EXPECT_EQ(inj.activations().size(), 2u);
}

// -------------------------------------------------------------- resource eater

TEST(ResourceEater, DeferredProcessingIsDetectedAndDrains) {
  using faults::FaultKind;
  tk::ScenarioScript s;
  s.name("eater").aspects(1).horizon(rt::msec(400));
  s.every(rt::msec(20), rt::msec(20), rt::msec(380));
  s.inject(FaultKind::kResourceEater, 0, rt::msec(100), rt::msec(100));

  tk::ScenarioExecutor executor;
  const auto r = executor.run(s);

  // The starved component lags (value-visible) => detected; the backlog
  // drains once the eater stops, so the published count catches up.
  EXPECT_EQ(r.verdict, tk::Verdict::kDetected);
  EXPECT_TRUE(r.detectable_manifested);
  bool deferred = false;
  for (const auto& line : r.trace.lines()) {
    if (line.find("deferred (eater)") != std::string::npos) deferred = true;
  }
  EXPECT_TRUE(deferred);
}

// ------------------------------------------------- cross-backend differential

// A fuzzer-discovered corpus is only a corpus if it replays everywhere:
// every entry must reproduce its verdict and its exact golden-trace
// fingerprint on each IPC backend (socketpair, AF_UNIX, epoll hub) at
// 1, 2 and 4 shards. The kOff run that built the corpus is the
// reference; composed faults, outage windows and resource eaters are
// all represented in the first 20 entries.
TEST(FuzzDifferential, CorpusReplaysAcrossBackendsAndShards) {
  const auto report = tk::FuzzCampaignRunner(small_fuzz(2026, 60)).run();
  ASSERT_GE(report.corpus.size(), 20u);

  for (const tk::IpcMode mode :
       {tk::IpcMode::kSocketpair, tk::IpcMode::kUnix, tk::IpcMode::kHub}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      tk::ExecutorConfig cfg;
      cfg.ipc = mode;
      cfg.shards = shards;
      tk::ScenarioExecutor executor(cfg);
      for (std::size_t i = 0; i < 20; ++i) {
        const auto& entry = report.corpus[i];
        const auto replay = executor.run(entry.script);
        EXPECT_EQ(replay.verdict, entry.verdict)
            << tk::to_string(mode) << " shards=" << shards << " " << entry.script.name();
        EXPECT_EQ(replay.trace.fingerprint(), entry.trace_fp)
            << tk::to_string(mode) << " shards=" << shards << " " << entry.script.name();
      }
    }
  }
}
