// Tests for the observation layer (§4.1): probes, call-stack tracing,
// aspect hooks, resource monitoring — plus the fault-injection plan.
#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "observation/aspect.hpp"
#include "observation/call_stack.hpp"
#include "observation/probes.hpp"
#include "observation/resource_monitor.hpp"

namespace obs = trader::observation;
namespace rt = trader::runtime;
namespace flt = trader::faults;

// --------------------------------------------------------------------- Probes

TEST(Probes, StoresLatestValueAndTimestamp) {
  obs::ProbeRegistry reg;
  EXPECT_FALSE(reg.value("x").has_value());
  EXPECT_EQ(reg.last_update("x"), -1);
  reg.update("x", std::int64_t{5}, 100);
  reg.update("x", std::int64_t{9}, 200);
  ASSERT_TRUE(reg.value("x").has_value());
  EXPECT_EQ(std::get<std::int64_t>(*reg.value("x")), 9);
  EXPECT_EQ(reg.last_update("x"), 200);
  EXPECT_EQ(reg.update_count(), 2u);
}

TEST(Probes, NumCoercesTypes) {
  obs::ProbeRegistry reg;
  reg.update("i", std::int64_t{4}, 0);
  reg.update("d", 2.5, 0);
  reg.update("b", true, 0);
  reg.update("s", std::string("nope"), 0);
  EXPECT_DOUBLE_EQ(reg.num("i"), 4.0);
  EXPECT_DOUBLE_EQ(reg.num("d"), 2.5);
  EXPECT_DOUBLE_EQ(reg.num("b"), 1.0);
  EXPECT_DOUBLE_EQ(reg.num("s", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.num("missing", 7.0), 7.0);
}

TEST(Probes, RangeViolationsRecorded) {
  obs::ProbeRegistry reg;
  reg.set_range("v", 0.0, 10.0);
  reg.update("v", 5.0, 1);
  reg.update("v", 11.0, 2);
  reg.update("v", -1.0, 3);
  ASSERT_EQ(reg.violations().size(), 2u);
  EXPECT_EQ(reg.violations()[0].time, 2);
  EXPECT_DOUBLE_EQ(reg.violations()[1].value, -1.0);
  reg.clear_violations();
  EXPECT_TRUE(reg.violations().empty());
}

TEST(Probes, NonNumericValuesBypassRangeCheck) {
  obs::ProbeRegistry reg;
  reg.set_range("v", 0.0, 10.0);
  reg.update("v", std::string("text"), 1);
  EXPECT_TRUE(reg.violations().empty());
}

TEST(Probes, UpdateHandlersNotified) {
  obs::ProbeRegistry reg;
  std::vector<std::string> seen;
  reg.on_update([&](const std::string& name, const rt::Value&, rt::SimTime) {
    seen.push_back(name);
  });
  reg.update("a", std::int64_t{1}, 0);
  reg.update("b", std::int64_t{2}, 0);
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
}

TEST(Probes, NamesListsAllProbes) {
  obs::ProbeRegistry reg;
  reg.update("a", std::int64_t{1}, 0);
  reg.set_range("b", 0, 1);  // declared via range only
  const auto names = reg.names();
  EXPECT_EQ(names.size(), 2u);
}

// ------------------------------------------------------------------ CallStack

TEST(CallStack, TracksDepthAndRecords) {
  obs::CallStackTracer tracer;
  tracer.enter("main", {}, 0);
  tracer.enter("decode", {{"frame", std::int64_t{1}}}, 10);
  EXPECT_EQ(tracer.depth(), 2u);
  EXPECT_EQ(tracer.stack(), (std::vector<std::string>{"main", "decode"}));
  tracer.exit(30, std::int64_t{0});
  tracer.exit(40);
  EXPECT_EQ(tracer.depth(), 0u);
  EXPECT_EQ(tracer.max_depth_seen(), 2u);
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].function, "decode");
  EXPECT_EQ(tracer.records()[0].exited - tracer.records()[0].entered, 20);
}

TEST(CallStack, StatsAggregatePerFunction) {
  obs::CallStackTracer tracer;
  for (int i = 0; i < 3; ++i) {
    tracer.enter("f", {}, i * 100);
    tracer.exit(i * 100 + 10);
  }
  EXPECT_EQ(tracer.calls_to("f"), 3u);
  EXPECT_EQ(tracer.stats().at("f").total_time, 30);
  EXPECT_EQ(tracer.calls_to("ghost"), 0u);
}

TEST(CallStack, UnbalancedExitTolerated) {
  obs::CallStackTracer tracer;
  tracer.exit(10);  // nothing on the stack
  EXPECT_EQ(tracer.depth(), 0u);
}

TEST(CallStack, ScopedCallIsRaii) {
  obs::CallStackTracer tracer;
  {
    obs::ScopedCall call(tracer, "scoped", 5);
    EXPECT_EQ(tracer.depth(), 1u);
  }
  EXPECT_EQ(tracer.depth(), 0u);
  EXPECT_EQ(tracer.calls_to("scoped"), 1u);
}

TEST(CallStack, RecordCapRespected) {
  obs::CallStackTracer tracer(2);
  for (int i = 0; i < 5; ++i) {
    tracer.enter("f", {}, i);
    tracer.exit(i);
  }
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.calls_to("f"), 5u);  // stats still complete
}

// --------------------------------------------------------------------- Aspect

TEST(Aspect, BeforeAndAfterAdviceRun) {
  obs::AspectRegistry reg;
  std::vector<std::string> order;
  reg.before("jp", [&](obs::JoinPointCall&) { order.push_back("before"); });
  reg.after("jp", [&](const obs::JoinPointCall&, const rt::Value&) { order.push_back("after"); });
  const auto result = reg.dispatch("jp", {}, 0, [&] {
    order.push_back("body");
    return rt::Value{std::int64_t{42}};
  });
  EXPECT_EQ(order, (std::vector<std::string>{"before", "body", "after"}));
  EXPECT_EQ(std::get<std::int64_t>(result), 42);
  EXPECT_EQ(reg.dispatch_count("jp"), 1u);
}

TEST(Aspect, BeforeAdviceCanVetoBody) {
  obs::AspectRegistry reg;
  bool body_ran = false;
  reg.before("jp", [](obs::JoinPointCall& call) { call.proceed = false; });
  reg.dispatch("jp", {}, 0, [&] {
    body_ran = true;
    return rt::Value{std::int64_t{1}};
  });
  EXPECT_FALSE(body_ran);
}

TEST(Aspect, UnadvisedJoinPointJustRunsBody) {
  obs::AspectRegistry reg;
  const auto result = reg.dispatch("plain", {}, 0, [] { return rt::Value{std::int64_t{7}}; });
  EXPECT_EQ(std::get<std::int64_t>(result), 7);
}

TEST(Aspect, AdviceSeesArguments) {
  obs::AspectRegistry reg;
  std::int64_t seen = 0;
  reg.before("jp", [&](obs::JoinPointCall& call) {
    seen = std::get<std::int64_t>(call.args.at("n"));
  });
  reg.dispatch("jp", {{"n", std::int64_t{13}}}, 0, nullptr);
  EXPECT_EQ(seen, 13);
}

TEST(Aspect, AdvisedJoinPointsListed) {
  obs::AspectRegistry reg;
  reg.before("a", [](obs::JoinPointCall&) {});
  reg.after("b", [](const obs::JoinPointCall&, const rt::Value&) {});
  const auto jps = reg.advised_join_points();
  EXPECT_EQ(jps.size(), 2u);
}

// ------------------------------------------------------------ ResourceMonitor

TEST(ResourceMonitor, TimeWeightedUtilization) {
  obs::ResourceMonitor mon(rt::msec(100));
  mon.sample("cpu", 0.0, 0);
  mon.sample("cpu", 1.0, rt::msec(50));
  // Window [0,100]: half at 0.0, half at 1.0.
  EXPECT_NEAR(mon.utilization("cpu", rt::msec(100)), 0.5, 0.02);
}

TEST(ResourceMonitor, PeakAndCurrent) {
  obs::ResourceMonitor mon(rt::msec(100));
  mon.sample("cpu", 0.3, 0);
  mon.sample("cpu", 0.9, rt::msec(10));
  mon.sample("cpu", 0.2, rt::msec(20));
  EXPECT_DOUBLE_EQ(mon.peak("cpu", rt::msec(30)), 0.9);
  EXPECT_DOUBLE_EQ(mon.current("cpu"), 0.2);
}

TEST(ResourceMonitor, OldSamplesFallOutOfWindow) {
  obs::ResourceMonitor mon(rt::msec(100));
  mon.sample("cpu", 1.0, 0);
  mon.sample("cpu", 0.0, rt::msec(10));
  // At t=200 the window [100,200] only sees the 0.0 level.
  EXPECT_NEAR(mon.utilization("cpu", rt::msec(200)), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(mon.peak("cpu", rt::msec(200)), 0.0);
}

TEST(ResourceMonitor, UnknownResourceIsZero) {
  obs::ResourceMonitor mon;
  EXPECT_DOUBLE_EQ(mon.utilization("ghost", 100), 0.0);
  EXPECT_DOUBLE_EQ(mon.current("ghost"), 0.0);
}

TEST(ResourceMonitor, ResourceListing) {
  obs::ResourceMonitor mon;
  mon.sample("a", 0.1, 0);
  mon.sample("b", 0.2, 0);
  EXPECT_EQ(mon.resources().size(), 2u);
}

// --------------------------------------------------------------------- Faults

TEST(Faults, SpecActivationWindow) {
  flt::FaultSpec spec;
  spec.activate_at = 100;
  spec.duration = 50;
  EXPECT_FALSE(spec.active_at(99));
  EXPECT_TRUE(spec.active_at(100));
  EXPECT_TRUE(spec.active_at(149));
  EXPECT_FALSE(spec.active_at(150));
  spec.duration = 0;  // permanent
  EXPECT_TRUE(spec.active_at(1'000'000'000));
}

TEST(Faults, InjectorActiveQueries) {
  flt::FaultInjector inj;
  inj.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "audio", 100, 0, 1.0, {}});
  EXPECT_FALSE(inj.is_active(flt::FaultKind::kCrash, "audio", 50));
  EXPECT_TRUE(inj.is_active(flt::FaultKind::kCrash, "audio", 150));
  EXPECT_FALSE(inj.is_active(flt::FaultKind::kCrash, "video", 150));
  EXPECT_FALSE(inj.is_active(flt::FaultKind::kDeadlock, "audio", 150));
  ASSERT_TRUE(inj.active_spec(flt::FaultKind::kCrash, "audio", 150).has_value());
}

TEST(Faults, FiresRespectsIntensityExtremes) {
  flt::FaultInjector inj;
  inj.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "ch", 0, 0, 0.0, {}});
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(inj.fires(flt::FaultKind::kMessageLoss, "ch", 10));
  flt::FaultInjector inj2;
  inj2.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "ch", 0, 0, 1.0, {}});
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(inj2.fires(flt::FaultKind::kMessageLoss, "ch", 10));
  EXPECT_EQ(inj2.activations().size(), 50u);
}

TEST(Faults, GroundTruthTimes) {
  flt::FaultInjector inj;
  inj.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "ch", 0, 0, 1.0, {}});
  EXPECT_EQ(inj.first_activation("ch"), -1);
  inj.fires(flt::FaultKind::kMessageLoss, "ch", 500);
  inj.fires(flt::FaultKind::kMessageLoss, "ch", 900);
  EXPECT_EQ(inj.first_activation("ch"), 500);
  EXPECT_EQ(inj.first_planned(), 0);
}

TEST(Faults, FirstPlannedOnEmptyAndClearedPlans) {
  flt::FaultInjector inj;
  EXPECT_EQ(inj.first_planned(), -1);               // empty plan
  EXPECT_EQ(inj.first_activation("anything"), -1);  // empty ground truth
  inj.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "a", 700, 0, 1.0, {}});
  inj.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "b", 300, 0, 1.0, {}});
  EXPECT_EQ(inj.first_planned(), 300);  // earliest in the plan, not first scheduled
  inj.clear_plan();
  EXPECT_EQ(inj.first_planned(), -1);  // cleared plan behaves like an empty one
}

TEST(Faults, OverlappingWindowsFireOnceAndTrackEarliestManifestation) {
  flt::FaultInjector inj;
  // Two overlapping loss windows on one target: [100,300) and [200,400).
  inj.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "ch", 100, 200, 1.0, {}});
  inj.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "ch", 200, 200, 1.0, {}});
  EXPECT_TRUE(inj.is_active(flt::FaultKind::kMessageLoss, "ch", 250));

  // One message inside the overlap is one manifestation: the first
  // matching spec claims it, the overlap must not double-log ground
  // truth (that would deflate measured detection rates).
  EXPECT_TRUE(inj.fires(flt::FaultKind::kMessageLoss, "ch", 250));
  ASSERT_EQ(inj.activations().size(), 1u);
  EXPECT_EQ(inj.activations()[0].spec.activate_at, 100);
  EXPECT_EQ(inj.active_spec(flt::FaultKind::kMessageLoss, "ch", 250)->activate_at, 100);
  // Outside the first window only the second spec matches.
  EXPECT_EQ(inj.active_spec(flt::FaultKind::kMessageLoss, "ch", 350)->activate_at, 200);

  // first_activation tracks the earliest *manifestation*, regardless of
  // the order fires() was called in.
  EXPECT_TRUE(inj.fires(flt::FaultKind::kMessageLoss, "ch", 350));
  EXPECT_TRUE(inj.fires(flt::FaultKind::kMessageLoss, "ch", 210));
  EXPECT_EQ(inj.first_activation("ch"), 210);
  EXPECT_EQ(inj.first_activation("other"), -1);
}

TEST(Faults, ExternalClassification) {
  EXPECT_TRUE(flt::is_external(flt::FaultKind::kBadSignal));
  EXPECT_TRUE(flt::is_external(flt::FaultKind::kCodingDeviation));
  EXPECT_FALSE(flt::is_external(flt::FaultKind::kCrash));
}

TEST(Faults, KindNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(flt::FaultKind::kMemoryCorruption); ++i) {
    names.insert(flt::to_string(static_cast<flt::FaultKind>(i)));
  }
  EXPECT_EQ(names.size(), 10u);
}
