// Tests for spectrum-based fault localization (§4.4): similarity
// coefficients, ranking metrics, the synthetic 60k-block program, and
// the headline property — the faulty block ranks first.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "diagnosis/spectrum.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "observation/coverage.hpp"
#include "tv/control.hpp"
#include "tv/keys.hpp"
#include "tv/signal.hpp"

namespace diag = trader::diagnosis;
namespace obs = trader::observation;
namespace tv = trader::tv;
namespace rt = trader::runtime;

// -------------------------------------------------------------- Coefficients

TEST(Similarity, OchiaiHandComputed) {
  // a11=4, a01=1, a10=2: 4 / sqrt(5*6) = 0.7303...
  diag::SflCounts k{4, 2, 1, 10};
  EXPECT_NEAR(diag::similarity(diag::Coefficient::kOchiai, k), 4.0 / std::sqrt(30.0), 1e-12);
}

TEST(Similarity, TarantulaHandComputed) {
  // fail=5 (a11=4,a01=1), pass=12 (a10=2,a00=10): f=0.8, p=1/6.
  diag::SflCounts k{4, 2, 1, 10};
  const double f = 0.8;
  const double p = 2.0 / 12.0;
  EXPECT_NEAR(diag::similarity(diag::Coefficient::kTarantula, k), f / (f + p), 1e-12);
}

TEST(Similarity, JaccardHandComputed) {
  diag::SflCounts k{4, 2, 1, 10};
  EXPECT_NEAR(diag::similarity(diag::Coefficient::kJaccard, k), 4.0 / 7.0, 1e-12);
}

TEST(Similarity, AmpleHandComputed) {
  diag::SflCounts k{4, 2, 1, 10};
  EXPECT_NEAR(diag::similarity(diag::Coefficient::kAmple, k), std::abs(0.8 - 2.0 / 12.0), 1e-12);
}

TEST(Similarity, SimpleMatchingHandComputed) {
  diag::SflCounts k{4, 2, 1, 10};
  EXPECT_NEAR(diag::similarity(diag::Coefficient::kSimpleMatching, k), 14.0 / 17.0, 1e-12);
}

TEST(Similarity, ZeroDenominatorsAreSafe) {
  diag::SflCounts zero{};
  for (auto c : diag::all_coefficients()) {
    EXPECT_EQ(diag::similarity(c, zero), 0.0) << diag::to_string(c);
  }
}

TEST(Similarity, PerfectCorrelationMaximizesOchiai) {
  // Block executed exactly in the error steps.
  diag::SflCounts k{5, 0, 0, 10};
  EXPECT_DOUBLE_EQ(diag::similarity(diag::Coefficient::kOchiai, k), 1.0);
}

TEST(Similarity, CoefficientNames) {
  EXPECT_STREQ(diag::to_string(diag::Coefficient::kOchiai), "ochiai");
  EXPECT_EQ(diag::all_coefficients().size(), 5u);
}

// ------------------------------------------------------------------- Coverage

TEST(Coverage, RecordsPerStepHits) {
  obs::BlockCoverageRecorder cov(10);
  cov.hit(1);
  cov.hit(1);  // dedup within step
  cov.hit(3);
  cov.end_step();
  cov.hit(3);
  cov.end_step();
  EXPECT_EQ(cov.step_count(), 2u);
  EXPECT_TRUE(cov.executed(0, 1));
  EXPECT_TRUE(cov.executed(0, 3));
  EXPECT_FALSE(cov.executed(0, 2));
  EXPECT_FALSE(cov.executed(1, 1));
  EXPECT_EQ(cov.blocks_in_step(0), 2u);
  EXPECT_EQ(cov.blocks_touched(), 2u);
  EXPECT_EQ(cov.raw_hits(), 4u);
}

TEST(Coverage, OutOfRangeHitIgnored) {
  obs::BlockCoverageRecorder cov(4);
  cov.hit(99);
  cov.end_step();
  EXPECT_EQ(cov.blocks_in_step(0), 0u);
}

TEST(Coverage, ClearResets) {
  obs::BlockCoverageRecorder cov(4);
  cov.hit(0);
  cov.end_step();
  cov.clear();
  EXPECT_EQ(cov.step_count(), 0u);
  EXPECT_EQ(cov.raw_hits(), 0u);
}

// --------------------------------------------------------------------- Ranker

TEST(Ranker, CountsForMatchManualTally) {
  obs::BlockCoverageRecorder cov(3);
  // step 0: blocks {0,1}, error; step 1: {1}, pass; step 2: {0}, error.
  cov.hit(0);
  cov.hit(1);
  cov.end_step();
  cov.hit(1);
  cov.end_step();
  cov.hit(0);
  cov.end_step();
  const std::vector<bool> errors{true, false, true};
  const auto k0 = diag::SflRanker::counts_for(cov, errors, 0);
  EXPECT_EQ(k0.a11, 2u);
  EXPECT_EQ(k0.a10, 0u);
  EXPECT_EQ(k0.a01, 0u);
  EXPECT_EQ(k0.a00, 1u);
  const auto k1 = diag::SflRanker::counts_for(cov, errors, 1);
  EXPECT_EQ(k1.a11, 1u);
  EXPECT_EQ(k1.a10, 1u);
}

TEST(Ranker, FaultyBlockRanksFirstInToyProgram) {
  obs::BlockCoverageRecorder cov(3);
  cov.hit(0);
  cov.hit(1);
  cov.end_step();
  cov.hit(1);
  cov.end_step();
  cov.hit(0);
  cov.end_step();
  const std::vector<bool> errors{true, false, true};
  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, errors);
  EXPECT_EQ(report.ranking[0].block, 0u);
  EXPECT_EQ(report.rank_of(0), 1u);
  EXPECT_GT(report.rank_of(1), 1u);
}

TEST(Ranker, UnexecutedBlocksExcluded) {
  obs::BlockCoverageRecorder cov(100);
  cov.hit(5);
  cov.end_step();
  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, {true});
  EXPECT_EQ(report.blocks_considered, 1u);
  EXPECT_EQ(report.rank_of(42), 2u);  // beyond the ranking
}

TEST(Ranker, MismatchedErrorVectorThrows) {
  obs::BlockCoverageRecorder cov(4);
  cov.hit(0);
  cov.end_step();
  diag::SflRanker ranker;
  EXPECT_THROW(ranker.rank(cov, {true, false}), std::invalid_argument);
}

TEST(Ranker, TieMetrics) {
  obs::BlockCoverageRecorder cov(3);
  // Blocks 0 and 1 always co-occur -> tied scores; block 2 only passes.
  cov.hit(0);
  cov.hit(1);
  cov.end_step();
  cov.hit(2);
  cov.end_step();
  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, {true, false});
  EXPECT_EQ(report.rank_of(0), 1u);        // optimistic
  EXPECT_EQ(report.worst_rank_of(0), 2u);  // pessimistic (tied with 1)
  EXPECT_NEAR(report.wasted_effort(0), (1.5 - 1.0) / 3.0, 1e-12);
}

// ---------------------------------------------------------- SyntheticProgram

TEST(Synthetic, StructureAddsUp) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 1000;
  cfg.feature_count = 10;
  diag::SyntheticProgram prog(cfg);
  EXPECT_EQ(prog.block_count(), 1000u);
  EXPECT_LT(prog.common_end(), prog.shared_end());
  EXPECT_LE(prog.feature_end(9), 1000u);
  EXPECT_EQ(prog.feature_of(prog.feature_begin(3)), 3u);
  EXPECT_EQ(prog.feature_of(0), static_cast<std::size_t>(-1));  // common block
}

TEST(Synthetic, InvalidConfigsThrow) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 10;
  cfg.feature_count = 0;
  EXPECT_THROW(diag::SyntheticProgram{cfg}, std::invalid_argument);
  cfg.feature_count = 100;
  EXPECT_THROW(diag::SyntheticProgram{cfg}, std::invalid_argument);
}

TEST(Synthetic, FaultPlacementByFeature) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 1000;
  cfg.feature_count = 10;
  diag::SyntheticProgram prog(cfg);
  prog.set_fault_in_feature(4, 10);
  EXPECT_EQ(prog.feature_of(prog.fault_block()), 4u);
  EXPECT_THROW(prog.set_fault_in_feature(99), std::out_of_range);
  EXPECT_THROW(prog.set_fault_block(99999), std::out_of_range);
}

TEST(Synthetic, StepsTouchCommonAndFeatureBlocks) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 1000;
  cfg.feature_count = 10;
  diag::SyntheticProgram prog(cfg);
  obs::BlockCoverageRecorder cov(prog.block_count());
  prog.run_step(2, cov);
  cov.end_step();
  // All common blocks executed.
  for (std::size_t b = prog.common_begin(); b < prog.common_end(); ++b) {
    EXPECT_TRUE(cov.executed(0, b));
  }
  // A prefix of feature 2 executed; feature 5 untouched.
  EXPECT_TRUE(cov.executed(0, prog.feature_begin(2)));
  bool any_f5 = false;
  for (std::size_t b = prog.feature_begin(5); b < prog.feature_end(5); ++b) {
    any_f5 |= cov.executed(0, b);
  }
  EXPECT_FALSE(any_f5);
}

TEST(Synthetic, ErrorOnlyWhenFaultExecutes) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 1000;
  cfg.feature_count = 10;
  diag::SyntheticProgram prog(cfg);
  prog.set_fault_in_feature(3, 0);  // shallow: always hit when feature 3 runs
  obs::BlockCoverageRecorder cov(prog.block_count());
  EXPECT_FALSE(prog.run_step(1, cov));
  cov.end_step();
  EXPECT_TRUE(prog.run_step(3, cov));
  cov.end_step();
}

// The headline reproduction property (E2, scaled down for test speed):
// for a scenario exercising several features with one injected fault,
// Ochiai ranks the faulty block first.
class SflHeadline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SflHeadline, FaultyBlockRanksFirst) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 6000;
  cfg.feature_count = 12;
  cfg.seed = GetParam();
  diag::SyntheticProgram prog(cfg);
  // Fault at 80% depth of the teletext-like feature: executed on deep
  // activations only, giving both erroneous and passing activations.
  const std::size_t per_feature = prog.feature_end(0) - prog.feature_begin(0);
  prog.set_fault_in_feature(2, static_cast<std::size_t>(per_feature * 0.8));

  obs::BlockCoverageRecorder cov(prog.block_count());
  // 27-step scenario alternating several features with feature 2 often.
  const std::vector<std::size_t> scenario = {0, 2, 1, 2, 3, 2, 4, 2, 5, 2, 6, 2, 7, 2,
                                             8, 2, 9, 2, 0, 2, 1, 2, 3, 2, 4, 2, 5};
  const auto errors = prog.run_scenario(scenario, cov);
  // The fault must have manifested at least once and not on every step.
  int error_steps = 0;
  for (bool e : errors) error_steps += e ? 1 : 0;
  ASSERT_GT(error_steps, 0) << "fault never executed for seed " << GetParam();
  ASSERT_LT(error_steps, static_cast<int>(errors.size()));

  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, errors, diag::Coefficient::kOchiai);
  EXPECT_EQ(report.rank_of(prog.fault_block()), 1u) << "seed " << GetParam();
  // Blocks whose spectra are identical to the fault's tie with it; even
  // pessimistically the inspection effort must stay negligible.
  EXPECT_LT(report.wasted_effort(prog.fault_block()), 0.02) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SflHeadline, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Sfl, IntermittentManifestationStillRanksHigh) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 4000;
  cfg.feature_count = 8;
  cfg.fault_manifestation = 0.7;
  cfg.seed = 99;
  diag::SyntheticProgram prog(cfg);
  const std::size_t per_feature = prog.feature_end(0) - prog.feature_begin(0);
  prog.set_fault_in_feature(1, static_cast<std::size_t>(per_feature * 0.75));
  obs::BlockCoverageRecorder cov(prog.block_count());
  std::vector<std::size_t> scenario;
  for (int i = 0; i < 40; ++i) scenario.push_back(static_cast<std::size_t>(i % 8));
  const auto errors = prog.run_scenario(scenario, cov);
  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, errors, diag::Coefficient::kOchiai);
  EXPECT_LE(report.rank_of(prog.fault_block()), 20u);
}

// ----------------------------------------------- SFL on the real TV control

TEST(Sfl, LocalizesFaultyHandlerInTvControl) {
  // Instrument the real control unit's blocks; declare steps erroneous
  // exactly when the (deliberately miswired) teletext handler ran. The
  // teletext-enter block must rank at the top.
  auto lineup = tv::ChannelLineup::standard_lineup(40);
  tv::TvControl control(lineup);
  obs::BlockCoverageRecorder cov(tv::kControlBlockCount);
  bool ttx_ran = false;
  control.set_block_hook([&](int b) {
    cov.hit(static_cast<std::size_t>(b));
    if (b == tv::kBlkTtxEnter) ttx_ran = true;
  });

  std::vector<bool> errors;
  const std::vector<tv::Key> scenario = {
      tv::Key::kPower,    tv::Key::kVolumeUp, tv::Key::kChannelUp, tv::Key::kTeletext,
      tv::Key::kTeletext, tv::Key::kMute,     tv::Key::kTeletext,  tv::Key::kBack,
      tv::Key::kVolumeDown, tv::Key::kTeletext, tv::Key::kTeletext, tv::Key::kChannelDown,
  };
  rt::SimTime now = 0;
  for (const auto key : scenario) {
    ttx_ran = false;
    control.handle_key(key, now);
    now += 2'000'000;
    cov.end_step();
    errors.push_back(ttx_ran);  // "failure whenever the buggy handler ran"
  }

  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, errors, diag::Coefficient::kOchiai);
  EXPECT_EQ(report.rank_of(tv::kBlkTtxEnter), 1u);
}

// ====================================================== incremental SFL

#include "diagnosis/incremental.hpp"

namespace {

/// Random spectra: `steps` steps over `blocks` blocks, error bias ~30%.
std::vector<std::pair<std::vector<std::uint32_t>, bool>> random_spectra(
    rt::Rng& rng, std::size_t steps, std::uint32_t blocks) {
  std::vector<std::pair<std::vector<std::uint32_t>, bool>> out;
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      if (rng.uniform(0.0, 1.0) < 0.35) ids.push_back(b);
    }
    out.emplace_back(std::move(ids), rng.uniform(0.0, 1.0) < 0.3);
  }
  return out;
}

}  // namespace

TEST(Incremental, CountsMatchBatchRecorder) {
  // Feed the identical spectra both ways: through a BlockCoverageRecorder
  // + SflRanker::counts_for (the offline batch path) and through
  // IncrementalSflCounts::add (the online path). Every per-block
  // contingency table must agree exactly.
  rt::Rng rng(71);
  const std::uint32_t kBlocks = 24;
  const auto spectra = random_spectra(rng, 40, kBlocks);

  obs::BlockCoverageRecorder cov(kBlocks);
  std::vector<bool> errors;
  diag::IncrementalSflCounts acc;
  for (const auto& [ids, err] : spectra) {
    for (const auto b : ids) cov.hit(b);
    cov.end_step();
    errors.push_back(err);
    acc.add(ids, err);
  }

  EXPECT_EQ(acc.steps(), spectra.size());
  for (std::uint32_t b = 0; b < kBlocks; ++b) {
    const auto batch = diag::SflRanker::counts_for(cov, errors, b);
    const auto online = acc.counts(b);
    EXPECT_EQ(online.a11, batch.a11) << "block " << b;
    EXPECT_EQ(online.a10, batch.a10) << "block " << b;
    EXPECT_EQ(online.a01, batch.a01) << "block " << b;
    EXPECT_EQ(online.a00, batch.a00) << "block " << b;
  }
}

TEST(Incremental, ReportBitIdenticalToBatchRanker) {
  // The headline online/offline equivalence: after ANY prefix of the
  // stream, IncrementalSflCounts::report() must equal SflRanker::rank()
  // over the same prefix — same blocks, same (double) scores, same
  // order. Checked across every coefficient.
  rt::Rng rng(72);
  const std::uint32_t kBlocks = 18;
  const auto spectra = random_spectra(rng, 25, kBlocks);

  for (const auto coefficient : diag::all_coefficients()) {
    obs::BlockCoverageRecorder cov(kBlocks);
    std::vector<bool> errors;
    diag::IncrementalSflCounts acc;
    for (const auto& [ids, err] : spectra) {
      for (const auto b : ids) cov.hit(b);
      cov.end_step();
      errors.push_back(err);
      acc.add(ids, err);

      const auto offline = diag::SflRanker().rank(cov, errors, coefficient);
      const auto online = acc.report(coefficient);
      ASSERT_EQ(online.blocks_considered, offline.blocks_considered);
      ASSERT_EQ(online.ranking.size(), offline.ranking.size());
      for (std::size_t i = 0; i < online.ranking.size(); ++i) {
        EXPECT_EQ(online.ranking[i].block, offline.ranking[i].block)
            << "prefix " << errors.size() << " rank " << i;
        EXPECT_EQ(online.ranking[i].score, offline.ranking[i].score)  // bit-identical
            << "prefix " << errors.size() << " rank " << i;
      }
    }
  }
}

TEST(Incremental, TopKMatchesFullReportPrefix) {
  rt::Rng rng(73);
  diag::IncrementalSflCounts acc;
  for (const auto& [ids, err] : random_spectra(rng, 30, 40)) acc.add(ids, err);

  const auto full = acc.report(diag::Coefficient::kOchiai);
  for (const std::size_t k : {1u, 3u, 7u, 40u, 100u}) {
    const auto top = acc.top_k(k, diag::Coefficient::kOchiai);
    ASSERT_EQ(top.size(), std::min<std::size_t>(k, full.ranking.size()));
    for (std::size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].block, full.ranking[i].block) << "k=" << k << " i=" << i;
      EXPECT_EQ(top[i].score, full.ranking[i].score) << "k=" << k << " i=" << i;
    }
  }
}

TEST(Incremental, RetireIsInverseOfAdd) {
  rt::Rng rng(74);
  const auto keep = random_spectra(rng, 20, 16);
  const auto transient = random_spectra(rng, 10, 16);

  diag::IncrementalSflCounts only_keep;
  for (const auto& [ids, err] : keep) only_keep.add(ids, err);

  diag::IncrementalSflCounts churned;
  for (const auto& [ids, err] : keep) churned.add(ids, err);
  for (const auto& [ids, err] : transient) churned.add(ids, err);
  for (const auto& [ids, err] : transient) churned.retire(ids, err);

  EXPECT_EQ(churned.steps(), only_keep.steps());
  EXPECT_EQ(churned.error_steps(), only_keep.error_steps());
  const auto a = churned.report(diag::Coefficient::kOchiai);
  const auto b = only_keep.report(diag::Coefficient::kOchiai);
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].block, b.ranking[i].block);
    EXPECT_EQ(a.ranking[i].score, b.ranking[i].score);
  }
}

TEST(Incremental, MergeEqualsConcatenatedStreams) {
  rt::Rng rng(75);
  const auto first = random_spectra(rng, 15, 20);
  const auto second = random_spectra(rng, 15, 20);

  diag::IncrementalSflCounts whole;
  for (const auto& [ids, err] : first) whole.add(ids, err);
  for (const auto& [ids, err] : second) whole.add(ids, err);

  diag::IncrementalSflCounts a;
  diag::IncrementalSflCounts b;
  for (const auto& [ids, err] : first) a.add(ids, err);
  for (const auto& [ids, err] : second) b.add(ids, err);
  a.merge(b);

  EXPECT_EQ(a.steps(), whole.steps());
  EXPECT_EQ(a.touched_blocks(), whole.touched_blocks());
  const auto ra = a.report(diag::Coefficient::kOchiai);
  const auto rb = whole.report(diag::Coefficient::kOchiai);
  ASSERT_EQ(ra.ranking.size(), rb.ranking.size());
  for (std::size_t i = 0; i < ra.ranking.size(); ++i) {
    EXPECT_EQ(ra.ranking[i].block, rb.ranking[i].block);
    EXPECT_EQ(ra.ranking[i].score, rb.ranking[i].score);
  }
}
